//! Statistical sanity tests for the RNGs.
//!
//! Not a PractRand replacement — xoshiro256++ and SplitMix64 are
//! well-studied — but these catch implementation slips (wrong rotation
//! constant, biased bounding, correlated derive streams) that would
//! silently skew every Monte Carlo result in the workspace.

use pmcts_util::{Rng64, SplitMix64, Xoshiro256pp};

/// Chi-square statistic for observed byte counts against uniform.
fn chi_square_bytes(counts: &[u64; 256], total: u64) -> f64 {
    let expected = total as f64 / 256.0;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

#[test]
fn xoshiro_bytes_are_uniform() {
    let mut rng = Xoshiro256pp::new(0xDEAD_BEEF);
    let mut counts = [0u64; 256];
    let draws = 100_000u64;
    for _ in 0..draws {
        let x = rng.next_u64();
        for b in x.to_le_bytes() {
            counts[b as usize] += 1;
        }
    }
    let chi2 = chi_square_bytes(&counts, draws * 8);
    // 255 degrees of freedom: mean 255, std ≈ 22.6; 400 is ≈ +6.4σ.
    assert!(chi2 < 400.0, "chi-square {chi2} too high — biased bytes");
    assert!(
        chi2 > 150.0,
        "chi-square {chi2} too low — suspiciously even"
    );
}

#[test]
fn splitmix_bit_balance() {
    let mut rng = SplitMix64::new(7);
    let mut ones = 0u64;
    let draws = 50_000;
    for _ in 0..draws {
        ones += rng.next_u64().count_ones() as u64;
    }
    let total_bits = draws * 64;
    let frac = ones as f64 / total_bits as f64;
    assert!((frac - 0.5).abs() < 0.002, "bit balance {frac}");
}

#[test]
fn successive_outputs_are_uncorrelated() {
    // Lag-1 serial correlation of the top bit should be ~0.
    let mut rng = Xoshiro256pp::new(99);
    let mut prev = rng.next_u64() >> 63;
    let mut agree = 0u64;
    let draws = 100_000;
    for _ in 0..draws {
        let cur = rng.next_u64() >> 63;
        if cur == prev {
            agree += 1;
        }
        prev = cur;
    }
    let frac = agree as f64 / draws as f64;
    assert!((frac - 0.5).abs() < 0.01, "lag-1 agreement {frac}");
}

#[test]
fn derived_streams_are_pairwise_uncorrelated() {
    // Top bits of parallel streams should agree ~50% of the time.
    for (a, b) in [(0u64, 1u64), (1, 2), (0, 1000), (41, 42)] {
        let mut ra = Xoshiro256pp::derive(0x5EED, a);
        let mut rb = Xoshiro256pp::derive(0x5EED, b);
        let mut agree = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if (ra.next_u64() >> 63) == (rb.next_u64() >> 63) {
                agree += 1;
            }
        }
        let frac = agree as f64 / draws as f64;
        assert!(
            (frac - 0.5).abs() < 0.02,
            "streams {a}/{b} agreement {frac}"
        );
    }
}

#[test]
fn bounded_sampling_has_no_modulo_bias() {
    // 3 does not divide 2^32: naive modulo would visibly bias the counts
    // over this many draws; Lemire's method must not.
    let mut rng = Xoshiro256pp::new(123);
    let bound = 3u32;
    let draws = 300_000u64;
    let mut counts = [0u64; 3];
    for _ in 0..draws {
        counts[rng.next_below(bound) as usize] += 1;
    }
    let expected = draws as f64 / bound as f64;
    for (i, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - expected).abs() / expected;
        assert!(dev < 0.01, "bucket {i} deviates {dev}");
    }
}

#[test]
fn jump_streams_do_not_overlap_on_a_window() {
    // After jump() the sequence must share no 4-gram window with the
    // original's first segment (overlap would break stream independence).
    let mut base = Xoshiro256pp::new(5);
    let mut jumped = Xoshiro256pp::new(5);
    jumped.jump();
    let first: Vec<u64> = (0..512).map(|_| base.next_u64()).collect();
    let other: Vec<u64> = (0..512).map(|_| jumped.next_u64()).collect();
    for w in other.windows(4) {
        assert!(
            !first.windows(4).any(|f| f == w),
            "jumped stream overlaps the base stream"
        );
    }
}
