//! Online statistics used by the experiment harness.
//!
//! Everything here is small and allocation-free: accumulators are updated
//! millions of times inside search loops and match drivers.

/// Welford online mean/variance accumulator.
///
/// Numerically stable single-pass algorithm; merging two accumulators uses
/// the parallel variant (Chan et al.), which the root-parallel searchers rely
/// on when combining per-thread statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Win/draw/loss tally with a Wilson score confidence interval.
///
/// The paper reports win ratios (Fig. 6); with a few dozen games per
/// configuration the sampling noise matters, so the harness always prints the
/// 95% Wilson interval alongside the point estimate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WinLoss {
    /// Number of wins.
    pub wins: u64,
    /// Number of draws.
    pub draws: u64,
    /// Number of losses.
    pub losses: u64,
}

impl WinLoss {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one game outcome given `score > 0` (win), `== 0` (draw),
    /// `< 0` (loss) from this player's perspective.
    #[inline]
    pub fn record_score(&mut self, score: i32) {
        match score.cmp(&0) {
            std::cmp::Ordering::Greater => self.wins += 1,
            std::cmp::Ordering::Equal => self.draws += 1,
            std::cmp::Ordering::Less => self.losses += 1,
        }
    }

    /// Total games recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.wins + self.draws + self.losses
    }

    /// Win ratio counting draws as half a win (the convention used by the
    /// paper's opponents-comparison plots).
    pub fn win_ratio(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.5;
        }
        (self.wins as f64 + 0.5 * self.draws as f64) / t as f64
    }

    /// 95% Wilson score interval for the win ratio.
    pub fn wilson95(&self) -> (f64, f64) {
        wilson_interval(self.win_ratio(), self.total(), 1.96)
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &WinLoss) {
        self.wins += other.wins;
        self.draws += other.draws;
        self.losses += other.losses;
    }
}

/// Wilson score interval for a binomial proportion.
///
/// Returns `(low, high)`; for `n == 0` returns `(0, 1)`.
pub fn wilson_interval(p: f64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n = n as f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = p + z2 / (2.0 * n);
    let margin = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

/// A labelled series of (x, y) points — the unit of output of every figure
/// regenerator. Kept deliberately simple: the harness prints TSV.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Series label, e.g. `"block parallelism (block size = 128)"`.
    pub label: String,
    /// The data points in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn online_stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic data set is 4; sample variance
        // is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn winloss_ratio_and_counts() {
        let mut w = WinLoss::new();
        w.record_score(10);
        w.record_score(-3);
        w.record_score(0);
        w.record_score(5);
        assert_eq!(w.wins, 2);
        assert_eq!(w.draws, 1);
        assert_eq!(w.losses, 1);
        assert_eq!(w.total(), 4);
        assert!((w.win_ratio() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn winloss_empty_ratio_is_half() {
        assert_eq!(WinLoss::new().win_ratio(), 0.5);
    }

    #[test]
    fn wilson_contains_p_and_shrinks() {
        let (lo1, hi1) = wilson_interval(0.6, 10, 1.96);
        let (lo2, hi2) = wilson_interval(0.6, 1000, 1.96);
        assert!(lo1 <= 0.6 && 0.6 <= hi1);
        assert!(lo2 <= 0.6 && 0.6 <= hi2);
        assert!(hi2 - lo2 < hi1 - lo1, "more samples must shrink interval");
    }

    #[test]
    fn wilson_bounds_clamped() {
        let (lo, hi) = wilson_interval(0.0, 5, 1.96);
        assert!(lo >= 0.0);
        let (lo2, hi2) = wilson_interval(1.0, 5, 1.96);
        assert!(hi2 <= 1.0);
        assert!(hi > lo && hi2 > lo2);
    }

    #[test]
    fn winloss_merge() {
        let mut a = WinLoss {
            wins: 3,
            draws: 1,
            losses: 2,
        };
        let b = WinLoss {
            wins: 1,
            draws: 0,
            losses: 4,
        };
        a.merge(&b);
        assert_eq!(
            a,
            WinLoss {
                wins: 4,
                draws: 1,
                losses: 6
            }
        );
    }

    #[test]
    fn series_push() {
        let mut s = Series::new("demo");
        s.push(1.0, 2.0);
        s.push(2.0, 4.0);
        assert_eq!(s.points, vec![(1.0, 2.0), (2.0, 4.0)]);
        assert_eq!(s.label, "demo");
    }
}
