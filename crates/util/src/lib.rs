//! Shared utilities for the `pmcts` workspace.
//!
//! This crate is the lowest layer of the workspace: it has no dependencies
//! besides `std` and provides the small, hot primitives every other crate
//! builds on:
//!
//! * [`rng`] — deterministic, splittable pseudo-random number generators
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256pp`]). Monte Carlo playouts call
//!   the RNG millions of times per second, and every experiment in the
//!   reproduction must be replayable from a single seed, so we use our own
//!   tiny generators instead of threading `rand` trait objects through the
//!   hot loops.
//! * [`stats`] — online (Welford) mean/variance accumulators, win/loss
//!   tallies with Wilson score confidence intervals, and simple series
//!   helpers used by the benchmark harness.
//! * [`time`] — [`time::SimTime`], a virtual-nanosecond clock type. The GPU
//!   and CPU cost models in `pmcts-gpu-sim` express everything in `SimTime`,
//!   which keeps experiments deterministic and lets two players share an
//!   identical virtual time budget.
//! * [`array_vec`] — a fixed-capacity vector used for move lists (Reversi
//!   never has more than 33 legal moves; avoiding heap allocation in move
//!   generation is the single most important playout optimisation).
//! * [`fault`] — [`fault::FaultPlan`], seed-derived deterministic fault
//!   schedules (GPU hangs/slowdowns/block aborts, network delays/drops/dead
//!   ranks) that the simulated device, network, and searchers consult.

pub mod array_vec;
pub mod fault;
pub mod histogram;
pub mod rng;
pub mod stats;
pub mod time;

pub use array_vec::ArrayVec;
pub use fault::{FaultCounters, FaultPlan, GpuFault};
pub use histogram::Histogram;
pub use rng::{Rng64, SplitMix64, Xoshiro256pp};
pub use stats::{OnlineStats, Series, WinLoss};
pub use time::SimTime;
