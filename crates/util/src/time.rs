//! Virtual time.
//!
//! All cost models in the GPU/CPU simulators express elapsed time as
//! [`SimTime`], a monotone count of virtual nanoseconds. Using virtual time
//! rather than wall-clock time keeps every experiment deterministic (a given
//! seed always produces the same "1 second" search) and allows two players in
//! a match to receive exactly the same budget regardless of how fast the host
//! machine happens to be.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration / instant on the virtual clock, in nanoseconds.
///
/// `SimTime` is used both as a duration and as an instant measured from the
/// start of an experiment; arithmetic saturates on subtraction so cost-model
/// bookkeeping can never underflow.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as "no deadline").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Constructs from a floating-point number of seconds (rounds down).
    ///
    /// # Panics
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid seconds: {s}");
        SimTime((s * 1e9) as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition (None on overflow).
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating: cost accounting never underflows.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a + b, SimTime::from_nanos(140));
        assert_eq!(a - b, SimTime::from_nanos(60));
        assert_eq!(b - a, SimTime::ZERO, "subtraction saturates");
        assert_eq!(a * 3, SimTime::from_nanos(300));
        assert_eq!(a / 4, SimTime::from_nanos(25));
    }

    #[test]
    fn assign_ops() {
        let mut t = SimTime::from_nanos(10);
        t += SimTime::from_nanos(5);
        assert_eq!(t.as_nanos(), 15);
        t -= SimTime::from_nanos(20);
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_over_iter() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(10));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(5).to_string(), "5.000µs");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn secs_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn negative_seconds_panics() {
        SimTime::from_secs_f64(-1.0);
    }
}
