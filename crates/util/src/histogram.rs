//! A simple fixed-bin histogram for integer-valued observations.
//!
//! Used for tree-depth and playout-length distributions in the analysis
//! tooling and bench output: playout-length spread is what drives SIMD
//! divergence on the simulated GPU, so being able to *see* the
//! distribution matters when reasoning about lane efficiency.

/// Histogram over `u32` values with unit-width bins starting at 0; values
/// beyond the last bin accumulate in an overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u32,
    max: u32,
}

impl Histogram {
    /// Creates a histogram covering values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Histogram {
            bins: vec![0; capacity],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u32::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u32) {
        match self.bins.get_mut(value as usize) {
            Some(bin) => *bin += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += value as u64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u32> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u32> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Count in bin `value` (overflowed values are not attributed).
    pub fn bin(&self, value: u32) -> u64 {
        self.bins.get(value as usize).copied().unwrap_or(0)
    }

    /// Observations that fell beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by cumulative bin counts; `None` when
    /// empty or when the quantile lands in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<u32> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (value, &n) in self.bins.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some(value as u32);
            }
        }
        None
    }

    /// Merges another histogram (same capacity) into this one.
    ///
    /// # Panics
    /// Panics if the capacities differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "capacity mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new(8);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn records_and_summarises() {
        let mut h = Histogram::new(10);
        for v in [1u32, 2, 2, 3, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.bin(2), 2);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
        assert!((h.mean() - 3.4).abs() < 1e-12);
    }

    #[test]
    fn overflow_is_tracked() {
        let mut h = Histogram::new(4);
        h.record(3);
        h.record(4); // beyond capacity
        h.record(100);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(100);
        for v in 1..=100u32 {
            h.record(v % 100); // 1..99 plus one 0
        }
        assert_eq!(h.quantile(0.0), Some(0));
        let median = h.quantile(0.5).unwrap();
        assert!((49..=51).contains(&median), "median {median}");
        assert_eq!(h.quantile(1.0), Some(99));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new(8);
        let mut b = Histogram::new(8);
        a.record(1);
        a.record(2);
        b.record(2);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.bin(2), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(7));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn merge_rejects_capacity_mismatch() {
        let mut a = Histogram::new(4);
        a.merge(&Histogram::new(8));
    }
}
