//! Seed-derived deterministic fault injection.
//!
//! A [`FaultPlan`] turns the experiment seed into per-component fault
//! *schedules*: whether a given kernel launch hangs, whether a given MPI
//! rank is dead, whether an allreduce round hits a delay spike. Every query
//! is a pure function of `(plan.seed, component key, event index)` hashed
//! through [`SplitMix64::derive`], so the schedule is identical no matter
//! how many host threads execute the search or in which order components
//! are polled — faults preserve the workspace's bit-identity invariant.
//!
//! The plan only *decides* faults; the response policies live with the
//! components (`gpu-sim` applies kernel slowdowns, the searchers in
//! `pmcts-core` retry/degrade/exclude). [`FaultCounters`] is the shared
//! telemetry ledger those policies fill in.
//!
//! Component index 0 (rank 0, tree 0) is never killed and never drops its
//! contribution: a quorum of one always survives, so every search under
//! every plan still produces a best move.

use crate::rng::{Rng64, SplitMix64};
use crate::time::SimTime;

/// Domain-separation salts, one per fault class, so e.g. the hang schedule
/// of launch 3 is independent of the delay schedule of round 3.
const SALT_GPU: u64 = 0xFA01_7AB1_E000_0001;
const SALT_NET_DELAY: u64 = 0xFA01_7AB1_E000_0002;
const SALT_NET_DROP: u64 = 0xFA01_7AB1_E000_0003;
const SALT_DEAD: u64 = 0xFA01_7AB1_E000_0004;

/// The fault, if any, injected into one kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GpuFault {
    /// The launch executed normally.
    #[default]
    None,
    /// The kernel ran `factor`× slower than the cost model predicts
    /// (thermal throttling, ECC scrubbing, a contending tenant).
    Slowdown(u32),
    /// The kernel never signals completion within any deadline; its
    /// results are unusable and the host must recover.
    Hang,
    /// One block aborted (the paper's kernels have no ECC recovery);
    /// the block's lane results are void, the rest are usable.
    BlockAbort(u32),
}

/// Telemetry for injected faults and the responses they triggered.
///
/// Lives next to the phase times in `PhaseBreakdown`-style reports; like
/// the other counters it is summed over concurrent components.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults the plan injected into this search (all classes).
    pub injected: u64,
    /// Kernel launches retried after a hang.
    pub retried: u64,
    /// Work units degraded to a fallback path (CPU playouts after a
    /// double hang, voided blocks after an abort, discarded hung-kernel
    /// results).
    pub degraded: u64,
    /// Components excluded from the merged result (dead ranks, dropped
    /// allreduce contributions, dead trees).
    pub excluded: u64,
}

impl FaultCounters {
    /// Whether any fault activity was recorded.
    pub fn any(&self) -> bool {
        self.injected + self.retried + self.degraded + self.excluded > 0
    }

    /// Adds `other` into `self` (component summation).
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.retried += other.retried;
        self.degraded += other.degraded;
        self.excluded += other.excluded;
    }
}

/// A deterministic fault-injection schedule derived from a seed.
///
/// Rates are per-event probabilities in `[0, 1]`: `gpu_*` rates apply per
/// kernel launch, `net_delay_rate` per collective, `net_drop_rate` and
/// `dead_component_rate` per component per search. The default plan (and
/// [`FaultPlan::none`]) injects nothing and reproduces fault-free behaviour
/// bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault schedule (independent of the search seed so the
    /// same game can be replayed under different fault weather).
    pub seed: u64,
    /// Probability a launch runs `gpu_slowdown_factor`× slow.
    pub gpu_slowdown_rate: f64,
    /// Multiplier applied to a slowed kernel's device time (≥ 2).
    pub gpu_slowdown_factor: u32,
    /// Probability a launch hangs past every deadline.
    pub gpu_hang_rate: f64,
    /// Probability a launch aborts one block.
    pub gpu_abort_rate: f64,
    /// Probability a collective hits a delay spike.
    pub net_delay_rate: f64,
    /// Multiplier applied to a delayed collective (≥ 2, capped by
    /// `net_timeout_mult`).
    pub net_delay_factor: u32,
    /// Probability a component's allreduce contribution is dropped.
    pub net_drop_rate: f64,
    /// Probability a component (rank, tree) is dead for the whole search.
    pub dead_component_rate: f64,
    /// Kernel deadline as a multiple of the kernel's own virtual duration:
    /// the host declares a hang after waiting this many kernel-lengths.
    pub hang_deadline_mult: u32,
    /// Collective timeout as a multiple of the fault-free allreduce time:
    /// missing contributions are excluded after this long.
    pub net_timeout_mult: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, behaviour bit-identical to a build
    /// without fault injection.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            gpu_slowdown_rate: 0.0,
            gpu_slowdown_factor: 4,
            gpu_hang_rate: 0.0,
            gpu_abort_rate: 0.0,
            net_delay_rate: 0.0,
            net_delay_factor: 4,
            net_drop_rate: 0.0,
            dead_component_rate: 0.0,
            hang_deadline_mult: 2,
            net_timeout_mult: 4,
        }
    }

    /// Kernel slowdowns: each launch runs `factor`× slow with probability
    /// `rate`.
    pub fn gpu_slowdown(seed: u64, rate: f64, factor: u32) -> Self {
        FaultPlan {
            seed,
            gpu_slowdown_rate: rate,
            gpu_slowdown_factor: factor.max(2),
            ..Self::none()
        }
    }

    /// Kernel hangs: each launch hangs with probability `rate`.
    pub fn gpu_hang(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            gpu_hang_rate: rate,
            ..Self::none()
        }
    }

    /// Block aborts: each launch voids one block with probability `rate`.
    pub fn gpu_abort(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            gpu_abort_rate: rate,
            ..Self::none()
        }
    }

    /// Network delay spikes: each collective runs `factor`× slow with
    /// probability `rate`.
    pub fn net_delay(seed: u64, rate: f64, factor: u32) -> Self {
        FaultPlan {
            seed,
            net_delay_rate: rate,
            net_delay_factor: factor.max(2),
            ..Self::none()
        }
    }

    /// Dropped contributions: each non-zero component's allreduce payload
    /// is lost with probability `rate`.
    pub fn net_drop(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            net_drop_rate: rate,
            ..Self::none()
        }
    }

    /// Dead components: each non-zero component is dead for the whole
    /// search with probability `rate`.
    pub fn dead_component(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            dead_component_rate: rate,
            ..Self::none()
        }
    }

    /// Whether this plan can inject anything at all (fast-path guard).
    pub fn active(&self) -> bool {
        self.gpu_slowdown_rate > 0.0
            || self.gpu_hang_rate > 0.0
            || self.gpu_abort_rate > 0.0
            || self.net_delay_rate > 0.0
            || self.net_drop_rate > 0.0
            || self.dead_component_rate > 0.0
    }

    /// Whether any GPU-fault class is enabled.
    pub fn gpu_active(&self) -> bool {
        self.gpu_slowdown_rate > 0.0 || self.gpu_hang_rate > 0.0 || self.gpu_abort_rate > 0.0
    }

    /// One schedule draw: an independent generator for event `index` of
    /// component `key` under `salt`'s fault class.
    fn draw(&self, salt: u64, key: u64, index: u64) -> SplitMix64 {
        SplitMix64::derive(
            self.seed ^ salt,
            key.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(index),
        )
    }

    /// The fault (if any) for kernel launch number `epoch` of the component
    /// identified by `key`, over a grid of `blocks` blocks. Classes are
    /// mutually exclusive per launch: hang, then abort, then slowdown.
    pub fn gpu_fault(&self, key: u64, epoch: u64, blocks: u32) -> GpuFault {
        if !self.gpu_active() {
            return GpuFault::None;
        }
        let mut rng = self.draw(SALT_GPU, key, epoch);
        let u = rng.next_f64();
        if u < self.gpu_hang_rate {
            GpuFault::Hang
        } else if u < self.gpu_hang_rate + self.gpu_abort_rate {
            GpuFault::BlockAbort(rng.next_below(blocks.max(1)))
        } else if u < self.gpu_hang_rate + self.gpu_abort_rate + self.gpu_slowdown_rate {
            GpuFault::Slowdown(self.gpu_slowdown_factor.max(2))
        } else {
            GpuFault::None
        }
    }

    /// Delay multiplier (capped at `net_timeout_mult`) for collective
    /// `round` of component group `key`, or `None` for a fault-free round.
    pub fn net_delay_spike(&self, key: u64, round: u64) -> Option<u32> {
        if self.net_delay_rate <= 0.0 {
            return None;
        }
        let mut rng = self.draw(SALT_NET_DELAY, key, round);
        rng.next_bool(self.net_delay_rate).then(|| {
            self.net_delay_factor
                .max(2)
                .min(self.net_timeout_mult.max(2))
        })
    }

    /// Whether component `component` of group `key` loses its allreduce
    /// contribution this search. Component 0 never does.
    pub fn drops_contribution(&self, key: u64, component: u64) -> bool {
        if component == 0 || self.net_drop_rate <= 0.0 {
            return false;
        }
        self.draw(SALT_NET_DROP, key, component)
            .next_bool(self.net_drop_rate)
    }

    /// Whether component `component` of group `key` is dead for the whole
    /// search. Component 0 never is.
    pub fn component_dead(&self, key: u64, component: u64) -> bool {
        if component == 0 || self.dead_component_rate <= 0.0 {
            return false;
        }
        self.draw(SALT_DEAD, key, component)
            .next_bool(self.dead_component_rate)
    }

    /// Virtual-time deadline after which a kernel of fault-free duration
    /// `elapsed` is declared hung.
    pub fn hang_deadline(&self, elapsed: SimTime) -> SimTime {
        elapsed * self.hang_deadline_mult.max(1) as u64
    }

    /// Virtual-time timeout charged when a collective of fault-free
    /// duration `base` waits for a contribution that never arrives.
    pub fn net_timeout(&self, base: SimTime) -> SimTime {
        base * self.net_timeout_mult.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_injects_nothing() {
        let p = FaultPlan::none();
        assert!(!p.active());
        assert_eq!(p.gpu_fault(7, 3, 16), GpuFault::None);
        assert_eq!(p.net_delay_spike(7, 3), None);
        assert!(!p.drops_contribution(7, 3));
        assert!(!p.component_dead(7, 3));
    }

    #[test]
    fn queries_are_pure_functions_of_inputs() {
        let p = FaultPlan::gpu_hang(42, 0.5);
        for epoch in 0..64 {
            assert_eq!(p.gpu_fault(1, epoch, 8), p.gpu_fault(1, epoch, 8));
        }
        let q = FaultPlan::dead_component(42, 0.5);
        for c in 0..64 {
            assert_eq!(q.component_dead(9, c), q.component_dead(9, c));
        }
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let always = FaultPlan::gpu_hang(1, 1.0);
        let never = FaultPlan::gpu_hang(1, 0.0);
        for epoch in 0..32 {
            assert_eq!(always.gpu_fault(0, epoch, 4), GpuFault::Hang);
            assert_eq!(never.gpu_fault(0, epoch, 4), GpuFault::None);
        }
    }

    #[test]
    fn gpu_fault_rate_is_roughly_honoured() {
        let p = FaultPlan::gpu_abort(3, 0.25);
        let fired = (0..10_000)
            .filter(|&e| p.gpu_fault(0, e, 8) != GpuFault::None)
            .count();
        let frac = fired as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "abort rate {frac}");
    }

    #[test]
    fn abort_block_is_in_range() {
        let p = FaultPlan::gpu_abort(4, 1.0);
        for epoch in 0..100 {
            match p.gpu_fault(0, epoch, 6) {
                GpuFault::BlockAbort(b) => assert!(b < 6),
                other => panic!("expected abort, got {other:?}"),
            }
        }
    }

    #[test]
    fn component_zero_is_immortal() {
        let p = FaultPlan::dead_component(5, 1.0);
        assert!(!p.component_dead(99, 0));
        assert!(p.component_dead(99, 1));
        let q = FaultPlan::net_drop(5, 1.0);
        assert!(!q.drops_contribution(99, 0));
        assert!(q.drops_contribution(99, 1));
    }

    #[test]
    fn classes_use_independent_schedules() {
        // Same (key, index) under different classes must not be lockstep.
        let p = FaultPlan {
            seed: 6,
            net_drop_rate: 0.5,
            dead_component_rate: 0.5,
            ..FaultPlan::none()
        };
        let drops: Vec<bool> = (1..64).map(|c| p.drops_contribution(0, c)).collect();
        let dead: Vec<bool> = (1..64).map(|c| p.component_dead(0, c)).collect();
        assert_ne!(drops, dead);
    }

    #[test]
    fn seeds_decorrelate_schedules() {
        let a = FaultPlan::gpu_hang(1, 0.5);
        let b = FaultPlan::gpu_hang(2, 0.5);
        let fa: Vec<GpuFault> = (0..64).map(|e| a.gpu_fault(0, e, 4)).collect();
        let fb: Vec<GpuFault> = (0..64).map(|e| b.gpu_fault(0, e, 4)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn deadline_and_timeout_multiply() {
        let p = FaultPlan::none(); // mults 2 and 4
        assert_eq!(
            p.hang_deadline(SimTime::from_micros(10)),
            SimTime::from_micros(20)
        );
        assert_eq!(
            p.net_timeout(SimTime::from_micros(10)),
            SimTime::from_micros(40)
        );
    }

    #[test]
    fn delay_spike_is_capped_by_timeout() {
        let mut p = FaultPlan::net_delay(7, 1.0, 100);
        p.net_timeout_mult = 4;
        assert_eq!(p.net_delay_spike(0, 0), Some(4));
        p.net_delay_factor = 3;
        assert_eq!(p.net_delay_spike(0, 0), Some(3));
    }

    #[test]
    fn counters_absorb_and_any() {
        let mut a = FaultCounters::default();
        assert!(!a.any());
        let b = FaultCounters {
            injected: 2,
            retried: 1,
            degraded: 3,
            excluded: 4,
        };
        a.absorb(&b);
        a.absorb(&b);
        assert_eq!(a.injected, 4);
        assert_eq!(a.retried, 2);
        assert_eq!(a.degraded, 6);
        assert_eq!(a.excluded, 8);
        assert!(a.any());
    }
}
