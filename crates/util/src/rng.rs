//! Deterministic pseudo-random number generators.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, extremely fast generator mainly used to *seed*
//!   other generators and to derive independent per-thread / per-lane streams
//!   from a single experiment seed (it is the seeding procedure recommended
//!   by the xoshiro authors).
//! * [`Xoshiro256pp`] (xoshiro256++) — the workhorse generator used inside
//!   playouts. It passes BigCrush, has a 2^256 − 1 period and supports
//!   `jump()` for cheap stream splitting.
//!
//! Both implement the minimal [`Rng64`] trait, which is all the Monte Carlo
//! code needs: raw `u64`s plus unbiased bounded integers (Lemire's method).

/// Minimal RNG interface used throughout the workspace.
pub trait Rng64 {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased and
    /// needs fewer divisions than the classical modulo approach.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below: bound must be non-zero");
        // Lemire 2019: unbiased bounded integers via 64x32->96 multiplication.
        let mut x = self.next_u64() as u32 as u64;
        let mut m = x.wrapping_mul(bound as u64);
        let mut lo = m as u32;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64() as u32 as u64;
                m = x.wrapping_mul(bound as u64);
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// SplitMix64: Steele, Lea & Flood's fast 64-bit generator.
///
/// Each call advances an internal counter by a fixed odd constant and hashes
/// it; any seed (including 0) gives a full-period sequence. Mainly used for
/// seeding and for deriving independent sub-streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent stream for item `index` under this seed.
    ///
    /// The derivation hashes the (seed, index) pair so that neighbouring
    /// indices produce uncorrelated streams; this is how per-thread and
    /// per-GPU-lane generators are produced from one experiment seed.
    #[inline]
    pub fn derive(seed: u64, index: u64) -> Self {
        let mut s = Self::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn a couple of outputs so low-entropy (seed, index) pairs diverge.
        s.next_u64();
        s.next_u64();
        s
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ by Blackman & Vigna — the playout RNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator whose state is expanded from `seed` via SplitMix64
    /// (the seeding procedure recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // All-zero state is the one forbidden state; SplitMix64 cannot
        // produce four consecutive zeros in practice, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Creates the generator for sub-stream `index` of `seed`.
    pub fn derive(seed: u64, index: u64) -> Self {
        let mut sm = SplitMix64::derive(seed, index);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Self { s }
    }

    /// Advances the state by 2^128 steps: equivalent to 2^128 `next_u64`
    /// calls. Used to hand out guaranteed non-overlapping sub-sequences.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_6618_A852_5417,
            0x3982_3137_1B8F_408B,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for bit in 0..64 {
                if (j >> bit) & 1 != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 0 from the published SplitMix64 code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::new(7);
        let mut b = Xoshiro256pp::new(7);
        let mut c = Xoshiro256pp::new(8);
        let mut any_diff = false;
        for _ in 0..64 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            any_diff |= x != c.next_u64();
        }
        assert!(any_diff, "different seeds must differ somewhere");
    }

    #[test]
    fn derive_streams_are_distinct() {
        let mut s0 = Xoshiro256pp::derive(123, 0);
        let mut s1 = Xoshiro256pp::derive(123, 1);
        let a: Vec<u64> = (0..16).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn jump_changes_state_deterministically() {
        let mut a = Xoshiro256pp::new(99);
        let mut b = Xoshiro256pp::new(99);
        a.jump();
        b.jump();
        assert_eq!(a, b);
        let mut c = Xoshiro256pp::new(99);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = Xoshiro256pp::new(1);
        for bound in [1u32, 2, 3, 7, 8, 33, 64, 1000] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_all_values() {
        let mut r = Xoshiro256pp::new(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = Xoshiro256pp::new(3);
        let bound = 10u32;
        let n = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[r.next_below(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        let mut r = SplitMix64::new(0);
        r.next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256pp::new(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn next_bool_matches_probability() {
        let mut r = Xoshiro256pp::new(5);
        let hits = (0..100_000).filter(|_| r.next_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }
}
