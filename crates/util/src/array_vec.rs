//! A minimal fixed-capacity vector.
//!
//! Move generation runs in the innermost loop of every playout; a heap
//! allocation per generated move list would dominate the profile. Reversi has
//! at most 33 legal moves (32 board moves + pass is handled separately), so a
//! stack-allocated `ArrayVec<Move, 34>` suffices. The implementation is kept
//! deliberately tiny — `push`/`len`/indexing/iteration — because that is all
//! the engines need; anything fancier should use `Vec`.

/// Fixed-capacity, stack-allocated vector of `Copy` elements.
#[derive(Clone, Copy, Debug)]
pub struct ArrayVec<T: Copy + Default, const N: usize> {
    items: [T; N],
    len: usize,
}

impl<T: Copy + Default, const N: usize> Default for ArrayVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> ArrayVec<T, N> {
    /// Creates an empty vector.
    #[inline]
    pub fn new() -> Self {
        Self {
            items: [T::default(); N],
            len: 0,
        }
    }

    /// Appends an element.
    ///
    /// # Panics
    /// Panics if the vector is full — capacity overflows indicate a logic
    /// error in the calling engine (e.g. a board with more moves than the
    /// game's theoretical maximum), so failing fast is the right behaviour.
    #[inline]
    pub fn push(&mut self, value: T) {
        assert!(self.len < N, "ArrayVec capacity {N} exceeded");
        self.items[self.len] = value;
        self.len += 1;
    }

    /// Removes and returns the last element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            None
        } else {
            self.len -= 1;
            Some(self.items[self.len])
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Element view.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len]
    }

    /// O(1) unordered removal: swaps the `index`-th element with the last and
    /// pops it. Used when consuming untried-move lists in random order.
    #[inline]
    pub fn swap_remove(&mut self, index: usize) -> T {
        assert!(index < self.len, "swap_remove index {index} out of bounds");
        let value = self.items[index];
        self.len -= 1;
        self.items[index] = self.items[self.len];
        value
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for ArrayVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a ArrayVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for ArrayVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_len() {
        let mut v: ArrayVec<u8, 4> = ArrayVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn slice_view_and_iteration() {
        let v: ArrayVec<u32, 8> = (0..5).collect();
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        let sum: u32 = v.into_iter().sum();
        assert_eq!(sum, 10);
        assert_eq!(v[2], 2, "Deref indexing works");
    }

    #[test]
    fn swap_remove_behaviour() {
        let mut v: ArrayVec<u8, 8> = (1..=4).collect();
        let removed = v.swap_remove(1); // [1,2,3,4] -> removes 2
        assert_eq!(removed, 2);
        assert_eq!(v.as_slice(), &[1, 4, 3]);
        let removed = v.swap_remove(2); // removes last element
        assert_eq!(removed, 3);
        assert_eq!(v.as_slice(), &[1, 4]);
    }

    #[test]
    fn clear_resets() {
        let mut v: ArrayVec<u8, 4> = (0..4).collect();
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }

    #[test]
    #[should_panic(expected = "capacity 2 exceeded")]
    fn overflow_panics() {
        let mut v: ArrayVec<u8, 2> = ArrayVec::new();
        v.push(0);
        v.push(1);
        v.push(2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn swap_remove_out_of_bounds_panics() {
        let mut v: ArrayVec<u8, 2> = ArrayVec::new();
        v.push(0);
        v.swap_remove(1);
    }
}
