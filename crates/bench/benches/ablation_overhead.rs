//! Ablation: kernel launch overhead and host-sequential cost.
//!
//! DESIGN.md calls out that the gap between leaf parallelism and
//! block parallelism in Fig. 5 comes from the per-tree host work plus the
//! fixed launch overhead. This bench re-runs the Fig. 5 measurement at
//! 4096 threads under (a) the calibrated cost model, (b) zero launch
//! overhead, (c) zero host tree-op cost, (d) both zero — showing how much
//! each component costs every scheme.

use pmcts_bench::midgame_position;
use pmcts_core::cost::CpuCostModel;
use pmcts_core::prelude::*;
use pmcts_util::SimTime;

fn run(label: &str, spec: DeviceSpec, cpu: CpuCostModel) {
    let position = midgame_position(7, 20);
    let device = Device::new(spec);
    let cfg = MctsConfig::default().with_seed(7).with_cpu_cost(cpu);
    let budget = SearchBudget::Iterations(6);

    let leaf = LeafParallelSearcher::<Reversi>::new(
        cfg.clone(),
        device.clone(),
        LaunchConfig::new(64, 64),
    )
    .search(position, budget);
    let block32 = BlockParallelSearcher::<Reversi>::new(
        cfg.clone(),
        device.clone(),
        LaunchConfig::new(128, 32),
    )
    .search(position, budget);
    let block128 = BlockParallelSearcher::<Reversi>::new(cfg, device, LaunchConfig::new(32, 128))
        .search(position, budget);
    println!(
        "{label:<34}  {:>12.0}  {:>12.0}  {:>12.0}",
        leaf.sims_per_second(),
        block32.sims_per_second(),
        block128.sims_per_second()
    );
}

fn main() {
    println!("# ablation_overhead: virtual sims/s at 4096 threads under cost-model ablations");
    println!(
        "{:<34}  {:>12}  {:>12}  {:>12}",
        "model", "leaf 64", "block 32", "block 128"
    );

    let spec = DeviceSpec::tesla_c2050();
    let cpu = CpuCostModel::xeon_x5670();
    run("calibrated", spec.clone(), cpu);

    let mut no_launch = spec.clone();
    no_launch.launch_overhead = SimTime::ZERO;
    no_launch.transfer_latency = SimTime::ZERO;
    run("no launch/transfer overhead", no_launch.clone(), cpu);

    let mut free_host = cpu;
    free_host.tree_op_base = SimTime::ZERO;
    free_host.tree_op_per_depth = SimTime::ZERO;
    free_host.launch_prep = SimTime::ZERO;
    run("free host tree ops", spec, free_host);

    run("both free", no_launch, free_host);
}
