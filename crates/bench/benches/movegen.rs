//! Criterion microbenches for the Reversi bitboard kernels — the inner loop
//! of every playout (real wall-clock performance, not virtual time).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmcts_bench::midgame_position;
use pmcts_games::reversi::bitboard;
use pmcts_games::{Game, MoveBuf, Reversi};

fn bench_movegen(c: &mut Criterion) {
    let positions: Vec<Reversi> = (0..32).map(|i| midgame_position(i, 20)).collect();

    c.bench_function("legal_moves_mask (shift kernel)", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &positions {
                let (own, opp) = p.own_opp();
                acc ^= bitboard::legal_moves_mask(black_box(own), black_box(opp));
            }
            acc
        })
    });

    c.bench_function("legal_moves_mask (naive reference)", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &positions {
                let (own, opp) = p.own_opp();
                acc ^= bitboard::legal_moves_mask_naive(black_box(own), black_box(opp));
            }
            acc
        })
    });

    c.bench_function("flips_for_move", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &positions {
                let (own, opp) = p.own_opp();
                let mask = bitboard::legal_moves_mask(own, opp);
                if mask != 0 {
                    let sq = mask.trailing_zeros() as u8;
                    acc ^= bitboard::flips_for_move(black_box(own), black_box(opp), sq);
                }
            }
            acc
        })
    });

    c.bench_function("legal move list materialisation", |b| {
        b.iter(|| {
            let mut total = 0usize;
            let mut buf = MoveBuf::new();
            for p in &positions {
                p.legal_moves(&mut buf);
                total += buf.len();
            }
            total
        })
    });
}

criterion_group!(benches, bench_movegen);
criterion_main!(benches);
