//! Ablation: tree reuse between moves (the `PersistentSearcher` extension).
//!
//! Plays sequential MCTS with tree reuse against cold-start sequential
//! MCTS at equal iteration budgets, and reports the inherited-simulation
//! fraction plus the head-to-head result. Expected: reuse inherits a
//! sizeable fraction of the previous tree and wins more than half the
//! games at equal budget.

use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;

fn main() {
    let games = 16u64;
    println!("# ablation_reuse: tree reuse vs cold start, {games} games per budget");
    println!("{:>12}  {:>9}  {:>13}", "iters/move", "win ratio", "95% CI");
    for iters in [100u64, 400, 1600] {
        let budget = SearchBudget::Iterations(iters);
        let result = MatchSeries::<Reversi>::run(
            games,
            |g| {
                Box::new(MctsPlayer::new(
                    PersistentSearcher::<Reversi>::new(MctsConfig::default().with_seed(2000 + g)),
                    budget,
                ))
            },
            |g| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(3000 + g)),
                    budget,
                ))
            },
        );
        let (lo, hi) = result.winloss.wilson95();
        println!(
            "{iters:>12}  {:>9.3}  {lo:>5.2}-{hi:<5.2}",
            result.win_ratio()
        );
    }

    // How much does reuse actually inherit over a real game?
    let mut searcher = PersistentSearcher::<Reversi>::new(MctsConfig::default().with_seed(1));
    let mut opponent = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(2));
    let mut state = Reversi::initial();
    let mut inherited = Vec::new();
    while !pmcts_games::Game::is_terminal(&state) {
        let report = match pmcts_games::Game::to_move(&state) {
            Player::P1 => {
                let r = searcher.search(state, SearchBudget::Iterations(400));
                inherited.push(searcher.last_reused_visits());
                r
            }
            Player::P2 => opponent.search(state, SearchBudget::Iterations(400)),
        };
        match report.best_move {
            Some(mv) => pmcts_games::Game::apply(&mut state, mv),
            None => break,
        }
    }
    let n = inherited.len().max(1) as u64;
    println!(
        "\nmean inherited simulations per move: {:.0} of 400 budgeted ({} moves)",
        inherited.iter().sum::<u64>() as f64 / n as f64,
        inherited.len()
    );
}
