//! Ablation: UCB exploration constant `C` (paper §II.1 — "a parameter to
//! be adjusted").
//!
//! Plays sequential-MCTS(C) against sequential-MCTS(√2) at a fixed
//! iteration budget and reports the win ratio per C. Expected: a broad
//! plateau around C ∈ [0.7, 2]; very small C (pure exploitation) and very
//! large C (pure exploration) lose.
//!
//! Runs under `cargo bench` (plain harness, prints a table; virtual-time
//! metrics make Criterion's wall-clock statistics meaningless here).

use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;

fn main() {
    // `cargo bench` passes --bench; ignore argv entirely.
    let games = 12u64;
    let budget = SearchBudget::Iterations(400);
    let seed = 0xAB1A_u64;

    println!("# ablation_ucb_c: win ratio of MCTS(C) vs MCTS(sqrt(2)), {games} games, 400 iterations/move");
    println!("{:>6}  {:>9}  {:>11}", "C", "win ratio", "95% CI");
    for c in [0.0, 0.25, 0.5, 1.0, std::f64::consts::SQRT_2, 2.0, 4.0, 8.0] {
        let result = MatchSeries::<Reversi>::run(
            games,
            |g| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<Reversi>::new(
                        MctsConfig::default()
                            .with_seed(seed.wrapping_add(g))
                            .with_exploration(c),
                    ),
                    budget,
                ))
            },
            |g| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(seed.wrapping_add(100 + g)),
                    ),
                    budget,
                ))
            },
        );
        let (lo, hi) = result.winloss.wilson95();
        println!("{c:>6.2}  {:>9.3}  {lo:.2}-{hi:.2}", result.win_ratio());
    }
}
