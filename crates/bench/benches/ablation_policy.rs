//! Ablation: playout policy (uniform vs Reversi corner heuristic).
//!
//! The paper uses uniformly random playouts; "heavy" playouts are the
//! standard follow-up. This bench plays direct policy-vs-policy games
//! (no tree) and reports win rates and playout lengths, quantifying the
//! heuristic signal available to a heavy-playout extension.

use pmcts_games::{
    policy_playout, Game, Player, PlayoutPolicy, Reversi, ReversiCornerPolicy, UniformPolicy,
};
use pmcts_util::{WinLoss, Xoshiro256pp};

fn head_to_head(epsilon: f64, games: u32, rng: &mut Xoshiro256pp) -> WinLoss {
    let corner = ReversiCornerPolicy { epsilon };
    let uniform = UniformPolicy;
    let mut tally = WinLoss::new();
    for g in 0..games {
        // Alternate colours for fairness.
        let corner_is_p1 = g % 2 == 0;
        let mut s = Reversi::initial();
        while !s.is_terminal() {
            let corner_turn = (s.to_move() == Player::P1) == corner_is_p1;
            let mv = if corner_turn {
                corner.pick(&s, rng)
            } else {
                PlayoutPolicy::<Reversi>::pick(&uniform, &s, rng)
            }
            .expect("non-terminal");
            s.apply(mv);
        }
        let corner_score = if corner_is_p1 { s.score() } else { -s.score() };
        tally.record_score(corner_score);
    }
    tally
}

fn main() {
    let mut rng = Xoshiro256pp::new(0xAB0);
    println!("# ablation_policy: Reversi corner playout policy vs uniform, 400 games per point");
    println!("{:>8}  {:>9}  {:>13}", "epsilon", "win ratio", "95% CI");
    for epsilon in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let tally = head_to_head(epsilon, 400, &mut rng);
        let (lo, hi) = tally.wilson95();
        println!(
            "{epsilon:>8.2}  {:>9.3}  {lo:>5.2}-{hi:<5.2}",
            tally.win_ratio()
        );
    }

    // Playout length distribution under both policies (kernel divergence is
    // driven by the longest playout in a warp).
    let mut uni_plies = 0u64;
    let mut cor_plies = 0u64;
    let n = 2_000;
    for _ in 0..n {
        uni_plies += policy_playout(Reversi::initial(), &UniformPolicy, &mut rng).plies as u64;
        cor_plies += policy_playout(
            Reversi::initial(),
            &ReversiCornerPolicy::default(),
            &mut rng,
        )
        .plies as u64;
    }
    println!(
        "\nmean playout length: uniform {:.1} plies, corner {:.1} plies ({n} playouts each)",
        uni_plies as f64 / n as f64,
        cor_plies as f64 / n as f64
    );
}
