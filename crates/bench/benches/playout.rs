//! Criterion microbenches for full random playouts across the bundled game
//! engines (wall-clock speed of the simulation step).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmcts_games::{random_playout, Connect4, Game, Hex7, Reversi, TicTacToe};
use pmcts_util::Xoshiro256pp;

fn bench_playouts(c: &mut Criterion) {
    c.bench_function("reversi random playout", |b| {
        let mut rng = Xoshiro256pp::new(1);
        b.iter(|| random_playout(black_box(Reversi::initial()), &mut rng).plies)
    });

    c.bench_function("connect4 random playout", |b| {
        let mut rng = Xoshiro256pp::new(2);
        b.iter(|| random_playout(black_box(Connect4::initial()), &mut rng).plies)
    });

    c.bench_function("hex7 random playout", |b| {
        let mut rng = Xoshiro256pp::new(3);
        b.iter(|| random_playout(black_box(Hex7::initial()), &mut rng).plies)
    });

    c.bench_function("tictactoe random playout", |b| {
        let mut rng = Xoshiro256pp::new(4);
        b.iter(|| random_playout(black_box(TicTacToe::initial()), &mut rng).plies)
    });
}

criterion_group!(benches, bench_playouts);
criterion_main!(benches);
