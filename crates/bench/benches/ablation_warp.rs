//! Ablation: warp size / SIMD divergence.
//!
//! The lockstep model charges a warp until its slowest lane finishes, so
//! wider warps waste more lane-steps on Monte Carlo playouts of varying
//! length. This bench quantifies that waste: for warp sizes 1–64 it runs
//! the same grid and reports lane efficiency (useful lane-steps / total)
//! and effective simulations per virtual second.
//!
//! Expected: efficiency falls monotonically with warp width (≈1.0 at warp
//! size 1); this is the architectural fact that forces per-block — not
//! per-thread — trees in the paper's design.

use pmcts_core::gpu::PlayoutKernel;
use pmcts_games::{Game, Reversi};
use pmcts_gpu_sim::{Device, DeviceSpec, LaunchConfig};

fn main() {
    let total_threads = 1024u32;
    println!(
        "# ablation_warp: lane efficiency vs warp size, {total_threads} threads, Reversi playouts"
    );
    println!(
        "{:>9}  {:>10}  {:>12}  {:>14}",
        "warp", "efficiency", "idle steps", "virtual sims/s"
    );
    for warp in [1u32, 2, 4, 8, 16, 32, 64] {
        let mut spec = DeviceSpec::tesla_c2050();
        spec.warp_size = warp;
        // Keep per-lane throughput constant so only divergence varies:
        // cycles per warp-step scale with lanes per warp.
        spec.cycles_per_warp_step = 275 * warp as u64;
        let device = Device::new(spec);
        let kernel = PlayoutKernel::new(vec![Reversi::initial()], 42);
        let result = device.launch(&kernel, LaunchConfig::new(total_threads / 64, 64));
        let stats = &result.stats;
        let sims_per_s = result.outputs.len() as f64 / stats.elapsed().as_secs_f64();
        println!(
            "{warp:>9}  {:>10.4}  {:>12}  {sims_per_s:>14.0}",
            stats.lane_efficiency(),
            stats.idle_lane_steps
        );
    }
}
