//! Criterion benches of whole searcher iterations (wall-clock cost of one
//! move search per scheme at a small fixed budget).

use criterion::{criterion_group, criterion_main, Criterion};
use pmcts_core::prelude::*;

fn bench_searchers(c: &mut Criterion) {
    let root = Reversi::initial();
    let budget = SearchBudget::Iterations(20);

    c.bench_function("sequential: 20 iterations", |b| {
        b.iter(|| {
            SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(1))
                .search(root, budget)
                .simulations
        })
    });

    c.bench_function("leaf parallel 4x64: 5 iterations", |b| {
        b.iter(|| {
            LeafParallelSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(2),
                Device::c2050(),
                LaunchConfig::new(4, 64),
            )
            .search(root, SearchBudget::Iterations(5))
            .simulations
        })
    });

    c.bench_function("block parallel 8x32: 5 iterations", |b| {
        b.iter(|| {
            BlockParallelSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(3),
                Device::c2050(),
                LaunchConfig::new(8, 32),
            )
            .search(root, SearchBudget::Iterations(5))
            .simulations
        })
    });

    c.bench_function("root parallel x4: 20 iterations each", |b| {
        b.iter(|| {
            RootParallelSearcher::<Reversi>::new(MctsConfig::default().with_seed(4), 4)
                .search(root, budget)
                .simulations
        })
    });

    c.bench_function("tree parallel x4: 80 iterations", |b| {
        b.iter(|| {
            TreeParallelSearcher::<Reversi>::new(MctsConfig::default().with_seed(5), 4)
                .search(root, SearchBudget::Iterations(80))
                .simulations
        })
    });
}

criterion_group!(benches, bench_searchers);
criterion_main!(benches);
