//! Criterion microbenches for search-tree operations (selection, expansion,
//! backpropagation) — the host-sequential part of block parallelism.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmcts_core::tree::SearchTree;
use pmcts_games::Reversi;
use pmcts_util::Xoshiro256pp;

/// Builds a tree with `n` nodes by running plain MCTS-style growth.
fn grown_tree(n: usize) -> SearchTree<Reversi> {
    let mut tree = SearchTree::new(pmcts_games::Game::initial());
    let mut rng = Xoshiro256pp::new(42);
    while tree.len() < n {
        let id = tree.select(1.4);
        let node = if !tree.fully_expanded(id) {
            tree.expand(id, &mut rng)
        } else {
            id
        };
        tree.backprop(node, 1.0, 1);
    }
    tree
}

fn bench_tree_ops(c: &mut Criterion) {
    for &size in &[100usize, 1_000, 10_000] {
        let tree = grown_tree(size);
        c.bench_function(&format!("select (tree of {size})"), |b| {
            b.iter(|| tree.select(black_box(1.4)))
        });

        c.bench_function(&format!("backprop (tree of {size})"), |b| {
            let mut tree = tree.clone();
            let leaf = tree.select(1.4);
            b.iter(|| tree.backprop(black_box(leaf), 1.0, 1))
        });
    }

    c.bench_function("expand+backprop iteration (tree of 1000)", |b| {
        let tree = grown_tree(1_000);
        let mut rng = Xoshiro256pp::new(7);
        b.iter_batched(
            || tree.clone(),
            |mut t| {
                let id = t.select(1.4);
                let node = if !t.fully_expanded(id) {
                    t.expand(id, &mut rng)
                } else {
                    id
                };
                t.backprop(node, 1.0, 1);
                t.len()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_tree_ops);
criterion_main!(benches);
