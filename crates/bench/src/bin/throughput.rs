//! Wall-clock throughput of the real execution engine.
//!
//! Everything the other binaries report is *virtual* time from the cost
//! models; this binary is the exception that measures how fast the host
//! actually grinds through the work (DESIGN.md §7). Three layers:
//!
//! 1. **Raw playouts** — allocation-free `random_playout` on one core.
//! 2. **Kernel simulation** — the same launch executed by the retained
//!    per-step lockstep interpreter (`execute_kernel_lockstep`, the
//!    pre-optimisation engine and correctness oracle) and by the
//!    run-to-completion engine (1-thread pool and default pool). The
//!    summary record's `kernel_speedup_vs_lockstep` is the acceptance
//!    number for the engine rewrite.
//! 3. **Full searches** — wall-clock iterations/s and playouts/s for the
//!    main schemes on fixed seeds.
//!
//! Outputs and `KernelStats` of the two engines are asserted equal before
//! timing, so the speedup is measured on provably identical work.
//!
//! Run: `cargo run --release -p pmcts-bench --bin throughput -- [--full]`
//! (`--out DIR` also writes `DIR/BENCH_throughput.json`).

use pmcts_bench::{midgame_position, write_json, BenchArgs, JsonObject};
use pmcts_core::gpu::PlayoutKernel;
use pmcts_core::prelude::*;
use pmcts_gpu_sim::executor::{execute_kernel, execute_kernel_lockstep};
use pmcts_gpu_sim::WorkerPool;
use pmcts_util::Xoshiro256pp;
use std::time::Instant;

fn secs(wall_ns: u64) -> f64 {
    wall_ns as f64 / 1e9
}

fn rate(count: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        count as f64 / secs(wall_ns)
    }
}

/// Raw single-core playout throughput on a mid-game position.
fn bench_cpu_playouts(position: Reversi, playouts: u64, seed: u64) -> JsonObject {
    let mut rng = Xoshiro256pp::derive(seed, 0xBEEF);
    let mut plies = 0u64;
    let mut wins = 0u64; // fold the outcome so the loop cannot be optimised out
    let start = Instant::now();
    for _ in 0..playouts {
        let r = pmcts_games::random_playout(position, &mut rng);
        plies += u64::from(r.plies);
        if matches!(r.outcome, Outcome::Win(Player::P1)) {
            wins += 1;
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    assert!(wins > 0 && wins < playouts, "degenerate playout sample");
    JsonObject::new()
        .str_field("record", "cpu_playouts")
        .u64_field("playouts", playouts)
        .u64_field("plies", plies)
        .u64_field("wall_ns", wall_ns)
        .f64_field("playouts_per_sec", rate(playouts, wall_ns))
        .f64_field("plies_per_sec", rate(plies, wall_ns))
}

/// One engine's wall-clock over `reps` launches of per-rep kernels.
/// Returns the record plus (lane_steps_per_sec, wall_ns) for the summary.
fn bench_engine<F>(
    name: &str,
    kernels: &[PlayoutKernel<Reversi>],
    launch: LaunchConfig,
    mut run: F,
) -> (JsonObject, f64)
where
    F: FnMut(&PlayoutKernel<Reversi>) -> pmcts_gpu_sim::LaunchResult<pmcts_core::gpu::LaneOutcome>,
{
    // Warm up (page in code + pool threads), then time.
    let warm = run(&kernels[0]);
    let mut lane_steps = 0u64;
    let mut playouts = 0u64;
    let start = Instant::now();
    for k in kernels {
        let r = run(k);
        lane_steps += r.stats.lane_steps;
        playouts += u64::from(r.stats.threads);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let steps_per_sec = rate(lane_steps, wall_ns);
    let record = JsonObject::new()
        .str_field("record", "kernel_engine")
        .str_field("engine", name)
        .u64_field("blocks", u64::from(launch.blocks))
        .u64_field("threads_per_block", u64::from(launch.threads_per_block))
        .u64_field("launches", kernels.len() as u64)
        .u64_field("lane_steps", lane_steps)
        .u64_field("playouts", playouts)
        .u64_field("wall_ns", wall_ns)
        .f64_field("lane_steps_per_sec", steps_per_sec)
        .f64_field("playouts_per_sec", rate(playouts, wall_ns))
        .f64_field("lane_efficiency", warm.stats.lane_efficiency());
    (record, steps_per_sec)
}

/// Wall-clock of one full search, as iterations/s and playouts/s.
fn bench_search(
    scheme: &str,
    budget: SearchBudget,
    searcher: &mut dyn Searcher<Reversi>,
    position: Reversi,
) -> JsonObject {
    let start = Instant::now();
    let report = searcher.search(position, budget);
    let wall_ns = start.elapsed().as_nanos() as u64;
    JsonObject::new()
        .str_field("record", "search")
        .str_field("scheme", scheme)
        .u64_field("iterations", report.iterations)
        .u64_field("simulations", report.simulations)
        .u64_field("wall_ns", wall_ns)
        .f64_field("iterations_per_sec", rate(report.iterations, wall_ns))
        .f64_field("playouts_per_sec", rate(report.simulations, wall_ns))
        .f64_field("virtual_sims_per_sec", report.sims_per_second())
}

fn main() {
    let args = BenchArgs::parse();
    let position = midgame_position(args.seed, 20);
    let spec = DeviceSpec::tesla_c2050();

    let (launch, reps, cpu_playouts, search_iters) = if args.full {
        (LaunchConfig::new(112, 128), 24usize, 200_000u64, 64u64)
    } else {
        (LaunchConfig::new(14, 64), 10, 30_000, 16)
    };
    // Fresh stream seed per rep: repetitions do distinct (but seed-fixed)
    // work, like consecutive launches of a real search.
    let kernels: Vec<PlayoutKernel<Reversi>> = (0..reps)
        .map(|rep| PlayoutKernel::new(vec![position], args.seed.wrapping_add(rep as u64)))
        .collect();

    // The engines must agree bit-for-bit before their speeds are compared.
    let pool1 = WorkerPool::new(1);
    let pool = WorkerPool::with_available_parallelism();
    let fast = execute_kernel(&kernels[0], &launch, &spec, &pool1);
    let oracle = execute_kernel_lockstep(&kernels[0], &launch, &spec);
    assert_eq!(fast.outputs, oracle.outputs, "engine outputs diverged");
    assert_eq!(fast.stats, oracle.stats, "engine stats diverged");

    let mut records: Vec<JsonObject> = Vec::new();
    records.push(bench_cpu_playouts(position, cpu_playouts, args.seed));

    let (rec, legacy_rate) = bench_engine("legacy_lockstep", &kernels, launch, |k| {
        execute_kernel_lockstep(k, &launch, &spec)
    });
    records.push(rec);
    let (rec, rtc_1t_rate) = bench_engine("rtc_1_thread", &kernels, launch, |k| {
        execute_kernel(k, &launch, &spec, &pool1)
    });
    records.push(rec);
    let (rec, rtc_pool_rate) = bench_engine("rtc_pool", &kernels, launch, |k| {
        execute_kernel(k, &launch, &spec, &pool)
    });
    records.push(rec);

    let cfg = || MctsConfig::default().with_seed(args.seed);
    let device = Device::new(spec.clone());
    let budget = SearchBudget::Iterations(search_iters);
    records.push(bench_search(
        "sequential",
        SearchBudget::Iterations(search_iters * 100),
        &mut SequentialSearcher::<Reversi>::new(cfg()),
        position,
    ));
    records.push(bench_search(
        "root_parallel",
        SearchBudget::Iterations(search_iters * 8),
        &mut RootParallelSearcher::<Reversi>::new(cfg(), 8),
        position,
    ));
    records.push(bench_search(
        "leaf_parallel",
        budget,
        &mut LeafParallelSearcher::<Reversi>::new(cfg(), device.clone(), launch),
        position,
    ));
    records.push(bench_search(
        "block_parallel",
        budget,
        &mut BlockParallelSearcher::<Reversi>::new(cfg(), device.clone(), launch),
        position,
    ));
    records.push(bench_search(
        "hybrid",
        budget,
        &mut HybridSearcher::<Reversi>::new(cfg(), device, launch),
        position,
    ));

    let speedup_pool = rtc_pool_rate / legacy_rate;
    let speedup_1t = rtc_1t_rate / legacy_rate;
    records.push(
        JsonObject::new()
            .str_field("record", "summary")
            .str_field("baseline", "legacy_lockstep")
            .u64_field("host_threads", pool.size() as u64)
            .f64_field("legacy_lane_steps_per_sec", legacy_rate)
            .f64_field("rtc_1_thread_lane_steps_per_sec", rtc_1t_rate)
            .f64_field("rtc_pool_lane_steps_per_sec", rtc_pool_rate)
            .f64_field("kernel_speedup_vs_lockstep", speedup_pool)
            .f64_field("kernel_speedup_vs_lockstep_1_thread", speedup_1t),
    );

    eprintln!(
        "engine speedup vs lockstep oracle: {speedup_1t:.2}x (1 thread), \
         {speedup_pool:.2}x ({} threads)",
        pool.size()
    );
    write_json("BENCH_throughput", &records, &args);
}
