//! Wall-clock throughput of the real execution engine.
//!
//! Everything the other binaries report is *virtual* time from the cost
//! models; this binary is the exception that measures how fast the host
//! actually grinds through the work (DESIGN.md §7). Five layers:
//!
//! 1. **Raw playouts** — allocation-free `random_playout` on one core.
//! 2. **Kernel simulation** — the same launch executed by the retained
//!    per-step lockstep interpreter (`execute_kernel_lockstep`, the
//!    pre-optimisation engine and correctness oracle) and by the
//!    run-to-completion engine (1-thread pool and default pool). The
//!    summary record's `kernel_speedup_vs_lockstep` is the acceptance
//!    number for the engine rewrite.
//! 3. **Full searches** — wall-clock iterations/s and playouts/s for the
//!    main schemes on fixed seeds. The `search` records also carry each
//!    scheme's *virtual* simulations/second; the summary's
//!    `device_tree_speedup_vs_block_parallel` compares the device-resident
//!    tree against block parallelism at the same grid and iteration
//!    budget (gate: ≥ 1.5x, see `scripts/check_bench.py`).
//! 4. **Tree operations** — select/expand/backprop ops/s on a prebuilt
//!    ~50k-node tree, measured on the original array-of-structs layout
//!    (`AosSearchTree`, retained as a baseline) and the SoA `SearchTree`,
//!    plus per-scheme host-phase loops replayed on both layouts. The
//!    summary's `tree_ops_*_speedup_vs_aos` and `host_phase_speedup_*`
//!    fields are the acceptance numbers for the SoA tree rewrite.
//! 5. **Bounded recycling** — a capacity-capped tree driven past its cap
//!    (fill, one untimed settle window, two timed windows) against an
//!    unbounded reference on the same drive loop. The run executes twice
//!    and must produce identical checksums (eviction determinism); the
//!    summary's `bounded_steady_state_vs_unbounded` is the acceptance
//!    number for LRU recycling + the transposition table (gate: >= 1.0x,
//!    see `scripts/check_bench.py`).
//!
//! Outputs and `KernelStats` of the two engines are asserted equal before
//! timing, so the speedup is measured on provably identical work; the two
//! tree layouts are grown through identical operation sequences (the
//! equivalence oracle in `pmcts_core::tree_aos` proves them bit-identical).
//!
//! Run: `cargo run --release -p pmcts-bench --bin throughput -- [--full]`
//! (`--out DIR` also writes `DIR/BENCH_throughput.json`).

use pmcts_bench::{midgame_position, write_json, BenchArgs, JsonObject};
use pmcts_core::gpu::PlayoutKernel;
use pmcts_core::prelude::*;
use pmcts_core::tree::SearchTree;
use pmcts_core::tree_aos::AosSearchTree;
use pmcts_gpu_sim::executor::{execute_kernel, execute_kernel_lockstep};
use pmcts_gpu_sim::WorkerPool;
use pmcts_util::{Rng64, Xoshiro256pp};
use std::time::Instant;

fn secs(wall_ns: u64) -> f64 {
    wall_ns as f64 / 1e9
}

fn rate(count: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        count as f64 / secs(wall_ns)
    }
}

/// Raw single-core playout throughput on a mid-game position.
/// Also returns playouts/s — the scalar baseline the lane gate divides by.
fn bench_cpu_playouts(position: Reversi, playouts: u64, seed: u64) -> (JsonObject, f64) {
    let mut rng = Xoshiro256pp::derive(seed, 0xBEEF);
    let mut plies = 0u64;
    let mut wins = 0u64; // fold the outcome so the loop cannot be optimised out
    let start = Instant::now();
    for _ in 0..playouts {
        let r = pmcts_games::random_playout(position, &mut rng);
        plies += u64::from(r.plies);
        if matches!(r.outcome, Outcome::Win(Player::P1)) {
            wins += 1;
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    assert!(wins > 0 && wins < playouts, "degenerate playout sample");
    let record = JsonObject::new()
        .str_field("record", "cpu_playouts")
        .u64_field("playouts", playouts)
        .u64_field("plies", plies)
        .u64_field("wall_ns", wall_ns)
        .f64_field("playouts_per_sec", rate(playouts, wall_ns))
        .f64_field("plies_per_sec", rate(plies, wall_ns));
    (record, rate(playouts, wall_ns))
}

/// Single-core multi-lane playout throughput at lane width `N`
/// (DESIGN.md §15).
///
/// Same position and total playout count as [`bench_cpu_playouts`]
/// (rounded down to whole `N`-wide batches), one derived RNG stream per
/// playout — the kernel's stream discipline. The workload runs twice and
/// both checksums are recorded; `check_bench.py` requires them equal
/// (lane batching is deterministic). Returns the record plus playouts/s.
fn bench_playout_lanes<const N: usize>(
    position: Reversi,
    playouts: u64,
    seed: u64,
) -> (JsonObject, f64) {
    let groups = playouts / N as u64;
    let run = || {
        let mut checksum = 0u64;
        let mut plies = 0u64;
        let start = Instant::now();
        for g in 0..groups {
            let rngs: [Xoshiro256pp; N] = std::array::from_fn(|i| {
                Xoshiro256pp::derive(seed ^ 0x1A9E5, g * N as u64 + i as u64)
            });
            for r in pmcts_games::LaneBatch::new([position; N], rngs).run() {
                plies += u64::from(r.plies);
                let outcome_code = match r.outcome {
                    Outcome::Win(Player::P1) => 1u64,
                    Outcome::Win(Player::P2) => 2,
                    Outcome::Draw => 3,
                };
                let enc = (u64::from(r.plies) << 10)
                    | (outcome_code << 8)
                    | (r.final_score as i64 as u64 & 0xFF);
                checksum = checksum.wrapping_mul(0x100_0000_01B3).wrapping_add(enc);
            }
        }
        let wall_ns = start.elapsed().as_nanos() as u64;
        (checksum, plies, wall_ns)
    };
    let (checksum, plies, wall_ns) = run();
    let (rerun, _, _) = run();
    assert_eq!(checksum, rerun, "lane playouts must be deterministic");
    let done = groups * N as u64;
    let record = JsonObject::new()
        .str_field("record", "playout_lanes")
        .u64_field("lanes", N as u64)
        .u64_field("playouts", done)
        .u64_field("plies", plies)
        .u64_field("wall_ns", wall_ns)
        .f64_field("playouts_per_sec", rate(done, wall_ns))
        .f64_field("plies_per_sec", rate(plies, wall_ns))
        .u64_field("checksum", checksum)
        .u64_field("checksum_rerun", rerun);
    (record, rate(done, wall_ns))
}

/// One engine's wall-clock over `reps` launches of per-rep kernels.
/// Returns the record plus (lane_steps_per_sec, wall_ns) for the summary.
fn bench_engine<F>(
    name: &str,
    kernels: &[PlayoutKernel<Reversi>],
    launch: LaunchConfig,
    mut run: F,
) -> (JsonObject, f64)
where
    F: FnMut(&PlayoutKernel<Reversi>) -> pmcts_gpu_sim::LaunchResult<pmcts_core::gpu::LaneOutcome>,
{
    // Warm up (page in code + pool threads), then time.
    let warm = run(&kernels[0]);
    let mut lane_steps = 0u64;
    let mut playouts = 0u64;
    let start = Instant::now();
    for k in kernels {
        let r = run(k);
        lane_steps += r.stats.lane_steps;
        playouts += u64::from(r.stats.threads);
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let steps_per_sec = rate(lane_steps, wall_ns);
    let record = JsonObject::new()
        .str_field("record", "kernel_engine")
        .str_field("engine", name)
        .u64_field("blocks", u64::from(launch.blocks))
        .u64_field("threads_per_block", u64::from(launch.threads_per_block))
        .u64_field("launches", kernels.len() as u64)
        .u64_field("lane_steps", lane_steps)
        .u64_field("playouts", playouts)
        .u64_field("wall_ns", wall_ns)
        .f64_field("lane_steps_per_sec", steps_per_sec)
        .f64_field("playouts_per_sec", rate(playouts, wall_ns))
        .f64_field("lane_efficiency", warm.stats.lane_efficiency());
    (record, steps_per_sec)
}

/// Wall-clock of one full search, as iterations/s and playouts/s.
/// Also returns the *virtual* simulations/second, so the summary can
/// compare schemes in model time (the device-resident gate).
fn bench_search(
    scheme: &str,
    budget: SearchBudget,
    searcher: &mut dyn Searcher<Reversi>,
    position: Reversi,
) -> (JsonObject, f64) {
    let start = Instant::now();
    let report = searcher.search(position, budget);
    let wall_ns = start.elapsed().as_nanos() as u64;
    let virtual_rate = report.sims_per_second();
    let record = JsonObject::new()
        .str_field("record", "search")
        .str_field("scheme", scheme)
        .u64_field("iterations", report.iterations)
        .u64_field("simulations", report.simulations)
        .u64_field("wall_ns", wall_ns)
        .f64_field("iterations_per_sec", rate(report.iterations, wall_ns))
        .f64_field("playouts_per_sec", rate(report.simulations, wall_ns))
        .f64_field("virtual_sims_per_sec", virtual_rate);
    (record, virtual_rate)
}

const EXPLORATION_C: f64 = 1.4;

/// Ops/s rates of one layout's tree operations, for the summary.
struct OpsRates {
    select: f64,
    expand: f64,
    backprop: f64,
}

/// Grows a SoA tree to `nodes` nodes through the canonical MCTS loop.
fn grow_soa(position: Reversi, nodes: usize, seed: u64) -> SearchTree<Reversi> {
    let mut tree = SearchTree::new(position);
    let mut rng = Xoshiro256pp::new(seed);
    let mut i = 0u64;
    while tree.len() < nodes {
        let id = tree.select(EXPLORATION_C);
        let node = if !tree.fully_expanded(id) {
            tree.expand(id, &mut rng)
        } else {
            id
        };
        tree.backprop(node, (i % 3) as f64 / 2.0, 1);
        i += 1;
    }
    tree
}

/// Grows the baseline AoS tree through the identical operation sequence.
fn grow_aos(position: Reversi, nodes: usize, seed: u64) -> AosSearchTree<Reversi> {
    let mut tree = AosSearchTree::new(position);
    let mut rng = Xoshiro256pp::new(seed);
    let mut i = 0u64;
    while tree.len() < nodes {
        let id = tree.select(EXPLORATION_C);
        let node = if !tree.node(id).fully_expanded() {
            tree.expand(id, &mut rng)
        } else {
            id
        };
        tree.backprop(node, (i % 3) as f64 / 2.0, 1);
        i += 1;
    }
    tree
}

/// One layout's tree-op record: select / expand / backprop ops/s on a
/// prebuilt tree. `expandable` and `leaf` come from the caller so both
/// layouts time exactly the same node sets.
///
/// A *select op* is one UCB argmax over one expanded node's children; the
/// benchmark sweeps every expanded node of the tree, so each pass touches
/// the whole working set — a cold-cache selection workload. (Timing
/// root-to-leaf `select` calls instead would rewalk one unchanging,
/// L1-resident path and measure nothing about layout.)
#[allow(clippy::too_many_arguments)]
fn tree_ops_record(
    layout: &str,
    nodes: u64,
    select_sweeps: u64,
    steps_per_sweep: u64,
    backprop_ops: u64,
    select_sweep: impl Fn() -> u64,
    expand: impl FnOnce() -> (u64, u64),
    backprop: impl FnOnce(u64) -> u64,
) -> (JsonObject, OpsRates) {
    let mut checksum = 0u64;
    let start = Instant::now();
    for _ in 0..select_sweeps {
        checksum = checksum.wrapping_add(select_sweep());
    }
    let select_ns = start.elapsed().as_nanos() as u64;
    let select_ops = select_sweeps * steps_per_sweep;

    let start = Instant::now();
    let (expand_ops, expand_sum) = expand();
    let expand_ns = start.elapsed().as_nanos() as u64;
    checksum = checksum.wrapping_add(expand_sum);

    let start = Instant::now();
    checksum = checksum.wrapping_add(backprop(backprop_ops));
    let backprop_ns = start.elapsed().as_nanos() as u64;

    let rates = OpsRates {
        select: rate(select_ops, select_ns),
        expand: rate(expand_ops, expand_ns),
        backprop: rate(backprop_ops, backprop_ns),
    };
    let record = JsonObject::new()
        .str_field("record", "tree_ops")
        .str_field("layout", layout)
        .u64_field("nodes", nodes)
        .u64_field("select_ops", select_ops)
        .u64_field("expand_ops", expand_ops)
        .u64_field("backprop_ops", backprop_ops)
        .u64_field("select_wall_ns", select_ns)
        .u64_field("expand_wall_ns", expand_ns)
        .u64_field("backprop_wall_ns", backprop_ns)
        .f64_field("select_ops_per_sec", rates.select)
        .f64_field("expand_ops_per_sec", rates.expand)
        .f64_field("backprop_ops_per_sec", rates.backprop)
        .u64_field("checksum", checksum);
    (record, rates)
}

/// Times select/expand/backprop on both layouts over structurally
/// identical prebuilt trees; returns the two records plus SoA-over-AoS
/// speedups (select, expand, backprop).
fn bench_tree_ops(
    position: Reversi,
    nodes: usize,
    select_ops: u64,
    backprop_ops: u64,
    seed: u64,
) -> (Vec<JsonObject>, [f64; 3]) {
    let soa = grow_soa(position, nodes, seed);
    let aos = grow_aos(position, nodes, seed);
    assert_eq!(soa.len(), aos.len(), "layouts must grow identically");

    // Same expanded-node set, same frontier and same deepest leaf for both
    // layouts (the trees are bit-identical, so these are shared).
    let internal: Vec<u32> = (0..soa.len() as u32)
        .filter(|&id| !soa.children(id).is_empty())
        .collect();
    let steps_per_sweep = internal.len() as u64;
    let select_sweeps = (select_ops / steps_per_sweep.max(1)).max(1);
    let mut expandable: Vec<u32> = (0..soa.len() as u32)
        .filter(|&id| soa.untried_len(id) > 0)
        .collect();
    expandable.truncate(25_000);
    let leaf = (0..soa.len() as u32)
        .max_by_key(|&id| soa.depth(id))
        .expect("non-empty tree");

    let (soa_rec, soa_rates) = tree_ops_record(
        "soa",
        soa.len() as u64,
        select_sweeps,
        steps_per_sweep,
        backprop_ops,
        || {
            // The SoA selection step: ln hoisted once per parent, children
            // read from the shared slab, stats from the dense hot arrays.
            let mut acc = 0u64;
            for &id in &internal {
                let ln_parent = (soa.visits(id).max(1) as f64).ln();
                let mut best = 0u32;
                let mut best_value = f64::NEG_INFINITY;
                for &child in soa.children(id) {
                    let value = pmcts_core::ucb::ucb1_with_ln(
                        ln_parent,
                        soa.visits(child),
                        soa.wins(child),
                        EXPLORATION_C,
                    );
                    if value > best_value {
                        best_value = value;
                        best = child;
                    }
                }
                acc = acc.wrapping_add(u64::from(best));
            }
            acc
        },
        || {
            let mut t = soa.clone();
            let mut rng = Xoshiro256pp::new(seed ^ 0xE1);
            let mut sum = 0u64;
            for &id in &expandable {
                sum = sum.wrapping_add(u64::from(t.expand(id, &mut rng)));
            }
            (expandable.len() as u64, sum)
        },
        |ops| {
            let mut t = soa.clone();
            for i in 0..ops {
                t.backprop(leaf, (i % 3) as f64 / 2.0, 1);
            }
            t.visits(leaf)
        },
    );
    let (aos_rec, aos_rates) = tree_ops_record(
        "aos",
        aos.len() as u64,
        select_sweeps,
        steps_per_sweep,
        backprop_ops,
        || {
            // The original selection step: per-child `ucb1` (ln recomputed
            // every child), children behind each node's own Vec, stats read
            // through the full-width node structs.
            let mut acc = 0u64;
            for &id in &internal {
                let node = aos.node(id);
                let mut best = 0u32;
                let mut best_value = f64::NEG_INFINITY;
                for &child in &node.children {
                    let c = aos.node(child);
                    let value = pmcts_core::ucb::ucb1(node.visits, c.visits, c.wins, EXPLORATION_C);
                    if value > best_value {
                        best_value = value;
                        best = child;
                    }
                }
                acc = acc.wrapping_add(u64::from(best));
            }
            acc
        },
        || {
            let mut t = aos.clone();
            let mut rng = Xoshiro256pp::new(seed ^ 0xE1);
            let mut sum = 0u64;
            for &id in &expandable {
                sum = sum.wrapping_add(u64::from(t.expand(id, &mut rng)));
            }
            (expandable.len() as u64, sum)
        },
        |ops| {
            let mut t = aos.clone();
            for i in 0..ops {
                t.backprop(leaf, (i % 3) as f64 / 2.0, 1);
            }
            t.node(leaf).visits
        },
    );
    let speedups = [
        soa_rates.select / aos_rates.select,
        soa_rates.expand / aos_rates.expand,
        soa_rates.backprop / aos_rates.backprop,
    ];
    (vec![soa_rec, aos_rec], speedups)
}

/// Steady-state throughput of the capacity-capped tree (DESIGN.md §12).
///
/// Runs the canonical MCTS loop on a bounded arena until it fills, then
/// times two consecutive windows in which **every** expansion recycles an
/// evicted slot — the fixed-RSS regime long-lived sessions run in. The
/// identical loop on an unbounded tree (same warmup, same timed iteration
/// count) is the reference: the unbounded tree keeps growing while the
/// capped arena stays cache-resident, so steady-state throughput at cap
/// must hold at ≥ 1.0x unbounded (`bounded_steady_state_vs_unbounded`,
/// gated by check_bench.py). The bounded pass runs twice and reports both
/// checksums: recycling is deterministic, so they must be equal.
fn bench_bounded_tree_ops(
    position: Reversi,
    cap: u32,
    window: u64,
    seed: u64,
) -> (Vec<JsonObject>, f64, f64) {
    struct BoundedPass {
        checksum: u64,
        warmup_iters: u64,
        rate_a: f64,
        rate_b: f64,
        wall_ns: u64,
        live_nodes: u64,
        evictions: u64,
        tt: TransStats,
    }
    let drive = |tree: &mut SearchTree<Reversi>, rng: &mut Xoshiro256pp, i: u64| -> u64 {
        let sel = tree.select(EXPLORATION_C);
        let node = if !tree.fully_expanded(sel) {
            tree.expand(sel, rng)
        } else {
            sel
        };
        tree.backprop(node, (i % 3) as f64 / 2.0, 1);
        u64::from(node)
    };
    let run_bounded = || {
        let mut tree = SearchTree::bounded(position, cap);
        let mut rng = Xoshiro256pp::new(seed);
        let mut checksum = 0u64;
        let mut i = 0u64;
        // Warmup: fill the arena, so the timed windows only see recycling.
        while tree.live_nodes() < cap as usize {
            checksum = checksum.wrapping_add(drive(&mut tree, &mut rng, i));
            i += 1;
        }
        // Settle: one full untimed window after the fill, so the timed
        // windows see a saturated transposition table and a recycling-
        // shaped tree, not the transition into that regime.
        for _ in 0..window {
            checksum = checksum.wrapping_add(drive(&mut tree, &mut rng, i));
            i += 1;
        }
        let warmup_iters = i;
        let start = Instant::now();
        for _ in 0..window {
            checksum = checksum.wrapping_add(drive(&mut tree, &mut rng, i));
            i += 1;
        }
        let a_ns = start.elapsed().as_nanos() as u64;
        let start = Instant::now();
        for _ in 0..window {
            checksum = checksum.wrapping_add(drive(&mut tree, &mut rng, i));
            i += 1;
        }
        let b_ns = start.elapsed().as_nanos() as u64;
        checksum = checksum
            .wrapping_add(tree.visits(tree.root()))
            .wrapping_add(tree.evictions());
        BoundedPass {
            checksum,
            warmup_iters,
            rate_a: rate(window, a_ns),
            rate_b: rate(window, b_ns),
            wall_ns: a_ns + b_ns,
            live_nodes: tree.live_nodes() as u64,
            evictions: tree.evictions(),
            tt: tree.transposition_stats().expect("bounded tree"),
        }
    };

    let pass = run_bounded();
    let rerun = run_bounded();
    // The unbounded reference warms up for the same iteration count the
    // bounded pass needed to fill its arena.
    let warmup = pass.warmup_iters;
    assert_eq!(
        pass.checksum, rerun.checksum,
        "bounded recycling must be deterministic"
    );

    let (unbounded_rate, unbounded_ns, unbounded_nodes, unbounded_checksum) = {
        let mut tree = SearchTree::new(position);
        let mut rng = Xoshiro256pp::new(seed);
        let mut checksum = 0u64;
        let mut i = 0u64;
        while i < warmup {
            checksum = checksum.wrapping_add(drive(&mut tree, &mut rng, i));
            i += 1;
        }
        let start = Instant::now();
        for _ in 0..2 * window {
            checksum = checksum.wrapping_add(drive(&mut tree, &mut rng, i));
            i += 1;
        }
        let wall_ns = start.elapsed().as_nanos() as u64;
        checksum = checksum.wrapping_add(tree.visits(tree.root()));
        (
            rate(2 * window, wall_ns),
            wall_ns,
            tree.len() as u64,
            checksum,
        )
    };

    let steady_rate = rate(2 * window, pass.wall_ns);
    let vs_unbounded = steady_rate / unbounded_rate;
    let window_ratio = pass.rate_b / pass.rate_a;
    let bounded_rec = JsonObject::new()
        .str_field("record", "tree_ops")
        .str_field("layout", "bounded_lru")
        .u64_field("cap", u64::from(cap))
        .u64_field("nodes", pass.live_nodes)
        .u64_field("iters", 2 * window)
        .u64_field("wall_ns", pass.wall_ns)
        .f64_field("iters_per_sec", steady_rate)
        .f64_field("window_a_iters_per_sec", pass.rate_a)
        .f64_field("window_b_iters_per_sec", pass.rate_b)
        .f64_field("steady_window_ratio", window_ratio)
        .u64_field("evictions", pass.evictions)
        .u64_field("tt_hits", pass.tt.hits)
        .u64_field("tt_recovered_visits", pass.tt.recovered_visits)
        .u64_field("tt_drops", pass.tt.drops)
        .u64_field("tt_occupied", pass.tt.occupied)
        .u64_field("checksum", pass.checksum)
        .u64_field("checksum_rerun", rerun.checksum);
    let unbounded_rec = JsonObject::new()
        .str_field("record", "tree_ops")
        .str_field("layout", "unbounded_ref")
        .u64_field("nodes", unbounded_nodes)
        .u64_field("iters", 2 * window)
        .u64_field("wall_ns", unbounded_ns)
        .f64_field("iters_per_sec", unbounded_rate)
        .u64_field("checksum", unbounded_checksum);
    (vec![bounded_rec, unbounded_rec], vs_unbounded, window_ratio)
}

/// Replays one scheme's host-side phase loop — block-order selection,
/// expansion and backprop over `blocks` trees with synthetic kernel
/// results, plus the hybrid scheme's CPU-shadow iteration when `shadow` —
/// on both layouts, and returns the records plus the SoA-over-AoS speedup.
///
/// This is exactly the work the searchers run between kernel launches
/// (single-threaded here; the pool schedule does the same operations in
/// the same per-tree order), so the ratio is the wall-clock host-phase
/// speedup the SoA layout buys each scheme.
fn bench_host_phases(
    scheme: &str,
    blocks: usize,
    lanes_per_block: u32,
    shadow: bool,
    iters: u64,
    position: Reversi,
    seed: u64,
) -> (Vec<JsonObject>, f64) {
    let run_soa = || {
        let mut trees: Vec<SearchTree<Reversi>> =
            (0..blocks).map(|_| SearchTree::new(position)).collect();
        let mut shadow_tree = shadow.then(|| SearchTree::new(position));
        let mut rng = Xoshiro256pp::new(seed);
        let mut outcome = Xoshiro256pp::new(seed ^ 0x5EED);
        let mut frontier = vec![0u32; blocks];
        let start = Instant::now();
        for _ in 0..iters {
            for (b, tree) in trees.iter_mut().enumerate() {
                let sel = tree.select(EXPLORATION_C);
                frontier[b] = if tree.untried_len(sel) > 0 {
                    let pick = rng.next_below(tree.untried_len(sel) as u32);
                    tree.expand_with_pick(sel, pick)
                } else {
                    sel
                };
            }
            for (b, tree) in trees.iter_mut().enumerate() {
                let wins = f64::from(outcome.next_below(lanes_per_block + 1));
                tree.backprop(frontier[b], wins, u64::from(lanes_per_block));
            }
            if let Some(t) = shadow_tree.as_mut() {
                let sel = t.select(EXPLORATION_C);
                let node = if t.untried_len(sel) > 0 {
                    let pick = rng.next_below(t.untried_len(sel) as u32);
                    t.expand_with_pick(sel, pick)
                } else {
                    sel
                };
                t.backprop(node, f64::from(outcome.next_below(2)), 1);
            }
        }
        let wall_ns = start.elapsed().as_nanos() as u64;
        let nodes: u64 = trees.iter().map(|t| t.len() as u64).sum();
        (wall_ns, nodes)
    };
    let run_aos = || {
        let mut trees: Vec<AosSearchTree<Reversi>> =
            (0..blocks).map(|_| AosSearchTree::new(position)).collect();
        let mut shadow_tree = shadow.then(|| AosSearchTree::new(position));
        let mut rng = Xoshiro256pp::new(seed);
        let mut outcome = Xoshiro256pp::new(seed ^ 0x5EED);
        let mut frontier = vec![0u32; blocks];
        let start = Instant::now();
        for _ in 0..iters {
            for (b, tree) in trees.iter_mut().enumerate() {
                let sel = tree.select(EXPLORATION_C);
                frontier[b] = if !tree.node(sel).fully_expanded() {
                    tree.expand(sel, &mut rng)
                } else {
                    sel
                };
            }
            for (b, tree) in trees.iter_mut().enumerate() {
                let wins = f64::from(outcome.next_below(lanes_per_block + 1));
                tree.backprop(frontier[b], wins, u64::from(lanes_per_block));
            }
            if let Some(t) = shadow_tree.as_mut() {
                let sel = t.select(EXPLORATION_C);
                let node = if !t.node(sel).fully_expanded() {
                    t.expand(sel, &mut rng)
                } else {
                    sel
                };
                t.backprop(node, f64::from(outcome.next_below(2)), 1);
            }
        }
        let wall_ns = start.elapsed().as_nanos() as u64;
        let nodes: u64 = trees.iter().map(|t| t.len() as u64).sum();
        (wall_ns, nodes)
    };

    // Warm up both (page in code, fault in slabs), then time.
    let _ = run_soa();
    let _ = run_aos();
    let (soa_ns, soa_nodes) = run_soa();
    let (aos_ns, aos_nodes) = run_aos();
    assert_eq!(soa_nodes, aos_nodes, "host-phase replays must grow alike");

    let record = |layout: &str, wall_ns: u64, nodes: u64| {
        JsonObject::new()
            .str_field("record", "host_phases")
            .str_field("scheme", scheme)
            .str_field("layout", layout)
            .u64_field("blocks", blocks as u64)
            .u64_field("iters", iters)
            .u64_field("tree_nodes", nodes)
            .u64_field("wall_ns", wall_ns)
            .f64_field("iters_per_sec", rate(iters, wall_ns))
    };
    let speedup = rate(iters, soa_ns) / rate(iters, aos_ns);
    (
        vec![
            record("soa", soa_ns, soa_nodes),
            record("aos", aos_ns, aos_nodes),
        ],
        speedup,
    )
}

fn main() {
    let args = BenchArgs::parse();
    let position = midgame_position(args.seed, 20);
    let spec = DeviceSpec::tesla_c2050();

    let (launch, reps, cpu_playouts, search_iters) = if args.full {
        (LaunchConfig::new(112, 128), 24usize, 200_000u64, 64u64)
    } else {
        (LaunchConfig::new(14, 64), 10, 30_000, 16)
    };
    let (tree_nodes, tree_ops, host_phase_iters) = if args.full {
        (50_000usize, 500_000u64, 6_000u64)
    } else {
        (50_000, 150_000, 2_000)
    };
    // Fresh stream seed per rep: repetitions do distinct (but seed-fixed)
    // work, like consecutive launches of a real search.
    let kernels: Vec<PlayoutKernel<Reversi>> = (0..reps)
        .map(|rep| PlayoutKernel::new(vec![position], args.seed.wrapping_add(rep as u64)))
        .collect();

    // The engines must agree bit-for-bit before their speeds are compared.
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let host_threads = args.host_threads_or(default_threads);
    let pool1 = WorkerPool::new(1);
    let pool = WorkerPool::new(host_threads);
    let fast = execute_kernel(&kernels[0], &launch, &spec, &pool1);
    let oracle = execute_kernel_lockstep(&kernels[0], &launch, &spec);
    assert_eq!(fast.outputs, oracle.outputs, "engine outputs diverged");
    assert_eq!(fast.stats, oracle.stats, "engine stats diverged");

    let mut records: Vec<JsonObject> = Vec::new();
    let (rec, cpu_playout_rate) = bench_cpu_playouts(position, cpu_playouts, args.seed);
    records.push(rec);

    // Multi-lane playout engine at widths 1/4/8; the 8-lane rate against
    // the scalar record above is the PR's acceptance gate (≥ 2.0x,
    // enforced by check_bench.py).
    let (rec, _) = bench_playout_lanes::<1>(position, cpu_playouts, args.seed);
    records.push(rec);
    let (rec, _) = bench_playout_lanes::<4>(position, cpu_playouts, args.seed);
    records.push(rec);
    let (rec, lanes8_rate) = bench_playout_lanes::<8>(position, cpu_playouts, args.seed);
    records.push(rec);
    let playout_lanes_speedup = lanes8_rate / cpu_playout_rate;

    let (rec, legacy_rate) = bench_engine("legacy_lockstep", &kernels, launch, |k| {
        execute_kernel_lockstep(k, &launch, &spec)
    });
    records.push(rec);
    let (rec, rtc_1t_rate) = bench_engine("rtc_1_thread", &kernels, launch, |k| {
        execute_kernel(k, &launch, &spec, &pool1)
    });
    records.push(rec);
    let (rec, rtc_pool_rate) = bench_engine("rtc_pool", &kernels, launch, |k| {
        execute_kernel(k, &launch, &spec, &pool)
    });
    records.push(rec);

    let cfg = || MctsConfig::default().with_seed(args.seed);
    let device = Device::new(spec.clone()).with_host_threads(host_threads);
    let budget = SearchBudget::Iterations(search_iters);
    records.push(
        bench_search(
            "sequential",
            SearchBudget::Iterations(search_iters * 100),
            &mut SequentialSearcher::<Reversi>::new(cfg()),
            position,
        )
        .0,
    );
    records.push(
        bench_search(
            "root_parallel",
            SearchBudget::Iterations(search_iters * 8),
            &mut RootParallelSearcher::<Reversi>::new(cfg(), 8).with_workers(host_threads),
            position,
        )
        .0,
    );
    records.push(
        bench_search(
            "leaf_parallel",
            budget,
            &mut LeafParallelSearcher::<Reversi>::new(cfg(), device.clone(), launch),
            position,
        )
        .0,
    );
    let (rec, block_virtual_rate) = bench_search(
        "block_parallel",
        budget,
        &mut BlockParallelSearcher::<Reversi>::new(cfg(), device.clone(), launch),
        position,
    );
    records.push(rec);
    // Same grid, same iteration budget: the device-resident tree must beat
    // block parallelism by ≥ 1.5x in virtual simulations/second (the PR's
    // acceptance gate, enforced by check_bench.py).
    let (rec, device_tree_virtual_rate) = bench_search(
        "device_tree",
        budget,
        &mut DeviceTreeSearcher::<Reversi>::new(cfg(), device.clone(), launch),
        position,
    );
    records.push(rec);
    records.push(
        bench_search(
            "hybrid",
            budget,
            &mut HybridSearcher::<Reversi>::new(cfg(), device, launch),
            position,
        )
        .0,
    );
    let device_tree_speedup = device_tree_virtual_rate / block_virtual_rate;

    // Tree operations and host-phase loops, old layout vs SoA.
    let (tree_records, [sel_speedup, exp_speedup, bp_speedup]) =
        bench_tree_ops(position, tree_nodes, tree_ops, tree_ops, args.seed);
    records.extend(tree_records);

    // Capacity-capped steady state: recycling throughput at cap vs the
    // unbounded tree, plus the determinism double-run.
    let (bounded_cap, bounded_window) = if args.full {
        (8192u32, 60_000u64)
    } else {
        (4096, 20_000)
    };
    let (bounded_records, bounded_vs_unbounded, bounded_window_ratio) =
        bench_bounded_tree_ops(position, bounded_cap, bounded_window, args.seed);
    records.extend(bounded_records);

    let mut host_phase_speedups = Vec::new();
    for (scheme, blocks, lanes, shadow) in [
        ("sequential", 1usize, 1u32, false),
        (
            "block_parallel",
            launch.blocks as usize,
            launch.threads_per_block,
            false,
        ),
        (
            "hybrid",
            launch.blocks as usize,
            launch.threads_per_block,
            true,
        ),
    ] {
        let (recs, speedup) = bench_host_phases(
            scheme,
            blocks,
            lanes,
            shadow,
            host_phase_iters,
            position,
            args.seed,
        );
        records.extend(recs);
        host_phase_speedups.push((scheme, speedup));
    }

    let speedup_pool = rtc_pool_rate / legacy_rate;
    let speedup_1t = rtc_1t_rate / legacy_rate;
    let mut summary = JsonObject::new()
        .str_field("record", "summary")
        .str_field("baseline", "legacy_lockstep")
        .u64_field("host_threads", pool.size() as u64)
        .f64_field("legacy_lane_steps_per_sec", legacy_rate)
        .f64_field("rtc_1_thread_lane_steps_per_sec", rtc_1t_rate)
        .f64_field("rtc_pool_lane_steps_per_sec", rtc_pool_rate)
        .f64_field("kernel_speedup_vs_lockstep", speedup_pool)
        .f64_field("kernel_speedup_vs_lockstep_1_thread", speedup_1t)
        .f64_field("playout_lanes_speedup_vs_scalar", playout_lanes_speedup)
        .f64_field("tree_ops_select_speedup_vs_aos", sel_speedup)
        .f64_field("tree_ops_expand_speedup_vs_aos", exp_speedup)
        .f64_field("tree_ops_backprop_speedup_vs_aos", bp_speedup)
        .f64_field("bounded_steady_state_vs_unbounded", bounded_vs_unbounded)
        .f64_field("bounded_steady_window_ratio", bounded_window_ratio)
        .f64_field("device_tree_speedup_vs_block_parallel", device_tree_speedup);
    for &(scheme, speedup) in &host_phase_speedups {
        summary = summary.f64_field(&format!("host_phase_speedup_{scheme}"), speedup);
    }
    records.push(summary);

    eprintln!(
        "engine speedup vs lockstep oracle: {speedup_1t:.2}x (1 thread), \
         {speedup_pool:.2}x ({} threads)",
        pool.size()
    );
    eprintln!("playout lanes (8-wide) vs scalar playouts: {playout_lanes_speedup:.2}x");
    eprintln!(
        "SoA tree speedup vs AoS baseline: select {sel_speedup:.2}x, \
         expand {exp_speedup:.2}x, backprop {bp_speedup:.2}x"
    );
    eprintln!(
        "bounded steady state at cap {bounded_cap}: \
         {bounded_vs_unbounded:.2}x vs unbounded"
    );
    eprintln!(
        "device-resident tree: {device_tree_speedup:.2}x virtual sims/s \
         vs block-parallel (same grid, same budget)"
    );
    for &(scheme, speedup) in &host_phase_speedups {
        eprintln!("host-phase speedup ({scheme}): {speedup:.2}x vs AoS");
    }
    write_json("BENCH_throughput", &records, &args);
}
