//! Round-robin tournament among the parallelization schemes at equal
//! virtual budget — a one-stop comparison across everything §III describes
//! (plus the extensions), printed as a cross table.
//!
//! Two arenas run back to back: the full entrant set on Reversi (the
//! paper's domain) and a smaller set on Hex 11×11, the branchier long game
//! added for scenario coverage (DESIGN.md §15 satellite).
//!
//! Run: `cargo run --release -p pmcts-bench --bin tournament -- [--full]`

use pmcts_bench::BenchArgs;
use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;
use pmcts_mpi_sim::NetworkModel;

/// A named player factory.
struct Entrant<G: Game> {
    name: &'static str,
    make: Box<dyn Fn(u64, SearchBudget) -> Box<dyn GamePlayer<G>>>,
}

fn entrants(seed: u64) -> Vec<Entrant<Reversi>> {
    vec![
        Entrant {
            name: "sequential",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(seed ^ g)),
                    budget,
                ))
            }),
        },
        Entrant {
            name: "root x16",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    RootParallelSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(seed ^ g),
                        16,
                    ),
                    budget,
                ))
            }),
        },
        Entrant {
            name: "leaf 16x64",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    LeafParallelSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(seed ^ g),
                        Device::c2050(),
                        LaunchConfig::new(16, 64),
                    ),
                    budget,
                ))
            }),
        },
        Entrant {
            name: "block 32x32",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    BlockParallelSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(seed ^ g),
                        Device::c2050(),
                        LaunchConfig::new(32, 32),
                    ),
                    budget,
                ))
            }),
        },
        Entrant {
            name: "hybrid 32x32",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    HybridSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(seed ^ g),
                        Device::c2050(),
                        LaunchConfig::new(32, 32),
                    ),
                    budget,
                ))
            }),
        },
        Entrant {
            name: "2gpu 16x32",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    MultiGpuSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(seed ^ g),
                        2,
                        DeviceSpec::tesla_c2050(),
                        LaunchConfig::new(16, 32),
                        NetworkModel::infiniband(),
                    ),
                    budget,
                ))
            }),
        },
    ]
}

/// Smaller Hex 11×11 arena: the sequential baseline against the two
/// single-device GPU schemes. Hex playouts are ~2× Reversi wall cost, so
/// the quick config keeps the pairing count down.
fn hex11_entrants(seed: u64) -> Vec<Entrant<Hex11>> {
    vec![
        Entrant {
            name: "sequential",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<Hex11>::new(MctsConfig::default().with_seed(seed ^ g)),
                    budget,
                ))
            }),
        },
        Entrant {
            name: "leaf 16x64",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    LeafParallelSearcher::<Hex11>::new(
                        MctsConfig::default().with_seed(seed ^ g),
                        Device::c2050(),
                        LaunchConfig::new(16, 64),
                    ),
                    budget,
                ))
            }),
        },
        Entrant {
            name: "block 32x32",
            make: Box::new(move |g, budget| {
                Box::new(MctsPlayer::new(
                    BlockParallelSearcher::<Hex11>::new(
                        MctsConfig::default().with_seed(seed ^ g),
                        Device::c2050(),
                        LaunchConfig::new(32, 32),
                    ),
                    budget,
                ))
            }),
        },
    ]
}

/// Runs one full round-robin and prints its cross table.
fn arena<G: Game>(title: &str, players: &[Entrant<G>], games: u64, budget: SearchBudget) {
    let n = players.len();
    println!(
        "# {title}: {games} games per pairing, {} per move\n",
        match budget {
            SearchBudget::VirtualTime(t) => t.to_string(),
            SearchBudget::Iterations(i) => format!("{i} iterations"),
        }
    );

    // scores[i][j] = win ratio of i against j.
    let mut scores = vec![vec![None::<f64>; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            // `g` is already a per-(game, entrant, colour) stream from
            // `entrant_stream`, so the two sides of a game never share RNG
            // streams; folding the pairing identity in on top gives each
            // scheme fresh streams in every pairing as well.
            let result = MatchSeries::<G>::run(
                games,
                |g| {
                    let s = g.wrapping_add((1 + i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    (players[i].make)(s, budget)
                },
                |g| {
                    let s = g.wrapping_add((100 + j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    (players[j].make)(s, budget)
                },
            );
            scores[i][j] = Some(result.win_ratio());
            eprintln!(
                "{:<14} vs {:<14} {:.2}",
                players[i].name,
                players[j].name,
                result.win_ratio()
            );
        }
    }

    // Cross table.
    print!("{:<14}", "");
    for p in players {
        print!("{:>12}", p.name);
    }
    println!("{:>8}", "mean");
    for i in 0..n {
        print!("{:<14}", players[i].name);
        let mut sum = 0.0;
        let mut count = 0;
        for score in &scores[i] {
            match score {
                Some(s) => {
                    print!("{s:>12.2}");
                    sum += s;
                    count += 1;
                }
                None => print!("{:>12}", "-"),
            }
        }
        println!("{:>8.2}", sum / count.max(1) as f64);
    }
    println!();
}

fn main() {
    let args = BenchArgs::parse();
    let games = args.games_or(2, 10);
    let budget = SearchBudget::millis(args.move_ms_or(60, 250));
    arena("tournament (reversi)", &entrants(args.seed), games, budget);
    arena(
        "tournament (hex 11x11)",
        &hex11_entrants(args.seed),
        games,
        budget,
    );
}
