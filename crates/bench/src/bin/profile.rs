//! Phase-level profile of every parallelization scheme.
//!
//! Runs each scheme in the taxonomy over a launch-geometry sweep (thread
//! counts for the CPU schemes) on the same mid-game position and emits one
//! JSON record per run carrying the exact six-phase time ledger, the work
//! counters, and the folded device statistics — the machine-readable
//! counterpart of the paper's Fig. 5 host-vs-kernel decomposition. Each
//! record also carries the real engine cost of producing it (`wall_ns`,
//! `playouts_per_sec`); virtual results never depend on it.
//!
//! Run: `cargo run --release -p pmcts-bench --bin profile -- [--full]`
//! (`--out DIR` also writes `DIR/profile.json`).

use pmcts_bench::{midgame_position, phase_record, write_json, BenchArgs, JsonObject};
use pmcts_core::prelude::*;
use pmcts_mpi_sim::NetworkModel;

/// GPU launch geometries to sweep (blocks × threads-per-block).
fn geometries(full: bool) -> Vec<(u32, u32)> {
    if full {
        vec![(4, 32), (14, 64), (28, 64), (56, 128), (112, 128)]
    } else {
        vec![(4, 32), (14, 64)]
    }
}

/// CPU thread counts to sweep for the host-side schemes.
fn cpu_threads(full: bool) -> Vec<usize> {
    if full {
        vec![2, 4, 8, 16]
    } else {
        vec![4]
    }
}

fn main() {
    let args = BenchArgs::parse();
    let position = midgame_position(args.seed, 20);
    let iters = if args.full { 16 } else { 4 };
    let budget = SearchBudget::Iterations(iters);
    let cfg = || MctsConfig::default().with_seed(args.seed);
    let mut device = Device::c2050();
    if args.host_threads > 0 {
        device = device.with_host_threads(args.host_threads);
    }
    let net = NetworkModel::infiniband();
    let mut records: Vec<JsonObject> = Vec::new();

    // Verify the ledger's central invariant on every record we emit, and
    // pair the virtual-time ledger with the real (wall-clock) cost of
    // producing it — the engine-speed side of DESIGN.md §7.
    let run = |scheme: &str, searcher: &mut dyn Searcher<Reversi>| {
        let start = std::time::Instant::now();
        let r = searcher.search(position, budget);
        let wall_ns = start.elapsed().as_nanos() as u64;
        assert_eq!(
            r.phases.phase_sum(),
            r.elapsed,
            "{scheme}: phase sum must equal elapsed exactly"
        );
        let wall_secs = wall_ns as f64 / 1e9;
        phase_record(scheme, &r)
            .u64_field("wall_ns", wall_ns)
            .f64_field(
                "playouts_per_sec",
                if wall_ns == 0 {
                    0.0
                } else {
                    r.simulations as f64 / wall_secs
                },
            )
    };

    // Host-only baselines (geometry-independent).
    records.push(run(
        "sequential",
        &mut SequentialSearcher::<Reversi>::new(cfg()),
    ));
    records.push(run(
        "persistent",
        &mut PersistentSearcher::<Reversi>::new(cfg()),
    ));

    for threads in cpu_threads(args.full) {
        records.push(
            run(
                "root_parallel",
                &mut RootParallelSearcher::<Reversi>::new(cfg(), threads),
            )
            .u64_field("threads", threads as u64),
        );
        records.push(
            run(
                "tree_parallel",
                &mut TreeParallelSearcher::<Reversi>::new(cfg(), threads),
            )
            .u64_field("threads", threads as u64),
        );
        records.push(
            run(
                "multi_node_cpu",
                &mut MultiNodeCpuSearcher::<Reversi>::new(cfg(), 2, threads, net),
            )
            .u64_field("ranks", 2)
            .u64_field("threads", threads as u64),
        );
    }

    for (blocks, tpb) in geometries(args.full) {
        let launch = LaunchConfig::new(blocks, tpb);
        let geom = |o: JsonObject| {
            o.u64_field("blocks", blocks as u64)
                .u64_field("threads_per_block", tpb as u64)
        };
        let r = run(
            "leaf_parallel",
            &mut LeafParallelSearcher::<Reversi>::new(cfg(), device.clone(), launch),
        );
        records.push(geom(r));
        let r = run(
            "block_parallel",
            &mut BlockParallelSearcher::<Reversi>::new(cfg(), device.clone(), launch),
        );
        records.push(geom(r));
        // Device-resident tree: host select/expand are legitimately zero
        // (the kernel phase absorbs them) but the ledger must still sum.
        let r = run(
            "device_tree",
            &mut DeviceTreeSearcher::<Reversi>::new(cfg(), device.clone(), launch),
        );
        records.push(geom(r));
        let r = run(
            "hybrid",
            &mut HybridSearcher::<Reversi>::new(cfg(), device.clone(), launch),
        );
        records.push(geom(r));
        let r = run(
            "multi_gpu",
            &mut MultiGpuSearcher::<Reversi>::new(cfg(), 2, DeviceSpec::tesla_c2050(), launch, net),
        );
        records.push(geom(r).u64_field("ranks", 2));
    }

    eprintln!("{} records, {iters} iterations each", records.len());
    write_json("profile", &records, &args);
}
