//! Phase-level profile of every parallelization scheme.
//!
//! Runs each scheme in the taxonomy over a launch-geometry sweep (thread
//! counts for the CPU schemes) on the same mid-game position and emits one
//! JSON record per run carrying the exact six-phase time ledger, the work
//! counters, and the folded device statistics — the machine-readable
//! counterpart of the paper's Fig. 5 host-vs-kernel decomposition.
//!
//! Run: `cargo run --release -p pmcts-bench --bin profile -- [--full]`
//! (`--out DIR` also writes `DIR/profile.json`).

use pmcts_bench::{midgame_position, phase_record, write_json, BenchArgs, JsonObject};
use pmcts_core::prelude::*;
use pmcts_mpi_sim::NetworkModel;

/// GPU launch geometries to sweep (blocks × threads-per-block).
fn geometries(full: bool) -> Vec<(u32, u32)> {
    if full {
        vec![(4, 32), (14, 64), (28, 64), (56, 128), (112, 128)]
    } else {
        vec![(4, 32), (14, 64)]
    }
}

/// CPU thread counts to sweep for the host-side schemes.
fn cpu_threads(full: bool) -> Vec<usize> {
    if full {
        vec![2, 4, 8, 16]
    } else {
        vec![4]
    }
}

fn main() {
    let args = BenchArgs::parse();
    let position = midgame_position(args.seed, 20);
    let iters = if args.full { 16 } else { 4 };
    let budget = SearchBudget::Iterations(iters);
    let cfg = || MctsConfig::default().with_seed(args.seed);
    let device = Device::c2050();
    let net = NetworkModel::infiniband();
    let mut records: Vec<JsonObject> = Vec::new();

    // Verify the ledger's central invariant on every record we emit.
    let checked = |scheme: &str, r: &SearchReport<<Reversi as Game>::Move>| {
        assert_eq!(
            r.phases.phase_sum(),
            r.elapsed,
            "{scheme}: phase sum must equal elapsed exactly"
        );
        phase_record(scheme, r)
    };

    // Host-only baselines (geometry-independent).
    let r = SequentialSearcher::<Reversi>::new(cfg()).search(position, budget);
    records.push(checked("sequential", &r));
    let r = PersistentSearcher::<Reversi>::new(cfg()).search(position, budget);
    records.push(checked("persistent", &r));

    for threads in cpu_threads(args.full) {
        let r = RootParallelSearcher::<Reversi>::new(cfg(), threads).search(position, budget);
        records.push(checked("root_parallel", &r).u64_field("threads", threads as u64));
        let r = TreeParallelSearcher::<Reversi>::new(cfg(), threads).search(position, budget);
        records.push(checked("tree_parallel", &r).u64_field("threads", threads as u64));
        let r =
            MultiNodeCpuSearcher::<Reversi>::new(cfg(), 2, threads, net).search(position, budget);
        records.push(
            checked("multi_node_cpu", &r)
                .u64_field("ranks", 2)
                .u64_field("threads", threads as u64),
        );
    }

    for (blocks, tpb) in geometries(args.full) {
        let launch = LaunchConfig::new(blocks, tpb);
        let geom = |o: JsonObject| {
            o.u64_field("blocks", blocks as u64)
                .u64_field("threads_per_block", tpb as u64)
        };
        let r = LeafParallelSearcher::<Reversi>::new(cfg(), device.clone(), launch)
            .search(position, budget);
        records.push(geom(checked("leaf_parallel", &r)));
        let r = BlockParallelSearcher::<Reversi>::new(cfg(), device.clone(), launch)
            .search(position, budget);
        records.push(geom(checked("block_parallel", &r)));
        let r =
            HybridSearcher::<Reversi>::new(cfg(), device.clone(), launch).search(position, budget);
        records.push(geom(checked("hybrid", &r)));
        let r = MultiGpuSearcher::<Reversi>::new(cfg(), 2, DeviceSpec::tesla_c2050(), launch, net)
            .search(position, budget);
        records.push(geom(checked("multi_gpu", &r)).u64_field("ranks", 2));
    }

    eprintln!("{} records, {iters} iterations each", records.len());
    write_json("profile", &records, &args);
}
