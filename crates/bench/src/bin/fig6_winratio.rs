//! Figure 6 — "Block parallelism vs Leaf parallelism, final result".
//!
//! Win ratio of a GPU player against a single-CPU-core sequential MCTS
//! opponent, both given the **same virtual time per move**, as a function
//! of GPU thread count, for the paper's three configurations.
//!
//! Expected shape (paper): the leaf-parallel curve saturates around 0.75
//! near 1024 threads; block parallelism keeps improving with more threads
//! (more trees); block-32 is better at small thread counts, block-128
//! overtakes at large ones.
//!
//! Run: `cargo run --release -p pmcts-bench --bin fig6_winratio -- [--full]`

use pmcts_bench::{print_series, BenchArgs};
use pmcts_core::prelude::*;
use pmcts_util::Series;

fn thread_sweep(full: bool) -> Vec<u32> {
    if full {
        vec![32, 64, 128, 256, 512, 1024, 2048, 4096, 7168, 14336]
    } else {
        // Quick mode stops at 4096: beyond that, a meaningful measurement
        // needs per-move budgets far above the block-parallel iteration
        // latency (~16 ms at full device), i.e. paper-scale seconds/move.
        vec![256, 1024, 4096]
    }
}

fn geometry(total_threads: u32, block_size: u32) -> LaunchConfig {
    if total_threads <= block_size {
        LaunchConfig::new(1, total_threads)
    } else {
        LaunchConfig::new(total_threads / block_size, block_size)
    }
}

/// One curve: a GPU scheme swept over thread counts vs the 1-core baseline.
fn sweep(
    label: &str,
    make_searcher: &dyn Fn(u64, u32) -> Box<dyn Searcher<Reversi>>,
    block_size: u32,
    args: &BenchArgs,
    games: u64,
    budget: SearchBudget,
) -> Series {
    let mut series = Series::new(label);
    for threads in thread_sweep(args.full) {
        if threads < block_size && threads < 32 {
            continue;
        }
        let result = pmcts_core::arena::MatchSeries::<Reversi>::run(
            games,
            |g| {
                Box::new(MctsPlayer::new(
                    make_searcher(args.seed.wrapping_add(g), threads),
                    budget,
                ))
            },
            |g| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(args.seed.wrapping_add(1000 + g)),
                    ),
                    budget,
                ))
            },
        );
        let (lo, hi) = result.winloss.wilson95();
        eprintln!(
            "{label:<42} threads={threads:>6}  win ratio {:.3}  (95% CI {lo:.2}-{hi:.2}, {} games)",
            result.win_ratio(),
            games
        );
        series.push(threads as f64, result.win_ratio());
    }
    series
}

fn main() {
    let args = BenchArgs::parse();
    let games = args.games_or(4, 24);
    // The budget must be a large multiple of the iteration latency or the
    // GPU trees stay degenerate (see EXPERIMENTS.md).
    let budget = SearchBudget::millis(args.move_ms_or(150, 500));

    let leaf = sweep(
        "leaf parallelism (block size = 64)",
        &|seed, threads| {
            Box::new(LeafParallelSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(seed),
                Device::c2050(),
                geometry(threads, 64),
            ))
        },
        64,
        &args,
        games,
        budget,
    );
    let block32 = sweep(
        "block parallelism (block size = 32)",
        &|seed, threads| {
            Box::new(BlockParallelSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(seed),
                Device::c2050(),
                geometry(threads, 32),
            ))
        },
        32,
        &args,
        games,
        budget,
    );
    let block128 = sweep(
        "block parallelism (block size = 128)",
        &|seed, threads| {
            Box::new(BlockParallelSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(seed),
                Device::c2050(),
                geometry(threads, 128),
            ))
        },
        128,
        &args,
        games,
        budget,
    );

    print_series(
        "fig6_winratio",
        "win ratio vs 1-core sequential MCTS, equal virtual time per move (Rocki & Suda Fig. 6)",
        &[leaf, block32, block128],
        &args,
    );
}
