//! Figure 7 — "GPU vs root-parallel CPUs".
//!
//! Average point difference (candidate score − opponent score) at every
//! game step, for root-parallel CPU players of 2…256 threads and for one
//! GPU running block parallelism (block size 128), each playing against the
//! same single-core sequential MCTS baseline with equal virtual time per
//! move.
//!
//! Expected shape (paper): curves order by thread count; the single GPU's
//! curve sits at or above the 128–256-CPU curves, with the GPU's advantage
//! largest in the early/mid game.
//!
//! Run: `cargo run --release -p pmcts-bench --bin fig7_gpu_vs_cpus -- [--full]`

use pmcts_bench::{print_series, BenchArgs};
use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;
use pmcts_util::Series;

fn cpu_sweep(full: bool) -> Vec<usize> {
    if full {
        vec![2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![16, 128]
    }
}

/// Plays a candidate (built per game) against the 1-core baseline and
/// returns the average point-difference trace.
fn trace(
    label: &str,
    make_candidate: &dyn Fn(u64) -> Box<dyn GamePlayer<Reversi>>,
    args: &BenchArgs,
    games: u64,
    budget: SearchBudget,
) -> Series {
    let result = MatchSeries::<Reversi>::run(games, make_candidate, |g| {
        Box::new(MctsPlayer::new(
            SequentialSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(args.seed.wrapping_add(9000 + g)),
            ),
            budget,
        ))
    });
    eprintln!(
        "{label:<46} mean final diff {:+.1} over {} games",
        result.mean_score.mean(),
        games
    );
    let mut series = Series::new(label);
    for (step, stats) in result.score_by_step.iter().enumerate() {
        series.push((step + 1) as f64, stats.mean());
    }
    series
}

fn main() {
    let args = BenchArgs::parse();
    let games = args.games_or(4, 24);
    let budget = SearchBudget::millis(args.move_ms_or(150, 500));
    let mut all = Vec::new();

    for threads in cpu_sweep(args.full) {
        all.push(trace(
            &format!("{threads} cpus (root parallelism)"),
            &|g| {
                Box::new(MctsPlayer::new(
                    RootParallelSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(args.seed.wrapping_add(g)),
                        threads,
                    ),
                    budget,
                ))
            },
            &args,
            games,
            budget,
        ));
    }

    all.push(trace(
        "1 GPU - block parallelism (block size = 128)",
        &|g| {
            Box::new(MctsPlayer::new(
                BlockParallelSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(args.seed.wrapping_add(g)),
                    Device::c2050(),
                    LaunchConfig::new(112, 128),
                ),
                budget,
            ))
        },
        &args,
        games,
        budget,
    ));

    print_series(
        "fig7_gpu_vs_cpus",
        "point difference vs game step: root-parallel CPUs and 1 GPU vs 1-core baseline (Rocki & Suda Fig. 7)",
        &all,
        &args,
    );
}
