//! SIMD divergence report.
//!
//! Prints the Reversi playout-length distribution and the lane-efficiency
//! numbers the warp-lockstep model derives from it, per game phase. This is
//! the quantitative basis for the paper's design choice: playouts of
//! varying length make per-thread independent *searches* infeasible on
//! SIMD hardware, while per-block shared *positions* keep warps coherent.
//!
//! Run: `cargo run --release -p pmcts-bench --bin divergence_report`
//! (`--out DIR` also writes `DIR/divergence_report.txt` so CI can validate
//! and archive it).

use pmcts_bench::{midgame_position, BenchArgs};
use pmcts_core::gpu::PlayoutKernel;
use pmcts_games::{random_playout, Game, Reversi};
use pmcts_gpu_sim::{Device, LaunchConfig};
use pmcts_util::{Histogram, Xoshiro256pp};
use std::fmt::Write as _;
use std::io::Write as _;

fn main() {
    let args = BenchArgs::parse();
    let playouts = if args.full { 20_000 } else { 4_000 };

    let mut text = String::new();
    let _ = writeln!(
        text,
        "# divergence_report: Reversi playout lengths and warp efficiency\n"
    );
    let _ = writeln!(
        text,
        "{:<22} {:>6} {:>6} {:>6} {:>6} {:>8} {:>12}",
        "phase", "mean", "p10", "p50", "p90", "max", "efficiency"
    );

    for (label, plies_in) in [
        ("opening (ply 0)", 0u32),
        ("midgame (ply 20)", 20),
        ("endgame (ply 44)", 44),
    ] {
        let position = if plies_in == 0 {
            Reversi::initial()
        } else {
            midgame_position(args.seed, plies_in)
        };

        // Host-side distribution of playout lengths.
        let mut hist = Histogram::new(Reversi::MAX_GAME_LENGTH + 1);
        let mut rng = Xoshiro256pp::new(args.seed);
        for _ in 0..playouts {
            hist.record(random_playout(position, &mut rng).plies);
        }

        // Device-side lane efficiency for the same position.
        let device = Device::c2050();
        let kernel = PlayoutKernel::new(vec![position], args.seed);
        let result = device.launch(&kernel, LaunchConfig::new(14, 64));

        let _ = writeln!(
            text,
            "{label:<22} {:>6.1} {:>6} {:>6} {:>6} {:>8} {:>11.1}%",
            hist.mean(),
            hist.quantile(0.1).unwrap_or(0),
            hist.quantile(0.5).unwrap_or(0),
            hist.quantile(0.9).unwrap_or(0),
            hist.max().unwrap_or(0),
            result.stats.lane_efficiency() * 100.0
        );
    }

    let _ = writeln!(
        text,
        "\nInterpretation: a warp retires only when its longest playout ends, so\n\
         lane efficiency ≈ mean/max of the in-warp length distribution. Late-game\n\
         positions have shorter, tighter playouts and thus higher efficiency."
    );

    print!("{text}");
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        let path = format!("{dir}/divergence_report.txt");
        let mut f = std::fs::File::create(&path).expect("create report");
        f.write_all(text.as_bytes()).expect("write report");
        eprintln!("wrote {path}");
    }
}
