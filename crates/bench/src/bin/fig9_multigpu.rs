//! Figure 9 — "Multi GPU Results — based on MPI communication scheme".
//!
//! Two panels over the number of GPUs (112 blocks × 64 threads each, as in
//! the paper):
//!   * total simulations/second of the multi-GPU searcher (log-scale axis
//!     in the paper);
//!   * average final point difference against the 1-core baseline.
//!
//! Expected shape (paper): simulations/second scales near-linearly with
//! GPUs; the point difference improves slowly and noisily (the paper calls
//! its own multi-GPU results "inconclusive", ~26.5 → ~29.5 points from 1 to
//! 32 GPUs).
//!
//! Run: `cargo run --release -p pmcts-bench --bin fig9_multigpu -- [--full]`

use pmcts_bench::{midgame_position, print_series, BenchArgs};
use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;
use pmcts_mpi_sim::NetworkModel;
use pmcts_util::Series;

fn gpu_sweep(full: bool) -> Vec<usize> {
    if full {
        vec![1, 2, 4, 8, 16, 32]
    } else {
        vec![1, 2, 4]
    }
}

fn main() {
    let args = BenchArgs::parse();
    let games = args.games_or(2, 16);
    let budget = SearchBudget::millis(args.move_ms_or(150, 500));
    let launch = LaunchConfig::new(112, 64);
    let net = NetworkModel::infiniband();

    let mut speed = Series::new("simulations/second (112 blocks × 64 threads per GPU)");
    let mut points = Series::new("average final point difference vs 1-core baseline");

    for gpus in gpu_sweep(args.full) {
        // Panel 1: raw search throughput on a fixed midgame position.
        let position = midgame_position(args.seed, 20);
        let r = MultiGpuSearcher::<Reversi>::new(
            MctsConfig::default().with_seed(args.seed),
            gpus,
            DeviceSpec::tesla_c2050(),
            launch,
            net,
        )
        .search(
            position,
            SearchBudget::Iterations(if args.full { 8 } else { 4 }),
        );
        speed.push(gpus as f64, r.sims_per_second());

        // Panel 2: playing strength vs the 1-core baseline.
        let result = MatchSeries::<Reversi>::run(
            games,
            |g| {
                Box::new(MctsPlayer::new(
                    MultiGpuSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(args.seed.wrapping_add(g)),
                        gpus,
                        DeviceSpec::tesla_c2050(),
                        launch,
                        net,
                    ),
                    budget,
                ))
            },
            |g| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(args.seed.wrapping_add(5000 + g)),
                    ),
                    budget,
                ))
            },
        );
        points.push(gpus as f64, result.mean_score.mean());
        eprintln!(
            "gpus={gpus:>3}  {:>12.0} sims/s  mean point diff {:+.1} ({} games)",
            speed.points.last().unwrap().1,
            result.mean_score.mean(),
            games
        );
    }

    print_series(
        "fig9_speed",
        "simulations/second vs number of GPUs (Rocki & Suda Fig. 9, left panel)",
        &[speed],
        &args,
    );
    print_series(
        "fig9_points",
        "average point difference vs number of GPUs (Rocki & Suda Fig. 9, right panel)",
        &[points],
        &args,
    );
}
