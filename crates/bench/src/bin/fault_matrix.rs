//! Fault-injection matrix: {every scheme} × {every fault class}.
//!
//! Each cell runs one searcher under one 100%-rate fault class on the same
//! mid-game position and asserts graceful degradation: the search must
//! still produce a best move and the phase ledger must still sum to
//! `elapsed` exactly. One JSON record per cell carries the standard phase
//! ledger plus the `FaultCounters` and the chosen move. The first record
//! of each artifact is a `roster` meta-record naming every scheme and
//! fault class; `check_bench.py` validates the grid against it, so the
//! scheme list lives in exactly one place ([`SCHEMES`]).
//!
//! The matrix runs on two games: Reversi (the paper's domain, written to
//! `fault_matrix.json`) and Hex 11×11 (a branchier, longer game
//! exercising the same fault policies, written to
//! `fault_matrix_hex11.json`).
//!
//! The outputs contain no wall-clock fields, so the same (seed, plan) must
//! produce byte-identical JSON at any `--host-threads` count — the CI
//! determinism gate diffs two runs at different counts.
//!
//! Run: `cargo run --release -p pmcts-bench --bin fault_matrix -- [--full]`
//! (`--out DIR` also writes `DIR/fault_matrix.json` and
//! `DIR/fault_matrix_hex11.json`).

use pmcts_bench::{
    midgame_position, midgame_position_of, phase_record, write_json, BenchArgs, JsonObject,
};
use pmcts_core::prelude::*;
use pmcts_gpu_sim::WorkerPool;
use pmcts_mpi_sim::NetworkModel;
use std::sync::Arc;

/// The scheme roster, in cell-emission order. This is the single source
/// of truth: the first record of each artifact carries it (comma-joined)
/// and `check_bench.py` validates the grid against it, so adding a scheme
/// here without adding its `run` call (or vice versa) fails both the
/// in-binary assert and the CI gate.
const SCHEMES: [&str; 9] = [
    "leaf_parallel",
    "block_parallel",
    "device_tree",
    "hybrid",
    "root_parallel",
    "multi_gpu",
    "multi_node_cpu",
    "wu_uct",
    "pipelined",
];

/// The fault classes under test. Rates are 1.0 so every applicable cell
/// genuinely exercises its response policy; classes a scheme has no
/// component for (e.g. network faults on a single-device scheme) simply
/// leave its counters at zero.
fn fault_classes(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        ("gpu_slowdown", FaultPlan::gpu_slowdown(seed ^ 1, 1.0, 3)),
        ("gpu_hang", FaultPlan::gpu_hang(seed ^ 2, 1.0)),
        ("gpu_abort", FaultPlan::gpu_abort(seed ^ 3, 1.0)),
        ("net_delay", FaultPlan::net_delay(seed ^ 4, 1.0, 3)),
        ("net_drop", FaultPlan::net_drop(seed ^ 5, 1.0)),
        ("dead_component", FaultPlan::dead_component(seed ^ 6, 1.0)),
    ]
}

/// Runs the full {fault class} × {scheme} matrix for one game from
/// `position` and returns one record per cell, in the fixed class-outer,
/// scheme-inner order the determinism diffs pin.
fn matrix_for<G: Game>(args: &BenchArgs, position: G) -> Vec<JsonObject> {
    let iters = if args.full { 12 } else { 4 };
    let budget = SearchBudget::Iterations(iters);
    let ranks = if args.full { 3 } else { 2 };
    let launch = LaunchConfig::new(4, 32);
    let net = NetworkModel::infiniband();
    let host_threads = args.host_threads_or(2);
    let pool = Arc::new(WorkerPool::new(host_threads));
    let device = || Device::new(DeviceSpec::tesla_c2050()).with_host_threads(host_threads);

    let classes = fault_classes(args.seed);
    let mut records: Vec<JsonObject> = Vec::new();
    // Roster meta-record first: check_bench.py validates that every listed
    // class x scheme cell appears exactly once, in this order.
    records.push(
        JsonObject::new()
            .str_field("kind", "roster")
            .str_field("schemes", &SCHEMES.join(","))
            .str_field(
                "fault_classes",
                &classes
                    .iter()
                    .map(|(name, _)| *name)
                    .collect::<Vec<_>>()
                    .join(","),
            ),
    );
    for (class, plan) in classes {
        let cfg = MctsConfig::default().with_seed(args.seed).with_faults(plan);
        let mut ran: Vec<&'static str> = Vec::new();
        let mut run = |scheme: &'static str, searcher: &mut dyn Searcher<G>| {
            let r = searcher.search(position, budget);
            let best = r
                .best_move
                .unwrap_or_else(|| panic!("{scheme}/{class}: search produced no move"));
            assert_eq!(
                r.phases.phase_sum(),
                r.elapsed,
                "{scheme}/{class}: phase sum must equal elapsed exactly"
            );
            ran.push(scheme);
            records.push(
                phase_record(scheme, &r)
                    .str_field("fault_class", class)
                    .str_field("best_move", &format!("{best:?}")),
            );
        };

        run(
            "leaf_parallel",
            &mut LeafParallelSearcher::<G>::new(cfg.clone(), device(), launch),
        );
        run(
            "block_parallel",
            &mut BlockParallelSearcher::<G>::new(cfg.clone(), device(), launch),
        );
        run(
            // Degradation ladder: hang → costed dry-run + retry once →
            // host block-parallel fallback for the rest of the move.
            "device_tree",
            &mut DeviceTreeSearcher::<G>::new(cfg.clone(), device(), launch),
        );
        run(
            "hybrid",
            &mut HybridSearcher::<G>::new(cfg.clone(), device(), launch),
        );
        run(
            "root_parallel",
            &mut RootParallelSearcher::<G>::new(cfg.clone(), 4).with_workers(host_threads),
        );
        run(
            "multi_gpu",
            &mut MultiGpuSearcher::<G>::new(
                cfg.clone(),
                ranks,
                DeviceSpec::tesla_c2050(),
                launch,
                net,
            )
            .with_pool(Arc::clone(&pool)),
        );
        run(
            "multi_node_cpu",
            &mut MultiNodeCpuSearcher::<G>::new(cfg.clone(), ranks, 2, net),
        );
        run(
            // Shared tree, selection corrected by in-flight counts; voided
            // launches must roll the counts back exactly (DESIGN.md §16).
            "wu_uct",
            &mut WuUctSearcher::<G>::new(cfg.clone(), device(), launch),
        );
        run(
            // Faults break the select/kernel overlap: the hung wave resolves
            // serially, then the pipeline refills (DESIGN.md §16).
            "pipelined",
            &mut PipelinedSearcher::<G>::new(cfg.clone(), device(), launch),
        );
        assert_eq!(ran, SCHEMES, "{class}: run calls drifted from SCHEMES");
    }
    records
}

fn main() {
    let args = BenchArgs::parse();
    let iters = if args.full { 12 } else { 4 };

    let records = matrix_for::<Reversi>(&args, midgame_position(args.seed, 20));
    // Hex 11×11 from a 40-ply random prefix: mid-game at the same relative
    // depth as Reversi ply 20 (121-cell board, no captures, ~115 plies).
    let hex_records = matrix_for::<Hex11>(&args, midgame_position_of::<Hex11>(args.seed, 40));

    eprintln!(
        "{} cells per game × 2 games ({} fault classes × {} schemes), {iters} iterations each",
        records.len() - 1,
        fault_classes(args.seed).len(),
        SCHEMES.len(),
    );
    write_json("fault_matrix", &records, &args);
    write_json("fault_matrix_hex11", &hex_records, &args);
}
