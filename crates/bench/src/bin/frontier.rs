//! Playout-efficiency vs throughput frontier: batch width × scheme.
//!
//! The paper's block parallelism selects as if in-flight playouts don't
//! exist, so exploration quality degrades as the batch widens. This
//! binary charts what each fix buys and what it costs: for every batch
//! width (blocks of 32 lanes) it runs `block_parallel` (the paper's
//! scheme), `pipelined` (barrier-free, same selection rule) and `wu_uct`
//! (one shared tree, selection corrected by in-flight counts, DESIGN.md
//! §16), measuring both virtual throughput on a fixed mid-game probe and
//! arena strength against the 1-core sequential baseline at the **same
//! virtual time per move**.
//!
//! The artifact (`frontier.json`) leads with a `roster` meta-record
//! (schemes, widths) that `check_bench.py check_frontier` validates the
//! grid against, then one `cell` record per (width, scheme) — the exact
//! seven-phase ledger of the probe search plus `win_ratio`,
//! `candidate_sims` and `opponent_sims` from the series — and a `summary`
//! record with the gate-width comparison. The acceptance gate: at every
//! width ≥ 64, WU-UCT's win ratio must be ≥ block parallelism's and its
//! virtual sims/s within 10%. No wall-clock fields: byte-identical at any
//! `--host-threads` count.
//!
//! Run: `cargo run --release -p pmcts-bench --bin frontier -- [--full]`
//! (`--out DIR` also writes `DIR/frontier.json`).

use pmcts_bench::{midgame_position, phase_record, write_json, BenchArgs, JsonObject};
use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;

/// Scheme roster, in cell-emission order (scheme-inner within each width).
const SCHEMES: [&str; 3] = ["block_parallel", "pipelined", "wu_uct"];

/// Batch widths under test, in blocks of 32 lanes. The strength gate
/// applies at every width ≥ 64; 16 charts the narrow end of the frontier.
fn widths(full: bool) -> Vec<u32> {
    if full {
        vec![16, 64, 128]
    } else {
        vec![16, 64]
    }
}

/// Builds one searcher of `scheme` at `launch` geometry.
fn make_searcher(
    scheme: &str,
    seed: u64,
    launch: LaunchConfig,
    device: Device,
) -> Box<dyn Searcher<Reversi>> {
    let cfg = MctsConfig::default().with_seed(seed);
    match scheme {
        "block_parallel" => Box::new(BlockParallelSearcher::<Reversi>::new(cfg, device, launch)),
        "pipelined" => Box::new(PipelinedSearcher::<Reversi>::new(cfg, device, launch)),
        "wu_uct" => Box::new(WuUctSearcher::<Reversi>::new(cfg, device, launch)),
        other => unreachable!("unknown scheme {other}"),
    }
}

fn main() {
    let args = BenchArgs::parse();
    let games = args.games_or(4, 16);
    // Equal virtual time per move for every entrant; must be a large
    // multiple of the widest iteration latency or the batched trees stay
    // degenerate (same constraint as fig6, see EXPERIMENTS.md).
    let budget_time = SimTime::from_millis(args.move_ms_or(40, 200));
    let budget = SearchBudget::VirtualTime(budget_time);
    let host_threads = args.host_threads_or(2);
    let device = || Device::new(DeviceSpec::tesla_c2050()).with_host_threads(host_threads);
    let probe = midgame_position(args.seed, 20);
    let widths = widths(args.full);

    let mut records: Vec<JsonObject> = Vec::new();
    records.push(
        JsonObject::new()
            .str_field("kind", "roster")
            .str_field("schemes", &SCHEMES.join(","))
            .str_field(
                "widths",
                &widths
                    .iter()
                    .map(|w| w.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
    );

    // (scheme, width) -> (win_ratio, virtual sims/s) for the summary.
    let mut measured: Vec<(&str, u32, f64, f64)> = Vec::new();
    for &w in &widths {
        let launch = LaunchConfig::new(w, 32);
        for scheme in SCHEMES {
            // Throughput probe: one search on the shared mid-game position.
            let r = make_searcher(scheme, args.seed, launch, device()).search(probe, budget);
            assert_eq!(
                r.phases.phase_sum(),
                r.elapsed,
                "{scheme} w{w}: phase sum must equal elapsed exactly"
            );
            // Strength: the scheme vs 1-core sequential at equal budget.
            let series = MatchSeries::<Reversi>::run(
                games,
                |g| {
                    Box::new(MctsPlayer::new(
                        make_searcher(scheme, args.seed.wrapping_add(g), launch, device()),
                        budget,
                    ))
                },
                |g| {
                    Box::new(MctsPlayer::new(
                        SequentialSearcher::<Reversi>::new(
                            MctsConfig::default().with_seed(args.seed.wrapping_add(1000 + g)),
                        ),
                        budget,
                    ))
                },
            );
            eprintln!(
                "{scheme:<16} w{w:<4} win ratio {:.3} ({games} games), {:.0} virtual sims/s",
                series.win_ratio(),
                r.sims_per_second(),
            );
            measured.push((scheme, w, series.win_ratio(), r.sims_per_second()));
            records.push(
                phase_record(scheme, &r)
                    .str_field("kind", "cell")
                    .u64_field("blocks", u64::from(w))
                    .u64_field("threads_per_block", 32)
                    .u64_field("budget_ns", budget_time.as_nanos())
                    .u64_field("games", games)
                    .f64_field("win_ratio", series.win_ratio())
                    .u64_field("candidate_sims", series.simulations[0])
                    .u64_field("opponent_sims", series.simulations[1]),
            );
        }
    }

    let gate_w = *widths
        .iter()
        .filter(|&&w| w >= 64)
        .max()
        .expect("a width >= 64");
    let at = |scheme: &str| {
        measured
            .iter()
            .find(|(s, w, _, _)| *s == scheme && *w == gate_w)
            .expect("gate-width cell measured")
    };
    let (_, _, bp_win, bp_rate) = *at("block_parallel");
    let (_, _, wu_win, wu_rate) = *at("wu_uct");
    let (_, _, pl_win, pl_rate) = *at("pipelined");
    records.push(
        JsonObject::new()
            .str_field("kind", "summary")
            .u64_field("gate_width", u64::from(gate_w))
            .u64_field("games", games)
            .u64_field("budget_ns", budget_time.as_nanos())
            .f64_field("block_parallel_win_ratio", bp_win)
            .f64_field("pipelined_win_ratio", pl_win)
            .f64_field("wu_uct_win_ratio", wu_win)
            .f64_field(
                "wu_uct_throughput_ratio_vs_block_parallel",
                wu_rate / bp_rate,
            )
            .f64_field(
                "pipelined_throughput_ratio_vs_block_parallel",
                pl_rate / bp_rate,
            ),
    );
    eprintln!(
        "# frontier: at width {gate_w}: wu_uct {wu_win:.3} vs block_parallel {bp_win:.3} \
         win ratio, {:.3}x throughput; pipelined {pl_win:.3}, {:.3}x",
        wu_rate / bp_rate,
        pl_rate / bp_rate,
    );
    write_json("frontier", &records, &args);
}
