//! Figure 8 — "Hybrid CPU/GPU vs GPU-only processing".
//!
//! Two panels over the game steps, each player facing the same 1-core
//! sequential baseline with equal virtual time per move:
//!   * points: average point difference per game step;
//!   * depth: average maximum search-tree depth per move.
//!
//! Expected shape (paper): the hybrid player's trees are strictly deeper
//! (the CPU keeps expanding during kernel flight) and its point curve is at
//! or above GPU-only, especially in the last phase of the game.
//!
//! Run: `cargo run --release -p pmcts-bench --bin fig8_hybrid -- [--full]`

use pmcts_bench::{print_series, BenchArgs};
use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;
use pmcts_util::Series;

struct Traces {
    points: Series,
    depth: Series,
}

fn run(
    label: &str,
    make_candidate: &dyn Fn(u64) -> Box<dyn GamePlayer<Reversi>>,
    args: &BenchArgs,
    games: u64,
    budget: SearchBudget,
) -> Traces {
    let result = MatchSeries::<Reversi>::run(games, make_candidate, |g| {
        Box::new(MctsPlayer::new(
            SequentialSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(args.seed.wrapping_add(7000 + g)),
            ),
            budget,
        ))
    });
    let mean_depth: f64 = if result.depth_by_step.is_empty() {
        0.0
    } else {
        result.depth_by_step.iter().map(|s| s.mean()).sum::<f64>()
            / result.depth_by_step.len() as f64
    };
    eprintln!(
        "{label:<24} mean final diff {:+.1}, mean tree depth {:.1} over {} games",
        result.mean_score.mean(),
        mean_depth,
        games
    );
    let mut points = Series::new(label.to_string());
    for (step, stats) in result.score_by_step.iter().enumerate() {
        points.push((step + 1) as f64, stats.mean());
    }
    let mut depth = Series::new(label.to_string());
    for (step, stats) in result.depth_by_step.iter().enumerate() {
        depth.push((step + 1) as f64, stats.mean());
    }
    Traces { points, depth }
}

fn main() {
    let args = BenchArgs::parse();
    let games = args.games_or(4, 24);
    let budget = SearchBudget::millis(args.move_ms_or(150, 500));
    let launch = LaunchConfig::new(112, 64);

    let gpu_only = run(
        "GPU",
        &|g| {
            Box::new(MctsPlayer::new(
                BlockParallelSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(args.seed.wrapping_add(g)),
                    Device::c2050(),
                    launch,
                ),
                budget,
            ))
        },
        &args,
        games,
        budget,
    );
    let hybrid = run(
        "GPU + CPU",
        &|g| {
            Box::new(MctsPlayer::new(
                HybridSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(args.seed.wrapping_add(g)),
                    Device::c2050(),
                    launch,
                ),
                budget,
            ))
        },
        &args,
        games,
        budget,
    );

    print_series(
        "fig8_points",
        "point difference vs game step, hybrid vs GPU-only (Rocki & Suda Fig. 8, upper panel)",
        &[hybrid.points, gpu_only.points],
        &args,
    );
    print_series(
        "fig8_depth",
        "search-tree depth vs game step, hybrid vs GPU-only (Rocki & Suda Fig. 8, lower panel)",
        &[hybrid.depth, gpu_only.depth],
        &args,
    );
}
