//! Figure 5 — "Block parallelism vs Leaf parallelism, speed".
//!
//! Simulations per (virtual) second as a function of the number of GPU
//! threads, for three configurations of the paper:
//!   * leaf parallelism, block size 64;
//!   * block parallelism, block size 32 (one tree per 32 threads);
//!   * block parallelism, block size 128.
//!
//! Expected shape (paper): throughput rises with thread count and saturates
//! once the grid covers the device (≈9×10⁵ sims/s); block parallelism is
//! slower than leaf parallelism because of the host-sequential per-tree
//! work, and block-32 (4× the trees of block-128) is slowest.
//!
//! A fourth series adds this reproduction's extension past the paper: the
//! device-resident tree (block size 128, DESIGN.md §13) removes the
//! host round-trip and the per-launch lane setup entirely, so its curve
//! keeps the same rising-then-saturating shape but settles *above* the
//! paper's ceiling — the three paper series are computed exactly as
//! before and stay bit-identical.
//!
//! Run: `cargo run --release -p pmcts-bench --bin fig5_speed -- [--full]`

use pmcts_bench::{midgame_position, print_series, BenchArgs};
use pmcts_core::prelude::*;
use pmcts_util::Series;

fn thread_sweep(full: bool) -> Vec<u32> {
    if full {
        vec![
            1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 7168, 14336,
        ]
    } else {
        vec![32, 128, 512, 2048, 7168, 14336]
    }
}

/// Grid geometry for a scheme at a total thread count, mirroring the
/// paper's parameterisation.
fn geometry(total_threads: u32, block_size: u32) -> LaunchConfig {
    if total_threads <= block_size {
        LaunchConfig::new(1, total_threads)
    } else {
        LaunchConfig::new(total_threads / block_size, block_size)
    }
}

fn main() {
    let args = BenchArgs::parse();
    let device = Device::c2050();
    let position = midgame_position(args.seed, 20);
    let iters = if args.full { 12 } else { 5 };
    let budget = SearchBudget::Iterations(iters);

    let mut leaf64 = Series::new("leaf parallelism (block size = 64)");
    let mut block32 = Series::new("block parallelism (block size = 32)");
    let mut block128 = Series::new("block parallelism (block size = 128)");
    let mut resident128 = Series::new("device-resident tree (block size = 128)");
    // The measured decomposition behind the saturation story: the fraction
    // of virtual time the host spends *outside* the kernel phase grows with
    // the tree count (select/expand over every tree is sequential).
    let mut host32 = Series::new("block-32 host share (1 - kernel share)");
    let mut host128 = Series::new("block-128 host share (1 - kernel share)");

    for threads in thread_sweep(args.full) {
        let cfg = MctsConfig::default().with_seed(args.seed);

        let r = LeafParallelSearcher::<Reversi>::new(
            cfg.clone(),
            device.clone(),
            geometry(threads, 64),
        )
        .search(position, budget);
        leaf64.push(threads as f64, r.sims_per_second());

        let r = BlockParallelSearcher::<Reversi>::new(
            cfg.clone(),
            device.clone(),
            geometry(threads, 32),
        )
        .search(position, budget);
        block32.push(threads as f64, r.sims_per_second());
        host32.push(threads as f64, 1.0 - r.phases.kernel_share());
        let b32_kernel = r.phases.kernel_share();

        let r = BlockParallelSearcher::<Reversi>::new(
            cfg.clone(),
            device.clone(),
            geometry(threads, 128),
        )
        .search(position, budget);
        block128.push(threads as f64, r.sims_per_second());
        host128.push(threads as f64, 1.0 - r.phases.kernel_share());
        let b128_kernel = r.phases.kernel_share();

        let r = DeviceTreeSearcher::<Reversi>::new(cfg, device.clone(), geometry(threads, 128))
            .search(position, budget);
        resident128.push(threads as f64, r.sims_per_second());

        eprintln!(
            "threads={threads:>6}  leaf64={:>10.0}  block32={:>10.0}  block128={:>10.0}  \
             resident128={:>10.0} sims/s  kernel share: b32={:>5.1}% b128={:>5.1}%",
            leaf64.points.last().unwrap().1,
            block32.points.last().unwrap().1,
            block128.points.last().unwrap().1,
            resident128.points.last().unwrap().1,
            b32_kernel * 100.0,
            b128_kernel * 100.0,
        );
    }

    print_series(
        "fig5_speed",
        "simulations/second vs GPU threads (Rocki & Suda Fig. 5)",
        &[leaf64, block32, block128, resident128],
        &args,
    );
    print_series(
        "fig5_speed_phases",
        "host-sequential share of virtual time vs GPU threads (measured phase ledger)",
        &[host32, host128],
        &args,
    );
}
