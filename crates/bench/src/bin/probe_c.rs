//! Diagnostic probe: does a smaller exploration constant fix the shallow
//! batched-update trees of the GPU schemes at scaled-down budgets?
//! (Development tool behind the `gpu_exploration_c` default; see
//! EXPERIMENTS.md "budget caveat".)

use pmcts_bench::BenchArgs;
use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;

fn main() {
    let args = BenchArgs::parse();
    let games = args.games_or(4, 16);
    let budget = SearchBudget::millis(args.move_ms_or(150, 500));
    for c in [1.414, 1.0, 0.7, 0.4, 0.2] {
        let result = MatchSeries::<Reversi>::run(
            games,
            |g| {
                Box::new(MctsPlayer::new(
                    BlockParallelSearcher::<Reversi>::new(
                        MctsConfig::default()
                            .with_seed(args.seed.wrapping_add(g))
                            .with_exploration(c),
                        Device::c2050(),
                        LaunchConfig::new(32, 32),
                    ),
                    budget,
                ))
            },
            |g| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(args.seed.wrapping_add(1000 + g)),
                    ),
                    budget,
                ))
            },
        );
        let (lo, hi) = result.winloss.wilson95();
        println!(
            "C={c:<5}  win ratio {:.3}  (95% CI {lo:.2}-{hi:.2}, {games} games)",
            result.win_ratio()
        );
    }
}
