//! Multi-session serving benchmark: M concurrent Reversi games, every move
//! searched as one session of the shared [`SearchService`], all sessions of
//! a move wave packed into batched kernel launches.
//!
//! Each wave admits one session per live game at a fixed per-move virtual
//! budget and runs the service to completion; the chosen moves advance the
//! games and the next wave begins. The *unbatched* baseline runs the very
//! same sessions (same position, same seed, same budget) back-to-back on
//! solo services — the aggregate-playouts/s ratio between the two is the
//! amortisation win of cross-session batching (one launch overhead and one
//! device round-trip per round instead of per session, and a merged grid
//! that actually covers the SMs).
//!
//! The JSON artifact carries one record per move (the standard phase
//! ledger, now including the `queue` phase, plus the session's virtual
//! latency) and one summary record (sessions-per-launch statistics,
//! aggregate playouts/s batched vs unbatched, and the per-move virtual
//! latency `latency_p50_ns`/`latency_p95_ns`/`latency_p99_ns`). No
//! wall-clock fields: the same seed must produce
//! byte-identical output at any `--host-threads` count — the CI
//! determinism gate diffs runs at different counts.
//!
//! Run: `cargo run --release -p pmcts-bench --bin serve -- [--full]`
//! (`--out DIR` also writes `DIR/serve.json`).
//!
//! # Fleet mode
//!
//! With `--sessions N` and/or `--devices D` the binary instead stresses
//! the fleet layer (`pmcts_core::fleet`, DESIGN.md §14): N single-move
//! sessions offered upfront to a fleet of D service shards, across four
//! scenarios — `nominal` (capacity fits the load), `overload` (admission
//! control must queue, displace and reject), `faulted` (every shard but
//! rank 0 dies mid-run and its sessions re-place), and `single_device`
//! (the same nominal load on one shard, the baseline for the fleet
//! speedup). The artifact (`fleet.json`) carries one record per scenario
//! — admission/placement telemetry, virtual move latency tails
//! `latency_p50_ns`/`latency_p99_ns`/`latency_p999_ns` (note p999, not
//! the serve summary's p95/p99 pair),
//! goodput, per-shard sub-records — plus a summary with the
//! fleet-vs-single-device aggregate throughput ratio. Everything is
//! virtual time: byte-identical at any `--host-threads`.
//!
//! Run: `cargo run --release -p pmcts-bench --bin serve -- --quick
//! --sessions 1000 --devices 8 --out DIR`.

use pmcts_bench::{midgame_position, percentile, phase_record, write_json, BenchArgs, JsonObject};
use pmcts_core::prelude::*;
use pmcts_util::{Rng64, SplitMix64};

/// Per-session search seed: one fresh stream per (game, ply).
fn session_seed(base: u64, game: u64, ply: u64) -> u64 {
    SplitMix64::derive(base, (ply << 32) | game).next_u64()
}

/// One fleet scenario's aggregates, for the cross-scenario summary.
struct ScenarioOut {
    record: JsonObject,
    sims: u64,
    makespan: SimTime,
}

/// Geometry knobs of one fleet scenario.
struct Scenario {
    name: &'static str,
    devices: u64,
    sessions: u64,
    shard_capacity: usize,
    queue_capacity: usize,
    wave_limit: usize,
    faults: FaultPlan,
}

/// Offers `sessions` single-move searches to a fleet of `devices` shards,
/// runs it dry, checks the fleet invariants, and folds the transcript into
/// one JSON record (per-shard sub-records nested).
fn run_scenario(sc: &Scenario, args: &BenchArgs, idx: u64) -> ScenarioOut {
    let budget_time = SimTime::from_millis(args.move_ms_or(2, 5));
    let budget = SearchBudget::VirtualTime(budget_time);
    let tpb = if args.full { 64 } else { 32 };
    let host_threads = args.host_threads_or(2);
    let seed = SplitMix64::derive(args.seed, idx).next_u64();

    let mut config = FleetConfig::new(seed);
    config.threads_per_block = tpb;
    config.shard_capacity = sc.shard_capacity;
    config.queue_capacity = sc.queue_capacity;
    config.wave_limit = sc.wave_limit;
    config.faults = sc.faults;
    let mut fleet: Fleet<Reversi> = Fleet::new(
        config,
        Device::fleet(DeviceSpec::tesla_c2050(), sc.devices as usize, host_threads),
    );
    // Admission capacity as the offer sequence sees it (shards all alive —
    // deaths fire at step time, after admission).
    let capacity = fleet.capacity() as u64;

    for s in 0..sc.sessions {
        let root = midgame_position(SplitMix64::derive(seed, s).next_u64(), (s % 8) as u32);
        let priority = Priority::ALL[(s % 3) as usize];
        fleet.offer(
            root,
            budget,
            MctsConfig::default().with_seed(session_seed(seed, s, 0)),
            priority,
            Some(budget_time),
        );
    }
    fleet.run_to_completion();
    let stats = fleet.stats();
    let completed = fleet.take_completed();
    let shards = fleet.shards();

    assert_eq!(stats.offered, sc.sessions);
    assert_eq!(stats.offered, stats.admitted + stats.rejected);
    assert_eq!(completed.len() as u64, stats.admitted);
    assert!(
        stats.rejected == 0 || stats.offered > capacity,
        "{}: rejects require offered load beyond capacity",
        sc.name
    );
    let placed: u64 = shards.iter().map(|s| s.placed).sum();
    assert_eq!(placed, stats.admitted, "{}: placement accounting", sc.name);

    let mut latencies: Vec<u64> = Vec::with_capacity(completed.len());
    let mut sims = 0u64;
    let mut good = 0u64;
    for c in &completed {
        assert_eq!(c.completed_at - c.admitted_at, c.report.elapsed);
        assert_eq!(c.report.phases.phase_sum(), c.report.elapsed);
        latencies.push(c.report.elapsed.as_nanos());
        sims += c.report.simulations;
        if c.report.best_move.is_some() && c.report.simulations > 0 {
            good += 1;
        }
    }
    latencies.sort_unstable();
    let (latency_p50, latency_p99, latency_p999) = (
        percentile(&latencies, 50.0),
        percentile(&latencies, 99.0),
        percentile(&latencies, 99.9),
    );
    let makespan = fleet.makespan();
    let virtual_sims_per_sec = sims as f64 / makespan.as_secs_f64().max(f64::MIN_POSITIVE);

    let shard_records: Vec<JsonObject> = shards
        .iter()
        .map(|s| {
            JsonObject::new()
                .u64_field("rank", s.rank.0 as u64)
                .u64_field("dead", u64::from(s.dead))
                .u64_field("placed", s.placed)
                .u64_field("replaced_in", s.replaced_in)
                .u64_field("clock_ns", s.clock.as_nanos())
                .u64_field("launches", s.launches)
                .u64_field("blocks", s.blocks)
        })
        .collect();

    let record = JsonObject::new()
        .str_field("kind", "scenario")
        .str_field("name", sc.name)
        .u64_field("devices", sc.devices)
        .u64_field("offered", stats.offered)
        .u64_field("capacity", capacity)
        .u64_field("shard_capacity", sc.shard_capacity as u64)
        .u64_field("queue_capacity", sc.queue_capacity as u64)
        .u64_field("wave_limit", sc.wave_limit as u64)
        .u64_field("budget_ns", budget_time.as_nanos())
        .u64_field("admitted", stats.admitted)
        .u64_field("queued", stats.queued)
        .u64_field("rejected", stats.rejected)
        .u64_field("replaced", stats.replaced)
        .u64_field(
            "admitted_interactive",
            stats.admitted_by_class[Priority::Interactive.index()],
        )
        .u64_field(
            "admitted_standard",
            stats.admitted_by_class[Priority::Standard.index()],
        )
        .u64_field(
            "admitted_batch",
            stats.admitted_by_class[Priority::Batch.index()],
        )
        .u64_field(
            "rejected_interactive",
            stats.rejected_by_class[Priority::Interactive.index()],
        )
        .u64_field(
            "rejected_standard",
            stats.rejected_by_class[Priority::Standard.index()],
        )
        .u64_field(
            "rejected_batch",
            stats.rejected_by_class[Priority::Batch.index()],
        )
        .u64_field("completed", completed.len() as u64)
        .u64_field("good", good)
        .u64_field(
            "dead_shards",
            shards.iter().filter(|s| s.dead).count() as u64,
        )
        .u64_field("latency_p50_ns", latency_p50)
        .u64_field("latency_p99_ns", latency_p99)
        .u64_field("latency_p999_ns", latency_p999)
        .u64_field("makespan_ns", makespan.as_nanos())
        .u64_field("sims", sims)
        .f64_field("virtual_sims_per_sec", virtual_sims_per_sec)
        .obj_array_field("shards", &shard_records);

    eprintln!(
        "# fleet {}: {} offered / {} admitted / {} rejected / {} replaced, \
         goodput {good}/{}, p50 {} p999 {} ns, makespan {} ns",
        sc.name,
        stats.offered,
        stats.admitted,
        stats.rejected,
        stats.replaced,
        completed.len(),
        latency_p50,
        latency_p999,
        makespan.as_nanos(),
    );
    ScenarioOut {
        record,
        sims,
        makespan,
    }
}

/// Fleet stress mode (`--sessions` / `--devices`): run the four scenarios
/// and write `fleet.json`.
fn fleet_mode(args: &BenchArgs) {
    let sessions = args.sessions_or(64, 256);
    let devices = args.devices_or(4, 8);
    let cap = 16;
    let scenarios = [
        // Capacity fits the load (deep queue): everything admitted, full
        // waves, the throughput half of the speedup ratio.
        Scenario {
            name: "nominal",
            devices,
            sessions,
            shard_capacity: cap,
            queue_capacity: sessions as usize,
            wave_limit: cap,
            faults: FaultPlan::none(),
        },
        // Offered load far beyond capacity and waves narrower than
        // residency: admission control rejects, the SLO scheduler starves
        // the latest deadlines first.
        Scenario {
            name: "overload",
            devices,
            sessions,
            shard_capacity: 4,
            queue_capacity: devices as usize,
            wave_limit: 2,
            faults: FaultPlan::none(),
        },
        // Every shard but rank 0 dies mid-run; its sessions re-place.
        Scenario {
            name: "faulted",
            devices,
            sessions,
            shard_capacity: cap,
            queue_capacity: sessions as usize,
            wave_limit: cap,
            faults: FaultPlan::dead_component(
                SplitMix64::derive(args.seed, 0xDEAD).next_u64(),
                1.0,
            ),
        },
        // The nominal load on one shard: the speedup baseline.
        Scenario {
            name: "single_device",
            devices: 1,
            sessions,
            shard_capacity: cap,
            queue_capacity: sessions as usize,
            wave_limit: cap,
            faults: FaultPlan::none(),
        },
    ];

    let mut records: Vec<JsonObject> = Vec::new();
    let mut outs: Vec<(&str, u64, SimTime)> = Vec::new();
    for (idx, sc) in scenarios.iter().enumerate() {
        let out = run_scenario(sc, args, idx as u64);
        outs.push((sc.name, out.sims, out.makespan));
        records.push(out.record);
    }

    let rate = |(_, sims, makespan): &(&str, u64, SimTime)| {
        *sims as f64 / makespan.as_secs_f64().max(f64::MIN_POSITIVE)
    };
    let nominal = outs.iter().find(|o| o.0 == "nominal").expect("nominal ran");
    let single = outs
        .iter()
        .find(|o| o.0 == "single_device")
        .expect("baseline ran");
    let speedup = rate(nominal) / rate(single);
    records.push(
        JsonObject::new()
            .str_field("kind", "summary")
            .u64_field("sessions", sessions)
            .u64_field("devices", devices)
            .u64_field("nominal_sims", nominal.1)
            .u64_field("nominal_makespan_ns", nominal.2.as_nanos())
            .u64_field("single_device_sims", single.1)
            .u64_field("single_device_makespan_ns", single.2.as_nanos())
            .f64_field("speedup_vs_single_device", speedup),
    );
    eprintln!("# fleet: {devices}-shard aggregate throughput {speedup:.2}x single-device");
    write_json("fleet", &records, args);
}

fn main() {
    let args = BenchArgs::parse();
    if args.sessions > 0 || args.devices > 0 {
        fleet_mode(&args);
        return;
    }
    let m = args.games_or(16, 16);
    let budget = SearchBudget::millis(args.move_ms_or(5, 8));
    let max_plies = if args.full { 8 } else { 2 };
    let tpb = if args.full { 64 } else { 32 };
    let host_threads = args.host_threads_or(2);
    let device = || Device::new(DeviceSpec::tesla_c2050()).with_host_threads(host_threads);

    let mut games: Vec<Reversi> = (0..m).map(|_| Reversi::initial()).collect();
    let mut live: Vec<bool> = vec![true; m as usize];

    // One shared service for the whole batched run; its clock accumulates
    // the total virtual serving time across every wave.
    let mut svc = SearchService::<Reversi>::new(device(), tpb, args.seed);
    let mut records: Vec<JsonObject> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut batched_sims = 0u64;
    let mut unbatched_sims = 0u64;
    let mut unbatched_time = SimTime::ZERO;

    for ply in 0..max_plies {
        // Admit one session per live game — and run the identical session
        // solo for the unbatched baseline.
        let mut admitted: Vec<(usize, SessionId)> = Vec::new();
        for g in 0..m as usize {
            if !live[g] || games[g].is_terminal() {
                live[g] = false;
                continue;
            }
            let cfg =
                MctsConfig::default().with_seed(session_seed(args.seed, g as u64, ply as u64));
            let id = svc.admit_sequential(games[g], budget, cfg.clone());
            admitted.push((g, id));

            let mut solo = SearchService::<Reversi>::new(device(), tpb, args.seed);
            solo.admit_sequential(games[g], budget, cfg);
            solo.run_to_completion();
            let done = solo.take_completed();
            unbatched_sims += done[0].report.simulations;
            unbatched_time += solo.clock();
        }
        if admitted.is_empty() {
            break;
        }
        svc.run_to_completion();
        let mut completed = svc.take_completed();
        assert_eq!(completed.len(), admitted.len());
        // Session ids are assigned in admission order, so sorting by id
        // re-aligns completion order with `admitted`.
        completed.sort_by_key(|c| c.id.0);

        for ((g, id), c) in admitted.iter().zip(&completed) {
            assert_eq!(*id, c.id);
            assert_eq!(
                c.report.phases.phase_sum(),
                c.report.elapsed,
                "game {g} ply {ply}: phase ledger must sum to elapsed"
            );
            let latency = c.completed_at - c.admitted_at;
            assert_eq!(latency, c.report.elapsed, "latency equals session time");
            latencies.push(latency.as_nanos());
            batched_sims += c.report.simulations;
            records.push(
                phase_record("serve_move", &c.report)
                    .str_field("kind", "move")
                    .u64_field("game", *g as u64)
                    .u64_field("ply", ply as u64)
                    .u64_field("session", c.id.0)
                    .u64_field("latency_ns", latency.as_nanos()),
            );
            let mv = c
                .report
                .best_move
                .unwrap_or_else(|| panic!("game {g} ply {ply}: no move from live game"));
            games[*g].apply(mv);
        }
    }

    let batched_time = svc.clock();
    let launches = svc.launches();
    let total_batched_sessions: u64 = launches.iter().map(|l| u64::from(l.sessions)).sum();
    let sessions_per_launch_mean = total_batched_sessions as f64 / launches.len() as f64;
    let sessions_per_launch_max = launches.iter().map(|l| l.sessions).max().unwrap_or(0);
    let pps = |sims: u64, t: SimTime| sims as f64 / (t.as_nanos() as f64 / 1e9);
    let batched_pps = pps(batched_sims, batched_time);
    let unbatched_pps = pps(unbatched_sims, unbatched_time);

    latencies.sort_unstable();
    records.push(
        JsonObject::new()
            .str_field("kind", "summary")
            .u64_field("games", m)
            .u64_field("moves", latencies.len() as u64)
            .u64_field(
                "move_budget_ns",
                match budget {
                    SearchBudget::VirtualTime(t) => t.as_nanos(),
                    SearchBudget::Iterations(_) => 0,
                },
            )
            .u64_field("launches", launches.len() as u64)
            .f64_field("sessions_per_launch_mean", sessions_per_launch_mean)
            .u64_field(
                "sessions_per_launch_max",
                u64::from(sessions_per_launch_max),
            )
            .u64_field("batched_sims", batched_sims)
            .u64_field("batched_time_ns", batched_time.as_nanos())
            .u64_field("unbatched_sims", unbatched_sims)
            .u64_field("unbatched_time_ns", unbatched_time.as_nanos())
            .f64_field("batched_playouts_per_sec", batched_pps)
            .f64_field("unbatched_playouts_per_sec", unbatched_pps)
            .f64_field("batched_speedup_vs_unbatched", batched_pps / unbatched_pps)
            .u64_field("latency_p50_ns", percentile(&latencies, 50.0))
            .u64_field("latency_p95_ns", percentile(&latencies, 95.0))
            .u64_field("latency_p99_ns", percentile(&latencies, 99.0)),
    );

    eprintln!(
        "# serve: {} moves over {} games, {} launches, {:.1} sessions/launch, \
         {:.0} batched vs {:.0} unbatched playouts/s ({:.2}x)",
        latencies.len(),
        m,
        launches.len(),
        sessions_per_launch_mean,
        batched_pps,
        unbatched_pps,
        batched_pps / unbatched_pps
    );
    write_json("serve", &records, &args);
}
