//! Multi-session serving benchmark: M concurrent Reversi games, every move
//! searched as one session of the shared [`SearchService`], all sessions of
//! a move wave packed into batched kernel launches.
//!
//! Each wave admits one session per live game at a fixed per-move virtual
//! budget and runs the service to completion; the chosen moves advance the
//! games and the next wave begins. The *unbatched* baseline runs the very
//! same sessions (same position, same seed, same budget) back-to-back on
//! solo services — the aggregate-playouts/s ratio between the two is the
//! amortisation win of cross-session batching (one launch overhead and one
//! device round-trip per round instead of per session, and a merged grid
//! that actually covers the SMs).
//!
//! The JSON artifact carries one record per move (the standard phase
//! ledger, now including the `queue` phase, plus the session's virtual
//! latency) and one summary record (sessions-per-launch statistics,
//! aggregate playouts/s batched vs unbatched, and the per-move virtual
//! latency p50/p95/p99). No wall-clock fields: the same seed must produce
//! byte-identical output at any `--host-threads` count — the CI
//! determinism gate diffs runs at different counts.
//!
//! Run: `cargo run --release -p pmcts-bench --bin serve -- [--full]`
//! (`--out DIR` also writes `DIR/serve.json`).

use pmcts_bench::{phase_record, write_json, BenchArgs, JsonObject};
use pmcts_core::prelude::*;
use pmcts_util::{Rng64, SplitMix64};

/// Per-session search seed: one fresh stream per (game, ply).
fn session_seed(base: u64, game: u64, ply: u64) -> u64 {
    SplitMix64::derive(base, (ply << 32) | game).next_u64()
}

/// Nearest-rank percentile of an ascending-sorted sample.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let args = BenchArgs::parse();
    let m = args.games_or(16, 16);
    let budget = SearchBudget::millis(args.move_ms_or(5, 8));
    let max_plies = if args.full { 8 } else { 2 };
    let tpb = if args.full { 64 } else { 32 };
    let host_threads = args.host_threads_or(2);
    let device = || Device::new(DeviceSpec::tesla_c2050()).with_host_threads(host_threads);

    let mut games: Vec<Reversi> = (0..m).map(|_| Reversi::initial()).collect();
    let mut live: Vec<bool> = vec![true; m as usize];

    // One shared service for the whole batched run; its clock accumulates
    // the total virtual serving time across every wave.
    let mut svc = SearchService::<Reversi>::new(device(), tpb, args.seed);
    let mut records: Vec<JsonObject> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut batched_sims = 0u64;
    let mut unbatched_sims = 0u64;
    let mut unbatched_time = SimTime::ZERO;

    for ply in 0..max_plies {
        // Admit one session per live game — and run the identical session
        // solo for the unbatched baseline.
        let mut admitted: Vec<(usize, SessionId)> = Vec::new();
        for g in 0..m as usize {
            if !live[g] || games[g].is_terminal() {
                live[g] = false;
                continue;
            }
            let cfg =
                MctsConfig::default().with_seed(session_seed(args.seed, g as u64, ply as u64));
            let id = svc.admit_sequential(games[g], budget, cfg.clone());
            admitted.push((g, id));

            let mut solo = SearchService::<Reversi>::new(device(), tpb, args.seed);
            solo.admit_sequential(games[g], budget, cfg);
            solo.run_to_completion();
            let done = solo.take_completed();
            unbatched_sims += done[0].report.simulations;
            unbatched_time += solo.clock();
        }
        if admitted.is_empty() {
            break;
        }
        svc.run_to_completion();
        let mut completed = svc.take_completed();
        assert_eq!(completed.len(), admitted.len());
        // Session ids are assigned in admission order, so sorting by id
        // re-aligns completion order with `admitted`.
        completed.sort_by_key(|c| c.id.0);

        for ((g, id), c) in admitted.iter().zip(&completed) {
            assert_eq!(*id, c.id);
            assert_eq!(
                c.report.phases.phase_sum(),
                c.report.elapsed,
                "game {g} ply {ply}: phase ledger must sum to elapsed"
            );
            let latency = c.completed_at - c.admitted_at;
            assert_eq!(latency, c.report.elapsed, "latency equals session time");
            latencies.push(latency.as_nanos());
            batched_sims += c.report.simulations;
            records.push(
                phase_record("serve_move", &c.report)
                    .str_field("kind", "move")
                    .u64_field("game", *g as u64)
                    .u64_field("ply", ply as u64)
                    .u64_field("session", c.id.0)
                    .u64_field("latency_ns", latency.as_nanos()),
            );
            let mv = c
                .report
                .best_move
                .unwrap_or_else(|| panic!("game {g} ply {ply}: no move from live game"));
            games[*g].apply(mv);
        }
    }

    let batched_time = svc.clock();
    let launches = svc.launches();
    let total_batched_sessions: u64 = launches.iter().map(|l| u64::from(l.sessions)).sum();
    let sessions_per_launch_mean = total_batched_sessions as f64 / launches.len() as f64;
    let sessions_per_launch_max = launches.iter().map(|l| l.sessions).max().unwrap_or(0);
    let pps = |sims: u64, t: SimTime| sims as f64 / (t.as_nanos() as f64 / 1e9);
    let batched_pps = pps(batched_sims, batched_time);
    let unbatched_pps = pps(unbatched_sims, unbatched_time);

    latencies.sort_unstable();
    records.push(
        JsonObject::new()
            .str_field("kind", "summary")
            .u64_field("games", m)
            .u64_field("moves", latencies.len() as u64)
            .u64_field(
                "move_budget_ns",
                match budget {
                    SearchBudget::VirtualTime(t) => t.as_nanos(),
                    SearchBudget::Iterations(_) => 0,
                },
            )
            .u64_field("launches", launches.len() as u64)
            .f64_field("sessions_per_launch_mean", sessions_per_launch_mean)
            .u64_field(
                "sessions_per_launch_max",
                u64::from(sessions_per_launch_max),
            )
            .u64_field("batched_sims", batched_sims)
            .u64_field("batched_time_ns", batched_time.as_nanos())
            .u64_field("unbatched_sims", unbatched_sims)
            .u64_field("unbatched_time_ns", unbatched_time.as_nanos())
            .f64_field("batched_playouts_per_sec", batched_pps)
            .f64_field("unbatched_playouts_per_sec", unbatched_pps)
            .f64_field("batched_speedup_vs_unbatched", batched_pps / unbatched_pps)
            .u64_field("latency_p50_ns", percentile(&latencies, 50.0))
            .u64_field("latency_p95_ns", percentile(&latencies, 95.0))
            .u64_field("latency_p99_ns", percentile(&latencies, 99.0)),
    );

    eprintln!(
        "# serve: {} moves over {} games, {} launches, {:.1} sessions/launch, \
         {:.0} batched vs {:.0} unbatched playouts/s ({:.2}x)",
        latencies.len(),
        m,
        launches.len(),
        sessions_per_launch_mean,
        batched_pps,
        unbatched_pps,
        batched_pps / unbatched_pps
    );
    write_json("serve", &records, &args);
}
