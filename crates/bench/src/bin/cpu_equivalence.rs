//! The paper's headline claim, quantified: "using my GPU MCTS
//! implementation ... one GPU can be compared to 100-200 CPU threads".
//!
//! Method: play the block-parallel GPU player and root-parallel CPU
//! players of increasing thread counts against the same 1-core sequential
//! baseline at equal virtual time per move; convert win ratios to
//! Elo-style strength differences; report the CPU thread count whose
//! strength brackets the GPU's (log-linear interpolation).
//!
//! Run: `cargo run --release -p pmcts-bench --bin cpu_equivalence -- [--full]`

use pmcts_bench::BenchArgs;
use pmcts_core::analysis::elo_diff;
use pmcts_core::arena::MatchSeries;
use pmcts_core::prelude::*;

fn strength_vs_baseline(
    label: &str,
    make: &dyn Fn(u64) -> Box<dyn GamePlayer<Reversi>>,
    args: &BenchArgs,
    games: u64,
    budget: SearchBudget,
) -> f64 {
    let result = MatchSeries::<Reversi>::run(games, make, |g| {
        Box::new(MctsPlayer::new(
            SequentialSearcher::<Reversi>::new(
                MctsConfig::default().with_seed(args.seed.wrapping_add(3000 + g)),
            ),
            budget,
        ))
    });
    let elo = elo_diff(result.win_ratio());
    println!(
        "{label:<44} win ratio {:.3}  ->  {:+6.0} Elo vs baseline",
        result.win_ratio(),
        elo
    );
    elo
}

fn main() {
    let args = BenchArgs::parse();
    let games = args.games_or(4, 32);
    let budget = SearchBudget::millis(args.move_ms_or(150, 500));
    let cpu_counts: Vec<usize> = if args.full {
        vec![1, 2, 4, 8, 16, 32, 64, 128, 256]
    } else {
        vec![4, 32, 128]
    };

    println!("# cpu_equivalence: {games} games per point, equal virtual budget per move\n");

    let gpu_elo = strength_vs_baseline(
        "1 GPU, block parallelism (112 x 128)",
        &|g| {
            Box::new(MctsPlayer::new(
                BlockParallelSearcher::<Reversi>::new(
                    MctsConfig::default().with_seed(args.seed.wrapping_add(g)),
                    Device::c2050(),
                    LaunchConfig::new(112, 128),
                ),
                budget,
            ))
        },
        &args,
        games,
        budget,
    );

    let mut curve: Vec<(usize, f64)> = Vec::new();
    for &threads in &cpu_counts {
        let elo = strength_vs_baseline(
            &format!("{threads} CPU threads, root parallelism"),
            &|g| {
                Box::new(MctsPlayer::new(
                    RootParallelSearcher::<Reversi>::new(
                        MctsConfig::default().with_seed(args.seed.wrapping_add(100 + g)),
                        threads,
                    ),
                    budget,
                ))
            },
            &args,
            games,
            budget,
        );
        curve.push((threads, elo));
    }

    // Locate the GPU between CPU points (log2-linear interpolation).
    let below = curve.iter().rev().find(|&&(_, e)| e <= gpu_elo);
    let above = curve.iter().find(|&&(_, e)| e >= gpu_elo);
    match (below, above) {
        (Some(&(n_lo, e_lo)), Some(&(n_hi, e_hi))) if n_lo <= n_hi && e_hi > e_lo => {
            let t = (gpu_elo - e_lo) / (e_hi - e_lo);
            let log_n = (n_lo as f64).log2() + t * ((n_hi as f64).log2() - (n_lo as f64).log2());
            println!(
                "\n=> 1 GPU ≈ {:.0} root-parallel CPU threads at this budget \
                 (paper: 100-200 at ~1 s/move)",
                log_n.exp2()
            );
        }
        _ => {
            let strongest = curve.last().map(|&(n, e)| (n, e)).unwrap_or((0, 0.0));
            if gpu_elo > strongest.1 {
                println!(
                    "\n=> the GPU is stronger than all {} tested CPU configurations (> {} threads)",
                    curve.len(),
                    strongest.0
                );
            } else {
                println!("\n=> the GPU is weaker than every tested CPU configuration");
            }
        }
    }
}
