//! Shared harness for the figure regenerators and ablation benches.
//!
//! Every experiment binary follows the same shape: parse a few flags
//! ([`BenchArgs`]), build players/searchers from `pmcts-core`, sweep a
//! parameter, and print labelled TSV series ([`print_series`]) that
//! correspond one-to-one to the curves of the paper's figures. Output goes
//! to stdout and, with `--out DIR`, to `DIR/<name>.tsv`.

use pmcts_games::{Game, Reversi};
use pmcts_util::stats::Series;
use pmcts_util::SplitMix64;
use std::io::Write;

/// Command-line arguments shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Paper-sized sweep (slow) instead of the CI-sized default.
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Override for games per configuration (0 = binary default).
    pub games: u64,
    /// Override for the per-move virtual budget in milliseconds
    /// (0 = binary default).
    pub move_ms: u64,
    /// Override for real host worker threads (0 = binary default). Virtual
    /// results are host-thread independent; the CI determinism gate runs
    /// the same experiment at different counts and diffs the output.
    pub host_threads: usize,
    /// Fleet geometry: sessions to offer (0 = binary default; `serve`
    /// only).
    pub sessions: u64,
    /// Fleet geometry: simulated devices / service shards (0 = binary
    /// default; `serve` only).
    pub devices: u64,
    /// Optional output directory for TSV files.
    pub out_dir: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            full: false,
            seed: 0xF1605EED,
            games: 0,
            move_ms: 0,
            host_threads: 0,
            sessions: 0,
            devices: 0,
            out_dir: None,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => args.full = true,
                "--quick" => args.full = false,
                "--seed" => args.seed = expect_num(&mut it, "--seed"),
                "--games" => args.games = expect_num(&mut it, "--games"),
                "--move-ms" => args.move_ms = expect_num(&mut it, "--move-ms"),
                "--host-threads" => {
                    args.host_threads = expect_num(&mut it, "--host-threads") as usize
                }
                "--sessions" => args.sessions = expect_num(&mut it, "--sessions"),
                "--devices" => args.devices = expect_num(&mut it, "--devices"),
                "--out" => {
                    args.out_dir = Some(it.next().unwrap_or_else(|| usage("--out needs a path")))
                }
                "--help" | "-h" => usage("usage"),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Games per configuration, honouring the override.
    pub fn games_or(&self, default_quick: u64, default_full: u64) -> u64 {
        if self.games > 0 {
            self.games
        } else if self.full {
            default_full
        } else {
            default_quick
        }
    }

    /// Per-move virtual budget (ms), honouring the override.
    pub fn move_ms_or(&self, default_quick: u64, default_full: u64) -> u64 {
        if self.move_ms > 0 {
            self.move_ms
        } else if self.full {
            default_full
        } else {
            default_quick
        }
    }

    /// Real host worker threads, honouring the override.
    pub fn host_threads_or(&self, default: usize) -> usize {
        if self.host_threads > 0 {
            self.host_threads
        } else {
            default
        }
    }

    /// Fleet sessions to offer, honouring the override.
    pub fn sessions_or(&self, default_quick: u64, default_full: u64) -> u64 {
        if self.sessions > 0 {
            self.sessions
        } else if self.full {
            default_full
        } else {
            default_quick
        }
    }

    /// Fleet devices (service shards), honouring the override.
    pub fn devices_or(&self, default_quick: u64, default_full: u64) -> u64 {
        if self.devices > 0 {
            self.devices
        } else if self.full {
            default_full
        } else {
            default_quick
        }
    }
}

fn expect_num(it: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}\n\nflags:\n  --quick          CI-sized sweep (default)\n  --full           paper-sized sweep\n  --seed N         base RNG seed\n  --games N        games per configuration\n  --move-ms N      per-move virtual budget in milliseconds\n  --host-threads N real host worker threads (results are unaffected)\n  --sessions N     fleet sessions to offer (serve only)\n  --devices N      fleet devices / service shards (serve only)\n  --out DIR        also write output files (TSV/JSON) to DIR"
    );
    std::process::exit(2)
}

/// Prints series as TSV: a comment header, then `x<TAB>y` blocks per
/// series, blank-line separated — easy to plot and to diff.
pub fn print_series(name: &str, title: &str, series: &[Series], args: &BenchArgs) {
    let mut text = String::new();
    text.push_str(&format!("# {name}: {title}\n"));
    for s in series {
        text.push_str(&format!("## {}\n", s.label));
        for &(x, y) in &s.points {
            text.push_str(&format!("{x}\t{y:.6}\n"));
        }
        text.push('\n');
    }
    print!("{text}");
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        let path = format!("{dir}/{name}.tsv");
        let mut f = std::fs::File::create(&path).expect("create tsv");
        f.write_all(text.as_bytes()).expect("write tsv");
        eprintln!("wrote {path}");
    }
}

/// A tiny hand-rolled JSON object builder (the workspace carries no JSON
/// dependency): fields keep insertion order, strings are escaped, floats
/// are emitted finite-or-zero so output always parses.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        self.fields.push((key.to_string(), json_string(value)));
        self
    }

    /// Adds an integer field.
    pub fn u64_field(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field (non-finite values become 0 so the output stays
    /// valid JSON).
    pub fn f64_field(mut self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() { value } else { 0.0 };
        self.fields.push((key.to_string(), format!("{v}")));
        self
    }

    /// Adds a nested array-of-objects field (e.g. per-shard records inside
    /// a fleet summary).
    pub fn obj_array_field(mut self, key: &str, values: &[JsonObject]) -> Self {
        let body: Vec<String> = values.iter().map(|o| o.render()).collect();
        self.fields
            .push((key.to_string(), format!("[{}]", body.join(", "))));
        self
    }

    /// Renders `{"k": v, ...}`.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}: {v}", json_string(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Escapes and quotes a JSON string.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Builds the JSON record for one scheme's
/// [`SearchReport`](pmcts_core::prelude::SearchReport) — the unit the
/// `profile` binary emits: identity, totals, the exact seven-phase ledger
/// (nanoseconds), overlap/overshoot measures, and folded device
/// statistics.
pub fn phase_record<M>(scheme: &str, report: &pmcts_core::prelude::SearchReport<M>) -> JsonObject {
    let p = &report.phases;
    JsonObject::new()
        .str_field("scheme", scheme)
        .u64_field("simulations", report.simulations)
        .u64_field("iterations", report.iterations)
        .u64_field("tree_nodes", report.tree_nodes)
        .u64_field("max_depth", report.max_depth as u64)
        .u64_field("elapsed_ns", report.elapsed.as_nanos())
        .f64_field("sims_per_second", report.sims_per_second())
        .u64_field("select_ns", p.select.as_nanos())
        .u64_field("expand_ns", p.expand.as_nanos())
        .u64_field("queue_ns", p.queue.as_nanos())
        .u64_field("upload_ns", p.upload.as_nanos())
        .u64_field("kernel_ns", p.kernel.as_nanos())
        .u64_field("readback_ns", p.readback.as_nanos())
        .u64_field("merge_ns", p.merge.as_nanos())
        .u64_field("shadow_overlap_ns", p.shadow_overlap.as_nanos())
        .u64_field("overlap_saved_ns", p.overlap_saved.as_nanos())
        .u64_field("budget_overshoot_ns", p.budget_overshoot.as_nanos())
        .u64_field("expansions", p.expansions)
        .u64_field("kernel_launches", p.kernel_launches)
        .u64_field("shadow_iterations", p.shadow_iterations)
        .u64_field("warp_steps", p.warp_steps)
        .u64_field("lane_steps", p.lane_steps)
        .u64_field("idle_lane_steps", p.idle_lane_steps)
        .f64_field("kernel_share", p.kernel_share())
        .f64_field("mean_occupancy", p.mean_occupancy())
        .f64_field("lane_efficiency", p.lane_efficiency())
        .u64_field("faults_injected", p.faults.injected)
        .u64_field("faults_retried", p.faults.retried)
        .u64_field("faults_degraded", p.faults.degraded)
        .u64_field("faults_excluded", p.faults.excluded)
}

/// Prints `records` as a JSON array to stdout and, with `--out DIR`, writes
/// `DIR/<name>.json` — the JSON sibling of [`print_series`].
pub fn write_json(name: &str, records: &[JsonObject], args: &BenchArgs) {
    let mut text = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        text.push_str("  ");
        text.push_str(&r.render());
        if i + 1 < records.len() {
            text.push(',');
        }
        text.push('\n');
    }
    text.push_str("]\n");
    print!("{text}");
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        let path = format!("{dir}/{name}.json");
        let mut f = std::fs::File::create(&path).expect("create json");
        f.write_all(text.as_bytes()).expect("write json");
        eprintln!("wrote {path}");
    }
}

/// Nearest-rank percentile of an ascending-sorted sample. `p` is in
/// percent (`50.0` = median). The rank is clamped into the sample, so
/// high percentiles on small samples (e.g. `p = 99.9` with ten points)
/// return the maximum instead of indexing past the end, and `p = 0.0`
/// returns the minimum.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A reproducible mid-game Reversi position: `plies` uniformly random moves
/// from the initial position under `seed`. The speed experiments measure on
/// mid-game positions because the branching factor (and hence kernel
/// divergence) is at its Reversi-typical level there.
pub fn midgame_position(seed: u64, plies: u32) -> Reversi {
    midgame_position_of::<Reversi>(seed, plies)
}

/// [`midgame_position`] for any game: `plies` uniformly random moves from
/// the initial position, drawn from the same `seed`-derived stream. The
/// Reversi wrapper above delegates here, so its positions are unchanged.
pub fn midgame_position_of<G: Game>(seed: u64, plies: u32) -> G {
    let mut state = G::initial();
    let mut rng = SplitMix64::new(seed ^ 0x4D1D_6A3E);
    for _ in 0..plies {
        match state.random_move(&mut rng) {
            Some(mv) => state.apply(mv),
            None => break,
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::Game;

    #[test]
    fn midgame_position_is_reproducible() {
        let a = midgame_position(1, 20);
        let b = midgame_position(1, 20);
        assert_eq!(a, b);
        assert!(a.occupancy() >= 20, "20 plies placed at least 20 discs");
        assert!(!a.is_terminal());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(midgame_position(1, 20), midgame_position(2, 20));
    }

    #[test]
    fn json_object_renders_escaped_ordered_fields() {
        let o = JsonObject::new()
            .str_field("name", "a \"quoted\"\nvalue")
            .u64_field("n", 42)
            .f64_field("x", 0.5)
            .f64_field("bad", f64::NAN);
        assert_eq!(
            o.render(),
            r#"{"name": "a \"quoted\"\nvalue", "n": 42, "x": 0.5, "bad": 0}"#
        );
    }

    #[test]
    fn percentile_single_element_is_that_element_at_any_p() {
        let s = [42u64];
        assert_eq!(percentile(&s, 0.0), 42);
        assert_eq!(percentile(&s, 50.0), 42);
        assert_eq!(percentile(&s, 99.9), 42);
        assert_eq!(percentile(&s, 100.0), 42);
    }

    #[test]
    fn percentile_high_p_on_small_sample_clamps_to_max() {
        // ceil(0.999 * 10) = 10 — exactly the last rank, no out-of-bounds.
        let s: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&s, 99.9), 10);
        // ceil(0.999 * 2) = 2 on a pair.
        assert_eq!(percentile(&[3, 7], 99.9), 7);
        // p = 0 ranks to 0 and clamps up to the minimum.
        assert_eq!(percentile(&s, 0.0), 1);
    }

    #[test]
    fn percentile_nearest_rank_median() {
        let s: Vec<u64> = (1..=10).collect();
        assert_eq!(percentile(&s, 50.0), 5);
        assert_eq!(percentile(&s, 95.0), 10);
        assert_eq!(percentile(&s, 90.0), 9);
    }

    #[test]
    fn args_defaults() {
        let a = BenchArgs::default();
        assert!(!a.full);
        assert_eq!(a.games_or(5, 50), 5);
        assert_eq!(a.move_ms_or(10, 100), 10);
        let mut b = a.clone();
        b.full = true;
        assert_eq!(b.games_or(5, 50), 50);
        b.games = 7;
        assert_eq!(b.games_or(5, 50), 7);
    }
}
