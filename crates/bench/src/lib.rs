//! Shared harness for the figure regenerators and ablation benches.
//!
//! Every experiment binary follows the same shape: parse a few flags
//! ([`BenchArgs`]), build players/searchers from `pmcts-core`, sweep a
//! parameter, and print labelled TSV series ([`print_series`]) that
//! correspond one-to-one to the curves of the paper's figures. Output goes
//! to stdout and, with `--out DIR`, to `DIR/<name>.tsv`.

use pmcts_games::{Game, Reversi};
use pmcts_util::stats::Series;
use pmcts_util::SplitMix64;
use std::io::Write;

/// Command-line arguments shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Paper-sized sweep (slow) instead of the CI-sized default.
    pub full: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Override for games per configuration (0 = binary default).
    pub games: u64,
    /// Override for the per-move virtual budget in milliseconds
    /// (0 = binary default).
    pub move_ms: u64,
    /// Optional output directory for TSV files.
    pub out_dir: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            full: false,
            seed: 0xF1605EED,
            games: 0,
            move_ms: 0,
            out_dir: None,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`. Unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => args.full = true,
                "--quick" => args.full = false,
                "--seed" => args.seed = expect_num(&mut it, "--seed"),
                "--games" => args.games = expect_num(&mut it, "--games"),
                "--move-ms" => args.move_ms = expect_num(&mut it, "--move-ms"),
                "--out" => {
                    args.out_dir = Some(it.next().unwrap_or_else(|| usage("--out needs a path")))
                }
                "--help" | "-h" => usage("usage"),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Games per configuration, honouring the override.
    pub fn games_or(&self, default_quick: u64, default_full: u64) -> u64 {
        if self.games > 0 {
            self.games
        } else if self.full {
            default_full
        } else {
            default_quick
        }
    }

    /// Per-move virtual budget (ms), honouring the override.
    pub fn move_ms_or(&self, default_quick: u64, default_full: u64) -> u64 {
        if self.move_ms > 0 {
            self.move_ms
        } else if self.full {
            default_full
        } else {
            default_quick
        }
    }
}

fn expect_num(it: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}\n\nflags:\n  --quick          CI-sized sweep (default)\n  --full           paper-sized sweep\n  --seed N         base RNG seed\n  --games N        games per configuration\n  --move-ms N      per-move virtual budget in milliseconds\n  --out DIR        also write TSV files to DIR"
    );
    std::process::exit(2)
}

/// Prints series as TSV: a comment header, then `x<TAB>y` blocks per
/// series, blank-line separated — easy to plot and to diff.
pub fn print_series(name: &str, title: &str, series: &[Series], args: &BenchArgs) {
    let mut text = String::new();
    text.push_str(&format!("# {name}: {title}\n"));
    for s in series {
        text.push_str(&format!("## {}\n", s.label));
        for &(x, y) in &s.points {
            text.push_str(&format!("{x}\t{y:.6}\n"));
        }
        text.push('\n');
    }
    print!("{text}");
    if let Some(dir) = &args.out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        let path = format!("{dir}/{name}.tsv");
        let mut f = std::fs::File::create(&path).expect("create tsv");
        f.write_all(text.as_bytes()).expect("write tsv");
        eprintln!("wrote {path}");
    }
}

/// A reproducible mid-game Reversi position: `plies` uniformly random moves
/// from the initial position under `seed`. The speed experiments measure on
/// mid-game positions because the branching factor (and hence kernel
/// divergence) is at its Reversi-typical level there.
pub fn midgame_position(seed: u64, plies: u32) -> Reversi {
    let mut state = Reversi::initial();
    let mut rng = SplitMix64::new(seed ^ 0x4D1D_6A3E);
    for _ in 0..plies {
        match state.random_move(&mut rng) {
            Some(mv) => state.apply(mv),
            None => break,
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::Game;

    #[test]
    fn midgame_position_is_reproducible() {
        let a = midgame_position(1, 20);
        let b = midgame_position(1, 20);
        assert_eq!(a, b);
        assert!(a.occupancy() >= 20, "20 plies placed at least 20 discs");
        assert!(!a.is_terminal());
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(midgame_position(1, 20), midgame_position(2, 20));
    }

    #[test]
    fn args_defaults() {
        let a = BenchArgs::default();
        assert!(!a.full);
        assert_eq!(a.games_or(5, 50), 5);
        assert_eq!(a.move_ms_or(10, 100), 10);
        let mut b = a.clone();
        b.full = true;
        assert_eq!(b.games_or(5, 50), 50);
        b.games = 7;
        assert_eq!(b.games_or(5, 50), 7);
    }
}
