//! A simulated MPI layer.
//!
//! The paper's multi-GPU experiment (its Fig. 9) distributes root-parallel
//! MCTS over GPUs with MPI. This crate substitutes a faithful in-process
//! model: each rank is an OS thread, point-to-point messages are typed
//! values over channels, and the usual collectives (barrier, broadcast,
//! reduce, allreduce, gather) are built on top with deterministic,
//! rank-ordered reduction so results are reproducible.
//!
//! Communication *cost* is modelled, not measured: a [`NetworkModel`]
//! charges per-message latency plus bandwidth, and collectives cost
//! `ceil(log2(ranks))` rounds, the complexity of tree/dissemination
//! algorithms in real MPI implementations. Searchers add these virtual
//! costs to their search budgets the same way they charge simulated kernel
//! time.
//!
//! ```
//! use pmcts_mpi_sim::{NetworkModel, World};
//!
//! // Sum each rank's id with an allreduce on 4 ranks.
//! let results = World::run(4, NetworkModel::infiniband(), |comm| {
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! });
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```

pub mod comm;
pub mod network;
pub mod world;

pub use comm::{Comm, Rank};
pub use network::NetworkModel;
pub use world::World;
