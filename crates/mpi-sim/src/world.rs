//! World setup: spawn ranks, wire channels, collect results.

use crate::comm::{Comm, Envelope};
use crate::network::NetworkModel;
use crossbeam::channel::unbounded;

/// Entry point of the simulated MPI runtime.
pub struct World;

impl World {
    /// Runs `f` on `size` ranks, each on its own thread, and returns the
    /// per-rank results in rank order (like `mpirun` + a final gather).
    ///
    /// `f` receives the rank's [`Comm`]. The call blocks until every rank
    /// returns; a panic in any rank propagates.
    ///
    /// # Panics
    /// Panics if `size == 0` or if any rank panics.
    pub fn run<T, F>(size: usize, net: NetworkModel, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Sync,
    {
        assert!(size > 0, "world must have at least one rank");

        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }

        let mut results: Vec<Option<T>> = (0..size).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, inbox)| {
                    let senders = senders.clone();
                    let f = &f;
                    scope.spawn(move |_| f(Comm::new(rank, size, net, senders, inbox)))
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                results[rank] = Some(h.join().expect("rank panicked"));
            }
        })
        .expect("mpi-sim scope failed");

        results
            .into_iter()
            .map(|r| r.expect("rank result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal() -> NetworkModel {
        NetworkModel::ideal()
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, ideal(), |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.allreduce(5u32, |a, b| a + b)
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = World::run(2, ideal(), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, String::from("ping"));
                comm.recv::<String>(1, 8)
            } else {
                let msg: String = comm.recv(0, 7);
                comm.send(0, 8, format!("{msg}-pong"));
                msg
            }
        });
        assert_eq!(out, vec!["ping-pong".to_string(), "ping".to_string()]);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let out = World::run(2, ideal(), |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send(1, 2, 20u32);
                comm.send(1, 1, 10u32);
                0
            } else {
                let first: u32 = comm.recv(0, 1);
                let second: u32 = comm.recv(0, 2);
                assert_eq!((first, second), (10, 20));
                first + second
            }
        });
        assert_eq!(out[1], 30);
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = World::run(4, ideal(), |comm| {
            let v = if comm.rank() == 2 { Some(99u64) } else { None };
            comm.broadcast(2, v)
        });
        assert_eq!(out, vec![99, 99, 99, 99]);
    }

    #[test]
    fn reduce_collects_in_rank_order() {
        // Non-commutative fold: string concatenation proves ordering.
        let out = World::run(3, ideal(), |comm| {
            comm.reduce(0, comm.rank().to_string(), |a, b| a + &b)
        });
        assert_eq!(out[0], Some("012".to_string()));
        assert_eq!(out[1], None);
        assert_eq!(out[2], None);
    }

    #[test]
    fn allreduce_sums_on_all_ranks() {
        let out = World::run(5, ideal(), |comm| {
            comm.allreduce(comm.rank() as u64, |a, b| a + b)
        });
        assert_eq!(out, vec![10; 5]);
    }

    #[test]
    fn allreduce_sparse_folds_survivors_in_rank_order() {
        // Rank 2 contributes nothing; non-commutative fold proves ordering
        // over exactly the survivors.
        let out = World::run(4, ideal(), |comm| {
            let v = (comm.rank() != 2).then(|| comm.rank().to_string());
            comm.allreduce_sparse(v, |a, b| a + &b)
        });
        assert_eq!(out, vec![Some("013".to_string()); 4]);
    }

    #[test]
    fn allreduce_sparse_with_all_contributors_matches_allreduce() {
        let out = World::run(5, ideal(), |comm| {
            let dense = comm.allreduce(comm.rank() as u64, |a, b| a + b);
            let sparse = comm.allreduce_sparse(Some(comm.rank() as u64), |a, b| a + b);
            (dense, sparse)
        });
        for (dense, sparse) in out {
            assert_eq!(sparse, Some(dense));
        }
    }

    #[test]
    fn allreduce_sparse_with_no_contributors_is_none() {
        let out = World::run(3, ideal(), |comm| {
            comm.allreduce_sparse(None::<u32>, |a, b| a + b)
        });
        assert_eq!(out, vec![None; 3]);
    }

    #[test]
    fn allreduce_sparse_survives_dead_root_contribution() {
        // Rank 0 coordinates the collective but contributes nothing.
        let out = World::run(3, ideal(), |comm| {
            let v = (comm.rank() != 0).then_some(1u32);
            comm.allreduce_sparse(v, |a, b| a + b)
        });
        assert_eq!(out, vec![Some(2); 3]);
    }

    #[test]
    fn gather_in_rank_order() {
        let out = World::run(4, ideal(), |comm| comm.gather(1, comm.rank() as u32 * 2));
        assert_eq!(out[1], Some(vec![0, 2, 4, 6]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        World::run(8, ideal(), |comm| {
            arrived.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must have arrived.
            assert_eq!(arrived.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn consecutive_collectives_do_not_interfere() {
        let out = World::run(3, ideal(), |comm| {
            let a = comm.allreduce(1u32, |x, y| x + y);
            let b = comm.allreduce(10u32, |x, y| x + y);
            comm.barrier();
            let c = comm.allreduce(100u32, |x, y| x + y);
            (a, b, c)
        });
        for r in out {
            assert_eq!(r, (3, 30, 300));
        }
    }

    #[test]
    // The offending rank panics with "tag ... is reserved"; World::run
    // surfaces it as a rank failure on the spawning thread.
    #[should_panic(expected = "rank panicked")]
    fn reserved_tags_rejected() {
        World::run(1, ideal(), |comm| {
            comm.send(0, 1 << 63, 0u8);
        });
    }

    #[test]
    fn many_ranks_stress() {
        let out = World::run(32, ideal(), |comm| {
            let sum = comm.allreduce(comm.rank() as u64, |a, b| a + b);
            comm.barrier();
            sum
        });
        assert_eq!(out, vec![(0..32u64).sum::<u64>(); 32]);
    }

    #[test]
    fn sendrecv_exchanges_between_partners() {
        let out = World::run(2, ideal(), |comm| {
            let partner = 1 - comm.rank();
            let got: u32 = comm.sendrecv(partner, 5, comm.rank() as u32 * 10);
            got
        });
        assert_eq!(out, vec![10, 0]);
    }

    #[test]
    fn scatter_distributes_by_rank() {
        let out = World::run(4, ideal(), |comm| {
            let values = if comm.rank() == 0 {
                Some(vec![100u32, 101, 102, 103])
            } else {
                None
            };
            comm.scatter(0, values)
        });
        assert_eq!(out, vec![100, 101, 102, 103]);
    }

    #[test]
    fn scatter_from_nonzero_root() {
        let out = World::run(3, ideal(), |comm| {
            let values = if comm.rank() == 2 {
                Some(vec![7u8, 8, 9])
            } else {
                None
            };
            comm.scatter(2, values)
        });
        assert_eq!(out, vec![7, 8, 9]);
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let out = World::run(4, ideal(), |comm| comm.allgather(comm.rank() as u64 * 3));
        for v in out {
            assert_eq!(v, vec![0, 3, 6, 9]);
        }
    }

    #[test]
    fn type_mismatch_panics_loudly() {
        // Sending u32 but receiving u64 must panic with a clear message.
        let result = std::panic::catch_unwind(|| {
            World::run(2, ideal(), |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, 42u32);
                } else {
                    let _: u64 = comm.recv(0, 1);
                }
            });
        });
        assert!(result.is_err());
    }
}
