//! The per-rank communicator: point-to-point messages and collectives.

use crate::network::NetworkModel;
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::cell::RefCell;

/// An envelope travelling between ranks.
pub(crate) struct Envelope {
    pub(crate) src: usize,
    pub(crate) tag: u64,
    pub(crate) payload: Box<dyn Any + Send>,
}

/// Tags with the top bit set are reserved for collectives.
const COLLECTIVE_TAG: u64 = 1 << 63;

/// A rank identity, `0..world size`.
///
/// The raw `usize` APIs on [`Comm`] predate this type; it exists so layers
/// *above* the communicator (the fleet sharding in `pmcts-core` uses one
/// simulated device per rank) can carry rank identity without inventing a
/// parallel id space. Ordering is numeric rank order — the same order every
/// deterministic tie-break in the workspace uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(pub usize);

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A rank's handle to the simulated MPI world.
///
/// One `Comm` is owned by each rank thread; it is not `Sync` (MPI
/// communicators are per-process too). Messages are typed: `recv::<T>` must
/// match the type that was sent, otherwise it panics — in real MPI this
/// would be a datatype mismatch, undefined behaviour; here it fails loudly.
pub struct Comm {
    rank: usize,
    size: usize,
    net: NetworkModel,
    senders: Vec<Sender<Envelope>>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv` (out-of-order
    /// arrivals with different src/tag).
    stash: RefCell<Vec<Envelope>>,
    /// Per-collective-call sequence number, so back-to-back collectives
    /// cannot confuse each other's messages.
    coll_seq: std::cell::Cell<u64>,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        net: NetworkModel,
        senders: Vec<Sender<Envelope>>,
        inbox: Receiver<Envelope>,
    ) -> Self {
        Comm {
            rank,
            size,
            net,
            senders,
            inbox,
            stash: RefCell::new(Vec::new()),
            coll_seq: std::cell::Cell::new(0),
        }
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This rank's id as a typed [`Rank`].
    #[inline]
    pub fn rank_id(&self) -> Rank {
        Rank(self.rank)
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The network cost model (for charging virtual time).
    #[inline]
    pub fn network(&self) -> &NetworkModel {
        &self.net
    }

    /// Sends `value` to `dest` with a user `tag`.
    ///
    /// # Panics
    /// Panics if `dest` is out of range or `tag` uses the reserved top bit.
    pub fn send<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        assert!(tag & COLLECTIVE_TAG == 0, "tag {tag:#x} is reserved");
        self.send_raw(dest, tag, value);
    }

    fn send_raw<T: Send + 'static>(&self, dest: usize, tag: u64, value: T) {
        assert!(
            dest < self.size,
            "dest {dest} out of range (size {})",
            self.size
        );
        self.senders[dest]
            .send(Envelope {
                src: self.rank,
                tag,
                payload: Box::new(value),
            })
            .expect("destination rank hung up");
    }

    /// Receives the next message from `src` with `tag`, blocking.
    ///
    /// Messages from other (src, tag) pairs arriving in between are stashed
    /// and delivered to their own matching `recv` calls later.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        assert!(tag & COLLECTIVE_TAG == 0, "tag {tag:#x} is reserved");
        self.recv_raw(src, tag)
    }

    fn recv_raw<T: Send + 'static>(&self, src: usize, tag: u64) -> T {
        // First check the stash.
        {
            let mut stash = self.stash.borrow_mut();
            if let Some(pos) = stash.iter().position(|e| e.src == src && e.tag == tag) {
                let env = stash.swap_remove(pos);
                return Self::downcast(env, src, tag);
            }
        }
        // Then drain the inbox until a match arrives.
        loop {
            let env = self.inbox.recv().expect("world shut down during recv");
            if env.src == src && env.tag == tag {
                return Self::downcast(env, src, tag);
            }
            self.stash.borrow_mut().push(env);
        }
    }

    fn downcast<T: 'static>(env: Envelope, src: usize, tag: u64) -> T {
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch receiving from rank {src} tag {:#x}: expected {}",
                tag,
                std::any::type_name::<T>()
            )
        })
    }

    fn next_coll_tag(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        COLLECTIVE_TAG | seq
    }

    /// Synchronises all ranks (central-coordinator barrier).
    pub fn barrier(&self) {
        let tag = self.next_coll_tag();
        if self.rank == 0 {
            for src in 1..self.size {
                let _: () = self.recv_raw(src, tag);
            }
            for dest in 1..self.size {
                self.send_raw(dest, tag, ());
            }
        } else {
            self.send_raw(0, tag, ());
            let _: () = self.recv_raw(0, tag);
        }
    }

    /// Broadcasts a value from `root` to every rank. The root must pass
    /// `Some(value)`; other ranks pass `None` (their argument is ignored,
    /// mirroring MPI_Bcast's in-place receive buffer).
    ///
    /// # Panics
    /// Panics if the root passes `None`.
    pub fn broadcast<T: Clone + Send + 'static>(&self, root: usize, value: Option<T>) -> T {
        assert!(root < self.size);
        let tag = self.next_coll_tag();
        if self.rank == root {
            let value = value.expect("broadcast root must supply a value");
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, tag, value.clone());
                }
            }
            value
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// Reduces every rank's `value` to `root` with `fold`, combining in
    /// ascending rank order (deterministic for non-commutative folds).
    /// Returns `Some(result)` on the root, `None` elsewhere.
    // Indexing by rank is the point here: arrival order must not matter.
    #[allow(clippy::needless_range_loop)]
    pub fn reduce<T, F>(&self, root: usize, value: T, fold: F) -> Option<T>
    where
        T: Send + 'static,
        F: FnMut(T, T) -> T,
    {
        assert!(root < self.size);
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut parts: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            parts[root] = Some(value);
            for src in 0..self.size {
                if src != root {
                    parts[src] = Some(self.recv_raw(src, tag));
                }
            }
            let mut iter = parts.into_iter().flatten();
            let first = iter.next().expect("at least one rank");
            Some(iter.fold(first, fold))
        } else {
            self.send_raw(root, tag, value);
            None
        }
    }

    /// Reduce-to-all: every rank receives the rank-ordered fold of all
    /// values.
    pub fn allreduce<T, F>(&self, value: T, fold: F) -> T
    where
        T: Clone + Send + 'static,
        F: FnMut(T, T) -> T,
    {
        let reduced = self.reduce(0, value, fold);
        self.broadcast(0, reduced)
    }

    /// Allreduce over the ranks that have something to contribute.
    ///
    /// Every rank participates in the collective (so no rank can deadlock
    /// waiting for a peer that has nothing to say), but a rank may pass
    /// `None` — a dead rank's stand-in, or a contribution lost in transit.
    /// The surviving values are folded in ascending rank order and the fold
    /// is broadcast back; returns `None` only if *every* rank passed `None`.
    ///
    /// This is the degraded-mode collective behind the fault-tolerant
    /// multi-GPU / multi-node searchers: merged root statistics stay
    /// additive over exactly the surviving contributors.
    pub fn allreduce_sparse<T, F>(&self, value: Option<T>, fold: F) -> Option<T>
    where
        T: Clone + Send + 'static,
        F: FnMut(T, T) -> T,
    {
        let gathered = self.gather(0, value);
        let reduced = gathered.map(|parts| {
            let mut iter = parts.into_iter().flatten();
            iter.next().map(|first| iter.fold(first, fold))
        });
        self.broadcast(0, reduced)
    }

    /// Combined send+receive with one partner (deadlock-free even when both
    /// sides target each other, because sends never block).
    pub fn sendrecv<T: Send + 'static, U: Send + 'static>(
        &self,
        partner: usize,
        tag: u64,
        value: T,
    ) -> U {
        self.send(partner, tag, value);
        self.recv(partner, tag)
    }

    /// Scatters `values[i]` from `root` to rank `i`. The root passes
    /// `Some(values)` (length = world size); other ranks pass `None`.
    ///
    /// # Panics
    /// Panics on the root if `values` is missing or has the wrong length.
    pub fn scatter<T: Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> T {
        assert!(root < self.size);
        let tag = self.next_coll_tag();
        if self.rank == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(values.len(), self.size, "scatter needs one value per rank");
            let mut own = None;
            for (dest, v) in values.into_iter().enumerate() {
                if dest == root {
                    own = Some(v);
                } else {
                    self.send_raw(dest, tag, v);
                }
            }
            own.expect("root value present")
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// Gather-to-all: every rank receives every rank's value, in rank
    /// order (gather to rank 0 + broadcast).
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        let gathered = self.gather(0, value);
        self.broadcast(0, gathered)
    }

    /// Gathers every rank's `value` to `root` in rank order.
    #[allow(clippy::needless_range_loop)]
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        assert!(root < self.size);
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
            out[root] = Some(value);
            for src in 0..self.size {
                if src != root {
                    out[src] = Some(self.recv_raw(src, tag));
                }
            }
            Some(out.into_iter().map(|v| v.expect("gathered")).collect())
        } else {
            self.send_raw(root, tag, value);
            None
        }
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}
