//! Virtual network cost model.

use pmcts_util::SimTime;

/// Latency/bandwidth model used to charge virtual time for communication.
///
/// The model is the classic LogP-style first-order approximation: a message
/// of `b` bytes costs `latency + b / bandwidth`, and a collective over `n`
/// ranks costs `ceil(log2 n)` message rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetworkModel {
    /// One-way small-message latency.
    pub latency: SimTime,
    /// Bandwidth in bytes per nanosecond (≈ GB/s).
    pub bytes_per_ns: u64,
}

impl NetworkModel {
    /// QDR InfiniBand, the TSUBAME 2.0 interconnect: ~2 µs latency,
    /// ~4 GB/s effective per-link bandwidth.
    pub fn infiniband() -> Self {
        NetworkModel {
            latency: SimTime::from_micros(2),
            bytes_per_ns: 4,
        }
    }

    /// A zero-cost network for unit tests.
    pub fn ideal() -> Self {
        NetworkModel {
            latency: SimTime::ZERO,
            bytes_per_ns: u64::MAX,
        }
    }

    /// Virtual time for one point-to-point message of `bytes`.
    pub fn p2p_time(&self, bytes: u64) -> SimTime {
        if self.bytes_per_ns == u64::MAX {
            return self.latency;
        }
        self.latency + SimTime::from_nanos(bytes / self.bytes_per_ns.max(1))
    }

    /// Virtual time for a barrier over `ranks` ranks (dissemination rounds).
    pub fn barrier_time(&self, ranks: usize) -> SimTime {
        self.p2p_time(8) * log2_ceil(ranks)
    }

    /// Virtual time for a reduce/broadcast of `bytes` over `ranks` ranks
    /// (binomial tree).
    pub fn collective_time(&self, bytes: u64, ranks: usize) -> SimTime {
        self.p2p_time(bytes) * log2_ceil(ranks)
    }

    /// Virtual time for an allreduce (reduce + broadcast).
    pub fn allreduce_time(&self, bytes: u64, ranks: usize) -> SimTime {
        self.collective_time(bytes, ranks) * 2
    }
}

/// `ceil(log2(n))` with `log2_ceil(0 | 1) == 0`.
fn log2_ceil(n: usize) -> u64 {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(32), 5);
        assert_eq!(log2_ceil(33), 6);
    }

    #[test]
    fn p2p_time_includes_bandwidth() {
        let net = NetworkModel {
            latency: SimTime::from_nanos(100),
            bytes_per_ns: 2,
        };
        assert_eq!(net.p2p_time(0), SimTime::from_nanos(100));
        assert_eq!(net.p2p_time(200), SimTime::from_nanos(200));
    }

    #[test]
    fn collectives_scale_logarithmically() {
        let net = NetworkModel::infiniband();
        let t4 = net.collective_time(64, 4);
        let t16 = net.collective_time(64, 16);
        assert_eq!(t16, t4 * 2, "16 ranks = 4 rounds vs 2 rounds");
        assert_eq!(net.allreduce_time(64, 4), t4 * 2);
    }

    #[test]
    fn ideal_network_is_free() {
        let net = NetworkModel::ideal();
        assert_eq!(net.p2p_time(1 << 30), SimTime::ZERO);
        assert_eq!(net.allreduce_time(1 << 20, 64), SimTime::ZERO);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let net = NetworkModel::infiniband();
        assert_eq!(net.barrier_time(1), SimTime::ZERO);
        assert_eq!(net.collective_time(1024, 1), SimTime::ZERO);
    }
}
