//! Direct tests of the `NetworkModel` cost model: monotonicity in bytes and
//! ranks, and `ideal()` as a lower bound of `infiniband()`. The searchers
//! charge allreduce/barrier costs straight from this model, so a regression
//! here silently skews every multi-rank figure.

use pmcts_mpi_sim::NetworkModel;
use pmcts_util::SimTime;

const BYTE_SIZES: [u64; 6] = [0, 1, 64, 4 << 10, 1 << 20, 1 << 28];
const RANK_COUNTS: [usize; 7] = [1, 2, 3, 4, 8, 17, 128];

fn models() -> [NetworkModel; 3] {
    [
        NetworkModel::infiniband(),
        NetworkModel::ideal(),
        NetworkModel {
            latency: SimTime::from_nanos(500),
            bytes_per_ns: 1,
        },
    ]
}

#[test]
fn p2p_is_monotone_in_bytes() {
    for net in models() {
        for w in BYTE_SIZES.windows(2) {
            assert!(
                net.p2p_time(w[0]) <= net.p2p_time(w[1]),
                "{net:?}: p2p({}) > p2p({})",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn p2p_has_latency_floor() {
    for net in models() {
        assert_eq!(net.p2p_time(0), net.latency);
    }
}

#[test]
fn barrier_is_monotone_in_ranks() {
    for net in models() {
        for w in RANK_COUNTS.windows(2) {
            assert!(
                net.barrier_time(w[0]) <= net.barrier_time(w[1]),
                "{net:?}: barrier({}) > barrier({})",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn collective_is_monotone_in_bytes_and_ranks() {
    for net in models() {
        for &ranks in &RANK_COUNTS {
            for w in BYTE_SIZES.windows(2) {
                assert!(net.collective_time(w[0], ranks) <= net.collective_time(w[1], ranks));
            }
        }
        for &bytes in &BYTE_SIZES {
            for w in RANK_COUNTS.windows(2) {
                assert!(net.collective_time(bytes, w[0]) <= net.collective_time(bytes, w[1]));
            }
        }
    }
}

#[test]
fn allreduce_is_monotone_and_twice_the_collective() {
    for net in models() {
        for &ranks in &RANK_COUNTS {
            for &bytes in &BYTE_SIZES {
                let coll = net.collective_time(bytes, ranks);
                assert_eq!(net.allreduce_time(bytes, ranks), coll * 2);
            }
            for w in BYTE_SIZES.windows(2) {
                assert!(net.allreduce_time(w[0], ranks) <= net.allreduce_time(w[1], ranks));
            }
        }
        for &bytes in &BYTE_SIZES {
            for w in RANK_COUNTS.windows(2) {
                assert!(net.allreduce_time(bytes, w[0]) <= net.allreduce_time(bytes, w[1]));
            }
        }
    }
}

#[test]
fn single_rank_collectives_cost_nothing() {
    for net in models() {
        for &bytes in &BYTE_SIZES {
            assert_eq!(net.barrier_time(1), SimTime::ZERO);
            assert_eq!(net.collective_time(bytes, 1), SimTime::ZERO);
            assert_eq!(net.allreduce_time(bytes, 1), SimTime::ZERO);
        }
    }
}

#[test]
fn ideal_lower_bounds_infiniband() {
    let ideal = NetworkModel::ideal();
    let ib = NetworkModel::infiniband();
    for &bytes in &BYTE_SIZES {
        assert!(ideal.p2p_time(bytes) <= ib.p2p_time(bytes));
        for &ranks in &RANK_COUNTS {
            assert!(ideal.barrier_time(ranks) <= ib.barrier_time(ranks));
            assert!(ideal.collective_time(bytes, ranks) <= ib.collective_time(bytes, ranks));
            assert!(ideal.allreduce_time(bytes, ranks) <= ib.allreduce_time(bytes, ranks));
        }
    }
    // And the bound is strict as soon as there is real communication.
    assert!(ideal.allreduce_time(64, 2) < ib.allreduce_time(64, 2));
}
