//! Criterion microbenches for the multi-lane playout engine (DESIGN.md §15):
//! scalar `random_playout` vs `LaneBatch` at widths 4 and 8, on Reversi
//! (bit-parallel lane kernels) and Hex11 (generic interleaved engine).
//!
//! Throughput is reported per *playout*, so a lane width is a win exactly
//! when its number beats the scalar bench's.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pmcts_games::{random_playout, Game, Hex11, LaneBatch, Reversi};
use pmcts_util::Xoshiro256pp;

/// A midgame-ish start: `plies` random moves from the initial position.
fn advanced<G: Game>(plies: u32, seed: u64) -> G {
    let mut state = G::initial();
    let mut rng = Xoshiro256pp::new(seed);
    for _ in 0..plies {
        match state.random_move(&mut rng) {
            Some(mv) => state.apply(mv),
            None => break,
        }
    }
    state
}

fn bench_game<G: Game>(c: &mut Criterion, name: &str, prefix: u32) {
    let root: G = advanced(prefix, 7);

    c.bench_function(&format!("{name} scalar playout"), |b| {
        let mut rng = Xoshiro256pp::new(11);
        b.iter(|| random_playout(black_box(root), &mut rng).plies)
    });

    c.bench_function(&format!("{name} lane batch x4 (per 4 playouts)"), |b| {
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            let rngs: [Xoshiro256pp; 4] =
                std::array::from_fn(|i| Xoshiro256pp::derive(11, epoch * 4 + i as u64));
            LaneBatch::new([black_box(root); 4], rngs)
                .run()
                .iter()
                .map(|r| r.plies)
                .sum::<u32>()
        })
    });

    c.bench_function(&format!("{name} lane batch x8 (per 8 playouts)"), |b| {
        let mut epoch = 0u64;
        b.iter(|| {
            epoch += 1;
            let rngs: [Xoshiro256pp; 8] =
                std::array::from_fn(|i| Xoshiro256pp::derive(11, epoch * 8 + i as u64));
            LaneBatch::new([black_box(root); 8], rngs)
                .run()
                .iter()
                .map(|r| r.plies)
                .sum::<u32>()
        })
    });
}

fn bench_playout_lanes(c: &mut Criterion) {
    bench_game::<Reversi>(c, "reversi", 20);
    bench_game::<Hex11>(c, "hex11", 30);
}

criterion_group!(benches, bench_playout_lanes);
criterion_main!(benches);
