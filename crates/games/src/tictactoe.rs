//! Tic-Tac-Toe.
//!
//! Included not as a serious benchmark but because it is exactly solvable:
//! the integration tests verify that every MCTS variant finds the
//! game-theoretically correct move (win when available, block when
//! threatened, draw with perfect play from the start).

use crate::game::{Game, MoveBuf, Outcome, Player};
use crate::zobrist;

/// Zobrist key domain tag; indices `player * 9 + cell` for stones, 18 for
/// the side-to-move key (needed because `parse`/`from_masks` accept either
/// side to move on the same board).
const ZTAG: u64 = 0x7469_6374_6163_0001;

#[inline]
fn stone_key(p: Player, cell: u8) -> u64 {
    zobrist::key(ZTAG, p.index() as u64 * 9 + cell as u64)
}

#[inline]
fn side_key() -> u64 {
    zobrist::key(ZTAG, 18)
}

/// The eight winning lines as cell masks (cells are bits `0..9`, row-major).
const LINES: [u16; 8] = [
    0b000_000_111, // rows
    0b000_111_000,
    0b111_000_000,
    0b001_001_001, // columns
    0b010_010_010,
    0b100_100_100,
    0b100_010_001, // diagonals
    0b001_010_100,
];

/// Mask of all nine cells.
const FULL: u16 = 0b111_111_111;

/// A Tic-Tac-Toe position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TicTacToe {
    /// X stones (P1).
    x: u16,
    /// O stones (P2).
    o: u16,
    to_move: Player,
    /// Incremental Zobrist hash (pure function of the fields above).
    hash: u64,
}

impl TicTacToe {
    /// Builds a position from raw masks; panics on overlap.
    pub fn from_masks(x: u16, o: u16, to_move: Player) -> Self {
        assert_eq!(x & o, 0, "overlapping marks");
        assert_eq!(x & !FULL, 0, "x outside board");
        assert_eq!(o & !FULL, 0, "o outside board");
        let mut hash = 0u64;
        for (player, mut stones) in [(Player::P1, x), (Player::P2, o)] {
            while stones != 0 {
                hash ^= stone_key(player, stones.trailing_zeros() as u8);
                stones &= stones - 1;
            }
        }
        if to_move == Player::P2 {
            hash ^= side_key();
        }
        TicTacToe {
            x,
            o,
            to_move,
            hash,
        }
    }

    /// Parses a 9-character diagram, row-major, `X`/`O`/`.`.
    pub fn parse(diagram: &str, to_move: Player) -> Option<Self> {
        let mut x = 0u16;
        let mut o = 0u16;
        let mut idx = 0;
        for ch in diagram.chars() {
            match ch {
                'X' | 'x' => {
                    x |= 1 << idx;
                    idx += 1;
                }
                'O' | 'o' => {
                    o |= 1 << idx;
                    idx += 1;
                }
                '.' | '-' | '_' => idx += 1,
                _ => {}
            }
            if idx == 9 {
                return Some(Self::from_masks(x, o, to_move));
            }
        }
        None
    }

    fn winner(&self) -> Option<Player> {
        for line in LINES {
            if self.x & line == line {
                return Some(Player::P1);
            }
            if self.o & line == line {
                return Some(Player::P2);
            }
        }
        None
    }
}

impl Game for TicTacToe {
    /// A move is a cell index `0..9`.
    type Move = u8;

    const NAME: &'static str = "tictactoe";
    const MAX_GAME_LENGTH: usize = 9;

    fn initial() -> Self {
        TicTacToe {
            x: 0,
            o: 0,
            to_move: Player::P1,
            hash: 0,
        }
    }

    #[inline]
    fn to_move(&self) -> Player {
        self.to_move
    }

    fn legal_moves(&self, out: &mut MoveBuf<u8>) {
        out.clear();
        if self.winner().is_some() {
            return;
        }
        let mut empty = FULL & !(self.x | self.o);
        while empty != 0 {
            out.push(empty.trailing_zeros() as u8);
            empty &= empty - 1;
        }
    }

    fn apply(&mut self, cell: u8) {
        debug_assert!(cell < 9);
        let bit = 1u16 << cell;
        debug_assert_eq!((self.x | self.o) & bit, 0, "cell occupied");
        debug_assert!(self.winner().is_none(), "game already decided");
        match self.to_move {
            Player::P1 => self.x |= bit,
            Player::P2 => self.o |= bit,
        }
        self.hash ^= stone_key(self.to_move, cell) ^ side_key();
        self.to_move = self.to_move.opponent();
    }

    fn is_terminal(&self) -> bool {
        self.winner().is_some() || (self.x | self.o) == FULL
    }

    fn outcome(&self) -> Option<Outcome> {
        if let Some(w) = self.winner() {
            Some(Outcome::Win(w))
        } else if (self.x | self.o) == FULL {
            Some(Outcome::Draw)
        } else {
            None
        }
    }

    fn score(&self) -> i32 {
        match self.winner() {
            Some(Player::P1) => 1,
            Some(Player::P2) => -1,
            None => 0,
        }
    }

    #[inline]
    fn zobrist(&self) -> u64 {
        self.hash
    }

    fn device_state_bytes() -> usize {
        // Two u16 cell masks + the side byte, u16-aligned: the raw board
        // layout before the host-only hash cache was added.
        6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_board_has_nine_moves() {
        let s = TicTacToe::initial();
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert_eq!(buf.len(), 9);
        assert!(!s.is_terminal());
    }

    #[test]
    fn x_wins_top_row() {
        let s = TicTacToe::parse("XXX OO. ...", Player::P2).unwrap();
        assert!(s.is_terminal());
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)));
        assert_eq!(s.score(), 1);
    }

    #[test]
    fn o_wins_column() {
        let s = TicTacToe::parse("OXX O.X O..", Player::P1).unwrap();
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P2)));
    }

    #[test]
    fn diagonal_win() {
        let s = TicTacToe::parse("X.O .XO ..X", Player::P2).unwrap();
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)));
    }

    #[test]
    fn drawn_board() {
        let s = TicTacToe::parse("XOX XXO OXO", Player::P1).unwrap();
        assert!(s.is_terminal());
        assert_eq!(s.outcome(), Some(Outcome::Draw));
        assert_eq!(s.score(), 0);
    }

    #[test]
    fn moves_alternate() {
        let mut s = TicTacToe::initial();
        assert_eq!(s.to_move(), Player::P1);
        s.apply(4);
        assert_eq!(s.to_move(), Player::P2);
        s.apply(0);
        assert_eq!(s.to_move(), Player::P1);
    }

    #[test]
    fn won_games_generate_no_moves() {
        let s = TicTacToe::parse("XXX OO. ...", Player::P2).unwrap();
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        TicTacToe::from_masks(1, 1, Player::P1);
    }

    #[test]
    fn incremental_zobrist_matches_reconstruction() {
        use pmcts_util::Xoshiro256pp;
        let mut rng = Xoshiro256pp::new(21);
        for _ in 0..50 {
            let mut s = TicTacToe::initial();
            while let Some(mv) = s.random_move(&mut rng) {
                s.apply(mv);
                let rebuilt = TicTacToe::from_masks(s.x, s.o, s.to_move);
                assert_eq!(s.zobrist(), rebuilt.zobrist(), "hash drifted\n{s:?}");
            }
        }
    }

    #[test]
    fn transposed_move_orders_hash_equal() {
        // X 0 / O 8 / X 4 and X 4 / O 8 / X 0 reach the same position.
        let mut a = TicTacToe::initial();
        for mv in [0u8, 8, 4] {
            a.apply(mv);
        }
        let mut b = TicTacToe::initial();
        for mv in [4u8, 8, 0] {
            b.apply(mv);
        }
        assert_eq!(a, b);
        assert_eq!(a.zobrist(), b.zobrist());
        // Side to move participates in the hash.
        let flipped = TicTacToe::from_masks(a.x, a.o, a.to_move.opponent());
        assert_ne!(a.zobrist(), flipped.zobrist());
    }

    #[test]
    fn full_game_ends_within_nine_plies() {
        use pmcts_util::Xoshiro256pp;
        let mut rng = Xoshiro256pp::new(5);
        for _ in 0..100 {
            let mut s = TicTacToe::initial();
            let mut n = 0;
            while let Some(mv) = s.random_move(&mut rng) {
                s.apply(mv);
                n += 1;
            }
            assert!(n <= 9);
            assert!(s.outcome().is_some());
        }
    }
}
