//! Human-readable notation for Reversi positions and moves.
//!
//! Squares use the usual `a1`..`h8` names (file letter then rank digit,
//! rank 1 at the top as printed). Boards display as an 8×8 diagram with `X`
//! for Black, `O` for White and `.` for empty, and can be parsed back from
//! the same format — handy for writing test positions literally.

use super::{Reversi, ReversiMove};
use crate::game::{Game, Player};
use std::fmt;

impl ReversiMove {
    /// Parses `"e4"` / `"pass"` (case-insensitive).
    pub fn parse(text: &str) -> Option<ReversiMove> {
        let t = text.trim().to_ascii_lowercase();
        if t == "pass" || t == "--" {
            return Some(ReversiMove::PASS);
        }
        let bytes = t.as_bytes();
        if bytes.len() != 2 {
            return None;
        }
        let col = bytes[0].checked_sub(b'a')?;
        let row = bytes[1].checked_sub(b'1')?;
        if col < 8 && row < 8 {
            Some(ReversiMove(row * 8 + col))
        } else {
            None
        }
    }
}

impl fmt::Display for ReversiMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.square() {
            None => write!(f, "pass"),
            Some(sq) => write!(f, "{}{}", (b'a' + sq % 8) as char, (b'1' + sq / 8) as char),
        }
    }
}

impl fmt::Display for Reversi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  a b c d e f g h")?;
        for row in 0..8u8 {
            write!(f, "{} ", row + 1)?;
            for col in 0..8u8 {
                let bit = 1u64 << (row * 8 + col);
                let ch = if self.black() & bit != 0 {
                    'X'
                } else if self.white() & bit != 0 {
                    'O'
                } else {
                    '.'
                };
                write!(f, "{ch} ")?;
            }
            writeln!(f)?;
        }
        let side = match self.to_move() {
            Player::P1 => "X (black)",
            Player::P2 => "O (white)",
        };
        write!(f, "to move: {side}")
    }
}

impl fmt::Debug for Reversi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Reversi {{ black: {:#018x}, white: {:#018x}, to_move: {:?} }}",
            self.black(),
            self.white(),
            self.to_move()
        )
    }
}

impl Reversi {
    /// Parses an 8-row diagram of `X`/`O`/`.` characters (whitespace and row
    /// labels ignored), e.g. the output of `Display` or hand-written test
    /// positions. `to_move` chooses the side to move.
    ///
    /// Returns `None` if fewer than 64 board characters are found.
    pub fn parse_diagram(diagram: &str, to_move: Player) -> Option<Reversi> {
        let mut black = 0u64;
        let mut white = 0u64;
        let mut idx = 0u32;
        for ch in diagram.chars() {
            let bit = 1u64 << idx;
            match ch {
                'X' | 'x' | 'B' => {
                    black |= bit;
                    idx += 1;
                }
                'O' | 'o' | 'W' => {
                    white |= bit;
                    idx += 1;
                }
                '.' | '-' | '_' => idx += 1,
                _ => {} // labels / whitespace
            }
            if idx == 64 {
                return Some(Reversi::from_bitboards(black, white, to_move));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::Game;

    #[test]
    fn move_display_and_parse_roundtrip() {
        for sq in 0..64u8 {
            let m = ReversiMove(sq);
            let text = m.to_string();
            assert_eq!(ReversiMove::parse(&text), Some(m), "square {sq}");
        }
        assert_eq!(ReversiMove::parse("pass"), Some(ReversiMove::PASS));
        assert_eq!(ReversiMove::PASS.to_string(), "pass");
    }

    #[test]
    fn named_squares() {
        assert_eq!(ReversiMove::parse("a1"), Some(ReversiMove(0)));
        assert_eq!(ReversiMove::parse("h1"), Some(ReversiMove(7)));
        assert_eq!(ReversiMove::parse("a8"), Some(ReversiMove(56)));
        assert_eq!(ReversiMove::parse("h8"), Some(ReversiMove(63)));
        assert_eq!(ReversiMove::parse("E4"), Some(ReversiMove(28)));
    }

    #[test]
    fn bad_moves_rejected() {
        assert_eq!(ReversiMove::parse("i1"), None);
        assert_eq!(ReversiMove::parse("a9"), None);
        assert_eq!(ReversiMove::parse(""), None);
        assert_eq!(ReversiMove::parse("a"), None);
        assert_eq!(ReversiMove::parse("a1b"), None);
    }

    #[test]
    fn diagram_roundtrip() {
        let s = Reversi::initial();
        let text = s.to_string();
        let parsed = Reversi::parse_diagram(&text, Player::P1).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_literal_diagram() {
        let s = Reversi::parse_diagram(
            "
            . . . . . . . .
            . . . . . . . .
            . . . . . . . .
            . . . O X . . .
            . . . X O . . .
            . . . . . . . .
            . . . . . . . .
            . . . . . . . .
            ",
            Player::P1,
        )
        .unwrap();
        assert_eq!(s, Reversi::initial());
    }

    #[test]
    fn incomplete_diagram_is_none() {
        assert!(Reversi::parse_diagram("X O .", Player::P1).is_none());
    }

    #[test]
    fn display_contains_side_to_move() {
        let s = Reversi::initial();
        assert!(s.to_string().contains("X (black)"));
    }
}
