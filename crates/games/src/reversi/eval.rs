//! Static evaluation heuristics for Reversi.
//!
//! MCTS itself needs no domain knowledge (one of the paper's §I selling
//! points), but evaluation heuristics are useful for three things in this
//! repository: stronger *baseline* players for tests, informed playout
//! policies (see [`crate::policy`]), and sanity checks that the searchers'
//! preferences correlate with known Othello wisdom (corners good, squares
//! next to empty corners bad).

use super::{bitboard, Reversi};
use crate::game::{Game, Player};

/// Classic positional weight table (row-major, rank 1 first).
///
/// Corners dominate, the X/C squares adjacent to corners are poison while
/// the corner is empty, edges are mildly good.
#[rustfmt::skip]
pub const WEIGHTS: [i32; 64] = [
    100, -20,  10,   5,   5,  10, -20, 100,
    -20, -50,  -2,  -2,  -2,  -2, -50, -20,
     10,  -2,   1,   0,   0,   1,  -2,  10,
      5,  -2,   0,   1,   1,   0,  -2,   5,
      5,  -2,   0,   1,   1,   0,  -2,   5,
     10,  -2,   1,   0,   0,   1,  -2,  10,
    -20, -50,  -2,  -2,  -2,  -2, -50, -20,
    100, -20,  10,   5,   5,  10, -20, 100,
];

/// Bitboard of the four corners.
pub const CORNERS: u64 = 1 | (1 << 7) | (1 << 56) | (1 << 63);

/// Sum of positional weights over the discs in `board`.
pub fn positional(board: u64) -> i32 {
    let mut score = 0;
    let mut b = board;
    while b != 0 {
        score += WEIGHTS[b.trailing_zeros() as usize];
        b &= b - 1;
    }
    score
}

/// Mobility: the number of legal placements for each side.
pub fn mobility(state: &Reversi) -> (u32, u32) {
    let black = bitboard::legal_moves_mask(state.black(), state.white()).count_ones();
    let white = bitboard::legal_moves_mask(state.white(), state.black()).count_ones();
    (black, white)
}

/// A combined heuristic score from P1 (Black)'s perspective: positional
/// weights plus weighted mobility. Intended for baseline players and move
/// ordering, not for MCTS itself.
pub fn evaluate(state: &Reversi) -> i32 {
    if let Some(outcome) = state.outcome() {
        // Decided games evaluate as ±large, scaled by the margin.
        return match outcome {
            crate::game::Outcome::Win(Player::P1) => 10_000 + state.score(),
            crate::game::Outcome::Win(Player::P2) => -10_000 + state.score(),
            crate::game::Outcome::Draw => 0,
        };
    }
    let positional = positional(state.black()) - positional(state.white());
    let (mb, mw) = mobility(state);
    positional + 8 * (mb as i32 - mw as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::MoveBuf;
    use crate::reversi::ReversiMove;

    #[test]
    fn corner_is_best_square() {
        assert_eq!(positional(1), 100);
        assert_eq!(positional(1 << 63), 100);
        // X-square is the worst.
        assert_eq!(positional(1 << 9), -50);
    }

    #[test]
    fn positional_is_additive() {
        let a = 1u64 | (1 << 9);
        assert_eq!(positional(a), positional(1) + positional(1 << 9));
        assert_eq!(positional(0), 0);
    }

    #[test]
    fn weights_are_symmetric() {
        // The table must be symmetric under horizontal, vertical and
        // diagonal board flips.
        for r in 0..8usize {
            for c in 0..8usize {
                let w = WEIGHTS[r * 8 + c];
                assert_eq!(w, WEIGHTS[r * 8 + (7 - c)], "h-flip at {r},{c}");
                assert_eq!(w, WEIGHTS[(7 - r) * 8 + c], "v-flip at {r},{c}");
                assert_eq!(w, WEIGHTS[c * 8 + r], "transpose at {r},{c}");
            }
        }
    }

    #[test]
    fn initial_position_is_balanced() {
        let s = Reversi::initial();
        assert_eq!(evaluate(&s), 0, "symmetric start must evaluate to 0");
        let (mb, mw) = mobility(&s);
        assert_eq!((mb, mw), (4, 4));
    }

    #[test]
    fn decided_games_evaluate_with_large_magnitude() {
        let won = Reversi::from_bitboards(0b111, 0, Player::P1);
        assert!(evaluate(&won) > 9_000);
        let lost = Reversi::from_bitboards(0, 0b111, Player::P1);
        assert!(evaluate(&lost) < -9_000);
    }

    #[test]
    fn taking_a_corner_improves_evaluation() {
        // Build a position where Black can take a1: White on b1, Black c1.
        let s = Reversi::from_bitboards(1 << 2, 1 << 1, Player::P1);
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert!(buf.contains(&ReversiMove(0)), "a1 available");
        let before = evaluate(&s);
        let mut after = s;
        after.apply(ReversiMove(0));
        assert!(
            evaluate(&after) > before,
            "corner capture must raise Black's evaluation"
        );
    }

    #[test]
    fn corners_mask_is_corners() {
        assert_eq!(CORNERS.count_ones(), 4);
        for sq in [0u8, 7, 56, 63] {
            assert_ne!(CORNERS & (1 << sq), 0);
        }
    }
}
