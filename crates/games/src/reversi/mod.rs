//! Reversi (Othello) — the paper's benchmark game.
//!
//! 8×8 board, average branching factor a little over 8, games of at most 60
//! placements plus forced passes. The engine keeps two `u64` bitboards and
//! generates moves with the classic 8-direction shift/flood technique
//! ([`bitboard`]), which is also exactly the data layout a real CUDA playout
//! kernel would use — one state fits in four registers.
//!
//! Square indexing: bit `row * 8 + col`, row 0 = rank 1 (printed first),
//! col 0 = file `a`. The standard initial position is
//! `d4 = White, e4 = Black, d5 = Black, e5 = White`, Black to move.

pub mod bitboard;
pub mod eval;
pub mod notation;
pub mod zobrist;

use crate::game::{Game, MoveBuf, Outcome, Player};
use crate::playout::PlayoutResult;
use pmcts_util::Rng64;

/// A Reversi move: a square index `0..64`, or [`ReversiMove::PASS`].
///
/// Reversi is the only bundled game with forced passes: when the side to move
/// has no placement but the opponent does, the single legal move is `PASS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ReversiMove(pub u8);

impl ReversiMove {
    /// The pass move.
    pub const PASS: ReversiMove = ReversiMove(64);

    /// Constructs a placement move from (col, row), both `0..8`.
    pub fn from_coords(col: u8, row: u8) -> Self {
        assert!(col < 8 && row < 8, "coords out of range");
        ReversiMove(row * 8 + col)
    }

    /// Whether this is the pass move.
    #[inline]
    pub fn is_pass(self) -> bool {
        self.0 >= 64
    }

    /// Square index (`None` for pass).
    #[inline]
    pub fn square(self) -> Option<u8> {
        if self.is_pass() {
            None
        } else {
            Some(self.0)
        }
    }
}

/// A Reversi position: two bitboards plus the side to move.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reversi {
    /// Black discs (P1).
    black: u64,
    /// White discs (P2).
    white: u64,
    to_move: Player,
    /// Incremental Zobrist hash, maintained by [`Reversi::apply_counted`]
    /// in O(flipped discs) from the [`zobrist`] key table.
    hash: u64,
}

impl Reversi {
    /// Builds a position from raw bitboards.
    ///
    /// # Panics
    /// Panics if the bitboards overlap.
    pub fn from_bitboards(black: u64, white: u64, to_move: Player) -> Self {
        assert_eq!(black & white, 0, "overlapping bitboards");
        Reversi {
            black,
            white,
            to_move,
            hash: zobrist::hash(black, white, to_move),
        }
    }

    /// Black's disc bitboard.
    #[inline]
    pub fn black(&self) -> u64 {
        self.black
    }

    /// White's disc bitboard.
    #[inline]
    pub fn white(&self) -> u64 {
        self.white
    }

    /// `(own, opponent)` bitboards from the mover's perspective.
    #[inline]
    pub fn own_opp(&self) -> (u64, u64) {
        match self.to_move {
            Player::P1 => (self.black, self.white),
            Player::P2 => (self.white, self.black),
        }
    }

    /// Disc counts `(black, white)`.
    #[inline]
    pub fn counts(&self) -> (u32, u32) {
        (self.black.count_ones(), self.white.count_ones())
    }

    /// Number of discs on the board.
    #[inline]
    pub fn occupancy(&self) -> u32 {
        (self.black | self.white).count_ones()
    }

    /// Bitboard of legal placement squares for the side to move.
    #[inline]
    pub fn legal_mask(&self) -> u64 {
        let (own, opp) = self.own_opp();
        bitboard::legal_moves_mask(own, opp)
    }

    /// Whether the side to move must pass (has no placement but the game is
    /// not over).
    pub fn must_pass(&self) -> bool {
        !self.is_terminal() && self.legal_mask() == 0
    }

    /// Zobrist hash of the position (includes side to move). O(1): the
    /// hash is carried in the state and updated incrementally by
    /// [`Reversi::apply_counted`].
    pub fn zobrist(&self) -> u64 {
        self.hash
    }

    /// Applies a move and returns the number of discs flipped (0 for pass).
    /// Identical to [`Game::apply`] but reports flip information, which the
    /// notation/analysis tooling uses.
    pub fn apply_counted(&mut self, mv: ReversiMove) -> u32 {
        if mv.is_pass() {
            debug_assert_eq!(self.legal_mask(), 0, "pass with placements available");
            self.to_move = self.to_move.opponent();
            self.hash ^= zobrist::side_key();
            return 0;
        }
        let sq = mv.0;
        let (own, opp) = self.own_opp();
        debug_assert!(
            bitboard::legal_moves_mask(own, opp) & (1u64 << sq) != 0,
            "illegal move {mv:?} in position\n{self}"
        );
        let flips = bitboard::flips_for_move(own, opp, sq);
        debug_assert!(flips != 0, "move flips nothing");
        let mover = self.to_move;
        // Incremental Zobrist: the placed disc, one colour swap per
        // flipped disc, and the side-to-move toggle.
        let mut h = self.hash ^ zobrist::square_key(mover, sq) ^ zobrist::side_key();
        let mut f = flips;
        while f != 0 {
            let s = f.trailing_zeros() as u8;
            h ^= zobrist::square_key(Player::P1, s) ^ zobrist::square_key(Player::P2, s);
            f &= f - 1;
        }
        self.hash = h;
        let own = own | flips | (1u64 << sq);
        let opp = opp & !flips;
        match self.to_move {
            Player::P1 => {
                self.black = own;
                self.white = opp;
            }
            Player::P2 => {
                self.white = own;
                self.black = opp;
            }
        }
        self.to_move = self.to_move.opponent();
        flips.count_ones()
    }
}

impl Game for Reversi {
    type Move = ReversiMove;

    const NAME: &'static str = "reversi";

    // 60 placements + interleaved passes; 128 is a safe hard bound used to
    // size simulated-GPU thread state.
    const MAX_GAME_LENGTH: usize = 128;

    // The bit-parallel `lane_playouts` below measures ~3x scalar at width
    // 8 (see `games/benches/playout_lanes.rs`), so warps should batch.
    const LANE_ENGINE: bool = true;

    fn initial() -> Self {
        // d4 = White, e4 = Black, d5 = Black, e5 = White; Black to move.
        Self::from_bitboards(
            (1u64 << 28) | (1u64 << 35),
            (1u64 << 27) | (1u64 << 36),
            Player::P1,
        )
    }

    #[inline]
    fn to_move(&self) -> Player {
        self.to_move
    }

    fn legal_moves(&self, out: &mut MoveBuf<ReversiMove>) {
        out.clear();
        let mut mask = self.legal_mask();
        if mask == 0 {
            // Pass is legal iff the opponent can still move.
            let (own, opp) = self.own_opp();
            if bitboard::legal_moves_mask(opp, own) != 0 {
                out.push(ReversiMove::PASS);
            }
            return;
        }
        while mask != 0 {
            let sq = mask.trailing_zeros() as u8;
            out.push(ReversiMove(sq));
            mask &= mask - 1;
        }
    }

    #[inline]
    fn apply(&mut self, mv: ReversiMove) {
        self.apply_counted(mv);
    }

    fn is_terminal(&self) -> bool {
        let (own, opp) = self.own_opp();
        bitboard::legal_moves_mask(own, opp) == 0 && bitboard::legal_moves_mask(opp, own) == 0
    }

    fn outcome(&self) -> Option<Outcome> {
        if !self.is_terminal() {
            return None;
        }
        let (b, w) = self.counts();
        Some(match b.cmp(&w) {
            std::cmp::Ordering::Greater => Outcome::Win(Player::P1),
            std::cmp::Ordering::Less => Outcome::Win(Player::P2),
            std::cmp::Ordering::Equal => Outcome::Draw,
        })
    }

    #[inline]
    fn score(&self) -> i32 {
        let (b, w) = self.counts();
        b as i32 - w as i32
    }

    #[inline]
    fn zobrist(&self) -> u64 {
        self.hash
    }

    fn device_state_bytes() -> usize {
        // Everything except the host-only `hash` cache; removing the u64
        // leaves the struct's alignment (8) and padding unchanged.
        std::mem::size_of::<Self>() - std::mem::size_of::<u64>()
    }

    /// Bitboard-native uniform move choice: selects a random set bit of the
    /// legal mask without materialising a move list (`_buf` is unused).
    #[inline]
    fn random_move_with<R: Rng64>(
        &self,
        rng: &mut R,
        _buf: &mut MoveBuf<ReversiMove>,
    ) -> Option<ReversiMove> {
        let mask = self.legal_mask();
        if mask == 0 {
            let (own, opp) = self.own_opp();
            if bitboard::legal_moves_mask(opp, own) != 0 {
                return Some(ReversiMove::PASS);
            }
            return None;
        }
        let n = mask.count_ones();
        let k = rng.next_below(n);
        Some(ReversiMove(bitboard::select_bit(mask, k)))
    }

    /// Bit-parallel lane playouts (DESIGN.md §15): every round computes the
    /// legal-move masks for all `N` lanes back-to-back
    /// ([`bitboard::legal_moves_mask_lanes`]), draws one move per live
    /// lane, then computes all flip masks back-to-back
    /// ([`bitboard::flips_for_moves_lanes`]) — the steady state is
    /// straight-line u64 code with no per-lane branching. Pass and
    /// terminal resolution fall back to scalar per lane (a handful of
    /// plies per game).
    ///
    /// Bit-identical to `N` scalar playouts: each placement ply draws
    /// exactly one `next_below(popcount(mask))` from that lane's stream and
    /// picks the same ascending-order set bit; passes and terminals draw
    /// nothing, exactly like [`Reversi::random_move_with`]. Lane state is
    /// the raw bitboards only — the Zobrist accumulator is deliberately
    /// not maintained, because [`PlayoutResult`] never observes it; that is
    /// pure wall-clock profit with no effect on results.
    #[allow(clippy::needless_range_loop)] // lane-indexed form mirrors the SIMD shape
    fn lane_playouts<R: Rng64, const N: usize>(
        roots: &[Self; N],
        rngs: &mut [R; N],
    ) -> [PlayoutResult; N] {
        // Lane state is mover-relative: `own`/`opp` always belong to the
        // side to move, so applying a ply is swap-free bit arithmetic with
        // no per-lane colour branching; `own_is_black` tracks the mapping
        // back to absolute colours for terminal scoring.
        let mut own = [0u64; N];
        let mut opp = [0u64; N];
        let mut own_is_black = [true; N];
        for i in 0..N {
            let (o, p) = roots[i].own_opp();
            own[i] = o;
            opp[i] = p;
            own_is_black[i] = roots[i].to_move == Player::P1;
        }
        let mut plies = [0u32; N];
        let mut results: [Option<PlayoutResult>; N] = [None; N];
        let mut live = N;
        while live > 0 {
            // Finished lanes are included in the batched kernels — their
            // outputs are unused garbage, which is cheaper than branching
            // inside the bit-parallel code.
            let masks = bitboard::legal_moves_mask_lanes(&own, &opp);
            // One RNG draw per lane with placements; pass/terminal lanes
            // resolve scalar (a rare tail: a few plies per game at most).
            let mut sqs = [0u8; N];
            let mut mover = [false; N];
            let mut any_mover = false;
            for i in 0..N {
                if results[i].is_some() {
                    continue;
                }
                if masks[i] != 0 {
                    let k = rngs[i].next_below(masks[i].count_ones());
                    sqs[i] = bitboard::select_bit(masks[i], k);
                    mover[i] = true;
                    any_mover = true;
                } else if bitboard::legal_moves_mask(opp[i], own[i]) != 0 {
                    // Forced pass: zero RNG draws, side swap, one ply —
                    // exactly the scalar path.
                    std::mem::swap(&mut own[i], &mut opp[i]);
                    own_is_black[i] = !own_is_black[i];
                    plies[i] += 1;
                    assert!(
                        plies[i] as usize <= Self::MAX_GAME_LENGTH,
                        "{} playout exceeded MAX_GAME_LENGTH={}",
                        Self::NAME,
                        Self::MAX_GAME_LENGTH
                    );
                } else {
                    // Terminal: decided by disc count.
                    let (b, w) = if own_is_black[i] {
                        (own[i].count_ones(), opp[i].count_ones())
                    } else {
                        (opp[i].count_ones(), own[i].count_ones())
                    };
                    let outcome = match b.cmp(&w) {
                        std::cmp::Ordering::Greater => Outcome::Win(Player::P1),
                        std::cmp::Ordering::Less => Outcome::Win(Player::P2),
                        std::cmp::Ordering::Equal => Outcome::Draw,
                    };
                    results[i] = Some(PlayoutResult {
                        outcome,
                        plies: plies[i],
                        final_score: b as i32 - w as i32,
                    });
                    live -= 1;
                }
            }
            if !any_mover {
                continue;
            }
            let flips = bitboard::flips_for_moves_lanes(&own, &opp, &sqs);
            for i in 0..N {
                if !mover[i] {
                    continue;
                }
                let f = flips[i];
                debug_assert_ne!(f, 0, "legal move flips nothing");
                // Apply and hand the move to the other side in one step:
                // the next mover's discs are the old opponent's minus the
                // flips; the new opponent is the old mover plus flips and
                // the placed disc.
                let moved = own[i] | f | (1u64 << sqs[i]);
                own[i] = opp[i] & !f;
                opp[i] = moved;
                own_is_black[i] = !own_is_black[i];
                plies[i] += 1;
                assert!(
                    plies[i] as usize <= Self::MAX_GAME_LENGTH,
                    "{} playout exceeded MAX_GAME_LENGTH={}",
                    Self::NAME,
                    Self::MAX_GAME_LENGTH
                );
            }
        }
        results.map(|r| r.expect("all lanes ran to completion"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn initial() -> Reversi {
        Reversi::initial()
    }

    #[test]
    fn initial_position_setup() {
        let s = initial();
        assert_eq!(s.counts(), (2, 2));
        assert_eq!(s.to_move(), Player::P1);
        assert!(!s.is_terminal());
        assert_eq!(s.score(), 0);
    }

    #[test]
    fn initial_legal_moves_are_the_four_classics() {
        let s = initial();
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        let mut squares: Vec<u8> = buf.iter().map(|m| m.0).collect();
        squares.sort_unstable();
        // d3, c4, f5, e6 under our row-major layout.
        assert_eq!(squares, vec![19, 26, 37, 44]);
    }

    #[test]
    fn applying_d3_flips_d4() {
        let mut s = initial();
        s.apply(ReversiMove::from_coords(3, 2)); // d3
        let (b, w) = s.counts();
        assert_eq!((b, w), (4, 1));
        assert_eq!(s.to_move(), Player::P2);
        // d4 (bit 27) must now be black.
        assert!(s.black() & (1u64 << 27) != 0);
    }

    #[test]
    fn flip_count_reported() {
        let mut s = initial();
        let flipped = s.apply_counted(ReversiMove(19));
        assert_eq!(flipped, 1);
    }

    #[test]
    fn perft_matches_published_values() {
        // Published Othello perft (FFO): 4, 12, 56, 244, 1396, 8200.
        fn perft(s: Reversi, depth: u32) -> u64 {
            if depth == 0 {
                return 1;
            }
            if s.is_terminal() {
                return 1;
            }
            let mut buf = MoveBuf::new();
            s.legal_moves(&mut buf);
            let mut n = 0;
            for &mv in &buf {
                let mut child = s;
                child.apply(mv);
                n += perft(child, depth - 1);
            }
            n
        }
        let s = initial();
        assert_eq!(perft(s, 1), 4);
        assert_eq!(perft(s, 2), 12);
        assert_eq!(perft(s, 3), 56);
        assert_eq!(perft(s, 4), 244);
        assert_eq!(perft(s, 5), 1396);
        assert_eq!(perft(s, 6), 8200);
    }

    #[test]
    fn pass_moves_are_generated_when_forced() {
        // A lone black disc with no white discs at all: neither side can
        // flip anything, so the game is over and no moves are generated.
        let s = Reversi::from_bitboards(1, 0, Player::P1);
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert!(s.is_terminal());
        assert!(buf.is_empty());

        // A real pass position: White a1, Black b1. White to move can play
        // c1 (flipping b1); Black to move has no placement and must pass.
        let s = Reversi::from_bitboards(1 << 1, 1 << 0, Player::P2);
        // White to move: white a1, black b1 -> white plays c1 flipping b1.
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0], ReversiMove(2));

        // Black to move in the same diagram has no placement but White does:
        // the only legal black move is PASS.
        let s = Reversi::from_bitboards(1 << 1, 1 << 0, Player::P1);
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert_eq!(buf.len(), 1);
        assert!(buf[0].is_pass());
        assert!(s.must_pass());
    }

    #[test]
    fn pass_toggles_side_only() {
        let mut s = Reversi::from_bitboards(1 << 1, 1 << 0, Player::P1);
        let before = (s.black(), s.white());
        s.apply(ReversiMove::PASS);
        assert_eq!((s.black(), s.white()), before);
        assert_eq!(s.to_move(), Player::P2);
    }

    #[test]
    fn terminal_outcome_by_disc_count() {
        // Disc groups in opposite corners: no square can flip anything, so
        // the positions are terminal and decided by disc count.
        let s = Reversi::from_bitboards(0b111, 0, Player::P1);
        assert!(s.is_terminal());
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)));
        let s = Reversi::from_bitboards(1, 0b111 << 61, Player::P1);
        assert!(s.is_terminal());
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P2)));
        let s = Reversi::from_bitboards(0b11, 0b11 << 62, Player::P1);
        assert!(s.is_terminal());
        assert_eq!(s.outcome(), Some(Outcome::Draw));
    }

    #[test]
    fn random_move_agrees_with_move_list() {
        use pmcts_util::Xoshiro256pp;
        let mut rng = Xoshiro256pp::new(11);
        let mut s = initial();
        for _ in 0..40 {
            if s.is_terminal() {
                break;
            }
            let mut buf = MoveBuf::new();
            s.legal_moves(&mut buf);
            let mv = s.random_move(&mut rng).expect("non-terminal");
            assert!(buf.contains(&mv), "random move {mv:?} not in legal list");
            s.apply(mv);
        }
    }

    #[test]
    fn move_coords_roundtrip() {
        let m = ReversiMove::from_coords(4, 3); // e4
        assert_eq!(m.square(), Some(28));
        assert!(!m.is_pass());
        assert!(ReversiMove::PASS.is_pass());
        assert_eq!(ReversiMove::PASS.square(), None);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_bitboards_rejected() {
        Reversi::from_bitboards(1, 1, Player::P1);
    }

    #[test]
    fn incremental_zobrist_matches_full_rehash() {
        use pmcts_util::Xoshiro256pp;
        let mut rng = Xoshiro256pp::new(13);
        for _ in 0..20 {
            let mut s = initial();
            while let Some(mv) = s.random_move(&mut rng) {
                s.apply(mv);
                assert_eq!(
                    s.zobrist(),
                    zobrist::hash(s.black(), s.white(), s.to_move()),
                    "incremental hash drifted after {mv:?}\n{s}"
                );
            }
        }
    }

    #[test]
    fn pass_updates_hash_by_side_key_only() {
        let mut s = Reversi::from_bitboards(1 << 1, 1 << 0, Player::P1);
        let before = s.zobrist();
        s.apply(ReversiMove::PASS);
        assert_eq!(s.zobrist(), before ^ zobrist::side_key());
    }

    #[test]
    fn zobrist_distinguishes_positions_and_sides() {
        let a = initial();
        let mut b = initial();
        b.apply(ReversiMove(19));
        assert_ne!(a.zobrist(), b.zobrist());
        let flipped = Reversi::from_bitboards(a.black(), a.white(), Player::P2);
        assert_ne!(a.zobrist(), flipped.zobrist());
        // Deterministic across calls.
        assert_eq!(a.zobrist(), Reversi::initial().zobrist());
    }
}
