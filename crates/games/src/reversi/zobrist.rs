//! Zobrist hashing for Reversi positions.
//!
//! Each (square, colour) pair gets a fixed random 64-bit key, plus one key
//! for the side to move; a position's hash is the XOR of the keys of its
//! discs. Used by transposition-aware tooling and as a cheap position
//! fingerprint in tests and logs. Keys are derived deterministically from a
//! fixed seed so hashes are stable across runs and platforms.

use crate::game::Player;
use pmcts_util::{Rng64, SplitMix64};
use std::sync::OnceLock;

struct Keys {
    /// `[colour][square]`; colour 0 = Black.
    squares: [[u64; 64]; 2],
    /// XORed in when White is to move.
    white_to_move: u64,
}

fn keys() -> &'static Keys {
    static KEYS: OnceLock<Keys> = OnceLock::new();
    KEYS.get_or_init(|| {
        // Fixed seed: hashes must be reproducible across processes.
        let mut rng = SplitMix64::new(0x5EED_0B0E_5EED_0B0E);
        let mut squares = [[0u64; 64]; 2];
        for colour in &mut squares {
            for key in colour.iter_mut() {
                *key = rng.next_u64();
            }
        }
        Keys {
            squares,
            white_to_move: rng.next_u64(),
        }
    })
}

/// Hashes a position given its bitboards and side to move.
pub fn hash(black: u64, white: u64, to_move: Player) -> u64 {
    let keys = keys();
    let mut h = 0u64;
    let mut b = black;
    while b != 0 {
        h ^= keys.squares[0][b.trailing_zeros() as usize];
        b &= b - 1;
    }
    let mut w = white;
    while w != 0 {
        h ^= keys.squares[1][w.trailing_zeros() as usize];
        w &= w - 1;
    }
    if to_move == Player::P2 {
        h ^= keys.white_to_move;
    }
    h
}

/// The key for one (square, colour); exposed for incremental updates.
pub fn square_key(player: Player, square: u8) -> u64 {
    keys().squares[player.index()][square as usize]
}

/// The side-to-move key; XOR it to toggle the mover.
pub fn side_key() -> u64 {
    keys().white_to_move
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(
            hash(0xFF, 0xFF00, Player::P1),
            hash(0xFF, 0xFF00, Player::P1)
        );
    }

    #[test]
    fn empty_board_black_to_move_is_zero() {
        assert_eq!(hash(0, 0, Player::P1), 0);
        assert_ne!(hash(0, 0, Player::P2), 0);
    }

    #[test]
    fn hash_changes_with_any_single_disc() {
        let base = hash(0, 0, Player::P1);
        let mut seen = std::collections::HashSet::new();
        for sq in 0..64 {
            let hb = hash(1u64 << sq, 0, Player::P1);
            let hw = hash(0, 1u64 << sq, Player::P1);
            assert_ne!(hb, base);
            assert_ne!(hw, base);
            assert_ne!(hb, hw, "colour must matter on square {sq}");
            assert!(seen.insert(hb), "duplicate key at square {sq}");
            assert!(seen.insert(hw), "duplicate key at square {sq}");
        }
    }

    #[test]
    fn incremental_update_matches_full_hash() {
        // Placing a black disc on square 12 == XOR of the square key.
        let before = hash(0, 0, Player::P1);
        let after = hash(1 << 12, 0, Player::P1);
        assert_eq!(before ^ square_key(Player::P1, 12), after);
        // Toggling side to move == XOR of the side key.
        assert_eq!(
            hash(1 << 12, 0, Player::P1) ^ side_key(),
            hash(1 << 12, 0, Player::P2)
        );
    }
}
