//! Shift-based Reversi bitboard kernels.
//!
//! These are the primitives a CUDA playout kernel would execute per thread:
//! branch-free 8-direction flood fills over two `u64` boards. The naive
//! square-by-square reference implementations live here too and back the
//! property tests (`fast == naive` on random boards).
//!
//! Direction conventions for bit `row * 8 + col`:
//! east = `+1`, west = `-1`, south = `+8`, north = `-8`, and the four
//! diagonals; file masks prevent wrap-around between rows.

/// Squares not on file `a` (col 0) — safe to shift west.
const NOT_A_FILE: u64 = 0xFEFE_FEFE_FEFE_FEFE;
/// Squares not on file `h` (col 7) — safe to shift east.
const NOT_H_FILE: u64 = 0x7F7F_7F7F_7F7F_7F7F;

/// The eight compass directions used by the flood fills.
pub const DIRECTIONS: [Direction; 8] = [
    Direction::E,
    Direction::W,
    Direction::S,
    Direction::N,
    Direction::SE,
    Direction::SW,
    Direction::NE,
    Direction::NW,
];

/// A board direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// +1 column.
    E,
    /// −1 column.
    W,
    /// +1 row.
    S,
    /// −1 row.
    N,
    /// +1 row, +1 column.
    SE,
    /// +1 row, −1 column.
    SW,
    /// −1 row, +1 column.
    NE,
    /// −1 row, −1 column.
    NW,
}

impl Direction {
    /// `(d_row, d_col)` offsets for scalar code.
    pub fn offsets(self) -> (i32, i32) {
        match self {
            Direction::E => (0, 1),
            Direction::W => (0, -1),
            Direction::S => (1, 0),
            Direction::N => (-1, 0),
            Direction::SE => (1, 1),
            Direction::SW => (1, -1),
            Direction::NE => (-1, 1),
            Direction::NW => (-1, -1),
        }
    }
}

/// Shifts a bitboard one step in `dir`, discarding bits that leave the board.
#[inline(always)]
pub fn shift(b: u64, dir: Direction) -> u64 {
    match dir {
        Direction::E => (b & NOT_H_FILE) << 1,
        Direction::W => (b & NOT_A_FILE) >> 1,
        Direction::S => b << 8,
        Direction::N => b >> 8,
        Direction::SE => (b & NOT_H_FILE) << 9,
        Direction::SW => (b & NOT_A_FILE) << 7,
        Direction::NE => (b & NOT_H_FILE) >> 7,
        Direction::NW => (b & NOT_A_FILE) >> 9,
    }
}

/// Bitboard of all legal placement squares for the player owning `own`.
///
/// Classic Dumb7Fill: for each direction, flood from `own` through contiguous
/// `opp` discs (at most 6 steps on an 8×8 board), then step once more — any
/// empty square reached is a legal move in that direction.
#[inline]
pub fn legal_moves_mask(own: u64, opp: u64) -> u64 {
    debug_assert_eq!(own & opp, 0, "overlapping boards");
    let empty = !(own | opp);
    let mut moves = 0u64;
    for dir in DIRECTIONS {
        let mut t = shift(own, dir) & opp;
        // 5 more steps cover the maximum run of 6 opponent discs.
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        moves |= shift(t, dir) & empty;
    }
    moves
}

/// Bitboard of opponent discs flipped by playing on square `sq`.
///
/// Returns 0 if the move flips nothing (i.e. it is illegal).
///
/// Branch-free by design: the per-direction scan is an unrolled flood fill
/// (like [`legal_moves_mask`]) instead of a data-dependent `while` walk —
/// run lengths are random in playouts, so avoiding the mispredicted
/// branches measurably speeds up the hot loop.
#[inline]
pub fn flips_for_move(own: u64, opp: u64, sq: u8) -> u64 {
    debug_assert!(sq < 64);
    let mv = 1u64 << sq;
    debug_assert_eq!(mv & (own | opp), 0, "square occupied");
    let mut flips = 0u64;
    for dir in DIRECTIONS {
        // Flood the contiguous opponent run starting at `mv` (5 extra steps
        // cover the maximum run of 6 opponent discs).
        let mut t = shift(mv, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        // The run flips iff the square past its far end is ours; interior
        // run squares neighbour only opponent discs, so one test suffices.
        let capped = (shift(t, dir) & own != 0) as u64;
        flips |= t & capped.wrapping_neg();
    }
    flips
}

/// Selects the `k`-th (0-based) set bit of `mask` and returns its index.
///
/// Used for uniform random move selection directly on the legal-move mask.
///
/// # Panics
/// Debug-panics if `k >= mask.count_ones()`.
#[inline]
pub fn select_bit(mask: u64, k: u32) -> u8 {
    debug_assert!(k < mask.count_ones(), "select_bit out of range");
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1;
    }
    m.trailing_zeros() as u8
}

/// Multi-lane [`legal_moves_mask`]: masks for `N` independent boards
/// computed back-to-back.
///
/// Direction loop outer, lane loop inner: each inner loop body is the same
/// straight-line u64 code over `N` *independent* dependency chains, which
/// keeps the superscalar units busy and lets the compiler auto-vectorize
/// (4 × u64 per AVX2 op). All `N` lanes are computed unconditionally —
/// callers with fewer than `N` live boards ignore the spare outputs rather
/// than branching here.
///
/// `inline(never)` on the compiled variants: the kernel must stay a
/// standalone, fully-vectorized function. Inlined into a playout loop it
/// competes with ~10 × `N` u64 of caller state for registers and the
/// vectorizer gives up (measured ~3× slower at `N = 8`).
///
/// On x86-64 an AVX2 variant of the identical integer arithmetic is
/// selected at runtime (the default Rust baseline is SSE2, which only packs
/// 2 × u64 per op). Shifts/AND/OR on `u64` are exact in every instruction
/// set, so which variant runs never changes a single output bit.
#[inline]
pub fn legal_moves_mask_lanes<const N: usize>(own: &[u64; N], opp: &[u64; N]) -> [u64; N] {
    #[cfg(target_arch = "x86_64")]
    if N >= 4 && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just checked at runtime.
        return unsafe { lanes_avx2::legal_moves_mask_lanes(own, opp) };
    }
    legal_moves_mask_lanes_generic(own, opp)
}

#[inline(never)]
fn legal_moves_mask_lanes_generic<const N: usize>(own: &[u64; N], opp: &[u64; N]) -> [u64; N] {
    legal_moves_mask_lanes_core(own, opp)
}

/// Shared body: `inline(always)` so each compiled variant above absorbs it
/// under its own target features.
#[inline(always)]
#[allow(clippy::needless_range_loop)] // lane-indexed form mirrors the SIMD shape
fn legal_moves_mask_lanes_core<const N: usize>(own: &[u64; N], opp: &[u64; N]) -> [u64; N] {
    let mut empty = [0u64; N];
    for i in 0..N {
        debug_assert_eq!(own[i] & opp[i], 0, "overlapping boards");
        empty[i] = !(own[i] | opp[i]);
    }
    let mut moves = [0u64; N];
    for dir in DIRECTIONS {
        let mut t = [0u64; N];
        for i in 0..N {
            t[i] = shift(own[i], dir) & opp[i];
        }
        // 5 more steps cover the maximum run of 6 opponent discs.
        for _ in 0..5 {
            for i in 0..N {
                t[i] |= shift(t[i], dir) & opp[i];
            }
        }
        for i in 0..N {
            moves[i] |= shift(t[i], dir) & empty[i];
        }
    }
    moves
}

/// Multi-lane [`flips_for_move`]: flip masks for `N` independent
/// `(own, opp, sq)` triples computed back-to-back.
///
/// Same lock-step shape as [`legal_moves_mask_lanes`]. Lanes whose `sq` is
/// not a legal empty square produce an unspecified (harmless) mask — the
/// only requirement is `sq < 64`. Callers ignore inactive lanes' outputs
/// instead of branching here.
///
/// Compiled and dispatched exactly like [`legal_moves_mask_lanes`]:
/// out-of-line variants, runtime AVX2 selection on x86-64, bit-identical
/// outputs whichever variant runs.
#[inline]
pub fn flips_for_moves_lanes<const N: usize>(
    own: &[u64; N],
    opp: &[u64; N],
    sq: &[u8; N],
) -> [u64; N] {
    #[cfg(target_arch = "x86_64")]
    if N >= 4 && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just checked at runtime.
        return unsafe { lanes_avx2::flips_for_moves_lanes(own, opp, sq) };
    }
    flips_for_moves_lanes_generic(own, opp, sq)
}

#[inline(never)]
fn flips_for_moves_lanes_generic<const N: usize>(
    own: &[u64; N],
    opp: &[u64; N],
    sq: &[u8; N],
) -> [u64; N] {
    flips_for_moves_lanes_core(own, opp, sq)
}

#[inline(always)]
#[allow(clippy::needless_range_loop)] // lane-indexed form mirrors the SIMD shape
fn flips_for_moves_lanes_core<const N: usize>(
    own: &[u64; N],
    opp: &[u64; N],
    sq: &[u8; N],
) -> [u64; N] {
    let mut mv = [0u64; N];
    for i in 0..N {
        debug_assert!(sq[i] < 64);
        mv[i] = 1u64 << sq[i];
    }
    let mut flips = [0u64; N];
    for dir in DIRECTIONS {
        let mut t = [0u64; N];
        for i in 0..N {
            t[i] = shift(mv[i], dir) & opp[i];
        }
        for _ in 0..5 {
            for i in 0..N {
                t[i] |= shift(t[i], dir) & opp[i];
            }
        }
        for i in 0..N {
            let capped = (shift(t[i], dir) & own[i] != 0) as u64;
            flips[i] |= t[i] & capped.wrapping_neg();
        }
    }
    flips
}

/// Hand-written AVX2 lane kernels: 4 boards per `__m256i`, arbitrary `N`
/// by chunking (zero-padded tail group for `N % 4` leftovers — empty
/// boards are harmless inputs to both kernels).
///
/// LLVM's autovectorizer handles the generic lane loops erratically
/// (measured 20–100 ns/board depending on `N`, versus ~8 ns for the scalar
/// kernel), so the hot path is written directly against the intrinsics.
/// Every operation is the same wrapping u64 shift/AND/OR the scalar
/// [`shift`]-based kernels perform, so outputs are bit-identical.
#[cfg(target_arch = "x86_64")]
mod lanes_avx2 {
    use super::{NOT_A_FILE, NOT_H_FILE};
    use core::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_cmpeq_epi64, _mm256_loadu_si256,
        _mm256_or_si256, _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_slli_epi64,
        _mm256_srli_epi64, _mm256_storeu_si256,
    };

    /// Expands to the eight per-direction flood fills of a kernel body.
    /// `$step!(|b| shift_expr)` is invoked once per direction with that
    /// direction's shift over 4 lanes, mirroring scalar [`super::shift`].
    macro_rules! for_each_direction {
        ($step:ident, $not_a:ident, $not_h:ident) => {
            $step!(|b| _mm256_slli_epi64(_mm256_and_si256(b, $not_h), 1)); // E
            $step!(|b| _mm256_srli_epi64(_mm256_and_si256(b, $not_a), 1)); // W
            $step!(|b| _mm256_slli_epi64(b, 8)); // S
            $step!(|b| _mm256_srli_epi64(b, 8)); // N
            $step!(|b| _mm256_slli_epi64(_mm256_and_si256(b, $not_h), 9)); // SE
            $step!(|b| _mm256_slli_epi64(_mm256_and_si256(b, $not_a), 7)); // SW
            $step!(|b| _mm256_srli_epi64(_mm256_and_si256(b, $not_h), 7)); // NE
            $step!(|b| _mm256_srli_epi64(_mm256_and_si256(b, $not_a), 9)); // NW
        };
    }

    /// Floods `t` one more step through `opp` along `$sh`.
    macro_rules! flood_step {
        ($t:ident, $opp:ident, |$b:ident| $sh:expr) => {
            $t = _mm256_or_si256(
                $t,
                _mm256_and_si256(
                    {
                        let $b = $t;
                        $sh
                    },
                    $opp,
                ),
            );
        };
    }

    /// [`super::legal_moves_mask`] over 4 boards.
    #[target_feature(enable = "avx2")]
    fn movegen4(own: __m256i, opp: __m256i) -> __m256i {
        let not_a = _mm256_set1_epi64x(NOT_A_FILE as i64);
        let not_h = _mm256_set1_epi64x(NOT_H_FILE as i64);
        let empty = _mm256_andnot_si256(_mm256_or_si256(own, opp), _mm256_set1_epi64x(-1));
        let mut moves = _mm256_setzero_si256();
        macro_rules! dir {
            (|$b:ident| $sh:expr) => {{
                let mut t = _mm256_and_si256(
                    {
                        let $b = own;
                        $sh
                    },
                    opp,
                );
                flood_step!(t, opp, |$b| $sh);
                flood_step!(t, opp, |$b| $sh);
                flood_step!(t, opp, |$b| $sh);
                flood_step!(t, opp, |$b| $sh);
                flood_step!(t, opp, |$b| $sh);
                moves = _mm256_or_si256(
                    moves,
                    _mm256_and_si256(
                        {
                            let $b = t;
                            $sh
                        },
                        empty,
                    ),
                );
            }};
        }
        for_each_direction!(dir, not_a, not_h);
        moves
    }

    /// [`super::flips_for_move`] over 4 boards (`mv` holds the move bits).
    #[target_feature(enable = "avx2")]
    fn flips4(own: __m256i, opp: __m256i, mv: __m256i) -> __m256i {
        let not_a = _mm256_set1_epi64x(NOT_A_FILE as i64);
        let not_h = _mm256_set1_epi64x(NOT_H_FILE as i64);
        let zero = _mm256_setzero_si256();
        let mut flips = zero;
        macro_rules! dir {
            (|$b:ident| $sh:expr) => {{
                let mut t = _mm256_and_si256(
                    {
                        let $b = mv;
                        $sh
                    },
                    opp,
                );
                flood_step!(t, opp, |$b| $sh);
                flood_step!(t, opp, |$b| $sh);
                flood_step!(t, opp, |$b| $sh);
                flood_step!(t, opp, |$b| $sh);
                flood_step!(t, opp, |$b| $sh);
                // Run flips iff the square past its far end is ours; the
                // cmpeq mask is all-ones where it is NOT (beyond == 0).
                let beyond = _mm256_and_si256(
                    {
                        let $b = t;
                        $sh
                    },
                    own,
                );
                flips = _mm256_or_si256(
                    flips,
                    _mm256_andnot_si256(_mm256_cmpeq_epi64(beyond, zero), t),
                );
            }};
        }
        for_each_direction!(dir, not_a, not_h);
        flips
    }

    /// Loads lanes `i..i+4` of `src`, zero-padding past `N`.
    #[target_feature(enable = "avx2")]
    fn load4<const N: usize>(src: &[u64; N], i: usize) -> __m256i {
        if i + 4 <= N {
            // SAFETY: 4 in-bounds u64s; loadu has no alignment requirement.
            unsafe { _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i) }
        } else {
            let mut pad = [0u64; 4];
            pad[..N - i].copy_from_slice(&src[i..]);
            // SAFETY: reading the whole local array.
            unsafe { _mm256_loadu_si256(pad.as_ptr() as *const __m256i) }
        }
    }

    /// Stores a group's results into lanes `i..min(i+4, N)` of `dst`.
    #[target_feature(enable = "avx2")]
    fn store4<const N: usize>(dst: &mut [u64; N], i: usize, v: __m256i) {
        if i + 4 <= N {
            // SAFETY: 4 in-bounds u64s; storeu has no alignment requirement.
            unsafe { _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, v) };
        } else {
            let mut pad = [0u64; 4];
            // SAFETY: writing the whole local array.
            unsafe { _mm256_storeu_si256(pad.as_mut_ptr() as *mut __m256i, v) };
            dst[i..].copy_from_slice(&pad[..N - i]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub fn legal_moves_mask_lanes<const N: usize>(own: &[u64; N], opp: &[u64; N]) -> [u64; N] {
        let mut out = [0u64; N];
        let mut i = 0;
        while i < N {
            store4(&mut out, i, movegen4(load4(own, i), load4(opp, i)));
            i += 4;
        }
        out
    }

    #[target_feature(enable = "avx2")]
    pub fn flips_for_moves_lanes<const N: usize>(
        own: &[u64; N],
        opp: &[u64; N],
        sq: &[u8; N],
    ) -> [u64; N] {
        let mut mv = [0u64; N];
        for i in 0..N {
            debug_assert!(sq[i] < 64);
            mv[i] = 1u64 << sq[i];
        }
        let mut out = [0u64; N];
        let mut i = 0;
        while i < N {
            store4(
                &mut out,
                i,
                flips4(load4(own, i), load4(opp, i), load4(&mv, i)),
            );
            i += 4;
        }
        out
    }
}

/// Scalar reference implementation of [`legal_moves_mask`].
///
/// O(64 × 8 × 8) and obviously correct; the property tests pit the shift
/// kernels against this on random boards.
pub fn legal_moves_mask_naive(own: u64, opp: u64) -> u64 {
    let mut moves = 0u64;
    for sq in 0..64u8 {
        if (own | opp) & (1u64 << sq) != 0 {
            continue;
        }
        if flips_for_move_naive(own, opp, sq) != 0 {
            moves |= 1u64 << sq;
        }
    }
    moves
}

/// Scalar reference implementation of [`flips_for_move`].
pub fn flips_for_move_naive(own: u64, opp: u64, sq: u8) -> u64 {
    let row = (sq / 8) as i32;
    let col = (sq % 8) as i32;
    let mut flips = 0u64;
    for dir in DIRECTIONS {
        let (dr, dc) = dir.offsets();
        let mut line = 0u64;
        let (mut r, mut c) = (row + dr, col + dc);
        while (0..8).contains(&r) && (0..8).contains(&c) {
            let bit = 1u64 << (r * 8 + c);
            if opp & bit != 0 {
                line |= bit;
            } else if own & bit != 0 {
                flips |= line;
                break;
            } else {
                break;
            }
            r += dr;
            c += dc;
        }
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_util::{Rng64, SplitMix64};

    /// Generates a random *plausible* board: random occupied mask with
    /// random ownership. Not necessarily reachable, but move-gen correctness
    /// does not depend on reachability.
    fn random_board(rng: &mut SplitMix64) -> (u64, u64) {
        let occupied = rng.next_u64() & rng.next_u64(); // ~25% fill
        let ownership = rng.next_u64();
        (occupied & ownership, occupied & !ownership)
    }

    #[test]
    fn shift_east_drops_h_file() {
        let h1 = 1u64 << 7;
        assert_eq!(shift(h1, Direction::E), 0);
        let a1 = 1u64;
        assert_eq!(shift(a1, Direction::E), 1 << 1);
    }

    #[test]
    fn shift_west_drops_a_file() {
        let a1 = 1u64;
        assert_eq!(shift(a1, Direction::W), 0);
        assert_eq!(shift(1 << 1, Direction::W), 1);
    }

    #[test]
    fn shift_vertical_drops_edges() {
        let a8 = 1u64 << 56;
        assert_eq!(shift(a8, Direction::S), 0);
        let a1 = 1u64;
        assert_eq!(shift(a1, Direction::N), 0);
        assert_eq!(shift(a1, Direction::S), 1 << 8);
    }

    #[test]
    fn shift_diagonals_drop_corners() {
        let h8 = 1u64 << 63;
        assert_eq!(shift(h8, Direction::SE), 0);
        let a1 = 1u64;
        assert_eq!(shift(a1, Direction::NW), 0);
        assert_eq!(shift(a1, Direction::SE), 1 << 9);
    }

    #[test]
    fn all_shifts_stay_on_board() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let b = rng.next_u64();
            for dir in DIRECTIONS {
                // A shift never increases popcount.
                assert!(shift(b, dir).count_ones() <= b.count_ones());
            }
        }
    }

    #[test]
    fn initial_position_moves() {
        let black = (1u64 << 28) | (1u64 << 35);
        let white = (1u64 << 27) | (1u64 << 36);
        let mask = legal_moves_mask(black, white);
        let expected = (1u64 << 19) | (1 << 26) | (1 << 37) | (1 << 44);
        assert_eq!(mask, expected);
    }

    #[test]
    fn fast_equals_naive_on_random_boards() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..500 {
            let (own, opp) = random_board(&mut rng);
            assert_eq!(
                legal_moves_mask(own, opp),
                legal_moves_mask_naive(own, opp),
                "own={own:#x} opp={opp:#x}"
            );
        }
    }

    #[test]
    fn flips_fast_equals_naive_on_random_boards() {
        let mut rng = SplitMix64::new(43);
        for _ in 0..200 {
            let (own, opp) = random_board(&mut rng);
            let empty = !(own | opp);
            for sq in 0..64u8 {
                if empty & (1u64 << sq) != 0 {
                    assert_eq!(
                        flips_for_move(own, opp, sq),
                        flips_for_move_naive(own, opp, sq),
                        "own={own:#x} opp={opp:#x} sq={sq}"
                    );
                }
            }
        }
    }

    #[test]
    fn legal_moves_have_nonzero_flips() {
        let mut rng = SplitMix64::new(44);
        for _ in 0..200 {
            let (own, opp) = random_board(&mut rng);
            let mut mask = legal_moves_mask(own, opp);
            while mask != 0 {
                let sq = mask.trailing_zeros() as u8;
                assert_ne!(flips_for_move(own, opp, sq), 0);
                mask &= mask - 1;
            }
        }
    }

    #[test]
    fn flips_only_on_opponent_discs() {
        let mut rng = SplitMix64::new(45);
        for _ in 0..200 {
            let (own, opp) = random_board(&mut rng);
            let mut mask = legal_moves_mask(own, opp);
            while mask != 0 {
                let sq = mask.trailing_zeros() as u8;
                let flips = flips_for_move(own, opp, sq);
                assert_eq!(flips & !opp, 0, "flips must be a subset of opp");
                mask &= mask - 1;
            }
        }
    }

    #[test]
    fn lanes_equal_scalar_on_random_boards() {
        let mut rng = SplitMix64::new(46);
        for _ in 0..200 {
            let mut own = [0u64; 8];
            let mut opp = [0u64; 8];
            for i in 0..8 {
                (own[i], opp[i]) = random_board(&mut rng);
            }
            let masks = legal_moves_mask_lanes(&own, &opp);
            for i in 0..8 {
                assert_eq!(masks[i], legal_moves_mask(own[i], opp[i]), "lane {i}");
            }
            // Pick one legal square per lane (skip lanes with no moves) and
            // check the batched flip kernel against the scalar one.
            let mut sq = [0u8; 8];
            let mut live = [false; 8];
            for i in 0..8 {
                if masks[i] != 0 {
                    sq[i] = select_bit(masks[i], masks[i].count_ones() - 1);
                    live[i] = true;
                }
            }
            let flips = flips_for_moves_lanes(&own, &opp, &sq);
            for i in 0..8 {
                if live[i] {
                    assert_eq!(flips[i], flips_for_move(own[i], opp[i], sq[i]), "lane {i}");
                }
            }
        }
    }

    #[test]
    fn select_bit_enumerates_in_order() {
        let mask = 0b1011_0100u64;
        assert_eq!(select_bit(mask, 0), 2);
        assert_eq!(select_bit(mask, 1), 4);
        assert_eq!(select_bit(mask, 2), 5);
        assert_eq!(select_bit(mask, 3), 7);
    }

    #[test]
    fn select_bit_full_board() {
        for k in 0..64 {
            assert_eq!(select_bit(u64::MAX, k), k as u8);
        }
    }
}
