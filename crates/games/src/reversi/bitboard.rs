//! Shift-based Reversi bitboard kernels.
//!
//! These are the primitives a CUDA playout kernel would execute per thread:
//! branch-free 8-direction flood fills over two `u64` boards. The naive
//! square-by-square reference implementations live here too and back the
//! property tests (`fast == naive` on random boards).
//!
//! Direction conventions for bit `row * 8 + col`:
//! east = `+1`, west = `-1`, south = `+8`, north = `-8`, and the four
//! diagonals; file masks prevent wrap-around between rows.

/// Squares not on file `a` (col 0) — safe to shift west.
const NOT_A_FILE: u64 = 0xFEFE_FEFE_FEFE_FEFE;
/// Squares not on file `h` (col 7) — safe to shift east.
const NOT_H_FILE: u64 = 0x7F7F_7F7F_7F7F_7F7F;

/// The eight compass directions used by the flood fills.
pub const DIRECTIONS: [Direction; 8] = [
    Direction::E,
    Direction::W,
    Direction::S,
    Direction::N,
    Direction::SE,
    Direction::SW,
    Direction::NE,
    Direction::NW,
];

/// A board direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// +1 column.
    E,
    /// −1 column.
    W,
    /// +1 row.
    S,
    /// −1 row.
    N,
    /// +1 row, +1 column.
    SE,
    /// +1 row, −1 column.
    SW,
    /// −1 row, +1 column.
    NE,
    /// −1 row, −1 column.
    NW,
}

impl Direction {
    /// `(d_row, d_col)` offsets for scalar code.
    pub fn offsets(self) -> (i32, i32) {
        match self {
            Direction::E => (0, 1),
            Direction::W => (0, -1),
            Direction::S => (1, 0),
            Direction::N => (-1, 0),
            Direction::SE => (1, 1),
            Direction::SW => (1, -1),
            Direction::NE => (-1, 1),
            Direction::NW => (-1, -1),
        }
    }
}

/// Shifts a bitboard one step in `dir`, discarding bits that leave the board.
#[inline(always)]
pub fn shift(b: u64, dir: Direction) -> u64 {
    match dir {
        Direction::E => (b & NOT_H_FILE) << 1,
        Direction::W => (b & NOT_A_FILE) >> 1,
        Direction::S => b << 8,
        Direction::N => b >> 8,
        Direction::SE => (b & NOT_H_FILE) << 9,
        Direction::SW => (b & NOT_A_FILE) << 7,
        Direction::NE => (b & NOT_H_FILE) >> 7,
        Direction::NW => (b & NOT_A_FILE) >> 9,
    }
}

/// Bitboard of all legal placement squares for the player owning `own`.
///
/// Classic Dumb7Fill: for each direction, flood from `own` through contiguous
/// `opp` discs (at most 6 steps on an 8×8 board), then step once more — any
/// empty square reached is a legal move in that direction.
#[inline]
pub fn legal_moves_mask(own: u64, opp: u64) -> u64 {
    debug_assert_eq!(own & opp, 0, "overlapping boards");
    let empty = !(own | opp);
    let mut moves = 0u64;
    for dir in DIRECTIONS {
        let mut t = shift(own, dir) & opp;
        // 5 more steps cover the maximum run of 6 opponent discs.
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        moves |= shift(t, dir) & empty;
    }
    moves
}

/// Bitboard of opponent discs flipped by playing on square `sq`.
///
/// Returns 0 if the move flips nothing (i.e. it is illegal).
///
/// Branch-free by design: the per-direction scan is an unrolled flood fill
/// (like [`legal_moves_mask`]) instead of a data-dependent `while` walk —
/// run lengths are random in playouts, so avoiding the mispredicted
/// branches measurably speeds up the hot loop.
#[inline]
pub fn flips_for_move(own: u64, opp: u64, sq: u8) -> u64 {
    debug_assert!(sq < 64);
    let mv = 1u64 << sq;
    debug_assert_eq!(mv & (own | opp), 0, "square occupied");
    let mut flips = 0u64;
    for dir in DIRECTIONS {
        // Flood the contiguous opponent run starting at `mv` (5 extra steps
        // cover the maximum run of 6 opponent discs).
        let mut t = shift(mv, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        t |= shift(t, dir) & opp;
        // The run flips iff the square past its far end is ours; interior
        // run squares neighbour only opponent discs, so one test suffices.
        let capped = (shift(t, dir) & own != 0) as u64;
        flips |= t & capped.wrapping_neg();
    }
    flips
}

/// Selects the `k`-th (0-based) set bit of `mask` and returns its index.
///
/// Used for uniform random move selection directly on the legal-move mask.
///
/// # Panics
/// Debug-panics if `k >= mask.count_ones()`.
#[inline]
pub fn select_bit(mask: u64, k: u32) -> u8 {
    debug_assert!(k < mask.count_ones(), "select_bit out of range");
    let mut m = mask;
    for _ in 0..k {
        m &= m - 1;
    }
    m.trailing_zeros() as u8
}

/// Scalar reference implementation of [`legal_moves_mask`].
///
/// O(64 × 8 × 8) and obviously correct; the property tests pit the shift
/// kernels against this on random boards.
pub fn legal_moves_mask_naive(own: u64, opp: u64) -> u64 {
    let mut moves = 0u64;
    for sq in 0..64u8 {
        if (own | opp) & (1u64 << sq) != 0 {
            continue;
        }
        if flips_for_move_naive(own, opp, sq) != 0 {
            moves |= 1u64 << sq;
        }
    }
    moves
}

/// Scalar reference implementation of [`flips_for_move`].
pub fn flips_for_move_naive(own: u64, opp: u64, sq: u8) -> u64 {
    let row = (sq / 8) as i32;
    let col = (sq % 8) as i32;
    let mut flips = 0u64;
    for dir in DIRECTIONS {
        let (dr, dc) = dir.offsets();
        let mut line = 0u64;
        let (mut r, mut c) = (row + dr, col + dc);
        while (0..8).contains(&r) && (0..8).contains(&c) {
            let bit = 1u64 << (r * 8 + c);
            if opp & bit != 0 {
                line |= bit;
            } else if own & bit != 0 {
                flips |= line;
                break;
            } else {
                break;
            }
            r += dr;
            c += dc;
        }
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_util::{Rng64, SplitMix64};

    /// Generates a random *plausible* board: random occupied mask with
    /// random ownership. Not necessarily reachable, but move-gen correctness
    /// does not depend on reachability.
    fn random_board(rng: &mut SplitMix64) -> (u64, u64) {
        let occupied = rng.next_u64() & rng.next_u64(); // ~25% fill
        let ownership = rng.next_u64();
        (occupied & ownership, occupied & !ownership)
    }

    #[test]
    fn shift_east_drops_h_file() {
        let h1 = 1u64 << 7;
        assert_eq!(shift(h1, Direction::E), 0);
        let a1 = 1u64;
        assert_eq!(shift(a1, Direction::E), 1 << 1);
    }

    #[test]
    fn shift_west_drops_a_file() {
        let a1 = 1u64;
        assert_eq!(shift(a1, Direction::W), 0);
        assert_eq!(shift(1 << 1, Direction::W), 1);
    }

    #[test]
    fn shift_vertical_drops_edges() {
        let a8 = 1u64 << 56;
        assert_eq!(shift(a8, Direction::S), 0);
        let a1 = 1u64;
        assert_eq!(shift(a1, Direction::N), 0);
        assert_eq!(shift(a1, Direction::S), 1 << 8);
    }

    #[test]
    fn shift_diagonals_drop_corners() {
        let h8 = 1u64 << 63;
        assert_eq!(shift(h8, Direction::SE), 0);
        let a1 = 1u64;
        assert_eq!(shift(a1, Direction::NW), 0);
        assert_eq!(shift(a1, Direction::SE), 1 << 9);
    }

    #[test]
    fn all_shifts_stay_on_board() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let b = rng.next_u64();
            for dir in DIRECTIONS {
                // A shift never increases popcount.
                assert!(shift(b, dir).count_ones() <= b.count_ones());
            }
        }
    }

    #[test]
    fn initial_position_moves() {
        let black = (1u64 << 28) | (1u64 << 35);
        let white = (1u64 << 27) | (1u64 << 36);
        let mask = legal_moves_mask(black, white);
        let expected = (1u64 << 19) | (1 << 26) | (1 << 37) | (1 << 44);
        assert_eq!(mask, expected);
    }

    #[test]
    fn fast_equals_naive_on_random_boards() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..500 {
            let (own, opp) = random_board(&mut rng);
            assert_eq!(
                legal_moves_mask(own, opp),
                legal_moves_mask_naive(own, opp),
                "own={own:#x} opp={opp:#x}"
            );
        }
    }

    #[test]
    fn flips_fast_equals_naive_on_random_boards() {
        let mut rng = SplitMix64::new(43);
        for _ in 0..200 {
            let (own, opp) = random_board(&mut rng);
            let empty = !(own | opp);
            for sq in 0..64u8 {
                if empty & (1u64 << sq) != 0 {
                    assert_eq!(
                        flips_for_move(own, opp, sq),
                        flips_for_move_naive(own, opp, sq),
                        "own={own:#x} opp={opp:#x} sq={sq}"
                    );
                }
            }
        }
    }

    #[test]
    fn legal_moves_have_nonzero_flips() {
        let mut rng = SplitMix64::new(44);
        for _ in 0..200 {
            let (own, opp) = random_board(&mut rng);
            let mut mask = legal_moves_mask(own, opp);
            while mask != 0 {
                let sq = mask.trailing_zeros() as u8;
                assert_ne!(flips_for_move(own, opp, sq), 0);
                mask &= mask - 1;
            }
        }
    }

    #[test]
    fn flips_only_on_opponent_discs() {
        let mut rng = SplitMix64::new(45);
        for _ in 0..200 {
            let (own, opp) = random_board(&mut rng);
            let mut mask = legal_moves_mask(own, opp);
            while mask != 0 {
                let sq = mask.trailing_zeros() as u8;
                let flips = flips_for_move(own, opp, sq);
                assert_eq!(flips & !opp, 0, "flips must be a subset of opp");
                mask &= mask - 1;
            }
        }
    }

    #[test]
    fn select_bit_enumerates_in_order() {
        let mask = 0b1011_0100u64;
        assert_eq!(select_bit(mask, 0), 2);
        assert_eq!(select_bit(mask, 1), 4);
        assert_eq!(select_bit(mask, 2), 5);
        assert_eq!(select_bit(mask, 3), 7);
    }

    #[test]
    fn select_bit_full_board() {
        for k in 0..64 {
            assert_eq!(select_bit(u64::MAX, k), k as u8);
        }
    }
}
