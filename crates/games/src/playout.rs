//! Random playouts — the Monte Carlo "simulation" step.
//!
//! A playout plays uniformly random legal moves from a starting state until
//! the game ends (paper §II: "a series of random moves which are performed
//! until the end of a game is reached"). The ply count is reported because
//! the simulated GPU charges kernel time proportional to the *longest*
//! playout in each warp — the SIMD divergence effect block-parallelism is
//! designed around.

use crate::game::{Game, MoveBuf, Outcome, Player};
use pmcts_util::Rng64;

/// The result of one random playout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlayoutResult {
    /// The terminal outcome.
    pub outcome: Outcome,
    /// Number of plies played from the starting state to the end.
    pub plies: u32,
    /// Terminal score from P1's perspective (e.g. final disc difference).
    pub final_score: i32,
}

impl PlayoutResult {
    /// Reward in `[0, 1]` for `player`.
    #[inline]
    pub fn reward_for(&self, player: Player) -> f64 {
        self.outcome.reward_for(player)
    }
}

/// Runs one uniformly random playout from `state` to the end of the game.
///
/// # Panics
/// Panics if a game exceeds [`Game::MAX_GAME_LENGTH`] plies, which would
/// indicate a rules bug in the engine (e.g. an infinite pass loop).
pub fn random_playout<G: Game, R: Rng64>(mut state: G, rng: &mut R) -> PlayoutResult {
    // One move buffer for the whole playout: [`Game::random_move_with`]
    // reuses it every ply, so the hot loop performs no allocation (and no
    // per-ply buffer zeroing) regardless of the engine. Termination is
    // detected by move generation itself — `legal_moves` is non-empty iff
    // the state is non-terminal — so no separate `outcome()` probe runs per
    // ply. The RNG draw sequence is identical to the per-ply
    // `outcome()`-then-`random_move` formulation this replaces.
    let mut buf = MoveBuf::new();
    let mut plies = 0u32;
    while let Some(mv) = state.random_move_with(rng, &mut buf) {
        state.apply(mv);
        plies += 1;
        assert!(
            plies as usize <= G::MAX_GAME_LENGTH,
            "{} playout exceeded MAX_GAME_LENGTH={}",
            G::NAME,
            G::MAX_GAME_LENGTH
        );
    }
    let outcome = state
        .outcome()
        .expect("state without a legal move is terminal");
    PlayoutResult {
        outcome,
        plies,
        final_score: state.score(),
    }
}

/// Runs `n` playouts and returns the number of wins for `perspective`
/// (draws count ½, accumulated as f64) along with total plies.
///
/// This is the work a leaf-parallel GPU kernel performs for one tree node.
pub fn batch_playouts<G: Game, R: Rng64>(
    state: G,
    perspective: Player,
    n: u32,
    rng: &mut R,
) -> (f64, u64) {
    let mut wins = 0.0;
    let mut total_plies = 0u64;
    for _ in 0..n {
        let r = random_playout(state, rng);
        wins += r.reward_for(perspective);
        total_plies += r.plies as u64;
    }
    (wins, total_plies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connect4::Connect4;
    use crate::reversi::Reversi;
    use crate::tictactoe::TicTacToe;
    use pmcts_util::Xoshiro256pp;

    #[test]
    fn reversi_playouts_terminate_and_report_plies() {
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..50 {
            let r = random_playout(Reversi::initial(), &mut rng);
            // A Reversi game from the start takes at least 50 plies
            // (55 is the shortest possible game; passes may add a few).
            assert!(r.plies >= 50, "suspiciously short game: {} plies", r.plies);
            assert!(r.plies as usize <= Reversi::MAX_GAME_LENGTH);
        }
    }

    #[test]
    fn playout_from_terminal_state_is_zero_plies() {
        let s = TicTacToe::parse("XXX OO. ...", Player::P2).unwrap();
        let mut rng = Xoshiro256pp::new(2);
        let r = random_playout(s, &mut rng);
        assert_eq!(r.plies, 0);
        assert_eq!(r.outcome, Outcome::Win(Player::P1));
        assert_eq!(r.reward_for(Player::P1), 1.0);
    }

    #[test]
    fn playouts_are_deterministic_under_seed() {
        let a = random_playout(Reversi::initial(), &mut Xoshiro256pp::new(3));
        let b = random_playout(Reversi::initial(), &mut Xoshiro256pp::new(3));
        assert_eq!(a, b);
    }

    #[test]
    fn final_score_matches_outcome_sign() {
        let mut rng = Xoshiro256pp::new(4);
        for _ in 0..100 {
            let r = random_playout(Reversi::initial(), &mut rng);
            match r.outcome {
                Outcome::Win(Player::P1) => assert!(r.final_score > 0),
                Outcome::Win(Player::P2) => assert!(r.final_score < 0),
                Outcome::Draw => assert_eq!(r.final_score, 0),
            }
        }
    }

    #[test]
    fn batch_playouts_accumulate() {
        let mut rng = Xoshiro256pp::new(5);
        let (wins, plies) = batch_playouts(Connect4::initial(), Player::P1, 64, &mut rng);
        assert!((0.0..=64.0).contains(&wins));
        assert!(plies >= 64 * 7, "connect4 needs ≥7 plies per game");
        // First-player advantage in random Connect-4 is well documented;
        // just sanity-check the result is not degenerate.
        assert!(wins > 16.0 && wins < 56.0, "wins={wins}");
    }

    #[test]
    fn reversi_reward_is_balanced_ish() {
        // Uniformly random Reversi is near-balanced; check P1 reward is not
        // degenerate (this also guards against perspective bugs).
        let mut rng = Xoshiro256pp::new(6);
        let (wins, _) = batch_playouts(Reversi::initial(), Player::P1, 400, &mut rng);
        let ratio = wins / 400.0;
        assert!(
            (0.35..0.75).contains(&ratio),
            "P1 win ratio {ratio} out of plausible range"
        );
    }
}
