//! Random playouts — the Monte Carlo "simulation" step.
//!
//! A playout plays uniformly random legal moves from a starting state until
//! the game ends (paper §II: "a series of random moves which are performed
//! until the end of a game is reached"). The ply count is reported because
//! the simulated GPU charges kernel time proportional to the *longest*
//! playout in each warp — the SIMD divergence effect block-parallelism is
//! designed around.

use crate::game::{Game, MoveBuf, Outcome, Player};
use pmcts_util::{Rng64, Xoshiro256pp};

/// The result of one random playout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlayoutResult {
    /// The terminal outcome.
    pub outcome: Outcome,
    /// Number of plies played from the starting state to the end.
    pub plies: u32,
    /// Terminal score from P1's perspective (e.g. final disc difference).
    pub final_score: i32,
}

impl PlayoutResult {
    /// Reward in `[0, 1]` for `player`.
    #[inline]
    pub fn reward_for(&self, player: Player) -> f64 {
        self.outcome.reward_for(player)
    }
}

/// Runs one uniformly random playout from `state` to the end of the game.
///
/// # Panics
/// Panics if a game exceeds [`Game::MAX_GAME_LENGTH`] plies, which would
/// indicate a rules bug in the engine (e.g. an infinite pass loop).
pub fn random_playout<G: Game, R: Rng64>(mut state: G, rng: &mut R) -> PlayoutResult {
    // One move buffer for the whole playout: [`Game::random_move_with`]
    // reuses it every ply, so the hot loop performs no allocation (and no
    // per-ply buffer zeroing) regardless of the engine. Termination is
    // detected by move generation itself — `legal_moves` is non-empty iff
    // the state is non-terminal — so no separate `outcome()` probe runs per
    // ply. The RNG draw sequence is identical to the per-ply
    // `outcome()`-then-`random_move` formulation this replaces.
    let mut buf = MoveBuf::new();
    let mut plies = 0u32;
    while let Some(mv) = state.random_move_with(rng, &mut buf) {
        state.apply(mv);
        plies += 1;
        assert!(
            plies as usize <= G::MAX_GAME_LENGTH,
            "{} playout exceeded MAX_GAME_LENGTH={}",
            G::NAME,
            G::MAX_GAME_LENGTH
        );
    }
    let outcome = state
        .outcome()
        .expect("state without a legal move is terminal");
    PlayoutResult {
        outcome,
        plies,
        final_score: state.score(),
    }
}

/// A batch of `N` independent playout lanes advanced together.
///
/// This is the wall-clock fast path for the ~10⁵/s playout hot loop: `N`
/// boards, `N` RNG streams, and `N` fixed-capacity move buffers move in
/// lock-step, so game engines with bit-parallel kernels (Reversi) can
/// compute move masks and flip masks for all lanes back-to-back as
/// straight-line u64 code instead of one board at a time.
///
/// **Equivalence contract** (DESIGN.md §15): running a batch is
/// bit-identical to running `N` scalar [`random_playout`] calls, lane `i`
/// on `(roots[i], rngs[i])` — same [`PlayoutResult`]s *and* same final RNG
/// states. Lane batching is invisible to everything above it: virtual
/// time, fingerprints, and `SimTime` ledgers never observe it.
#[derive(Clone, Debug)]
pub struct LaneBatch<G: Game, const N: usize> {
    roots: [G; N],
    rngs: [Xoshiro256pp; N],
}

impl<G: Game, const N: usize> LaneBatch<G, N> {
    /// Builds a batch from per-lane roots and RNG streams.
    pub fn new(roots: [G; N], rngs: [Xoshiro256pp; N]) -> Self {
        Self { roots, rngs }
    }

    /// Runs every lane to completion via the game's lane engine
    /// ([`Game::lane_playouts`] — bit-parallel for Reversi, interleaved
    /// scalar otherwise).
    pub fn run(mut self) -> [PlayoutResult; N] {
        G::lane_playouts(&self.roots, &mut self.rngs)
    }

    /// Like [`run`](Self::run), but also returns the final RNG states so
    /// equivalence tests can assert the exact per-lane draw counts.
    pub fn run_with_rngs(mut self) -> ([PlayoutResult; N], [Xoshiro256pp; N]) {
        let results = G::lane_playouts(&self.roots, &mut self.rngs);
        (results, self.rngs)
    }
}

/// The generic interleaved lane engine — the default body of
/// [`Game::lane_playouts`].
///
/// Round-robin: each pass advances every unfinished lane by one ply via
/// [`Game::random_move_with`] on that lane's own buffer and RNG. Because
/// the lanes' RNG streams are independent, interleaving plies across lanes
/// is trivially bit-identical to running the lanes one after another; the
/// win is instruction-level parallelism from `N` independent
/// move-gen/apply dependency chains in flight at once.
///
/// # Panics
/// Panics if any lane exceeds [`Game::MAX_GAME_LENGTH`] plies, exactly
/// like [`random_playout`].
pub fn interleaved_lane_playouts<G: Game, R: Rng64, const N: usize>(
    roots: &[G; N],
    rngs: &mut [R; N],
) -> [PlayoutResult; N] {
    let mut states = *roots;
    let mut bufs: [MoveBuf<G::Move>; N] = std::array::from_fn(|_| MoveBuf::new());
    let mut plies = [0u32; N];
    let mut results: [Option<PlayoutResult>; N] = [None; N];
    let mut live = N;
    while live > 0 {
        for i in 0..N {
            if results[i].is_some() {
                continue;
            }
            match states[i].random_move_with(&mut rngs[i], &mut bufs[i]) {
                Some(mv) => {
                    states[i].apply(mv);
                    plies[i] += 1;
                    assert!(
                        plies[i] as usize <= G::MAX_GAME_LENGTH,
                        "{} playout exceeded MAX_GAME_LENGTH={}",
                        G::NAME,
                        G::MAX_GAME_LENGTH
                    );
                }
                None => {
                    let outcome = states[i]
                        .outcome()
                        .expect("state without a legal move is terminal");
                    results[i] = Some(PlayoutResult {
                        outcome,
                        plies: plies[i],
                        final_score: states[i].score(),
                    });
                    live -= 1;
                }
            }
        }
    }
    results.map(|r| r.expect("all lanes ran to completion"))
}

/// Runs `n` playouts and returns the number of wins for `perspective`
/// (draws count ½, accumulated as f64) along with total plies.
///
/// This is the work a leaf-parallel GPU kernel performs for one tree node.
pub fn batch_playouts<G: Game, R: Rng64>(
    state: G,
    perspective: Player,
    n: u32,
    rng: &mut R,
) -> (f64, u64) {
    let mut wins = 0.0;
    let mut total_plies = 0u64;
    for _ in 0..n {
        let r = random_playout(state, rng);
        wins += r.reward_for(perspective);
        total_plies += r.plies as u64;
    }
    (wins, total_plies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connect4::Connect4;
    use crate::reversi::Reversi;
    use crate::tictactoe::TicTacToe;
    use pmcts_util::Xoshiro256pp;

    #[test]
    fn reversi_playouts_terminate_and_report_plies() {
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..50 {
            let r = random_playout(Reversi::initial(), &mut rng);
            // A Reversi game from the start takes at least 50 plies
            // (55 is the shortest possible game; passes may add a few).
            assert!(r.plies >= 50, "suspiciously short game: {} plies", r.plies);
            assert!(r.plies as usize <= Reversi::MAX_GAME_LENGTH);
        }
    }

    #[test]
    fn playout_from_terminal_state_is_zero_plies() {
        let s = TicTacToe::parse("XXX OO. ...", Player::P2).unwrap();
        let mut rng = Xoshiro256pp::new(2);
        let r = random_playout(s, &mut rng);
        assert_eq!(r.plies, 0);
        assert_eq!(r.outcome, Outcome::Win(Player::P1));
        assert_eq!(r.reward_for(Player::P1), 1.0);
    }

    #[test]
    fn playouts_are_deterministic_under_seed() {
        let a = random_playout(Reversi::initial(), &mut Xoshiro256pp::new(3));
        let b = random_playout(Reversi::initial(), &mut Xoshiro256pp::new(3));
        assert_eq!(a, b);
    }

    #[test]
    fn final_score_matches_outcome_sign() {
        let mut rng = Xoshiro256pp::new(4);
        for _ in 0..100 {
            let r = random_playout(Reversi::initial(), &mut rng);
            match r.outcome {
                Outcome::Win(Player::P1) => assert!(r.final_score > 0),
                Outcome::Win(Player::P2) => assert!(r.final_score < 0),
                Outcome::Draw => assert_eq!(r.final_score, 0),
            }
        }
    }

    #[test]
    fn batch_playouts_accumulate() {
        let mut rng = Xoshiro256pp::new(5);
        let (wins, plies) = batch_playouts(Connect4::initial(), Player::P1, 64, &mut rng);
        assert!((0.0..=64.0).contains(&wins));
        assert!(plies >= 64 * 7, "connect4 needs ≥7 plies per game");
        // First-player advantage in random Connect-4 is well documented;
        // just sanity-check the result is not degenerate.
        assert!(wins > 16.0 && wins < 56.0, "wins={wins}");
    }

    #[test]
    fn reversi_reward_is_balanced_ish() {
        // Uniformly random Reversi is near-balanced; check P1 reward is not
        // degenerate (this also guards against perspective bugs).
        let mut rng = Xoshiro256pp::new(6);
        let (wins, _) = batch_playouts(Reversi::initial(), Player::P1, 400, &mut rng);
        let ratio = wins / 400.0;
        assert!(
            (0.35..0.75).contains(&ratio),
            "P1 win ratio {ratio} out of plausible range"
        );
    }
}
