//! Game engines for parallel Monte Carlo Tree Search.
//!
//! The paper (Rocki & Suda, IPDPS 2011) evaluates on Reversi (Othello); its
//! future-work section asks for "application of the algorithm to other
//! domains", so the engines here are written against a small generic
//! [`Game`] trait and the workspace ships four domains:
//!
//! * [`reversi`] — the paper's benchmark game. Bitboard implementation with
//!   shift-based move generation (branching factor ≈ 8, non-uniform tree,
//!   games last ≤ 60 moves plus passes).
//! * [`connect4`] — 7×6 Connect Four on the classic Fhourstones bitboard.
//! * [`tictactoe`] — exactly solvable; used by the test suite to verify that
//!   the searchers converge to game-theoretically optimal moves.
//! * [`hex`] — Hex on an N×N rhombus (no draws; win detection by flood
//!   fill), exercising a game with a much larger branching factor.
//!
//! The [`playout`] module implements the random simulation step shared by
//! every MCTS variant in `pmcts-core`.

pub mod connect4;
pub mod game;
pub mod hex;
pub mod playout;
pub mod policy;
pub mod reversi;
pub mod tictactoe;
pub mod zobrist;

pub use connect4::Connect4;
pub use game::{Game, MoveBuf, Outcome, Player};
pub use hex::{Hex, Hex11, Hex5, Hex7};
pub use playout::{interleaved_lane_playouts, random_playout, LaneBatch, PlayoutResult};
pub use policy::{policy_playout, PlayoutPolicy, ReversiCornerPolicy, UniformPolicy};
pub use reversi::{Reversi, ReversiMove};
pub use tictactoe::TicTacToe;
