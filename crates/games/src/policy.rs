//! Playout policies.
//!
//! The paper uses uniformly random playouts. "Heavy" playouts — cheap
//! domain heuristics inside the simulation — are the standard follow-up in
//! the MCTS literature, so this module ships them as an extension: a
//! [`PlayoutPolicy`] abstraction, the uniform policy, and a Reversi policy
//! that grabs corners and avoids the squares next to empty corners with
//! probability `1 − ε`. The policy ablation bench measures what they buy.

use crate::game::Game;
use crate::playout::PlayoutResult;
use crate::reversi::{bitboard, eval, Reversi, ReversiMove};
use pmcts_util::Rng64;

/// A move-selection rule used inside playouts.
///
/// Policies must return a *legal* move whenever the state is non-terminal
/// and `None` exactly on terminal states (same contract as
/// [`Game::random_move`]).
pub trait PlayoutPolicy<G: Game>: Send + Sync {
    /// Picks the next playout move.
    fn pick<R: Rng64>(&self, state: &G, rng: &mut R) -> Option<G::Move>;

    /// Policy name for logs and bench output.
    fn name(&self) -> &'static str;
}

/// Uniformly random playouts — the paper's policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformPolicy;

impl<G: Game> PlayoutPolicy<G> for UniformPolicy {
    #[inline]
    fn pick<R: Rng64>(&self, state: &G, rng: &mut R) -> Option<G::Move> {
        state.random_move(rng)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Reversi heavy playouts: with probability `1 − ε` take a corner if one is
/// legal, otherwise avoid X/C squares adjacent to *empty* corners when any
/// alternative exists; with probability `ε` (and as fallback) play
/// uniformly.
#[derive(Clone, Copy, Debug)]
pub struct ReversiCornerPolicy {
    /// Probability of ignoring the heuristic and playing uniformly.
    pub epsilon: f64,
}

impl Default for ReversiCornerPolicy {
    fn default() -> Self {
        ReversiCornerPolicy { epsilon: 0.1 }
    }
}

/// Squares adjacent (orthogonally or diagonally) to each corner.
#[rustfmt::skip]
fn corner_adjacent(corner: u8) -> u64 {
    match corner {
        0 => (1 << 1) | (1 << 8) | (1 << 9),
        7 => (1 << 6) | (1 << 14) | (1 << 15),
        56 => (1 << 48) | (1 << 49) | (1 << 57),
        63 => (1 << 54) | (1 << 55) | (1 << 62),
        _ => unreachable!("not a corner"),
    }
}

impl PlayoutPolicy<Reversi> for ReversiCornerPolicy {
    fn pick<R: Rng64>(&self, state: &Reversi, rng: &mut R) -> Option<ReversiMove> {
        let mask = state.legal_mask();
        if mask == 0 {
            return state.random_move(rng); // pass / terminal handling
        }
        if rng.next_bool(self.epsilon) {
            return state.random_move(rng);
        }
        // 1. Corners are always good.
        let corners = mask & eval::CORNERS;
        if corners != 0 {
            let n = corners.count_ones();
            return Some(ReversiMove(bitboard::select_bit(
                corners,
                rng.next_below(n),
            )));
        }
        // 2. Avoid squares next to still-empty corners.
        let occupied = state.black() | state.white();
        let mut poison = 0u64;
        for corner in [0u8, 7, 56, 63] {
            if occupied & (1u64 << corner) == 0 {
                poison |= corner_adjacent(corner);
            }
        }
        let safe = mask & !poison;
        let pick_from = if safe != 0 { safe } else { mask };
        let n = pick_from.count_ones();
        Some(ReversiMove(bitboard::select_bit(
            pick_from,
            rng.next_below(n),
        )))
    }

    fn name(&self) -> &'static str {
        "reversi corners"
    }
}

/// Runs one playout under `policy` (the policy-parametric twin of
/// [`crate::playout::random_playout`]).
pub fn policy_playout<G: Game, P: PlayoutPolicy<G>, R: Rng64>(
    mut state: G,
    policy: &P,
    rng: &mut R,
) -> PlayoutResult {
    let mut plies = 0u32;
    loop {
        match state.outcome() {
            Some(outcome) => {
                return PlayoutResult {
                    outcome,
                    plies,
                    final_score: state.score(),
                };
            }
            None => {
                let mv = policy
                    .pick(&state, rng)
                    .expect("policy must move on non-terminal state");
                state.apply(mv);
                plies += 1;
                assert!(
                    plies as usize <= G::MAX_GAME_LENGTH,
                    "{} policy playout exceeded MAX_GAME_LENGTH",
                    G::NAME
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{MoveBuf, Player};
    use pmcts_util::Xoshiro256pp;

    #[test]
    fn uniform_policy_delegates_to_random_move() {
        let mut rng = Xoshiro256pp::new(1);
        let s = Reversi::initial();
        let mv = PlayoutPolicy::<Reversi>::pick(&UniformPolicy, &s, &mut rng).unwrap();
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert!(buf.contains(&mv));
    }

    #[test]
    fn corner_policy_takes_available_corner() {
        // Black can take a1 (White b1, Black c1). With epsilon 0 the corner
        // must always be chosen.
        let s = Reversi::from_bitboards(1 << 2, 1 << 1, Player::P1);
        let policy = ReversiCornerPolicy { epsilon: 0.0 };
        let mut rng = Xoshiro256pp::new(2);
        for _ in 0..20 {
            assert_eq!(policy.pick(&s, &mut rng), Some(ReversiMove(0)));
        }
    }

    #[test]
    fn corner_policy_avoids_x_squares_when_possible() {
        // Construct: Black d1, White c1+b2 => Black may play b1 (C-square,
        // flipping c1) or a3.. let's check generated safe set instead:
        // run many picks from the initial-ish game and assert no picked
        // square is adjacent to an empty corner unless forced.
        let policy = ReversiCornerPolicy { epsilon: 0.0 };
        let mut rng = Xoshiro256pp::new(3);
        let mut state = Reversi::initial();
        for _ in 0..30 {
            if state.is_terminal() {
                break;
            }
            let mask = state.legal_mask();
            if mask == 0 {
                state.apply(ReversiMove::PASS);
                continue;
            }
            let mv = policy.pick(&state, &mut rng).unwrap();
            let occupied = state.black() | state.white();
            let mut poison = 0u64;
            for corner in [0u8, 7, 56, 63] {
                if occupied & (1u64 << corner) == 0 {
                    poison |= corner_adjacent(corner);
                }
            }
            if mask & !poison != 0 && mask & eval::CORNERS == 0 {
                assert_eq!(
                    (1u64 << mv.0) & poison,
                    0,
                    "picked poisoned square {mv} with safe options available"
                );
            }
            state.apply(mv);
        }
    }

    #[test]
    fn policy_playout_terminates_and_matches_contract() {
        let mut rng = Xoshiro256pp::new(4);
        let policy = ReversiCornerPolicy::default();
        for _ in 0..20 {
            let r = policy_playout(Reversi::initial(), &policy, &mut rng);
            assert!(r.plies >= 50);
            assert!((0.0..=1.0).contains(&r.reward_for(Player::P1)));
        }
    }

    #[test]
    fn corner_policy_beats_uniform_in_playout_outcomes() {
        // Play corner-policy (as Black) vs uniform (as White) move by move:
        // the heuristic side should win clearly more than half of games.
        let corner = ReversiCornerPolicy { epsilon: 0.05 };
        let uniform = UniformPolicy;
        let mut rng = Xoshiro256pp::new(5);
        let mut black_wins = 0u32;
        let games = 60;
        for _ in 0..games {
            let mut s = Reversi::initial();
            while !s.is_terminal() {
                let mv = match s.to_move() {
                    Player::P1 => corner.pick(&s, &mut rng),
                    Player::P2 => PlayoutPolicy::<Reversi>::pick(&uniform, &s, &mut rng),
                }
                .unwrap();
                s.apply(mv);
            }
            if s.score() > 0 {
                black_wins += 1;
            }
        }
        assert!(
            black_wins > games / 2,
            "corner policy won only {black_wins}/{games}"
        );
    }

    #[test]
    fn epsilon_one_is_equivalent_to_uniform_distribution_support() {
        // With epsilon = 1 the policy must sometimes play poisoned squares
        // (it is uniform), showing the epsilon path is taken.
        let policy = ReversiCornerPolicy { epsilon: 1.0 };
        let s = Reversi::initial();
        let mut rng = Xoshiro256pp::new(6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(policy.pick(&s, &mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4, "all four opening moves must appear");
    }
}
