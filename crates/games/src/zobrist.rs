//! Table-free Zobrist keys for the generic engines.
//!
//! Reversi keeps its classic per-square key table
//! ([`crate::reversi::zobrist`]); the other engines derive their keys on
//! demand from a SplitMix64-style finalizer over a `(game tag, index)`
//! pair. A one-shot mix avoids per-game static tables (Hex is generic over
//! its board size, so a table per `N` would need a static per
//! instantiation) while keeping the same guarantees: keys are a pure
//! function of fixed constants, so hashes are stable across runs,
//! platforms and thread counts.
//!
//! Index-space convention: each game packs `(player, cell)` into a small
//! integer and reserves indices past the board for extras such as a
//! side-to-move key. Tags are arbitrary fixed 64-bit constants, distinct
//! per game (and per Hex board size) so the games' key streams never
//! collide.

/// Derives the fixed Zobrist key for `index` within a game's `tag` domain.
///
/// This is the SplitMix64 output function applied to a `(tag, index)`
/// mixture — the same finalizer [`pmcts_util::SplitMix64`] uses, evaluated
/// at a single point instead of along a sequence.
#[inline]
pub fn key(tag: u64, index: u64) -> u64 {
    let mut z = tag
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic() {
        assert_eq!(key(1, 2), key(1, 2));
    }

    #[test]
    fn keys_are_distinct_across_indices_and_tags() {
        let mut seen = std::collections::HashSet::new();
        for tag in [0x11u64, 0x22, 0x33] {
            for idx in 0..256u64 {
                assert!(seen.insert(key(tag, idx)), "collision at {tag:#x}/{idx}");
            }
        }
    }

    #[test]
    fn zero_inputs_do_not_produce_zero_keys() {
        assert_ne!(key(0, 0), 0);
    }
}
