//! Connect Four on a 7×6 board.
//!
//! One of the "other domains" extensions (paper §V). Each player's stones
//! live in a `u64` using the Fhourstones layout — 7 bits per column (6
//! playable rows plus a sentinel) — so four-in-a-row detection is four
//! shift-and-AND probes, cheap enough for Monte Carlo playouts.

use crate::game::{Game, MoveBuf, Outcome, Player};
use crate::zobrist;
use pmcts_util::Rng64;

/// Board width in columns.
pub const WIDTH: u8 = 7;
/// Board height in rows.
pub const HEIGHT: u8 = 6;

/// Zobrist key domain tag; indices `player * 49 + bit(col, row)`. No
/// side-to-move key: the stone count determines the mover.
const ZTAG: u64 = 0x636F_6E6E_6563_0004;

#[inline]
fn stone_key(p: Player, bit_index: u32) -> u64 {
    zobrist::key(ZTAG, p.index() as u64 * 49 + bit_index as u64)
}

/// A Connect Four position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Connect4 {
    /// Stones of P1 (the first mover, "Red").
    p1: u64,
    /// Stones of P2 ("Yellow").
    p2: u64,
    /// Next free row per column.
    heights: [u8; WIDTH as usize],
    /// Plies played.
    plies: u8,
    /// Set when a four-in-a-row has been completed.
    winner: Option<Player>,
    /// Incremental Zobrist hash (pure function of the stone bitboards).
    hash: u64,
}

/// Bit index of (col, row), row 0 at the bottom.
#[inline]
fn bit(col: u8, row: u8) -> u64 {
    1u64 << (col * (HEIGHT + 1) + row)
}

/// Whether `board` contains four in a row.
#[inline]
fn has_four(board: u64) -> bool {
    // Vertical, horizontal, diagonal /, diagonal \ in the 7-bit-column layout.
    for s in [1u32, 7, 6, 8] {
        let m = board & (board >> s);
        if m & (m >> (2 * s)) != 0 {
            return true;
        }
    }
    false
}

impl Connect4 {
    /// Stones of player `p`.
    pub fn stones(&self, p: Player) -> u64 {
        match p {
            Player::P1 => self.p1,
            Player::P2 => self.p2,
        }
    }

    /// Occupant of (col, row) if any.
    pub fn cell(&self, col: u8, row: u8) -> Option<Player> {
        assert!(col < WIDTH && row < HEIGHT);
        let b = bit(col, row);
        if self.p1 & b != 0 {
            Some(Player::P1)
        } else if self.p2 & b != 0 {
            Some(Player::P2)
        } else {
            None
        }
    }

    /// Current height (stones) of a column.
    pub fn height(&self, col: u8) -> u8 {
        self.heights[col as usize]
    }

    /// Number of plies played so far.
    pub fn plies(&self) -> u8 {
        self.plies
    }
}

impl Game for Connect4 {
    /// A move is a column index `0..7`.
    type Move = u8;

    const NAME: &'static str = "connect4";
    const MAX_GAME_LENGTH: usize = 42;

    fn initial() -> Self {
        Connect4 {
            p1: 0,
            p2: 0,
            heights: [0; WIDTH as usize],
            plies: 0,
            winner: None,
            hash: 0,
        }
    }

    #[inline]
    fn to_move(&self) -> Player {
        if self.plies.is_multiple_of(2) {
            Player::P1
        } else {
            Player::P2
        }
    }

    fn legal_moves(&self, out: &mut MoveBuf<u8>) {
        out.clear();
        if self.winner.is_some() {
            return;
        }
        for col in 0..WIDTH {
            if self.heights[col as usize] < HEIGHT {
                out.push(col);
            }
        }
    }

    fn apply(&mut self, col: u8) {
        debug_assert!(self.winner.is_none(), "game already decided");
        debug_assert!(col < WIDTH && self.heights[col as usize] < HEIGHT);
        let mover = self.to_move();
        let row = self.heights[col as usize];
        let b = bit(col, row);
        let board = match mover {
            Player::P1 => {
                self.p1 |= b;
                self.p1
            }
            Player::P2 => {
                self.p2 |= b;
                self.p2
            }
        };
        self.hash ^= stone_key(mover, (col * (HEIGHT + 1) + row) as u32);
        self.heights[col as usize] += 1;
        self.plies += 1;
        if has_four(board) {
            self.winner = Some(mover);
        }
    }

    #[inline]
    fn is_terminal(&self) -> bool {
        self.winner.is_some() || self.plies as usize >= Self::MAX_GAME_LENGTH
    }

    fn outcome(&self) -> Option<Outcome> {
        if let Some(w) = self.winner {
            Some(Outcome::Win(w))
        } else if self.plies as usize >= Self::MAX_GAME_LENGTH {
            Some(Outcome::Draw)
        } else {
            None
        }
    }

    fn score(&self) -> i32 {
        match self.winner {
            Some(Player::P1) => 1,
            Some(Player::P2) => -1,
            None => 0,
        }
    }

    #[inline]
    fn zobrist(&self) -> u64 {
        self.hash
    }

    fn device_state_bytes() -> usize {
        // Everything except the host-only `hash` cache; removing the u64
        // leaves the struct's alignment (8) and padding unchanged.
        std::mem::size_of::<Self>() - std::mem::size_of::<u64>()
    }

    #[inline]
    fn random_move_with<R: Rng64>(&self, rng: &mut R, buf: &mut MoveBuf<u8>) -> Option<u8> {
        if self.is_terminal() {
            return None;
        }
        // Rejection sampling over 7 columns: faster than building the list
        // while the board is mostly empty, falls back to the list when full.
        for _ in 0..4 {
            let col = rng.next_below(WIDTH as u32) as u8;
            if self.heights[col as usize] < HEIGHT {
                return Some(col);
            }
        }
        self.legal_moves(buf);
        if buf.is_empty() {
            None
        } else {
            Some(buf[rng.next_below(buf.len() as u32) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state() {
        let s = Connect4::initial();
        assert_eq!(s.to_move(), Player::P1);
        assert!(!s.is_terminal());
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert_eq!(buf.as_slice(), &[0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn stones_stack_in_a_column() {
        let mut s = Connect4::initial();
        s.apply(3);
        s.apply(3);
        s.apply(3);
        assert_eq!(s.height(3), 3);
        assert_eq!(s.cell(3, 0), Some(Player::P1));
        assert_eq!(s.cell(3, 1), Some(Player::P2));
        assert_eq!(s.cell(3, 2), Some(Player::P1));
        assert_eq!(s.cell(3, 3), None);
    }

    #[test]
    fn vertical_win() {
        let mut s = Connect4::initial();
        // P1 stacks column 0; P2 wastes moves in column 1.
        for _ in 0..3 {
            s.apply(0);
            s.apply(1);
        }
        assert!(!s.is_terminal());
        s.apply(0); // fourth in a row
        assert!(s.is_terminal());
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)));
        assert_eq!(s.score(), 1);
    }

    #[test]
    fn horizontal_win() {
        let mut s = Connect4::initial();
        for col in 0..3 {
            s.apply(col); // P1
            s.apply(col); // P2 on top
        }
        s.apply(3); // P1 completes 0-1-2-3 on the bottom row
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)));
    }

    #[test]
    fn diagonal_win() {
        let mut s = Connect4::initial();
        // Build a / diagonal for P1 at (0,0),(1,1),(2,2),(3,3).
        let moves = [0u8, 1, 1, 2, 2, 3, 2, 3, 3, 6, 3];
        for &m in &moves {
            assert!(!s.is_terminal(), "premature end before move {m}");
            s.apply(m);
        }
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)));
    }

    #[test]
    fn full_column_is_removed_from_moves() {
        let mut s = Connect4::initial();
        for _ in 0..HEIGHT {
            s.apply(0);
        }
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert!(!buf.contains(&0));
        assert_eq!(buf.len(), 6);
    }

    #[test]
    fn no_winner_after_terminal_not_counted_twice() {
        let mut s = Connect4::initial();
        for _ in 0..3 {
            s.apply(0);
            s.apply(1);
        }
        s.apply(0);
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert!(buf.is_empty(), "terminal states generate no moves");
    }

    #[test]
    fn random_playout_terminates_with_outcome() {
        use pmcts_util::Xoshiro256pp;
        let mut rng = Xoshiro256pp::new(9);
        for _ in 0..50 {
            let mut s = Connect4::initial();
            let mut plies = 0;
            while let Some(mv) = s.random_move(&mut rng) {
                s.apply(mv);
                plies += 1;
                assert!(plies <= Connect4::MAX_GAME_LENGTH);
            }
            assert!(s.is_terminal());
            assert!(s.outcome().is_some());
        }
    }

    #[test]
    fn transposed_move_orders_hash_equal() {
        // [0, 1, 2] and [2, 1, 0] put P1 on cols 0 and 2, P2 on col 1 —
        // the same position through different move orders.
        let mut a = Connect4::initial();
        for mv in [0u8, 1, 2] {
            a.apply(mv);
        }
        let mut b = Connect4::initial();
        for mv in [2u8, 1, 0] {
            b.apply(mv);
        }
        assert_eq!(a, b);
        assert_eq!(a.zobrist(), b.zobrist());
        // Swapping which player owns a stone changes the hash.
        let mut c = Connect4::initial();
        for mv in [1u8, 0, 2] {
            c.apply(mv);
        }
        assert_ne!(a.zobrist(), c.zobrist());
    }

    #[test]
    fn zobrist_distinguishes_colour_and_square() {
        use pmcts_util::Xoshiro256pp;
        let mut rng = Xoshiro256pp::new(31);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..40 {
            let mut s = Connect4::initial();
            seen.insert(s.zobrist());
            while let Some(mv) = s.random_move(&mut rng) {
                let before = s.zobrist();
                s.apply(mv);
                assert_ne!(s.zobrist(), before, "placing a stone must rehash");
                seen.insert(s.zobrist());
            }
        }
        assert!(seen.len() > 100, "hashes should rarely collide");
    }

    #[test]
    fn has_four_no_column_wraparound() {
        // Three at the top of column 0 plus one at the bottom of column 1
        // must NOT count as four (the sentinel row prevents it).
        let board = bit(0, 3) | bit(0, 4) | bit(0, 5) | bit(1, 0);
        assert!(!has_four(board));
    }
}
