//! Hex on an N×N rhombus.
//!
//! The second "other domain" extension: Hex has no draws, no passes, and a
//! branching factor of up to N² — a very different tree shape from Reversi,
//! which stresses the searchers' expansion strategy. P1 ("Red") connects the
//! top and bottom rows; P2 ("Blue") connects the left and right columns.
//!
//! Stones are kept in `u128` bitboards (N ≤ 11 ⇒ ≤ 121 cells). Win detection
//! is a mask-based flood fill from the player's starting edge, using the six
//! hexagonal neighbour directions expressed as shifts — the same technique
//! as the Reversi move generator.

use crate::game::{Game, MoveBuf, Outcome, Player};
use crate::zobrist;

/// Zobrist key domain tag; the board size is mixed in so different `Hex<N>`
/// instantiations never share keys. Indices are `player * N² + cell`; no
/// side-to-move key (the stone count determines the mover).
const ZTAG: u64 = 0x6865_7868_6578_0002;

#[inline]
fn stone_key(n: usize, p: Player, cell: u8) -> u64 {
    zobrist::key(
        ZTAG ^ (n as u64) << 32,
        p.index() as u64 * (n * n) as u64 + cell as u64,
    )
}

/// Hex position on an `N`×`N` board, cell index = `row * N + col`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Hex<const N: usize> {
    /// P1 ("Red", connects top row to bottom row).
    red: u128,
    /// P2 ("Blue", connects left column to right column).
    blue: u128,
    /// Plies played.
    plies: u16,
    /// Winner, set as soon as a connection is completed.
    winner: Option<Player>,
    /// Incremental Zobrist hash (pure function of the stone bitboards).
    hash: u64,
}

/// 5×5 Hex.
pub type Hex5 = Hex<5>;
/// 7×7 Hex (default size for tests and examples).
pub type Hex7 = Hex<7>;
/// 11×11 Hex (tournament size).
pub type Hex11 = Hex<11>;

/// Mask of all cells of an N×N board.
const fn board_mask(n: usize) -> u128 {
    if n * n == 128 {
        u128::MAX
    } else {
        (1u128 << (n * n)) - 1
    }
}

/// Mask of cells NOT in column 0.
const fn not_first_col(n: usize) -> u128 {
    let mut m = 0u128;
    let mut r = 0;
    while r < n {
        let mut c = 1;
        while c < n {
            m |= 1u128 << (r * n + c);
            c += 1;
        }
        r += 1;
    }
    m
}

/// Mask of cells NOT in column N−1.
const fn not_last_col(n: usize) -> u128 {
    let mut m = 0u128;
    let mut r = 0;
    while r < n {
        let mut c = 0;
        while c + 1 < n {
            m |= 1u128 << (r * n + c);
            c += 1;
        }
        r += 1;
    }
    m
}

/// Mask of row 0 / row N−1 / col 0 / col N−1.
const fn edge_masks(n: usize) -> (u128, u128, u128, u128) {
    let mut top = 0u128;
    let mut bottom = 0u128;
    let mut left = 0u128;
    let mut right = 0u128;
    let mut i = 0;
    while i < n {
        top |= 1u128 << i;
        bottom |= 1u128 << ((n - 1) * n + i);
        left |= 1u128 << (i * n);
        right |= 1u128 << (i * n + n - 1);
        i += 1;
    }
    (top, bottom, left, right)
}

impl<const N: usize> Hex<N> {
    const BOARD: u128 = board_mask(N);
    const NOT_FIRST_COL: u128 = not_first_col(N);
    const NOT_LAST_COL: u128 = not_last_col(N);
    const EDGES: (u128, u128, u128, u128) = edge_masks(N);

    /// Stones of player `p`.
    pub fn stones(&self, p: Player) -> u128 {
        match p {
            Player::P1 => self.red,
            Player::P2 => self.blue,
        }
    }

    /// Plies played so far.
    pub fn plies(&self) -> u16 {
        self.plies
    }

    /// Expands `set` by one step of hexagonal adjacency, clipped to the
    /// board. Neighbours of (r,c): (r,c±1), (r±1,c), (r−1,c+1), (r+1,c−1).
    #[inline]
    fn neighbours(set: u128) -> u128 {
        let e = (set & Self::NOT_LAST_COL) << 1;
        let w = (set & Self::NOT_FIRST_COL) >> 1;
        let s = set << N;
        let n = set >> N;
        let ne = (set & Self::NOT_LAST_COL) >> (N - 1);
        let sw = (set & Self::NOT_FIRST_COL) << (N - 1);
        (e | w | s | n | ne | sw) & Self::BOARD
    }

    /// Whether `stones` connect `from_edge` to `to_edge` (flood fill).
    fn connects(stones: u128, from_edge: u128, to_edge: u128) -> bool {
        let mut reached = stones & from_edge;
        if reached == 0 {
            return false;
        }
        loop {
            let grown = reached | (Self::neighbours(reached) & stones);
            if grown & to_edge != 0 {
                return true;
            }
            if grown == reached {
                return false;
            }
            reached = grown;
        }
    }

    /// Whether player `p` has completed their connection.
    pub fn has_won(&self, p: Player) -> bool {
        let (top, bottom, left, right) = Self::EDGES;
        match p {
            Player::P1 => Self::connects(self.red, top, bottom),
            Player::P2 => Self::connects(self.blue, left, right),
        }
    }
}

impl<const N: usize> Game for Hex<N> {
    /// A move is a cell index `0..N²`.
    type Move = u8;

    const NAME: &'static str = "hex";
    const MAX_GAME_LENGTH: usize = N * N;

    fn initial() -> Self {
        assert!(N >= 2 && N * N <= 128, "unsupported Hex size");
        Hex {
            red: 0,
            blue: 0,
            plies: 0,
            winner: None,
            hash: 0,
        }
    }

    #[inline]
    fn to_move(&self) -> Player {
        if self.plies.is_multiple_of(2) {
            Player::P1
        } else {
            Player::P2
        }
    }

    fn legal_moves(&self, out: &mut MoveBuf<u8>) {
        out.clear();
        if self.winner.is_some() {
            return;
        }
        let mut empty = Self::BOARD & !(self.red | self.blue);
        while empty != 0 {
            out.push(empty.trailing_zeros() as u8);
            empty &= empty - 1;
        }
    }

    fn apply(&mut self, cell: u8) {
        debug_assert!((cell as usize) < N * N);
        debug_assert!(self.winner.is_none(), "game already decided");
        let bit = 1u128 << cell;
        debug_assert_eq!((self.red | self.blue) & bit, 0, "cell occupied");
        let mover = self.to_move();
        match mover {
            Player::P1 => self.red |= bit,
            Player::P2 => self.blue |= bit,
        }
        self.hash ^= stone_key(N, mover, cell);
        self.plies += 1;
        if self.has_won(mover) {
            self.winner = Some(mover);
        }
    }

    #[inline]
    fn is_terminal(&self) -> bool {
        // By the Hex theorem a full board always contains a connection, so
        // the winner check alone suffices; the occupancy test is a safety
        // net for unreachable hand-built positions.
        self.winner.is_some() || (self.red | self.blue) == Self::BOARD
    }

    fn outcome(&self) -> Option<Outcome> {
        self.winner.map(Outcome::Win).or({
            if (self.red | self.blue) == Self::BOARD {
                Some(Outcome::Draw) // unreachable in real play
            } else {
                None
            }
        })
    }

    fn score(&self) -> i32 {
        match self.winner {
            Some(Player::P1) => 1,
            Some(Player::P2) => -1,
            None => 0,
        }
    }

    #[inline]
    fn zobrist(&self) -> u64 {
        self.hash
    }

    fn device_state_bytes() -> usize {
        // The host-only `hash` cache sits entirely in what was padding
        // (u128 alignment), so the wire size is the full struct — same 48
        // bytes as before the cache existed.
        std::mem::size_of::<Self>()
    }

    // `random_move_with` deliberately uses the trait default: it routes
    // through the caller's shared `MoveBuf`, the uniform allocation-free
    // convention lane batching relies on. (A former bitboard-native
    // override ignored its buffer; the default draws the same single
    // `next_below(popcount(empty))` and picks the same ascending-order
    // cell, so the switch was bit-identical.)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_board_empty() {
        let s = Hex7::initial();
        assert_eq!(s.stones(Player::P1), 0);
        assert_eq!(s.to_move(), Player::P1);
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert_eq!(buf.len(), 49);
    }

    #[test]
    fn straight_column_wins_for_red() {
        let mut s = Hex5::initial();
        // Red plays column 0 top to bottom; Blue plays scattered cells that
        // do not connect.
        let red_moves = [0u8, 5, 10, 15, 20];
        let blue_moves = [1u8, 7, 13, 19];
        for i in 0..4 {
            s.apply(red_moves[i]);
            s.apply(blue_moves[i]);
        }
        assert!(!s.is_terminal());
        s.apply(red_moves[4]);
        assert!(s.is_terminal());
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)));
    }

    #[test]
    fn straight_row_wins_for_blue() {
        let mut s = Hex5::initial();
        // Blue fills row 2 (cells 10..15); Red scatters.
        let blue_moves = [10u8, 11, 12, 13, 14];
        let red_moves = [0u8, 2, 4, 21, 23];
        for i in 0..5 {
            s.apply(red_moves[i]);
            if s.is_terminal() {
                break;
            }
            s.apply(blue_moves[i]);
        }
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P2)));
    }

    #[test]
    fn diagonal_adjacency_counts() {
        // Red path using the NE/SW hex adjacency: (0,1)=1, (1,0)=5,
        // (2,0)=10 ... wait (0,1) and (1,0) are hex-adjacent via SW.
        let mut s = Hex5::initial();
        let red = [1u8, 5, 10, 15, 20];
        let blue = [3u8, 8, 13, 18];
        for i in 0..4 {
            s.apply(red[i]);
            s.apply(blue[i]);
        }
        s.apply(red[4]);
        assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)), "\n{s:?}");
    }

    #[test]
    fn zigzag_is_not_connected_without_adjacency() {
        // Two red stones in the SAME column but two rows apart: not adjacent.
        let mut s = Hex5::initial();
        s.apply(0); // red (0,0)
        s.apply(4); // blue
        s.apply(10); // red (2,0) — gap at (1,0)
        assert!(!s.has_won(Player::P1));
    }

    #[test]
    fn no_winner_mid_game() {
        let s = Hex7::initial();
        assert_eq!(s.outcome(), None);
        assert!(!s.has_won(Player::P1));
        assert!(!s.has_won(Player::P2));
    }

    #[test]
    fn random_games_always_produce_a_winner() {
        use pmcts_util::Xoshiro256pp;
        let mut rng = Xoshiro256pp::new(77);
        for _ in 0..30 {
            let mut s = Hex7::initial();
            let mut plies = 0;
            while let Some(mv) = s.random_move(&mut rng) {
                s.apply(mv);
                plies += 1;
                assert!(plies <= Hex7::MAX_GAME_LENGTH);
            }
            match s.outcome() {
                Some(Outcome::Win(_)) => {}
                other => panic!("hex game ended with {other:?}"),
            }
        }
    }

    #[test]
    fn neighbour_masks_match_scalar_adjacency() {
        // Exhaustive per-cell check on the 5×5 board against coordinate math.
        for cell in 0..25usize {
            let set = 1u128 << cell;
            let fast = Hex::<5>::neighbours(set);
            let (r, c) = (cell as i32 / 5, cell as i32 % 5);
            let mut slow = 0u128;
            for (dr, dc) in [(0, 1), (0, -1), (1, 0), (-1, 0), (-1, 1), (1, -1)] {
                let (nr, nc) = (r + dr, c + dc);
                if (0..5).contains(&nr) && (0..5).contains(&nc) {
                    slow |= 1u128 << (nr * 5 + nc);
                }
            }
            assert_eq!(fast, slow, "cell {cell}");
        }
    }

    #[test]
    fn transposed_move_orders_hash_equal() {
        // Red 0, Blue 10, Red 5 vs Red 5, Blue 10, Red 0.
        let mut a = Hex5::initial();
        for mv in [0u8, 10, 5] {
            a.apply(mv);
        }
        let mut b = Hex5::initial();
        for mv in [5u8, 10, 0] {
            b.apply(mv);
        }
        assert_eq!(a, b);
        assert_eq!(a.zobrist(), b.zobrist());
        // Board sizes key differently: the same cells on Hex7 hash apart.
        let mut c = Hex7::initial();
        for mv in [0u8, 10, 5] {
            c.apply(mv);
        }
        assert_ne!(a.zobrist(), c.zobrist());
    }

    #[test]
    fn larger_boards_work() {
        let s = Hex11::initial();
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert_eq!(buf.len(), 121);
    }
}
