//! The generic two-player, zero-sum, perfect-information game interface.
//!
//! Every searcher in `pmcts-core` is generic over this trait, which is the
//! contract that makes the block-parallel scheme applicable "to other
//! domains" (paper §V). States are required to be `Copy`: all four bundled
//! engines use bitboards small enough to pass by value, which is what makes
//! tree nodes and simulated GPU thread state cheap.

use pmcts_util::{ArrayVec, Rng64};

/// The player to move. `P1` moves first (Black in Reversi, X in Tic-Tac-Toe).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Player {
    /// First player (Black / X / Red).
    P1,
    /// Second player (White / O / Blue).
    P2,
}

impl Player {
    /// The opponent of this player.
    #[inline]
    pub fn opponent(self) -> Player {
        match self {
            Player::P1 => Player::P2,
            Player::P2 => Player::P1,
        }
    }

    /// Index 0 for `P1`, 1 for `P2` — used to index per-player tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Player::P1 => 0,
            Player::P2 => 1,
        }
    }
}

/// The result of a finished game.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// The given player won.
    Win(Player),
    /// Drawn game.
    Draw,
}

impl Outcome {
    /// Reward in `[0, 1]` from `player`'s point of view: 1 win, ½ draw,
    /// 0 loss. This is the value backpropagated through MCTS trees.
    #[inline]
    pub fn reward_for(self, player: Player) -> f64 {
        match self {
            Outcome::Win(w) if w == player => 1.0,
            Outcome::Win(_) => 0.0,
            Outcome::Draw => 0.5,
        }
    }
}

/// Fixed-capacity move buffer shared by all engines.
///
/// 128 covers the largest bundled game (Hex 11×11 opens with 121 legal
/// moves); Reversi never exceeds 33.
pub type MoveBuf<M> = ArrayVec<M, 128>;

/// A two-player, zero-sum, perfect-information game state.
///
/// Implementations must uphold:
/// * [`legal_moves`](Game::legal_moves) is non-empty iff the state is not
///   terminal (games with forced passes, like Reversi, expose the pass as an
///   explicit move);
/// * [`apply`](Game::apply) with any generated move keeps the state valid and
///   alternates or retains `to_move` according to the game's rules;
/// * every game reaches a terminal state in at most
///   [`MAX_GAME_LENGTH`](Game::MAX_GAME_LENGTH) plies from any reachable
///   state (this bounds simulated GPU kernel execution).
pub trait Game: Copy + Clone + PartialEq + Send + Sync + std::fmt::Debug + 'static {
    /// A move. `Default` is required only so moves can live in fixed arrays.
    type Move: Copy + Eq + std::fmt::Debug + Default + Send + Sync + 'static;

    /// Human-readable game name (used by the bench harness).
    const NAME: &'static str;

    /// Upper bound on plies from any reachable state to a terminal state.
    const MAX_GAME_LENGTH: usize;

    /// Whether [`lane_playouts`](Game::lane_playouts) is a measured
    /// wall-clock win over scalar playouts for this game. The playout
    /// kernel only routes warps through lane batches when this is set;
    /// games on the generic interleaved engine keep the scalar path (the
    /// round-robin bookkeeping costs more than its ILP buys there).
    const LANE_ENGINE: bool = false;

    /// The initial position.
    fn initial() -> Self;

    /// The player to move (meaningless on terminal states, but must not
    /// panic).
    fn to_move(&self) -> Player;

    /// Writes every legal move into `out` (cleared first). Empty iff the
    /// state is terminal.
    fn legal_moves(&self, out: &mut MoveBuf<Self::Move>);

    /// Applies a legal move in place.
    ///
    /// Applying a move that was not produced by [`legal_moves`](Self::legal_moves)
    /// on this exact state is a logic error; engines may panic or corrupt the
    /// state (debug builds panic).
    fn apply(&mut self, mv: Self::Move);

    /// Whether the game is over.
    fn is_terminal(&self) -> bool;

    /// The result of a terminal state; `None` if the game is not over.
    fn outcome(&self) -> Option<Outcome>;

    /// A signed score from `P1`'s perspective (e.g. disc difference in
    /// Reversi). On non-terminal states this is the current material count,
    /// which the match harness uses for the per-game-step "point difference"
    /// traces of Figs. 7–8.
    fn score(&self) -> i32;

    /// Zobrist hash of the position, including the side to move whenever
    /// the board alone does not determine it (Connect Four and Hex stone
    /// counts fix the mover; Reversi passes and hand-built Tic-Tac-Toe
    /// positions do not).
    ///
    /// Implementations maintain the hash **incrementally**: every state
    /// carries its hash and [`apply`](Self::apply) updates it in O(changed
    /// stones) with fixed, seed-derived key tables — no allocation, cheap
    /// enough for the playout hot loop. Equal states (under `PartialEq`)
    /// always hash equally; the transposition table in `pmcts-core` keys
    /// on this value.
    fn zobrist(&self) -> u64;

    /// Bytes of position payload a device kernel needs uploaded: the board
    /// encoding and side to move, **excluding host-only caches** such as
    /// the incrementally maintained Zobrist hash, which the device never
    /// reads. Virtual transfer costs are charged from this value, so it is
    /// part of the calibrated cost model — implementations pin it to the
    /// raw board layout rather than `size_of::<Self>()`.
    fn device_state_bytes() -> usize {
        std::mem::size_of::<Self>()
    }

    /// Picks a uniformly random legal move, or `None` on terminal states.
    ///
    /// Allocates a fresh move buffer; hot loops (playouts) should call
    /// [`random_move_with`](Self::random_move_with) with a reused buffer
    /// instead. Both draw identical RNG sequences.
    #[inline]
    fn random_move<R: Rng64>(&self, rng: &mut R) -> Option<Self::Move> {
        let mut buf = MoveBuf::new();
        self.random_move_with(rng, &mut buf)
    }

    /// Picks a uniformly random legal move using `buf` as scratch space, or
    /// `None` on terminal states.
    ///
    /// Engines with bitboard move generation override this with a faster
    /// bit-selection routine (ignoring `buf`); the default materialises the
    /// move list into `buf`. Overrides must consume the same RNG draws as
    /// [`random_move`](Self::random_move) so playouts are seed-stable across
    /// both entry points.
    #[inline]
    fn random_move_with<R: Rng64>(
        &self,
        rng: &mut R,
        buf: &mut MoveBuf<Self::Move>,
    ) -> Option<Self::Move> {
        self.legal_moves(buf);
        if buf.is_empty() {
            None
        } else {
            Some(buf[rng.next_below(buf.len() as u32) as usize])
        }
    }

    /// Runs `N` independent random playouts, lane `i` from `roots[i]`
    /// drawing from `rngs[i]`, and returns the per-lane results.
    ///
    /// This is the batch entry point behind
    /// [`LaneBatch`](crate::playout::LaneBatch). The default is the
    /// interleaved scalar engine; games with bit-parallel kernels
    /// (Reversi) override it to advance all lanes through straight-line
    /// bitboard code. **Overrides must be bit-identical to `N` scalar
    /// [`random_playout`](crate::playout::random_playout) calls** — same
    /// results, same per-lane RNG draw sequences, same ply counts — so
    /// lane batching never changes virtual-time results (DESIGN.md §15).
    #[inline]
    fn lane_playouts<R: Rng64, const N: usize>(
        roots: &[Self; N],
        rngs: &mut [R; N],
    ) -> [crate::playout::PlayoutResult; N] {
        crate::playout::interleaved_lane_playouts(roots, rngs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opponent_is_involution() {
        assert_eq!(Player::P1.opponent(), Player::P2);
        assert_eq!(Player::P2.opponent(), Player::P1);
        assert_eq!(Player::P1.opponent().opponent(), Player::P1);
    }

    #[test]
    fn player_indices() {
        assert_eq!(Player::P1.index(), 0);
        assert_eq!(Player::P2.index(), 1);
    }

    #[test]
    fn rewards() {
        assert_eq!(Outcome::Win(Player::P1).reward_for(Player::P1), 1.0);
        assert_eq!(Outcome::Win(Player::P1).reward_for(Player::P2), 0.0);
        assert_eq!(Outcome::Draw.reward_for(Player::P1), 0.5);
        assert_eq!(Outcome::Draw.reward_for(Player::P2), 0.5);
    }

    #[test]
    fn rewards_sum_to_one() {
        for o in [
            Outcome::Win(Player::P1),
            Outcome::Win(Player::P2),
            Outcome::Draw,
        ] {
            assert_eq!(o.reward_for(Player::P1) + o.reward_for(Player::P2), 1.0);
        }
    }
}
