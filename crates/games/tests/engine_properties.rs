//! Property tests for the Connect-4, Hex and Tic-Tac-Toe engines (Reversi's
//! live at the workspace root, tested against the naive bitboard reference).

use pmcts_games::{Connect4, Game, Hex7, MoveBuf, Outcome, Player, TicTacToe};
use pmcts_util::Xoshiro256pp;
use proptest::prelude::*;

/// Plays `plies` random moves (stopping early at terminal states).
fn advance<G: Game>(mut state: G, plies: u32, seed: u64) -> G {
    let mut rng = Xoshiro256pp::new(seed);
    for _ in 0..plies {
        match state.random_move(&mut rng) {
            Some(mv) => state.apply(mv),
            None => break,
        }
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn connect4_stone_count_equals_plies(seed in any::<u64>(), plies in 0u32..42) {
        let s = advance(Connect4::initial(), plies, seed);
        let stones = s.stones(Player::P1).count_ones() + s.stones(Player::P2).count_ones();
        prop_assert_eq!(stones as u8, s.plies());
        // Stones never overlap.
        prop_assert_eq!(s.stones(Player::P1) & s.stones(Player::P2), 0);
    }

    #[test]
    fn connect4_moves_alternate_and_heights_bound(seed in any::<u64>(), plies in 0u32..42) {
        let s = advance(Connect4::initial(), plies, seed);
        for col in 0..7 {
            prop_assert!(s.height(col) <= 6);
        }
        if !s.is_terminal() {
            let expected = if s.plies() % 2 == 0 { Player::P1 } else { Player::P2 };
            prop_assert_eq!(s.to_move(), expected);
        }
    }

    #[test]
    fn connect4_terminal_iff_no_moves(seed in any::<u64>(), plies in 0u32..60) {
        let s = advance(Connect4::initial(), plies, seed);
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        prop_assert_eq!(buf.is_empty(), s.is_terminal());
        prop_assert_eq!(s.outcome().is_some(), s.is_terminal());
    }

    #[test]
    fn hex_games_never_draw(seed in any::<u64>()) {
        let s = advance(Hex7::initial(), 100, seed);
        prop_assert!(s.is_terminal());
        match s.outcome() {
            Some(Outcome::Win(_)) => {}
            other => prop_assert!(false, "hex ended with {:?}", other),
        }
        // Only one player can be connected.
        prop_assert!(!(s.has_won(Player::P1) && s.has_won(Player::P2)));
    }

    #[test]
    fn hex_winner_stops_the_game(seed in any::<u64>(), plies in 0u32..49) {
        let s = advance(Hex7::initial(), plies, seed);
        if s.outcome().is_some() {
            let mut buf = MoveBuf::new();
            s.legal_moves(&mut buf);
            prop_assert!(buf.is_empty(), "finished games generate no moves");
        }
    }

    #[test]
    fn tictactoe_marks_disjoint_and_outcomes_consistent(seed in any::<u64>(), plies in 0u32..9) {
        let s = advance(TicTacToe::initial(), plies, seed);
        prop_assert_eq!(s.score().abs() <= 1, true);
        match s.outcome() {
            Some(Outcome::Win(Player::P1)) => prop_assert_eq!(s.score(), 1),
            Some(Outcome::Win(Player::P2)) => prop_assert_eq!(s.score(), -1),
            Some(Outcome::Draw) => prop_assert_eq!(s.score(), 0),
            None => prop_assert!(!s.is_terminal()),
        }
    }

    #[test]
    fn random_move_always_legal_across_games(seed in any::<u64>(), plies in 0u32..30) {
        // Generic contract: random_move ∈ legal_moves, for every engine.
        fn check<G: Game>(state: G, seed: u64) -> Result<(), TestCaseError> {
            let mut rng = Xoshiro256pp::new(seed);
            if let Some(mv) = state.random_move(&mut rng) {
                let mut buf = MoveBuf::new();
                state.legal_moves(&mut buf);
                prop_assert!(buf.contains(&mv));
            } else {
                prop_assert!(state.is_terminal());
            }
            Ok(())
        }
        check(advance(Connect4::initial(), plies, seed), seed)?;
        check(advance(Hex7::initial(), plies, seed), seed)?;
        check(advance(TicTacToe::initial(), plies % 9, seed), seed)?;
    }
}
