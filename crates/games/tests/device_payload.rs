//! Pins the device wire size of every bundled game.
//!
//! Virtual transfer costs are charged from `Game::device_state_bytes`, so
//! these values are part of the calibrated cost model: changing one shifts
//! every elapsed-virtual-time fingerprint in the workspace. They equal the
//! raw board layouts from before the host-only Zobrist hash cache was added
//! to the states (the device never reads the hash).

use pmcts_games::{Connect4, Game, Hex11, Hex5, Hex7, Reversi, TicTacToe};

#[test]
fn device_payload_sizes_are_pinned() {
    assert_eq!(TicTacToe::device_state_bytes(), 6);
    assert_eq!(Connect4::device_state_bytes(), 32);
    assert_eq!(Reversi::device_state_bytes(), 24);
    assert_eq!(Hex5::device_state_bytes(), 48);
    assert_eq!(Hex7::device_state_bytes(), 48);
    assert_eq!(Hex11::device_state_bytes(), 48);
}

#[test]
fn device_payload_never_exceeds_struct_size() {
    assert!(TicTacToe::device_state_bytes() <= std::mem::size_of::<TicTacToe>());
    assert!(Connect4::device_state_bytes() <= std::mem::size_of::<Connect4>());
    assert!(Reversi::device_state_bytes() <= std::mem::size_of::<Reversi>());
    assert!(Hex11::device_state_bytes() <= std::mem::size_of::<Hex11>());
}
