//! Lane-batch equivalence suite (DESIGN.md §15).
//!
//! The contract under test: running a [`LaneBatch`] of `N` playouts is
//! bit-identical to running `N` scalar [`random_playout`] calls, lane `i`
//! on `(roots[i], rngs[i])` — identical [`PlayoutResult`]s (outcome, ply
//! count, final score) *and* identical final RNG states, which pins the
//! exact per-lane draw count and therefore the whole per-lane draw
//! sequence (Xoshiro256++ state is a bijection of the draw history from a
//! fixed seed).
//!
//! Covered engines: Reversi (bit-parallel `lane_playouts` override),
//! Connect-4 / Tic-Tac-Toe / Hex (generic interleaved default), at lane
//! widths 1, 4 and 8, from varied playout prefixes, including batches with
//! terminal roots mixed in.

use pmcts_games::{
    interleaved_lane_playouts, random_playout, Connect4, Game, Hex11, Hex7, LaneBatch, Player,
    Reversi, TicTacToe,
};
use pmcts_util::Xoshiro256pp;
use proptest::prelude::*;

/// Plays `plies` random moves (stopping early at terminal states).
fn advance<G: Game>(mut state: G, plies: u32, seed: u64) -> G {
    let mut rng = Xoshiro256pp::new(seed);
    for _ in 0..plies {
        match state.random_move(&mut rng) {
            Some(mv) => state.apply(mv),
            None => break,
        }
    }
    state
}

/// Asserts the full equivalence contract for one batch: results and final
/// RNG states must match `N` scalar playouts exactly.
fn assert_batch_matches_scalar<G: Game, const N: usize>(roots: [G; N], seeds: [u64; N]) {
    let rngs: [Xoshiro256pp; N] = std::array::from_fn(|i| Xoshiro256pp::new(seeds[i]));
    let (lane_results, lane_rngs) = LaneBatch::new(roots, rngs).run_with_rngs();
    for i in 0..N {
        let mut rng = Xoshiro256pp::new(seeds[i]);
        let scalar = random_playout(roots[i], &mut rng);
        assert_eq!(
            lane_results[i],
            scalar,
            "{} lane {i}/{N}: result diverged from scalar playout",
            G::NAME
        );
        assert_eq!(
            lane_rngs[i],
            rng,
            "{} lane {i}/{N}: final RNG state diverged (draw counts differ)",
            G::NAME
        );
    }
}

/// Runs the contract for one game at all three wired lane widths, each lane
/// from its own prefix of a shared game so batches mix positions.
fn check_game_at_all_widths<G: Game>(base_seed: u64, max_prefix: u32) {
    let roots8: [G; 8] = std::array::from_fn(|i| {
        advance(
            G::initial(),
            (base_seed.wrapping_add(i as u64) % (max_prefix as u64 + 1)) as u32,
            base_seed ^ i as u64,
        )
    });
    let seeds8: [u64; 8] =
        std::array::from_fn(|i| base_seed.wrapping_mul(31).wrapping_add(i as u64));
    assert_batch_matches_scalar::<G, 1>([roots8[0]; 1], [seeds8[0]; 1]);
    assert_batch_matches_scalar::<G, 4>(
        std::array::from_fn(|i| roots8[i]),
        std::array::from_fn(|i| seeds8[i]),
    );
    assert_batch_matches_scalar::<G, 8>(roots8, seeds8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reversi_lane_batches_match_scalar(seed in any::<u64>()) {
        check_game_at_all_widths::<Reversi>(seed, 50);
    }

    #[test]
    fn connect4_lane_batches_match_scalar(seed in any::<u64>()) {
        check_game_at_all_widths::<Connect4>(seed, 30);
    }

    #[test]
    fn tictactoe_lane_batches_match_scalar(seed in any::<u64>()) {
        check_game_at_all_widths::<TicTacToe>(seed, 8);
    }

    #[test]
    fn hex7_lane_batches_match_scalar(seed in any::<u64>()) {
        check_game_at_all_widths::<Hex7>(seed, 40);
    }

    #[test]
    fn hex11_lane_batches_match_scalar(seed in any::<u64>()) {
        check_game_at_all_widths::<Hex11>(seed, 100);
    }

    #[test]
    fn reversi_batches_with_terminal_roots(seed in any::<u64>()) {
        // Lanes 1, 3, 5, 7 start from finished games (played to the end);
        // they must report 0 plies and draw nothing from their RNGs while
        // the live lanes proceed unperturbed.
        let roots: [Reversi; 8] = std::array::from_fn(|i| {
            let plies = if i % 2 == 1 { u32::MAX } else { (i as u32) * 7 };
            advance(Reversi::initial(), plies, seed ^ i as u64)
        });
        let seeds: [u64; 8] = std::array::from_fn(|i| seed.wrapping_add(1000 + i as u64));
        for (i, root) in roots.iter().enumerate() {
            if i % 2 == 1 {
                prop_assert!(root.is_terminal(), "odd lanes must start terminal");
            }
        }
        assert_batch_matches_scalar::<Reversi, 8>(roots, seeds);
    }

    #[test]
    fn interleaved_engine_matches_scalar_directly(seed in any::<u64>()) {
        // The generic interleaved engine is also Reversi-correct (the
        // bit-parallel override must agree with it, and both with scalar).
        let roots: [Reversi; 4] =
            std::array::from_fn(|i| advance(Reversi::initial(), (i as u32) * 11, seed ^ i as u64));
        let mut rngs: [Xoshiro256pp; 4] =
            std::array::from_fn(|i| Xoshiro256pp::new(seed.wrapping_add(i as u64)));
        let interleaved = interleaved_lane_playouts(&roots, &mut rngs);
        let batch: [Xoshiro256pp; 4] =
            std::array::from_fn(|i| Xoshiro256pp::new(seed.wrapping_add(i as u64)));
        let (bit_parallel, _) = LaneBatch::new(roots, batch).run_with_rngs();
        prop_assert_eq!(interleaved, bit_parallel);
    }
}

#[test]
fn all_terminal_batch_draws_nothing() {
    let s = TicTacToe::parse("XXX OO. ...", Player::P2).unwrap();
    let rngs: [Xoshiro256pp; 4] = std::array::from_fn(|i| Xoshiro256pp::new(77 + i as u64));
    let (results, finals) = LaneBatch::new([s; 4], rngs).run_with_rngs();
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.plies, 0);
        assert_eq!(
            finals[i],
            Xoshiro256pp::new(77 + i as u64),
            "terminal lanes must not draw"
        );
    }
}
