//! Whole-game invariants for the Reversi engine: properties that must hold
//! along every legal game trajectory, checked over many seeded games.

use pmcts_games::reversi::bitboard;
use pmcts_games::{Game, MoveBuf, Outcome, Player, Reversi, ReversiMove};
use pmcts_util::Xoshiro256pp;

/// Plays a full random game, invoking `check` after every move with
/// (before, move, after).
fn play_checked(seed: u64, mut check: impl FnMut(&Reversi, ReversiMove, &Reversi)) -> Reversi {
    let mut state = Reversi::initial();
    let mut rng = Xoshiro256pp::new(seed);
    while let Some(mv) = state.random_move(&mut rng) {
        let before = state;
        state.apply(mv);
        check(&before, mv, &state);
    }
    assert!(state.is_terminal());
    state
}

#[test]
fn occupancy_is_monotone_and_discs_conserved() {
    for seed in 0..30 {
        play_checked(seed, |before, mv, after| {
            if mv.is_pass() {
                assert_eq!(after.occupancy(), before.occupancy());
            } else {
                assert_eq!(after.occupancy(), before.occupancy() + 1);
            }
            assert_eq!(after.black() & after.white(), 0, "discs never overlap");
        });
    }
}

#[test]
fn passes_only_when_no_placement_exists() {
    for seed in 0..30 {
        play_checked(seed, |before, mv, _after| {
            if mv.is_pass() {
                assert_eq!(before.legal_mask(), 0, "pass only when forced");
            } else {
                assert_ne!(before.legal_mask() & (1u64 << mv.0), 0, "move was legal");
            }
        });
    }
}

#[test]
fn no_two_consecutive_passes_inside_a_game() {
    // Two passes in a row means the game was already over; random_move must
    // never produce the second one.
    for seed in 0..30 {
        let mut last_was_pass = false;
        play_checked(seed, |_before, mv, after| {
            if mv.is_pass() {
                assert!(!last_was_pass, "double pass inside a live game");
                last_was_pass = true;
                assert!(!after.is_terminal() || after.outcome().is_some());
            } else {
                last_was_pass = false;
            }
        });
    }
}

#[test]
fn flipped_discs_lie_between_move_and_own_disc() {
    // Spot-check the geometric flip property on live games: every flipped
    // disc is collinear with the placed disc.
    for seed in 0..10 {
        play_checked(seed, |before, mv, after| {
            if mv.is_pass() {
                return;
            }
            let mover = before.to_move();
            let flipped = match mover {
                Player::P1 => after.black() & before.white(),
                Player::P2 => after.white() & before.black(),
            };
            let (mr, mc) = ((mv.0 / 8) as i32, (mv.0 % 8) as i32);
            let mut rest = flipped;
            while rest != 0 {
                let sq = rest.trailing_zeros() as i32;
                rest &= rest - 1;
                let (r, c) = (sq / 8, sq % 8);
                let collinear = r == mr || c == mc || (r - mr).abs() == (c - mc).abs();
                assert!(collinear, "flip at {sq} not collinear with move {mv}");
            }
        });
    }
}

#[test]
fn outcome_matches_final_disc_difference() {
    for seed in 0..40 {
        let end = play_checked(seed, |_b, _m, _a| {});
        let (b, w) = end.counts();
        match end.outcome().unwrap() {
            Outcome::Win(Player::P1) => assert!(b > w),
            Outcome::Win(Player::P2) => assert!(w > b),
            Outcome::Draw => assert_eq!(b, w),
        }
        // Most random games fill most of the board.
        assert!(end.occupancy() >= 16, "suspiciously empty final board");
    }
}

#[test]
fn wipeout_ends_the_game_early() {
    // If one side loses every disc the game is over immediately, even with
    // most of the board empty.
    let s = Reversi::from_bitboards(0b1110, 0, Player::P2);
    assert!(s.is_terminal());
    assert_eq!(s.outcome(), Some(Outcome::Win(Player::P1)));
    assert!(s.occupancy() < 10);
}

#[test]
fn legal_mask_agrees_with_legal_moves_list() {
    for seed in 0..20 {
        play_checked(seed, |before, _mv, _after| {
            let mut buf = MoveBuf::new();
            before.legal_moves(&mut buf);
            let mask = before.legal_mask();
            if mask == 0 {
                assert!(buf.len() <= 1, "only PASS when mask empty");
            } else {
                assert_eq!(buf.len() as u32, mask.count_ones());
                for m in &buf {
                    assert_ne!(mask & (1u64 << m.0), 0);
                }
            }
        });
    }
}

#[test]
fn zobrist_changes_on_every_placement() {
    for seed in 0..10 {
        play_checked(seed, |before, mv, after| {
            if !mv.is_pass() {
                assert_ne!(before.zobrist(), after.zobrist());
            } else {
                // Pass changes only the side to move, which still hashes.
                assert_ne!(before.zobrist(), after.zobrist());
            }
        });
    }
}

#[test]
fn movegen_kernels_agree_on_every_reached_position() {
    // The shift kernels vs the naive reference along real games (the
    // proptests cover random boards; this covers the reachable manifold).
    for seed in 0..10 {
        play_checked(seed, |before, _mv, _after| {
            let (own, opp) = before.own_opp();
            assert_eq!(
                bitboard::legal_moves_mask(own, opp),
                bitboard::legal_moves_mask_naive(own, opp)
            );
        });
    }
}

#[test]
fn games_end_within_the_declared_bound() {
    for seed in 0..40 {
        let mut state = Reversi::initial();
        let mut rng = Xoshiro256pp::new(seed ^ 0xDEAD);
        let mut plies = 0usize;
        while let Some(mv) = state.random_move(&mut rng) {
            state.apply(mv);
            plies += 1;
            assert!(plies <= Reversi::MAX_GAME_LENGTH);
        }
        // 60 placements max; passes are rare.
        assert!(plies >= 8, "game ended implausibly early: {plies}");
    }
}
