//! Edge-case and equivalence tests across the searcher implementations.

use pmcts_core::prelude::*;
use pmcts_games::TicTacToe;

fn cfg(seed: u64) -> MctsConfig {
    MctsConfig::default().with_seed(seed)
}

#[test]
fn zero_iteration_budget_yields_no_work_but_no_crash() {
    let budget = SearchBudget::Iterations(0);
    let r = SequentialSearcher::<Reversi>::new(cfg(1)).search(Reversi::initial(), budget);
    assert_eq!(r.simulations, 0);
    assert_eq!(r.best_move, None, "no children expanded");
    let r =
        BlockParallelSearcher::<Reversi>::new(cfg(1), Device::c2050(), LaunchConfig::new(2, 32))
            .search(Reversi::initial(), budget);
    assert_eq!(r.simulations, 0);
    let r = RootParallelSearcher::<Reversi>::new(cfg(1), 2).search(Reversi::initial(), budget);
    assert_eq!(r.simulations, 0);
}

#[test]
fn zero_time_budget_yields_no_work() {
    let budget = SearchBudget::VirtualTime(SimTime::ZERO);
    for report in [
        SequentialSearcher::<Reversi>::new(cfg(2)).search(Reversi::initial(), budget),
        LeafParallelSearcher::<Reversi>::new(cfg(2), Device::c2050(), LaunchConfig::new(1, 32))
            .search(Reversi::initial(), budget),
    ] {
        assert_eq!(report.simulations, 0);
        assert_eq!(report.elapsed, SimTime::ZERO);
    }
}

#[test]
fn mcts_player_falls_back_to_legal_move_on_empty_search() {
    // With a zero budget the searcher returns no move; the player must
    // still produce something legal rather than crash the arena.
    let mut player = MctsPlayer::new(
        SequentialSearcher::<Reversi>::new(cfg(3)),
        SearchBudget::Iterations(0),
    );
    let state = Reversi::initial();
    let mv = player.choose(&state).expect("fallback move");
    let mut buf = pmcts_games::MoveBuf::new();
    pmcts_games::Game::legal_moves(&state, &mut buf);
    assert!(buf.contains(&mv));
}

#[test]
fn single_block_block_parallel_equals_leaf_parallel_geometry() {
    // With one tree, block parallelism degenerates to leaf parallelism:
    // same per-iteration simulation count and tree size (stats differ only
    // through RNG streams).
    let budget = SearchBudget::Iterations(8);
    let leaf =
        LeafParallelSearcher::<Reversi>::new(cfg(4), Device::c2050(), LaunchConfig::new(1, 64))
            .search(Reversi::initial(), budget);
    let block =
        BlockParallelSearcher::<Reversi>::new(cfg(4), Device::c2050(), LaunchConfig::new(1, 64))
            .search(Reversi::initial(), budget);
    assert_eq!(leaf.simulations, block.simulations);
    assert_eq!(leaf.tree_nodes, block.tree_nodes);
    assert_eq!(leaf.iterations, block.iterations);
}

#[test]
fn single_rank_multi_gpu_matches_block_parallel_scale() {
    let budget = SearchBudget::Iterations(5);
    let launch = LaunchConfig::new(4, 32);
    let multi = MultiGpuSearcher::<Reversi>::new(
        cfg(5),
        1,
        DeviceSpec::tesla_c2050(),
        launch,
        pmcts_mpi_sim::NetworkModel::ideal(),
    )
    .search(Reversi::initial(), budget);
    let block = BlockParallelSearcher::<Reversi>::new(cfg(5), Device::c2050(), launch)
        .search(Reversi::initial(), budget);
    assert_eq!(multi.simulations, block.simulations);
    assert_eq!(multi.iterations, block.iterations);
}

#[test]
fn all_parallel_searchers_handle_near_terminal_positions() {
    // One move before the end of a Tic-Tac-Toe game: every scheme must
    // find the only sensible move without panicking on tiny trees.
    let s = TicTacToe::parse("XOX XXO OX.", Player::P1).unwrap();
    assert!(!pmcts_games::Game::is_terminal(&s));
    let budget = SearchBudget::Iterations(4);
    let moves = [
        SequentialSearcher::<TicTacToe>::new(cfg(6))
            .search(s, budget)
            .best_move,
        LeafParallelSearcher::<TicTacToe>::new(cfg(6), Device::c2050(), LaunchConfig::new(1, 32))
            .search(s, budget)
            .best_move,
        BlockParallelSearcher::<TicTacToe>::new(cfg(6), Device::c2050(), LaunchConfig::new(2, 32))
            .search(s, budget)
            .best_move,
        RootParallelSearcher::<TicTacToe>::new(cfg(6), 2)
            .search(s, budget)
            .best_move,
        HybridSearcher::<TicTacToe>::new(cfg(6), Device::c2050(), LaunchConfig::new(2, 32))
            .search(s, budget)
            .best_move,
    ];
    for mv in moves {
        assert_eq!(mv, Some(8), "only cell 8 is free");
    }
}

#[test]
fn block_parallel_with_partial_warps() {
    // Threads per block that do not divide the warp size must still work.
    let r =
        BlockParallelSearcher::<Reversi>::new(cfg(7), Device::c2050(), LaunchConfig::new(3, 40))
            .search(Reversi::initial(), SearchBudget::Iterations(4));
    assert_eq!(r.simulations, 4 * 3 * 40);
}

#[test]
fn searcher_names_are_descriptive() {
    assert!(SequentialSearcher::<Reversi>::new(cfg(8))
        .name()
        .contains("sequential"));
    assert!(BlockParallelSearcher::<Reversi>::new(
        cfg(8),
        Device::c2050(),
        LaunchConfig::new(8, 32)
    )
    .name()
    .contains("8 blocks × 32 threads"));
    assert!(RootParallelSearcher::<Reversi>::new(cfg(8), 16)
        .name()
        .contains("16 CPU threads"));
    assert!(MultiGpuSearcher::<Reversi>::new(
        cfg(8),
        4,
        DeviceSpec::tesla_c2050(),
        LaunchConfig::new(2, 32),
        pmcts_mpi_sim::NetworkModel::ideal()
    )
    .name()
    .contains("4 ranks"));
}

#[test]
fn reports_expose_merged_root_stats_sorted_by_move_consistency() {
    let r =
        BlockParallelSearcher::<Reversi>::new(cfg(9), Device::c2050(), LaunchConfig::new(8, 32))
            .search(Reversi::initial(), SearchBudget::Iterations(6));
    // All four opening moves present exactly once in the merged stats.
    let mut moves: Vec<_> = r.root_stats.iter().map(|s| s.mv).collect();
    moves.sort_by_key(|m| m.0);
    moves.dedup();
    assert_eq!(moves.len(), 4);
}
