//! Bounded-memory search tree acceptance suite.
//!
//! Three layers of guarantees (ISSUE: deterministic LRU node recycling):
//!
//! 1. **Pinned eviction fingerprints**: a capacity-capped search is a pure
//!    function of `(seed, cap)` — the fingerprints below were captured once
//!    and any drift means the eviction order, the transposition table, or
//!    the recycling bookkeeping changed.
//! 2. **Cross-host-thread byte-identity**: bounded searches — standalone
//!    and multiplexed through the `SearchService` — produce bit-identical
//!    transcripts at 1, 2 and 8 host threads.
//! 3. **Eviction safety properties**: under random workloads the arena
//!    never exceeds its cap, the root and the in-flight selection path are
//!    never recycled, and no node with a live child is ever freed.

use pmcts_core::prelude::*;
use pmcts_core::tree::SearchTree;
use pmcts_util::Xoshiro256pp;
use proptest::prelude::*;

const HOST_THREADS: [usize; 3] = [1, 2, 8];

fn fingerprint<M: std::fmt::Debug>(r: &SearchReport<M>) -> String {
    let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
    let wins: f64 = r.root_stats.iter().map(|s| s.wins).sum();
    format!(
        "{:?}/s{}/i{}/n{}/d{}/e{}/v{}/w{}",
        r.best_move,
        r.simulations,
        r.iterations,
        r.tree_nodes,
        r.max_depth,
        r.elapsed.as_nanos(),
        visits,
        wins.to_bits()
    )
}

fn bounded_cfg(seed: u64, cap: u32) -> MctsConfig {
    MctsConfig::default()
        .with_seed(seed)
        .with_tree_capacity(cap)
}

fn device(threads: usize) -> Device {
    Device::new(DeviceSpec::tesla_c2050()).with_host_threads(threads)
}

// ---------------------------------------------------------------------------
// 1. Pinned eviction fingerprints.
// ---------------------------------------------------------------------------

#[test]
fn bounded_sequential_pin() {
    let r = SequentialSearcher::<Reversi>::new(bounded_cfg(201, 64))
        .search(Reversi::initial(), SearchBudget::Iterations(600));
    // 600 iterations into 64 slots: heavy recycling, pinned bit-for-bit.
    assert_eq!(
        fingerprint(&r),
        "Some(ReversiMove(44))/s600/i600/n64/d5/e60932080/v600/w4643703797028225024",
        "bounded eviction schedule drifted"
    );
    assert!(r.tree_nodes <= 64, "live nodes exceed the cap");
}

#[test]
fn bounded_persistent_pin() {
    // Two consecutive searches: the second re-roots the capped tree
    // through the transposition table (TT find → extract_subtree).
    let mut s = PersistentSearcher::<Reversi>::new(bounded_cfg(300, 96));
    let mut state = Reversi::initial();
    let r1 = s.search(state, SearchBudget::Iterations(400));
    state.apply(r1.best_move.expect("opening position has moves"));
    let mut opp = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(301));
    state.apply(
        opp.search(state, SearchBudget::Iterations(50))
            .best_move
            .expect("reply exists"),
    );
    let r2 = s.search(state, SearchBudget::Iterations(400));
    assert_eq!(
        format!(
            "{}::{}+{}",
            fingerprint(&r1),
            fingerprint(&r2),
            s.last_reused_visits()
        ),
        "Some(ReversiMove(44))/s400/i400/n96/d5/e40476720/v400/w4640783494144851968\
         ::Some(ReversiMove(18))/s400/i400/n96/d4/e39459680/v427/w4641663103447072768+29",
        "bounded re-root schedule drifted"
    );
    assert!(r2.tree_nodes <= 96);
}

// ---------------------------------------------------------------------------
// 2. Cross-host-thread byte-identity.
// ---------------------------------------------------------------------------

/// A service workload of bounded sequential and bounded block sessions;
/// the full lifecycle must be bit-identical for any host-thread count.
#[allow(clippy::type_complexity)]
fn bounded_service_transcript(
    threads: usize,
) -> Vec<(
    u64,
    SimTime,
    SimTime,
    SearchReport<pmcts_games::ReversiMove>,
)> {
    let mut svc = SearchService::<Reversi>::new(device(threads), 32, 88);
    for s in 0..3u64 {
        svc.admit_sequential(
            Reversi::initial(),
            SearchBudget::VirtualTime(SimTime::from_millis(3)),
            bounded_cfg(210 + s, 64),
        );
    }
    svc.admit_block(
        Reversi::initial(),
        SearchBudget::Iterations(6),
        bounded_cfg(220, 64),
        2,
    );
    svc.run_to_completion();
    svc.take_completed()
        .into_iter()
        .map(|c| (c.id.0, c.admitted_at, c.completed_at, c.report))
        .collect()
}

#[test]
fn bounded_service_identical_across_host_threads() {
    let baseline = bounded_service_transcript(HOST_THREADS[0]);
    assert_eq!(baseline.len(), 4, "every session must complete");
    for &threads in &HOST_THREADS[1..] {
        assert_eq!(
            baseline,
            bounded_service_transcript(threads),
            "bounded service transcript changed at {threads} host threads"
        );
    }
}

#[test]
fn bounded_sequential_identical_across_host_threads() {
    // The sequential searcher never touches the pool, but the acceptance
    // bar is explicit: same seed ⇒ byte-identical report at any
    // `--host-threads`, capped or not.
    let run = || {
        SequentialSearcher::<Reversi>::new(bounded_cfg(230, 64))
            .search(Reversi::initial(), SearchBudget::Iterations(500))
    };
    let baseline = run();
    for _ in &HOST_THREADS[1..] {
        assert_eq!(baseline, run());
    }
}

// ---------------------------------------------------------------------------
// 3. Eviction safety properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random bounded workloads: the arena never exceeds its cap, the LRU
    /// and free lists stay structurally sound (`debug_validate` checks, in
    /// particular, that no freed slot is ever linked as a live node's
    /// child — i.e. eviction never freed a node with a live child), the
    /// root is never recycled, and the just-expanded selection path is
    /// fully live after every iteration.
    #[test]
    fn eviction_never_frees_root_path_or_parents(
        seed in any::<u64>(),
        cap in 16u32..120,
        iters in 50usize..400,
    ) {
        let mut tree = SearchTree::bounded(Reversi::initial(), cap);
        let mut rng = Xoshiro256pp::new(seed);
        for i in 0..iters {
            let sel = tree.select(1.4);
            let node = if !tree.fully_expanded(sel) {
                tree.expand(sel, &mut rng)
            } else {
                sel
            };
            tree.backprop(node, (i % 3) as f64 / 2.0, 1);
            prop_assert!(tree.len() <= cap as usize, "arena exceeded cap");
            // The selection path of this iteration survived its own
            // expansion: walking parents from the new node reaches the
            // root through live, mutually-linked nodes.
            let mut cur = node;
            let mut hops = 0u32;
            while let Some(p) = tree.parent(cur) {
                prop_assert!(tree.children(p).contains(&cur), "path node unlinked");
                cur = p;
                hops += 1;
                prop_assert!(hops <= tree.max_depth(), "parent chain cycles");
            }
            prop_assert_eq!(cur, tree.root(), "path does not reach the root");
        }
        tree.debug_validate();
        // The root is pinned: still node 0, still carrying every visit.
        prop_assert_eq!(tree.visits(tree.root()), iters as u64);
    }

    /// WU-UCT pinning (DESIGN.md §16): a node carrying unobserved
    /// in-flight samples (`O > 0`) — and its whole registration path — is
    /// never evicted or recycled, however hard the arena churns around it.
    /// After the batch rolls back, every counter is zero and the arena is
    /// structurally sound.
    #[test]
    fn eviction_skips_nodes_with_inflight_samples(
        seed in any::<u64>(),
        cap in 16u32..96,
    ) {
        let mut tree = SearchTree::bounded(Reversi::initial(), cap);
        let mut rng = Xoshiro256pp::new(seed);
        // Grow a little, then register a 32-lane batch in flight on the
        // current selection path.
        for i in 0..12 {
            let sel = tree.select(1.4);
            let node = if !tree.fully_expanded(sel) {
                tree.expand(sel, &mut rng)
            } else {
                sel
            };
            tree.backprop(node, (i % 3) as f64 / 2.0, 1);
        }
        let pinned_node = {
            let sel = tree.select_corrected(1.4);
            if !tree.fully_expanded(sel) {
                tree.expand(sel, &mut rng)
            } else {
                sel
            }
        };
        tree.add_inflight_path(pinned_node, 32);
        let pinned_state = *tree.state(pinned_node);
        // Churn the arena well past its capacity with the batch still in
        // flight.
        for i in 0..(cap as usize * 2 + 50) {
            let sel = tree.select_corrected(1.4);
            let node = if !tree.fully_expanded(sel) {
                tree.expand(sel, &mut rng)
            } else {
                sel
            };
            tree.backprop(node, (i % 3) as f64 / 2.0, 1);
            prop_assert!(tree.len() <= cap as usize, "arena exceeded cap");
            // The registered path is alive and untouched: same state, O
            // intact on every ancestor, still linked to the root.
            prop_assert_eq!(tree.inflight(pinned_node), 32);
            prop_assert_eq!(tree.state(pinned_node), &pinned_state);
            let mut cur = pinned_node;
            while let Some(p) = tree.parent(cur) {
                prop_assert_eq!(tree.inflight(p), 32, "ancestor lost its registration");
                prop_assert!(tree.children(p).contains(&cur), "in-flight path unlinked");
                cur = p;
            }
            prop_assert_eq!(cur, tree.root(), "in-flight path detached from the root");
        }
        prop_assert!(tree.evictions() > 0, "test must actually churn the arena");
        // Roll the batch back: counters hit zero exactly and the freed
        // path becomes evictable again without structural damage.
        tree.sub_inflight_path(pinned_node, 32);
        prop_assert_eq!(tree.inflight_total(), 0);
        tree.debug_validate();
    }

    /// Statistics conservation at the root: eviction loses tree structure
    /// below, never backpropagated results. Each iteration adds exactly one
    /// visit through one root child, and transposition recovery can only
    /// *add* back previously evicted visits — so the bounded root mass is
    /// at least the unbounded one while simulations stay identical.
    #[test]
    fn eviction_preserves_root_statistics(
        seed in any::<u64>(),
        cap in 64u32..128,
    ) {
        let run = |cap: Option<u32>| {
            let mut cfg = MctsConfig::default().with_seed(seed);
            if let Some(c) = cap {
                cfg = cfg.with_tree_capacity(c);
            }
            SequentialSearcher::<Reversi>::new(cfg)
                .search(Reversi::initial(), SearchBudget::Iterations(300))
        };
        let bounded = run(Some(cap));
        let unbounded = run(None);
        prop_assert_eq!(bounded.simulations, unbounded.simulations);
        let bv: u64 = bounded.root_stats.iter().map(|s| s.visits).sum();
        let uv: u64 = unbounded.root_stats.iter().map(|s| s.visits).sum();
        prop_assert!(bv >= uv, "root visit mass leaked under eviction: {} < {}", bv, uv);
        prop_assert!(bounded.tree_nodes <= cap as u64);
    }
}

// ---------------------------------------------------------------------------
// 4. Re-rooted trees keep recycling safely.
// ---------------------------------------------------------------------------

/// Regression test: `extract_subtree` must reserve each copied node's
/// untried range at its *full* legal-move capacity, not its current untried
/// count. Eviction grows a parent's untried list back as its children are
/// recycled; an under-sized range made that append spill into the next
/// node's moves (caught live as an "illegal move" panic deep in a
/// persistent search). `debug_validate` now cross-checks every node's
/// untried ∪ children moves against its state's legal set, so driving an
/// extracted tree through heavy eviction reproduces the spill if it ever
/// comes back.
#[test]
fn extracted_subtree_survives_continued_eviction() {
    let cap = 72u32;
    let cfg = bounded_cfg(77, cap);
    let mut searcher = SequentialSearcher::<Reversi>::new(cfg.clone());
    let (_, tree) = searcher.search_with_tree(Reversi::initial(), SearchBudget::Iterations(300));

    // Re-root at the most visited child, like a persistent move, then keep
    // searching the extracted tree until recycling has churned well past
    // the arena size.
    let best = *tree
        .children(tree.root())
        .iter()
        .max_by_key(|&&c| tree.visits(c))
        .expect("searched root has children");
    let mut sub = tree.extract_subtree(best);
    sub.debug_validate();

    let mut rng = Xoshiro256pp::new(78);
    let mut evictions_seen = 0u64;
    for i in 0..600 {
        let sel = sub.select(1.4);
        let node = if !sub.fully_expanded(sel) {
            sub.expand(sel, &mut rng)
        } else {
            sel
        };
        sub.backprop(node, (i % 5) as f64 / 4.0, 1);
        sub.debug_validate();
        evictions_seen = sub.evictions();
    }
    assert!(
        evictions_seen > cap as u64,
        "test must churn the arena: {evictions_seen} evictions at cap {cap}"
    );
}
