//! Cross-engine and cross-host-thread determinism.
//!
//! Two independent guarantees (CLAUDE.md invariants):
//!
//! 1. The playout kernel's fused [`run_lane`](pmcts_gpu_sim::Kernel) path
//!    (what the run-to-completion engine executes) is bit-identical —
//!    outputs *and* full `KernelStats` — to the per-step masked lockstep
//!    interpreter retained as the oracle.
//! 2. Every searcher's `SearchReport` is bit-identical regardless of how
//!    many real host worker threads execute it. Only
//!    `TreeParallelSearcher` is exempt, by design.

use pmcts_core::gpu::PlayoutKernel;
use pmcts_core::prelude::*;
use pmcts_core::tree::SearchTree;
use pmcts_gpu_sim::executor::execute_kernel_lockstep;
use pmcts_gpu_sim::WorkerPool;
use pmcts_mpi_sim::NetworkModel;
use pmcts_util::Xoshiro256pp;
use proptest::prelude::*;
use std::sync::Arc;

const HOST_THREADS: [usize; 3] = [1, 2, 8];

fn cfg(seed: u64) -> MctsConfig {
    MctsConfig::default().with_seed(seed)
}

// ---- 1. PlayoutKernel: fused run_lane vs lockstep oracle ----------------

/// Launches `kernel` through the fast engine (via `Device`) and through
/// the lockstep oracle and asserts byte-identical results.
fn assert_kernel_matches_oracle<G: Game>(kernel: PlayoutKernel<G>, launch: LaunchConfig) {
    let spec = DeviceSpec::tesla_c2050();
    let fast = Device::new(spec.clone())
        .with_host_threads(3)
        .launch(&kernel, launch);
    let oracle = execute_kernel_lockstep(&kernel, &launch, &spec);
    assert_eq!(fast.outputs, oracle.outputs, "lane outcomes diverged");
    assert_eq!(fast.stats, oracle.stats, "divergence accounting diverged");
}

#[test]
fn playout_kernel_matches_oracle_on_reversi() {
    for seed in [1u64, 2, 99] {
        assert_kernel_matches_oracle(
            PlayoutKernel::new(vec![Reversi::initial()], seed),
            LaunchConfig::new(4, 48),
        );
    }
}

#[test]
fn playout_kernel_matches_oracle_on_tictactoe() {
    // Short games with draws: exercises the terminal-root step accounting
    // and the Draw lane outcome.
    assert_kernel_matches_oracle(
        PlayoutKernel::new(vec![TicTacToe::initial()], 7),
        LaunchConfig::new(3, 33), // partial warp
    );
}

#[test]
fn playout_kernel_matches_oracle_on_terminal_root() {
    // A root with no legal move finishes in the single entry-check step.
    let won = TicTacToe::parse("XXX OO. ...", Player::P2).expect("valid terminal diagram");
    assert_kernel_matches_oracle(PlayoutKernel::new(vec![won], 3), LaunchConfig::new(1, 32));
}

#[test]
fn playout_kernel_matches_oracle_per_block_roots() {
    assert_kernel_matches_oracle(
        PlayoutKernel::new(vec![Reversi::initial(), Reversi::initial()], 11),
        LaunchConfig::new(4, 32),
    );
}

// ---- 2. SearchReports identical across host-thread counts ---------------

/// Runs `build(host_threads)` over [`HOST_THREADS`] and asserts every
/// produced report equals the first.
fn assert_reports_identical<F>(what: &str, budget: SearchBudget, mut build: F)
where
    F: FnMut(usize) -> Box<dyn Searcher<Reversi>>,
{
    let mut baseline = None;
    for threads in HOST_THREADS {
        let report = build(threads).search(Reversi::initial(), budget);
        match &baseline {
            None => baseline = Some(report),
            Some(expect) => {
                assert_eq!(
                    expect, &report,
                    "{what}: report changed at {threads} host threads"
                );
            }
        }
    }
}

fn device(threads: usize) -> Device {
    Device::new(DeviceSpec::tesla_c2050()).with_host_threads(threads)
}

#[test]
fn leaf_parallel_identical_across_host_threads() {
    assert_reports_identical("leaf", SearchBudget::Iterations(6), |t| {
        Box::new(LeafParallelSearcher::new(
            cfg(21),
            device(t),
            LaunchConfig::new(2, 32),
        ))
    });
}

#[test]
fn leaf_parallel_lane_chunks_identical_across_host_threads() {
    // threads_per_block = 38 splits each block into a full 32-lane warp
    // (four 8-wide LaneBatch chunks) and a 6-lane partial warp (one 4-wide
    // chunk plus two scalar lanes), so one launch exercises every branch
    // of the chunked `run_lanes` dispatch. The report must be identical
    // across host threads *and* pinned bit-for-bit: lane batching is a
    // wall-clock fast path that virtual time never observes, so this
    // fingerprint must survive any future lane-engine change.
    let mut pinned = None;
    assert_reports_identical("leaf (lane chunks)", SearchBudget::Iterations(6), |t| {
        let r = LeafParallelSearcher::new(cfg(91), device(t), LaunchConfig::new(2, 38))
            .search(Reversi::initial(), SearchBudget::Iterations(6));
        pinned.get_or_insert_with(|| {
            let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
            let wins: f64 = r.root_stats.iter().map(|s| s.wins).sum();
            format!(
                "{:?}/s{}/i{}/e{}/v{}/w{}",
                r.best_move,
                r.simulations,
                r.iterations,
                r.elapsed.as_nanos(),
                visits,
                wins.to_bits()
            )
        });
        Box::new(LeafParallelSearcher::new(
            cfg(91),
            device(t),
            LaunchConfig::new(2, 38),
        ))
    });
    assert_eq!(
        pinned.as_deref(),
        Some("Some(ReversiMove(44))/s456/i6/e8804504/v456/w4641979762795872256"),
        "lane-path leaf search fingerprint drifted"
    );
}

#[test]
fn block_parallel_identical_across_host_threads() {
    assert_reports_identical("block", SearchBudget::Iterations(5), |t| {
        Box::new(BlockParallelSearcher::new(
            cfg(22),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn device_tree_identical_across_host_threads() {
    assert_reports_identical("device-tree", SearchBudget::Iterations(5), |t| {
        Box::new(DeviceTreeSearcher::new(
            cfg(51),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn hex11_searches_identical_across_host_threads_and_pinned() {
    // The Hex 11×11 scenario coverage added alongside the lane engine
    // (fault-matrix + arena entries): the generic engines must be
    // host-thread-invariant on the branchier non-Reversi game too, and the
    // fingerprints are pinned so future lane-engine changes can't drift
    // them (Hex opts out of lane batching — `Game::LANE_ENGINE` is false —
    // so these pin the scalar `run_lanes` fallback path).
    type Build = fn(usize) -> Box<dyn Searcher<Hex11>>;
    fn leaf(t: usize) -> Box<dyn Searcher<Hex11>> {
        Box::new(LeafParallelSearcher::new(
            cfg(33),
            device(t),
            LaunchConfig::new(2, 38),
        ))
    }
    fn block(t: usize) -> Box<dyn Searcher<Hex11>> {
        Box::new(BlockParallelSearcher::new(
            cfg(34),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    }
    let cases: [(&str, &str, Build); 2] = [
        (
            "hex11 leaf",
            "Some(66)/s304/i4/e11336153/v304/w4639587225493831680",
            leaf,
        ),
        (
            "hex11 block",
            "Some(117)/s512/i4/e5927636/v512/w4643439914237558784",
            block,
        ),
    ];
    for (what, pin, build) in cases {
        let mut baseline = None;
        for threads in HOST_THREADS {
            let r = build(threads).search(Hex11::initial(), SearchBudget::Iterations(4));
            match &baseline {
                None => baseline = Some(r),
                Some(expect) => {
                    assert_eq!(
                        expect, &r,
                        "{what}: report changed at {threads} host threads"
                    );
                }
            }
        }
        let r = baseline.expect("at least one report");
        let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
        let wins: f64 = r.root_stats.iter().map(|s| s.wins).sum();
        let got = format!(
            "{:?}/s{}/i{}/e{}/v{}/w{}",
            r.best_move,
            r.simulations,
            r.iterations,
            r.elapsed.as_nanos(),
            visits,
            wins.to_bits()
        );
        assert_eq!(got, pin, "{what}: pinned fingerprint drifted");
    }
}

#[test]
fn device_tree_identical_across_host_threads_under_time_budget() {
    // The multi-round launch planner must not see thread count either.
    assert_reports_identical(
        "device-tree (time)",
        SearchBudget::VirtualTime(SimTime::from_millis(10)),
        |t| {
            Box::new(DeviceTreeSearcher::new(
                cfg(52),
                device(t),
                LaunchConfig::new(4, 32),
            ))
        },
    );
}

#[test]
fn bounded_device_tree_identical_across_host_threads() {
    // Device-side LRU recycling replays the same touch order per block,
    // so capacity-capped resident trees keep the guarantee too.
    assert_reports_identical("bounded device-tree", SearchBudget::Iterations(8), |t| {
        Box::new(DeviceTreeSearcher::new(
            cfg(53).with_tree_capacity(64),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn hybrid_identical_across_host_threads() {
    assert_reports_identical("hybrid", SearchBudget::Iterations(5), |t| {
        Box::new(HybridSearcher::new(
            cfg(23),
            device(t),
            LaunchConfig::new(2, 32),
        ))
    });
}

#[test]
fn root_parallel_identical_across_host_threads() {
    assert_reports_identical("root", SearchBudget::Iterations(30), |t| {
        Box::new(RootParallelSearcher::new(cfg(24), 8).with_workers(t))
    });
}

#[test]
fn root_parallel_identical_on_shared_pool() {
    // Sharing a device's pool (instead of owning one) must not change
    // results either.
    let owned = RootParallelSearcher::<Reversi>::new(cfg(25), 6)
        .with_workers(1)
        .search(Reversi::initial(), SearchBudget::Iterations(20));
    let pool = Arc::new(WorkerPool::new(4));
    let shared = RootParallelSearcher::<Reversi>::new(cfg(25), 6)
        .with_pool(pool)
        .search(Reversi::initial(), SearchBudget::Iterations(20));
    assert_eq!(owned, shared);
}

#[test]
fn multi_gpu_identical_across_host_threads() {
    assert_reports_identical("multi-gpu", SearchBudget::Iterations(3), |t| {
        Box::new(
            MultiGpuSearcher::new(
                cfg(26),
                3,
                DeviceSpec::tesla_c2050(),
                LaunchConfig::new(2, 32),
                NetworkModel::infiniband(),
            )
            .with_pool(Arc::new(WorkerPool::new(t))),
        )
    });
}

#[test]
fn bounded_block_parallel_identical_across_host_threads() {
    // Capacity-capped trees recycle nodes through the LRU arena; the
    // eviction order is a pure function of the touch order, so the capped
    // searchers keep the same cross-host-thread guarantee as unbounded
    // ones. (See `tests/bounded_tree.rs` for the eviction-specific pins
    // and safety properties.)
    assert_reports_identical("bounded block", SearchBudget::Iterations(100), |t| {
        Box::new(BlockParallelSearcher::new(
            cfg(28).with_tree_capacity(64),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn bounded_hybrid_identical_across_host_threads() {
    assert_reports_identical("bounded hybrid", SearchBudget::Iterations(90), |t| {
        Box::new(HybridSearcher::new(
            cfg(29).with_tree_capacity(64),
            device(t),
            LaunchConfig::new(2, 32),
        ))
    });
}

// ---- 2b. WU-UCT and pipelined block-parallel (DESIGN.md §16) -------------

/// The canonical report fingerprint used by the pinned determinism tests:
/// best move, simulation/iteration counts, virtual elapsed nanoseconds and
/// the root-stat sums (wins bit-exact).
fn report_fingerprint(r: &SearchReport<pmcts_games::ReversiMove>) -> String {
    let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
    let wins: f64 = r.root_stats.iter().map(|s| s.wins).sum();
    format!(
        "{:?}/s{}/i{}/e{}/v{}/w{}",
        r.best_move,
        r.simulations,
        r.iterations,
        r.elapsed.as_nanos(),
        visits,
        wins.to_bits()
    )
}

/// [`assert_reports_identical`] plus a pinned fingerprint: the WU-UCT
/// in-flight bookkeeping must neither see host-thread identity *nor* drift
/// across future changes (in-flight membership is part of the canonical
/// schedule now).
fn assert_identical_and_pinned<F>(what: &str, budget: SearchBudget, pin: &str, mut build: F)
where
    F: FnMut(usize) -> Box<dyn Searcher<Reversi>>,
{
    let mut got = None;
    assert_reports_identical(what, budget, |t| {
        let searcher = build(t);
        if got.is_none() {
            let r = build(t).search(Reversi::initial(), budget);
            got = Some(report_fingerprint(&r));
        }
        searcher
    });
    assert_eq!(
        got.as_deref(),
        Some(pin),
        "{what}: pinned fingerprint drifted"
    );
}

#[test]
fn wu_uct_identical_across_host_threads_and_pinned() {
    assert_identical_and_pinned(
        "wu-uct",
        SearchBudget::Iterations(6),
        "Some(ReversiMove(44))/s768/i6/e4725085/v768/w4645049599260622848",
        |t| {
            Box::new(WuUctSearcher::new(
                cfg(61),
                device(t),
                LaunchConfig::new(4, 32),
            ))
        },
    );
}

#[test]
fn wu_uct_time_budget_identical_across_host_threads_and_pinned() {
    assert_identical_and_pinned(
        "wu-uct (time)",
        SearchBudget::VirtualTime(SimTime::from_millis(10)),
        "Some(ReversiMove(44))/s1536/i12/e9474448/v1536/w4649896246515859456",
        |t| {
            Box::new(WuUctSearcher::new(
                cfg(62),
                device(t),
                LaunchConfig::new(4, 32),
            ))
        },
    );
}

#[test]
fn bounded_wu_uct_identical_across_host_threads_and_pinned() {
    // Capacity-capped shared tree: eviction must skip in-flight nodes and
    // stay a pure function of the touch order.
    assert_identical_and_pinned(
        "bounded wu-uct",
        SearchBudget::Iterations(100),
        "Some(ReversiMove(37))/s12800/i100/e78000802/v12800/w4663382856142159872",
        |t| {
            Box::new(WuUctSearcher::new(
                cfg(63).with_tree_capacity(64),
                device(t),
                LaunchConfig::new(4, 32),
            ))
        },
    );
}

#[test]
fn wu_uct_with_faults_identical_across_host_threads_and_pinned() {
    // The whole ladder — hang, retry, degrade, voided blocks — rolls
    // in-flight counts back identically on every host-thread count.
    assert_identical_and_pinned(
        "wu-uct+faults",
        SearchBudget::Iterations(8),
        "Some(ReversiMove(37))/s960/i8/e9259916/v960/w4646404197586042880",
        |t| {
            Box::new(WuUctSearcher::new(
                cfg(64).with_faults(mixed_plan(49)),
                device(t),
                LaunchConfig::new(4, 32),
            ))
        },
    );
}

#[test]
fn pipelined_identical_across_host_threads() {
    assert_reports_identical("pipelined", SearchBudget::Iterations(6), |t| {
        Box::new(PipelinedSearcher::new(
            cfg(65),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn pipelined_time_budget_identical_across_host_threads() {
    assert_reports_identical(
        "pipelined (time)",
        SearchBudget::VirtualTime(SimTime::from_millis(10)),
        |t| {
            Box::new(PipelinedSearcher::new(
                cfg(66),
                device(t),
                LaunchConfig::new(4, 32),
            ))
        },
    );
}

#[test]
fn bounded_pipelined_identical_across_host_threads() {
    assert_reports_identical("bounded pipelined", SearchBudget::Iterations(100), |t| {
        Box::new(PipelinedSearcher::new(
            cfg(67).with_tree_capacity(64),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn pipelined_with_faults_identical_across_host_threads() {
    assert_reports_identical("pipelined+faults", SearchBudget::Iterations(8), |t| {
        Box::new(PipelinedSearcher::new(
            cfg(68).with_faults(mixed_plan(50)),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn multi_node_cpu_identical_across_runs() {
    // Worker split is internal here; determinism is run-to-run.
    let run = || {
        MultiNodeCpuSearcher::<Reversi>::new(cfg(27), 2, 4, NetworkModel::infiniband())
            .search(Reversi::initial(), SearchBudget::Iterations(15))
    };
    assert_eq!(run(), run());
}

// ---- 3. Fault schedules identical across host-thread counts --------------

/// A mixed plan where every fault class has a real chance to fire.
fn mixed_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        gpu_slowdown_rate: 0.2,
        gpu_slowdown_factor: 3,
        gpu_hang_rate: 0.2,
        gpu_abort_rate: 0.2,
        net_delay_rate: 0.5,
        net_delay_factor: 3,
        net_drop_rate: 0.3,
        dead_component_rate: 0.3,
        ..FaultPlan::none()
    }
}

#[test]
fn leaf_parallel_with_faults_identical_across_host_threads() {
    assert_reports_identical("leaf+faults", SearchBudget::Iterations(10), |t| {
        Box::new(LeafParallelSearcher::new(
            cfg(31).with_faults(mixed_plan(41)),
            device(t),
            LaunchConfig::new(2, 32),
        ))
    });
}

#[test]
fn block_parallel_with_faults_identical_across_host_threads() {
    assert_reports_identical("block+faults", SearchBudget::Iterations(8), |t| {
        Box::new(BlockParallelSearcher::new(
            cfg(32).with_faults(mixed_plan(42)),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn device_tree_with_faults_identical_across_host_threads() {
    // Exercises the whole degradation ladder (slowdown, block abort, hang
    // dry-run, retry, host block-parallel fallback) under one mixed plan.
    assert_reports_identical("device-tree+faults", SearchBudget::Iterations(8), |t| {
        Box::new(DeviceTreeSearcher::new(
            cfg(54).with_faults(mixed_plan(48)),
            device(t),
            LaunchConfig::new(4, 32),
        ))
    });
}

#[test]
fn hybrid_with_faults_identical_across_host_threads() {
    assert_reports_identical("hybrid+faults", SearchBudget::Iterations(8), |t| {
        Box::new(HybridSearcher::new(
            cfg(33).with_faults(mixed_plan(43)),
            device(t),
            LaunchConfig::new(2, 32),
        ))
    });
}

#[test]
fn root_parallel_with_faults_identical_across_host_threads() {
    assert_reports_identical("root+faults", SearchBudget::Iterations(20), |t| {
        Box::new(RootParallelSearcher::new(cfg(34).with_faults(mixed_plan(44)), 8).with_workers(t))
    });
}

#[test]
fn multi_gpu_with_faults_identical_across_host_threads() {
    assert_reports_identical("multi-gpu+faults", SearchBudget::Iterations(3), |t| {
        Box::new(
            MultiGpuSearcher::new(
                cfg(35).with_faults(mixed_plan(45)),
                3,
                DeviceSpec::tesla_c2050(),
                LaunchConfig::new(2, 32),
                NetworkModel::infiniband(),
            )
            .with_pool(Arc::new(WorkerPool::new(t))),
        )
    });
}

#[test]
fn multi_node_cpu_with_faults_identical_across_runs() {
    let run = || {
        MultiNodeCpuSearcher::<Reversi>::new(
            cfg(36).with_faults(mixed_plan(46)),
            2,
            4,
            NetworkModel::infiniband(),
        )
        .search(Reversi::initial(), SearchBudget::Iterations(10))
    };
    assert_eq!(run(), run());
}

#[test]
fn multi_node_cpu_identical_across_host_threads() {
    // The shared host pool must never leak into results.
    assert_reports_identical("multi-node-cpu", SearchBudget::Iterations(10), |t| {
        Box::new(
            MultiNodeCpuSearcher::new(cfg(47), 2, 4, NetworkModel::infiniband())
                .with_pool(Arc::new(WorkerPool::new(t))),
        )
    });
}

#[test]
fn sequential_and_persistent_identical_across_runs() {
    let seq = || {
        SequentialSearcher::<Reversi>::new(cfg(28))
            .search(Reversi::initial(), SearchBudget::Iterations(60))
    };
    assert_eq!(seq(), seq());
    let per = || {
        PersistentSearcher::<Reversi>::new(cfg(29))
            .search(Reversi::initial(), SearchBudget::Iterations(60))
    };
    assert_eq!(per(), per());
}

// ---- 4. Re-rooted persistent searches across host-thread counts ----------

/// Plays a short game where our moves come from a tree-reusing persistent
/// searcher and the opponent's replies from a block-parallel search run at
/// `threads` host workers. Every search a re-rooted persistent tree feeds
/// is downstream of the device pool, so the whole transcript — including
/// the compacting-copy re-roots — must be bit-identical across the
/// [`HOST_THREADS`] sweep.
fn persistent_reroot_transcript(
    threads: usize,
) -> Vec<(SearchReport<pmcts_games::ReversiMove>, u64)> {
    let mut ours = PersistentSearcher::<Reversi>::new(cfg(37));
    let mut opp = BlockParallelSearcher::new(cfg(38), device(threads), LaunchConfig::new(4, 32));
    let mut state = Reversi::initial();
    let mut transcript = Vec::new();
    for _ in 0..3 {
        let r = ours.search(state, SearchBudget::Iterations(150));
        transcript.push((r.clone(), ours.last_reused_visits()));
        let Some(mv) = r.best_move else { break };
        state.apply(mv);
        let Some(reply) = opp.search(state, SearchBudget::Iterations(4)).best_move else {
            break;
        };
        state.apply(reply);
    }
    transcript
}

#[test]
fn persistent_reroot_identical_across_host_threads() {
    let baseline = persistent_reroot_transcript(HOST_THREADS[0]);
    assert!(
        baseline.last().expect("non-empty game").1 > 0,
        "re-rooting must inherit simulations from the previous move's tree"
    );
    for &threads in &HOST_THREADS[1..] {
        assert_eq!(
            baseline,
            persistent_reroot_transcript(threads),
            "re-rooted transcript changed at {threads} host threads"
        );
    }
}

// ---- 5. Multi-session search service across host-thread counts -----------

/// A mixed service workload: sequential and block sessions, time and
/// iteration budgets, plus one session admitted mid-run. Returns the full
/// lifecycle of every session — ids, admission/completion clocks and the
/// complete report — which must be bit-identical for any host-thread
/// count.
#[allow(clippy::type_complexity)]
fn service_transcript(
    threads: usize,
) -> Vec<(
    u64,
    SimTime,
    SimTime,
    SearchReport<pmcts_games::ReversiMove>,
)> {
    let mut svc = SearchService::<Reversi>::new(device(threads), 32, 77);
    for s in 0..4u64 {
        svc.admit_sequential(
            Reversi::initial(),
            SearchBudget::VirtualTime(SimTime::from_millis(3)),
            cfg(50 + s),
        );
    }
    svc.admit_block(Reversi::initial(), SearchBudget::Iterations(4), cfg(60), 2);
    for _ in 0..2 {
        assert!(svc.step());
    }
    // Late admission: joins the batch from the next round on.
    svc.admit_sequential(
        Reversi::initial(),
        SearchBudget::VirtualTime(SimTime::from_millis(2)),
        cfg(61),
    );
    svc.run_to_completion();
    svc.take_completed()
        .into_iter()
        .map(|c| (c.id.0, c.admitted_at, c.completed_at, c.report))
        .collect()
}

#[test]
fn search_service_identical_across_host_threads() {
    let baseline = service_transcript(HOST_THREADS[0]);
    assert_eq!(baseline.len(), 6, "every session must complete");
    for &threads in &HOST_THREADS[1..] {
        assert_eq!(
            baseline,
            service_transcript(threads),
            "service transcript changed at {threads} host threads"
        );
    }
}

#[test]
fn late_admitted_session_still_meets_deadline_under_full_batch() {
    // 15 long-running sessions saturate the batch; a session admitted
    // after three full rounds must still finish within one round of its
    // own (much shorter) deadline — the scheduler charges it only the
    // rounds it participates in, so an earlier-admitted cohort can never
    // starve it.
    let mut svc = SearchService::<Reversi>::new(device(2), 32, 9);
    for s in 0..15u64 {
        svc.admit_sequential(
            Reversi::initial(),
            SearchBudget::VirtualTime(SimTime::from_millis(40)),
            cfg(70 + s),
        );
    }
    for _ in 0..3 {
        assert!(svc.step());
    }
    let budget = SimTime::from_millis(5);
    let late = svc.admit_sequential(
        Reversi::initial(),
        SearchBudget::VirtualTime(budget),
        cfg(99),
    );
    let mut late_done = None;
    while late_done.is_none() {
        assert!(
            svc.step(),
            "service drained before the late session finished"
        );
        for c in svc.take_completed() {
            if c.id == late {
                late_done = Some(c);
            }
        }
    }
    let c = late_done.unwrap();
    // It really ran inside full batches (16 sessions per launch)...
    assert!(
        svc.launches().iter().any(|l| l.sessions == 16),
        "late session never shared a full batch"
    );
    // ...was neither starved nor overshot: it used most of its budget and
    // stopped within one batched round of the deadline.
    assert_eq!(c.completed_at - c.admitted_at, c.report.elapsed);
    assert!(
        c.report.elapsed >= budget / 2,
        "late session starved: only {} of {}",
        c.report.elapsed,
        budget
    );
    assert!(
        c.report.elapsed < budget * 2,
        "late session blew its deadline: {} for {}",
        c.report.elapsed,
        budget
    );
    assert_eq!(
        c.report.phases.budget_overshoot,
        c.report.elapsed.saturating_sub(budget)
    );
    assert!(
        c.report.phases.queue > SimTime::ZERO,
        "queueing was accounted"
    );
}

// ---- 5b. Fleet placement/admission/faults across host-thread counts ------

/// A fleet workload exercising every deterministic decision at once: an
/// overload geometry (more offers than shard + queue capacity, mixed
/// priority classes, so admission control queues, displaces *and*
/// rejects), narrow SLO waves, and a fault plan that kills every shard
/// but rank 0 mid-run (re-placing their residents). Returns admissions,
/// the full completion transcript, the stats and the shard snapshots —
/// all of which must be bit-identical for any host-thread count.
#[allow(clippy::type_complexity)]
fn fleet_transcript(
    threads: usize,
) -> (
    Vec<String>,
    Vec<(
        u64,
        usize,
        pmcts_core::fleet::Priority,
        SimTime,
        SimTime,
        u32,
        SearchReport<pmcts_games::ReversiMove>,
    )>,
    pmcts_core::fleet::FleetStats,
    Vec<pmcts_core::fleet::ShardSnapshot>,
) {
    use pmcts_core::fleet::{Fleet, FleetConfig, Priority};
    let mut config = FleetConfig::new(41);
    config.shard_capacity = 3;
    config.queue_capacity = 2;
    config.wave_limit = 2;
    config.faults = FaultPlan::dead_component(13, 1.0);
    let mut fleet: Fleet<Reversi> =
        Fleet::new(config, Device::fleet(DeviceSpec::tesla_c2050(), 3, threads));
    let budget = SimTime::from_millis(3);
    // 3 shards x 3 slots + 2 queue slots = 11 < 14 offers: some must be
    // rejected, and the class mix forces a displacement.
    let admissions: Vec<String> = (0..14u64)
        .map(|s| {
            let a = fleet.offer(
                Reversi::initial(),
                SearchBudget::VirtualTime(budget),
                cfg(80 + s),
                Priority::ALL[(s % 3) as usize],
                Some(budget),
            );
            format!("{a:?}")
        })
        .collect();
    fleet.run_to_completion();
    let completed = fleet
        .take_completed()
        .into_iter()
        .map(|c| {
            assert_eq!(c.completed_at - c.admitted_at, c.report.elapsed);
            assert_eq!(c.report.phases.phase_sum(), c.report.elapsed);
            (
                c.id.0,
                c.shard.0,
                c.priority,
                c.admitted_at,
                c.completed_at,
                c.migrations,
                c.report,
            )
        })
        .collect();
    (admissions, completed, fleet.stats(), fleet.shards())
}

#[test]
fn fleet_identical_across_host_threads() {
    let baseline = fleet_transcript(HOST_THREADS[0]);
    let (admissions, completed, stats, shards) = &baseline;
    assert!(
        admissions.iter().any(|a| a == "Rejected"),
        "overload geometry must reject: {admissions:?}"
    );
    assert!(stats.rejected > 0 && stats.admitted + stats.rejected == stats.offered);
    assert_eq!(completed.len() as u64, stats.admitted);
    assert!(
        stats.replaced > 0,
        "dead shards must re-place their residents"
    );
    assert!(
        completed.iter().any(|c| c.5 > 0),
        "some completed session must have migrated off a dead shard"
    );
    assert!(shards[1].dead && shards[2].dead && !shards[0].dead);
    for &threads in &HOST_THREADS[1..] {
        assert_eq!(
            baseline,
            fleet_transcript(threads),
            "fleet transcript changed at {threads} host threads"
        );
    }
}

// ---- 6. Re-root compaction preserves every surviving node ----------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `extract_subtree` (the persistent searcher's re-root) is a
    /// compacting copy into fresh slabs: every node surviving the re-root
    /// must keep its exact `(visits, wins, depth)` triple, its untried
    /// moves, its state and its child structure — nothing else survives.
    #[test]
    fn reroot_compaction_preserves_surviving_subtrees(
        seed in any::<u64>(),
        iters in 30usize..250,
        pick in 0usize..8,
    ) {
        let mut tree = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(seed);
        for i in 0..iters {
            let id = tree.select(1.4);
            let node = if !tree.fully_expanded(id) {
                tree.expand(id, &mut rng)
            } else {
                id
            };
            tree.backprop(node, (i % 3) as f64 / 2.0, 1);
        }
        let root_children = tree.children(tree.root());
        prop_assume!(!root_children.is_empty());
        let new_root = root_children[pick % root_children.len()];
        let sub = tree.extract_subtree(new_root);

        // Walk old and new trees in parallel (children correspond in
        // order); every surviving node must match exactly.
        let mut stack = vec![(new_root, sub.root())];
        let mut visited = 0usize;
        while let Some((old_id, new_id)) = stack.pop() {
            visited += 1;
            prop_assert_eq!(tree.visits(old_id), sub.visits(new_id));
            prop_assert_eq!(tree.wins(old_id).to_bits(), sub.wins(new_id).to_bits());
            prop_assert_eq!(tree.depth(old_id), sub.depth(new_id) + tree.depth(new_root));
            prop_assert_eq!(tree.untried(old_id), sub.untried(new_id));
            prop_assert_eq!(tree.state(old_id), sub.state(new_id));
            let old_children = tree.children(old_id);
            let new_children = sub.children(new_id);
            prop_assert_eq!(old_children.len(), new_children.len());
            for (&o, &n) in old_children.iter().zip(new_children) {
                prop_assert_eq!(tree.move_into(o), sub.move_into(n));
                stack.push((o, n));
            }
        }
        prop_assert_eq!(visited, sub.len(), "subtree copied exactly once per survivor");
    }
}
