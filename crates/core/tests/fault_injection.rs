//! Fault-injection acceptance suite.
//!
//! Three layers of guarantees:
//!
//! 1. **Zero-fault regression pins**: `FaultPlan::none()` (the default)
//!    reproduces the pre-fault-layer reports bit-for-bit. The fingerprints
//!    below were captured from the seed implementation before the fault
//!    layer existed; any drift means the zero-fault path changed.
//! 2. **Faults fire and are accounted**: each fault class injects, and the
//!    `FaultCounters` arithmetic (injected / retried / degraded / excluded)
//!    matches the response policy exactly.
//! 3. **Graceful degradation**: every scheme still returns a best move
//!    under 100% fault rates, the phase-sum identity `phase_sum() ==
//!    elapsed` survives every fault path, and merged statistics stay
//!    additive over the surviving components.

use pmcts_core::prelude::*;
use pmcts_gpu_sim::WorkerPool;
use pmcts_mpi_sim::NetworkModel;
use std::sync::Arc;

fn fingerprint<M: std::fmt::Debug>(r: &SearchReport<M>) -> String {
    let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
    let wins: f64 = r.root_stats.iter().map(|s| s.wins).sum();
    format!(
        "{:?}/s{}/i{}/n{}/d{}/e{}/v{}/w{}",
        r.best_move,
        r.simulations,
        r.iterations,
        r.tree_nodes,
        r.max_depth,
        r.elapsed.as_nanos(),
        visits,
        wins.to_bits()
    )
}

fn cfg(seed: u64) -> MctsConfig {
    MctsConfig::default().with_seed(seed)
}

fn device() -> Device {
    Device::new(DeviceSpec::tesla_c2050()).with_host_threads(2)
}

fn assert_healthy<M: Copy>(r: &SearchReport<M>) {
    assert!(r.best_move.is_some(), "search must still produce a move");
    assert_eq!(
        r.phases.phase_sum(),
        r.elapsed,
        "phase-sum identity must survive fault paths"
    );
}

// ---------------------------------------------------------------------------
// 1. Zero-fault regression pins (captured from the pre-fault seed).
// ---------------------------------------------------------------------------

fn leaf_run(faults: FaultPlan) -> SearchReport<<Reversi as Game>::Move> {
    LeafParallelSearcher::<Reversi>::new(
        cfg(101).with_faults(faults),
        device(),
        LaunchConfig::new(2, 32),
    )
    .search(Reversi::initial(), SearchBudget::Iterations(6))
}

fn block_run(faults: FaultPlan) -> SearchReport<<Reversi as Game>::Move> {
    BlockParallelSearcher::<Reversi>::new(
        cfg(102).with_faults(faults),
        device(),
        LaunchConfig::new(4, 32),
    )
    .search(Reversi::initial(), SearchBudget::Iterations(5))
}

fn hybrid_run(faults: FaultPlan) -> SearchReport<<Reversi as Game>::Move> {
    HybridSearcher::<Reversi>::new(
        cfg(103).with_faults(faults),
        device(),
        LaunchConfig::new(2, 32),
    )
    .search(Reversi::initial(), SearchBudget::Iterations(5))
}

#[test]
fn zero_fault_pin_leaf() {
    assert_eq!(
        fingerprint(&leaf_run(FaultPlan::none())),
        "Some(ReversiMove(44))/s384/i6/n7/d2/e4566665/v384/w4640466834796052480"
    );
}

#[test]
fn zero_fault_pin_block() {
    assert_eq!(
        fingerprint(&block_run(FaultPlan::none())),
        "Some(ReversiMove(37))/s640/i5/n24/d2/e3993536/v640/w4644222766516535296"
    );
}

#[test]
fn zero_fault_pin_hybrid() {
    assert_eq!(
        fingerprint(&hybrid_run(FaultPlan::none())),
        "Some(ReversiMove(26))/s348/i5/n40/d3/e3846165/v348/w4640062214517030912"
    );
}

#[test]
fn zero_fault_pin_root_parallel() {
    let r = RootParallelSearcher::<Reversi>::new(cfg(104), 4)
        .with_workers(2)
        .search(Reversi::initial(), SearchBudget::Iterations(20));
    assert_eq!(
        fingerprint(&r),
        "Some(ReversiMove(37))/s80/i80/n84/d3/e2075240/v80/w4630333735634468864"
    );
}

#[test]
fn zero_fault_pin_multi_gpu() {
    let r = MultiGpuSearcher::<Reversi>::new(
        cfg(105),
        2,
        DeviceSpec::tesla_c2050(),
        LaunchConfig::new(2, 32),
        NetworkModel::infiniband(),
    )
    .with_pool(Arc::new(WorkerPool::new(2)))
    .search(Reversi::initial(), SearchBudget::Iterations(3));
    assert_eq!(
        fingerprint(&r),
        "Some(ReversiMove(44))/s384/i6/n16/d1/e2346820/v384/w4640783494144851968"
    );
}

#[test]
fn zero_fault_pin_multi_node_cpu() {
    let r = MultiNodeCpuSearcher::<Reversi>::new(cfg(106), 2, 3, NetworkModel::infiniband())
        .search(Reversi::initial(), SearchBudget::Iterations(10));
    assert_eq!(
        fingerprint(&r),
        "Some(ReversiMove(44))/s60/i60/n66/d2/e1053488/v60/w4627730092099895296"
    );
}

#[test]
fn none_plan_reports_zero_fault_counters() {
    for r in [
        leaf_run(FaultPlan::none()),
        block_run(FaultPlan::none()),
        hybrid_run(FaultPlan::none()),
    ] {
        assert!(!r.phases.faults.any(), "no faults under FaultPlan::none()");
    }
}

// ---------------------------------------------------------------------------
// 2. Each fault class fires and is accounted exactly.
// ---------------------------------------------------------------------------

#[test]
fn slowdown_inflates_time_but_not_results() {
    let clean = leaf_run(FaultPlan::none());
    let slow = leaf_run(FaultPlan::gpu_slowdown(7, 1.0, 4));
    // The kernel still executed with identical randomness: same statistics.
    assert_eq!(slow.root_stats, clean.root_stats);
    assert_eq!(slow.best_move, clean.best_move);
    assert_eq!(slow.simulations, clean.simulations);
    // Only virtual time grew, and every launch was flagged.
    assert!(slow.elapsed > clean.elapsed);
    assert_eq!(slow.phases.faults.injected, slow.iterations);
    assert_eq!(slow.phases.faults.retried, 0);
    assert_eq!(slow.phases.faults.degraded, 0);
    assert_healthy(&slow);
}

#[test]
fn leaf_hang_retries_once_then_degrades_to_cpu() {
    let r = leaf_run(FaultPlan::gpu_hang(8, 1.0));
    // Every iteration: hang, retry, hang again, one CPU playout.
    assert_eq!(r.phases.faults.injected, 2 * r.iterations);
    assert_eq!(r.phases.faults.retried, r.iterations);
    assert_eq!(r.phases.faults.degraded, r.iterations);
    assert_eq!(r.simulations, r.iterations, "one CPU playout per iteration");
    assert_healthy(&r);
}

#[test]
fn block_hang_degrades_every_tree() {
    let r = block_run(FaultPlan::gpu_hang(9, 1.0));
    // 4 trees per iteration, one CPU playout each after the double hang.
    assert_eq!(r.phases.faults.retried, r.iterations);
    assert_eq!(r.phases.faults.degraded, 4 * r.iterations);
    assert_eq!(r.simulations, 4 * r.iterations);
    assert_healthy(&r);
}

#[test]
fn block_abort_voids_exactly_one_block() {
    let clean = block_run(FaultPlan::none());
    let r = block_run(FaultPlan::gpu_abort(10, 1.0));
    // One of 4 blocks voided per launch: 3/4 of the clean simulations.
    assert_eq!(r.simulations, clean.simulations / 4 * 3);
    assert_eq!(r.phases.faults.injected, r.iterations);
    assert_eq!(r.phases.faults.degraded, r.iterations);
    let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
    assert_eq!(visits, r.simulations, "voided lanes never reach the trees");
    assert_healthy(&r);
}

#[test]
fn hybrid_absorbs_hangs_with_cpu_shadow_work() {
    let r = hybrid_run(FaultPlan::gpu_hang(11, 1.0));
    // Every kernel hangs; all simulations come from the CPU shadow loop
    // that extends to the virtual deadline.
    assert_eq!(r.phases.faults.injected, r.iterations);
    assert_eq!(r.phases.faults.degraded, r.iterations);
    assert!(r.simulations > 0, "shadow iterations keep the search alive");
    assert_eq!(r.phases.simulations, r.simulations);
    assert_healthy(&r);
}

#[test]
fn net_delay_spikes_merge_cost_only() {
    let mk = |faults: FaultPlan| {
        MultiGpuSearcher::<Reversi>::new(
            cfg(105).with_faults(faults),
            2,
            DeviceSpec::tesla_c2050(),
            LaunchConfig::new(2, 32),
            NetworkModel::infiniband(),
        )
        .with_pool(Arc::new(WorkerPool::new(2)))
        .search(Reversi::initial(), SearchBudget::Iterations(3))
    };
    let clean = mk(FaultPlan::none());
    let delayed = mk(FaultPlan::net_delay(12, 1.0, 3));
    assert_eq!(delayed.root_stats, clean.root_stats);
    assert_eq!(delayed.best_move, clean.best_move);
    assert!(delayed.elapsed > clean.elapsed);
    assert_eq!(delayed.phases.faults.injected, 1);
    assert_eq!(delayed.phases.merge, clean.phases.merge * 3);
    assert_healthy(&delayed);
}

// ---------------------------------------------------------------------------
// 3. Graceful degradation: survivors carry the search.
// ---------------------------------------------------------------------------

#[test]
fn multi_gpu_survives_dead_ranks() {
    let ranks = 3;
    let r = MultiGpuSearcher::<Reversi>::new(
        cfg(113).with_faults(FaultPlan::dead_component(13, 1.0)),
        ranks,
        DeviceSpec::tesla_c2050(),
        LaunchConfig::new(2, 32),
        NetworkModel::infiniband(),
    )
    .with_pool(Arc::new(WorkerPool::new(2)))
    .search(Reversi::initial(), SearchBudget::Iterations(3));
    // Rank 0 is immune; ranks 1 and 2 are dead and contribute nothing.
    assert_eq!(r.phases.faults.excluded, (ranks - 1) as u64);
    assert_eq!(r.simulations, 3 * 2 * 32, "only rank 0 searched");
    let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
    assert_eq!(visits, r.simulations, "merge is additive over survivors");
    assert_healthy(&r);
}

#[test]
fn multi_gpu_dropped_contribution_is_excluded_from_merge() {
    let r = MultiGpuSearcher::<Reversi>::new(
        cfg(114).with_faults(FaultPlan::net_drop(14, 1.0)),
        2,
        DeviceSpec::tesla_c2050(),
        LaunchConfig::new(2, 32),
        NetworkModel::infiniband(),
    )
    .with_pool(Arc::new(WorkerPool::new(2)))
    .search(Reversi::initial(), SearchBudget::Iterations(3));
    // Both ranks searched (simulations count them all) but rank 1's packet
    // was dropped: its statistics are missing from the merge.
    assert_eq!(r.simulations, 2 * 3 * 2 * 32);
    let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
    assert_eq!(visits, r.simulations / 2, "only rank 0's stats merged");
    assert_eq!(r.phases.faults.excluded, 1);
    assert_healthy(&r);
}

#[test]
fn multi_node_cpu_survives_dead_ranks() {
    let r = MultiNodeCpuSearcher::<Reversi>::new(
        cfg(115).with_faults(FaultPlan::dead_component(15, 1.0)),
        2,
        3,
        NetworkModel::infiniband(),
    )
    .search(Reversi::initial(), SearchBudget::Iterations(10));
    // Dead-component faults apply at every nesting level: rank 1 dies at
    // the cluster level, and inside surviving rank 0 the root-parallel
    // trees 1 and 2 die too. Immune component 0 of immune rank 0 carries
    // the whole search.
    assert_eq!(r.simulations, 10);
    assert_eq!(r.phases.faults.excluded, 1 + 2);
    let visits: u64 = r.root_stats.iter().map(|s| s.visits).sum();
    assert_eq!(visits, r.simulations);
    assert_healthy(&r);
}

#[test]
fn root_parallel_survives_dead_trees() {
    let r = RootParallelSearcher::<Reversi>::new(
        cfg(116).with_faults(FaultPlan::dead_component(16, 1.0)),
        4,
    )
    .with_workers(2)
    .search(Reversi::initial(), SearchBudget::Iterations(20));
    // Trees 1..3 dead; tree 0 alone runs its full budget.
    assert_eq!(r.simulations, 20);
    assert_eq!(r.phases.faults.excluded, 3);
    assert_healthy(&r);
}

#[test]
fn faulty_runs_are_deterministic_across_host_workers() {
    let run = |workers: usize| {
        RootParallelSearcher::<Reversi>::new(
            cfg(117).with_faults(FaultPlan::dead_component(17, 0.5)),
            8,
        )
        .with_workers(workers)
        .search(Reversi::initial(), SearchBudget::Iterations(15))
    };
    assert_eq!(run(1), run(8), "fault schedule must not depend on timing");
}

#[test]
fn low_rate_faults_fire_somewhere_but_not_everywhere() {
    // A 30% hang rate over many iterations must inject at least once and
    // leave at least one launch clean — i.e. the schedule is genuinely
    // per-epoch, not all-or-nothing.
    let r = LeafParallelSearcher::<Reversi>::new(
        cfg(118).with_faults(FaultPlan::gpu_hang(18, 0.3)),
        device(),
        LaunchConfig::new(2, 32),
    )
    .search(Reversi::initial(), SearchBudget::Iterations(40));
    assert!(r.phases.faults.injected > 0, "30% over 40 iters must fire");
    assert!(
        r.phases.faults.injected < 2 * r.iterations,
        "not every launch may hang at a 30% rate"
    );
    assert_healthy(&r);
}
