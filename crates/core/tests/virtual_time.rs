//! Virtual-time accounting contracts: searchers must charge their budgets
//! within provable bounds derived from the cost models.

use pmcts_core::cost::CpuCostModel;
use pmcts_core::prelude::*;
use pmcts_games::Game;

#[test]
fn sequential_elapsed_is_bounded_by_cost_model() {
    let cfg = MctsConfig::default().with_seed(1);
    let cost = cfg.cpu_cost;
    let iters = 200u64;
    let r = SequentialSearcher::<Reversi>::new(cfg)
        .search(Reversi::initial(), SearchBudget::Iterations(iters));
    // Lower bound: every iteration pays at least the tree-op base.
    assert!(r.elapsed >= cost.tree_op_base * iters);
    // Upper bound: no iteration can cost more than the deepest tree op plus
    // the longest possible playout.
    let per_iter_max = cost.tree_op(r.max_depth) + cost.playout(Reversi::MAX_GAME_LENGTH as u32);
    assert!(r.elapsed <= per_iter_max * iters);
}

#[test]
fn free_cost_model_spends_zero_virtual_time() {
    let cfg = MctsConfig::default()
        .with_seed(2)
        .with_cpu_cost(CpuCostModel::free());
    let r = SequentialSearcher::<Reversi>::new(cfg)
        .search(Reversi::initial(), SearchBudget::Iterations(50));
    assert_eq!(r.elapsed, SimTime::ZERO);
    assert_eq!(r.simulations, 50);
}

#[test]
fn leaf_parallel_pays_launch_overhead_every_iteration() {
    let device = Device::c2050();
    let overhead = device.spec().launch_overhead;
    let iters = 5u64;
    let r = LeafParallelSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(3),
        device,
        LaunchConfig::new(2, 32),
    )
    .search(Reversi::initial(), SearchBudget::Iterations(iters));
    assert!(
        r.elapsed >= overhead * iters,
        "{} < {} x {iters}",
        r.elapsed,
        overhead
    );
}

#[test]
fn block_parallel_host_cost_grows_with_tree_count() {
    // Same total threads AND same per-SM warp load (2 warps per SM on the
    // 14-SM device), different tree counts: more trees => more
    // host-sequential time per iteration => larger elapsed for the same
    // iteration count (the Fig. 5 effect, verified at the accounting level).
    let budget = SearchBudget::Iterations(4);
    let few = BlockParallelSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(4),
        Device::c2050(),
        LaunchConfig::new(14, 64), // 14 trees, 2 warps each
    )
    .search(Reversi::initial(), budget);
    let many = BlockParallelSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(4),
        Device::c2050(),
        LaunchConfig::new(28, 32), // 28 trees, 1 warp each
    )
    .search(Reversi::initial(), budget);
    assert_eq!(few.simulations, many.simulations, "same grid size");
    assert!(
        many.elapsed > few.elapsed,
        "32 trees ({}) must cost more than 4 trees ({})",
        many.elapsed,
        few.elapsed
    );
}

#[test]
fn virtual_time_budget_is_respected_within_one_iteration() {
    // The deadline-aware stopping rule lands within one iteration's cost of
    // the budget on either side: it stops as soon as the previous
    // iteration's cost no longer fits, and only overshoots when the final
    // iteration costs more than its predecessor.
    let budget_time = SimTime::from_millis(10);
    let r = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(5))
        .search(Reversi::initial(), SearchBudget::VirtualTime(budget_time));
    let cost = MctsConfig::default().cpu_cost;
    let max_iter_cost = cost.tree_op(r.max_depth) + cost.playout(Reversi::MAX_GAME_LENGTH as u32);
    assert!(r.elapsed >= budget_time.saturating_sub(max_iter_cost));
    assert!(r.elapsed <= budget_time + max_iter_cost);
    // The recorded overshoot matches elapsed vs budget exactly and stays
    // under one iteration's cost.
    assert_eq!(
        r.phases.budget_overshoot,
        r.elapsed.saturating_sub(budget_time)
    );
    assert!(r.phases.budget_overshoot < max_iter_cost);
}

#[test]
fn budget_overshoot_is_bounded_for_every_scheme() {
    // The fairness fix: no scheme gets more than one iteration's grace past
    // a virtual-time deadline, however expensive its iterations are — and
    // the recorded overshoot must equal elapsed − budget exactly.
    let budget_time = SimTime::from_millis(30);
    let budget = SearchBudget::VirtualTime(budget_time);
    let device = || Device::c2050();
    let launch = LaunchConfig::new(4, 32);
    let root = Reversi::initial();
    let cfg = || MctsConfig::default().with_seed(11);

    let reports: Vec<(String, SearchReport<_>)> = vec![
        (
            "sequential".into(),
            SequentialSearcher::<Reversi>::new(cfg()).search(root, budget),
        ),
        (
            "leaf".into(),
            LeafParallelSearcher::<Reversi>::new(cfg(), device(), launch).search(root, budget),
        ),
        (
            "block".into(),
            BlockParallelSearcher::<Reversi>::new(cfg(), device(), launch).search(root, budget),
        ),
        (
            "hybrid".into(),
            HybridSearcher::<Reversi>::new(cfg(), device(), launch).search(root, budget),
        ),
        (
            "device_tree".into(),
            DeviceTreeSearcher::<Reversi>::new(cfg(), device(), launch).search(root, budget),
        ),
        (
            "root".into(),
            RootParallelSearcher::<Reversi>::new(cfg(), 4).search(root, budget),
        ),
    ];
    for (name, r) in &reports {
        assert_eq!(
            r.phases.budget_overshoot,
            r.elapsed.saturating_sub(budget_time),
            "{name}: overshoot must be exactly elapsed - budget"
        );
        // One iteration can cost at most one worst-case tree op per tree
        // plus the full kernel round; bound it loosely by the whole budget
        // and tightly by requiring elapsed < 2x budget.
        assert!(
            r.elapsed < budget_time * 2,
            "{name}: elapsed {} runs far past the {} budget",
            r.elapsed,
            budget_time
        );
        assert!(
            r.phases.budget_overshoot < budget_time,
            "{name}: overshoot {} is no smaller than an entire budget",
            r.phases.budget_overshoot
        );
    }
}

#[test]
fn multi_gpu_charges_allreduce_on_top_of_search() {
    use pmcts_mpi_sim::NetworkModel;
    let budget = SearchBudget::Iterations(3);
    let launch = LaunchConfig::new(4, 32);
    let ideal = MultiGpuSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(6),
        4,
        DeviceSpec::tesla_c2050(),
        launch,
        NetworkModel::ideal(),
    )
    .search(Reversi::initial(), budget);
    let infiniband = MultiGpuSearcher::<Reversi>::new(
        MctsConfig::default().with_seed(6),
        4,
        DeviceSpec::tesla_c2050(),
        launch,
        NetworkModel::infiniband(),
    )
    .search(Reversi::initial(), budget);
    assert!(
        infiniband.elapsed > ideal.elapsed,
        "a real network must cost more than an ideal one"
    );
}

#[test]
fn sims_per_second_is_scale_invariant_in_iterations() {
    // Throughput should be roughly independent of how long we run (no
    // leaks/superlinearity in the accounting): 4 vs 16 iterations within 30%.
    let rate = |iters| {
        BlockParallelSearcher::<Reversi>::new(
            MctsConfig::default().with_seed(7),
            Device::c2050(),
            LaunchConfig::new(8, 64),
        )
        .search(Reversi::initial(), SearchBudget::Iterations(iters))
        .sims_per_second()
    };
    let short = rate(4);
    let long = rate(16);
    let ratio = short / long;
    assert!(
        (0.7..1.3).contains(&ratio),
        "throughput drifted: {short} vs {long}"
    );
}
