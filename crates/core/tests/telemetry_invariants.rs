//! Phase-telemetry contracts shared by every searcher:
//!
//! 1. **Exactness** — the six phase times of `SearchReport::phases` sum to
//!    `elapsed` to the nanosecond (virtual time has no measurement noise).
//! 2. **Determinism** — the same seed yields a bit-identical breakdown
//!    (`TreeParallelSearcher` is exempt by design: its interleaving depends
//!    on the OS scheduler, though exactness must still hold).
//! 3. **Honest throughput** — a virtual-time budget's final iteration
//!    overshoot stays in `elapsed` (not clamped), so `sims_per_second`
//!    reflects time actually spent.

use pmcts_core::prelude::*;
use pmcts_mpi_sim::NetworkModel;

type BoxedSearcher = Box<dyn Searcher<Reversi>>;

/// Every scheme in the taxonomy, built fresh for seed `seed`.
fn all_schemes(seed: u64) -> Vec<(&'static str, BoxedSearcher)> {
    let cfg = MctsConfig::default().with_seed(seed);
    let device = || Device::new(DeviceSpec::tesla_c2050());
    vec![
        (
            "sequential",
            Box::new(SequentialSearcher::<Reversi>::new(cfg.clone())) as BoxedSearcher,
        ),
        (
            "persistent",
            Box::new(PersistentSearcher::<Reversi>::new(cfg.clone())),
        ),
        (
            "leaf_parallel",
            Box::new(LeafParallelSearcher::<Reversi>::new(
                cfg.clone(),
                device(),
                LaunchConfig::new(4, 32),
            )),
        ),
        (
            "block_parallel",
            Box::new(BlockParallelSearcher::<Reversi>::new(
                cfg.clone(),
                device(),
                LaunchConfig::new(4, 32),
            )),
        ),
        (
            "device_tree",
            Box::new(DeviceTreeSearcher::<Reversi>::new(
                cfg.clone(),
                device(),
                LaunchConfig::new(4, 32),
            )),
        ),
        (
            "hybrid",
            Box::new(HybridSearcher::<Reversi>::new(
                cfg.clone(),
                device(),
                LaunchConfig::new(4, 32),
            )),
        ),
        (
            "root_parallel",
            Box::new(RootParallelSearcher::<Reversi>::new(cfg.clone(), 4)),
        ),
        (
            "tree_parallel",
            Box::new(TreeParallelSearcher::<Reversi>::new(cfg.clone(), 4)),
        ),
        (
            "multi_gpu",
            Box::new(MultiGpuSearcher::<Reversi>::new(
                cfg.clone(),
                3,
                DeviceSpec::tesla_c2050(),
                LaunchConfig::new(4, 32),
                NetworkModel::infiniband(),
            )),
        ),
        (
            "multi_node_cpu",
            Box::new(MultiNodeCpuSearcher::<Reversi>::new(
                cfg,
                3,
                2,
                NetworkModel::infiniband(),
            )),
        ),
    ]
}

#[test]
fn phase_times_sum_exactly_to_elapsed_for_every_scheme() {
    for (name, mut s) in all_schemes(11) {
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(6));
        assert_eq!(
            r.phases.phase_sum(),
            r.elapsed,
            "{name}: phases {:?} must sum to elapsed {}",
            r.phases,
            r.elapsed
        );
    }
}

#[test]
fn phase_times_sum_exactly_under_virtual_time_budgets() {
    let budget = SearchBudget::VirtualTime(SimTime::from_millis(5));
    for (name, mut s) in all_schemes(12) {
        let r = s.search(Reversi::initial(), budget);
        assert_eq!(
            r.phases.phase_sum(),
            r.elapsed,
            "{name}: breakdown must stay exact when the budget is time-based"
        );
    }
}

#[test]
fn same_seed_gives_bit_identical_breakdowns() {
    let run_all = || {
        all_schemes(13)
            .into_iter()
            .map(|(name, mut s)| {
                (
                    name,
                    s.search(Reversi::initial(), SearchBudget::Iterations(5)),
                )
            })
            .collect::<Vec<_>>()
    };
    for ((name, a), (_, b)) in run_all().into_iter().zip(run_all()) {
        if name == "tree_parallel" {
            continue; // non-deterministic by design (OS-scheduled workers)
        }
        assert_eq!(
            a.phases, b.phases,
            "{name}: same seed must reproduce the breakdown bit-for-bit"
        );
        assert_eq!(a.elapsed, b.elapsed, "{name}");
    }
}

#[test]
fn counters_match_report_for_gpu_schemes() {
    let cfg = MctsConfig::default().with_seed(14);
    let mut s = BlockParallelSearcher::<Reversi>::new(
        cfg,
        Device::new(DeviceSpec::tesla_c2050()),
        LaunchConfig::new(4, 32),
    );
    let r = s.search(Reversi::initial(), SearchBudget::Iterations(6));
    assert_eq!(r.phases.simulations, r.simulations);
    assert_eq!(r.phases.kernel_launches, r.iterations);
    // One expansion per tree per iteration from a fresh root.
    assert_eq!(r.phases.expansions, 4 * 6);
    assert!(r.phases.warp_steps > 0, "device stats must be folded in");
    let occ = r.phases.mean_occupancy();
    assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ} out of range");
    let eff = r.phases.lane_efficiency();
    assert!(
        eff > 0.0 && eff <= 1.0,
        "lane efficiency {eff} out of range"
    );
}

#[test]
fn hybrid_shadow_work_is_visible_and_consistent() {
    let cfg = MctsConfig::default().with_seed(15);
    let mut s = HybridSearcher::<Reversi>::new(
        cfg,
        Device::new(DeviceSpec::tesla_c2050()),
        LaunchConfig::new(4, 32),
    );
    let r = s.search(Reversi::initial(), SearchBudget::Iterations(8));
    let p = &r.phases;
    // Kernel estimate exists from iteration 2 on, so shadow work must run.
    assert!(p.shadow_iterations > 0, "CPU shadow iterations invisible");
    assert!(p.shadow_overlap > SimTime::ZERO);
    // Saved time is the hidden side of each window: never more than the
    // shadow work performed, and >0 once any overlap happened.
    assert!(p.overlap_saved > SimTime::ZERO);
    assert!(p.overlap_saved <= p.shadow_overlap);
    // GPU sims + one CPU sim per shadow iteration account for everything.
    assert_eq!(p.simulations, r.simulations);
    assert_eq!(p.simulations, 8 * 4 * 32 + p.shadow_iterations);
    assert_eq!(p.phase_sum(), r.elapsed);
}

#[test]
fn merge_phase_appears_only_on_mpi_schemes() {
    for (name, mut s) in all_schemes(16) {
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(4));
        let is_mpi = name == "multi_gpu" || name == "multi_node_cpu";
        assert_eq!(
            r.phases.merge > SimTime::ZERO,
            is_mpi,
            "{name}: merge time {} unexpected",
            r.phases.merge
        );
    }
}

#[test]
fn virtual_time_elapsed_stays_within_one_iteration_of_budget() {
    // The deadline-aware tracker stops once the previous iteration's cost
    // no longer fits, and charges the full cost of every iteration it does
    // run: elapsed lands within one iteration of the budget on either side
    // and is never clamped to the budget line.
    let budget = SimTime::from_millis(3);
    let cfg = MctsConfig::default().with_seed(17);
    let cost = cfg.cpu_cost;
    let r = SequentialSearcher::<Reversi>::new(cfg)
        .search(Reversi::initial(), SearchBudget::VirtualTime(budget));
    let max_iter = cost.tree_op(r.max_depth) + cost.playout(Reversi::MAX_GAME_LENGTH as u32);
    assert!(
        r.elapsed >= budget.saturating_sub(max_iter),
        "elapsed {} stopped more than one iteration short of {}",
        r.elapsed,
        budget
    );
    assert!(r.elapsed <= budget + max_iter);
    // Any overshoot past the deadline is recorded verbatim in the ledger,
    // outside the phase sum.
    assert_eq!(r.phases.budget_overshoot, r.elapsed.saturating_sub(budget));
    assert_eq!(r.phases.phase_sum(), r.elapsed);
}
