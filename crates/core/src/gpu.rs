//! The Monte Carlo playout kernel executed on the simulated GPU.
//!
//! One simulated GPU thread = one playout. A lane's state machine plays one
//! random ply per lockstep step, so a warp's cost is dominated by its
//! longest game — the divergence behaviour that shapes all of the paper's
//! GPU results. Each *block* simulates from its own starting position
//! (`roots[block]`): leaf parallelism passes one shared root, block
//! parallelism passes one root per tree.
//!
//! Outputs are one byte per thread, exactly the paper's device result array
//! ("the results are written to an array in the GPU's memory (0 = loss,
//! 1 = victory)") generalised to carry draws.

use pmcts_games::{random_playout, Game, LaneBatch, Outcome, Player};
use pmcts_gpu_sim::{Kernel, ThreadId};
use pmcts_util::Xoshiro256pp;

/// Encoded playout result, one byte per lane (the device result array).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneOutcome {
    /// P1 (Black) won the playout.
    P1Win,
    /// P2 (White) won the playout.
    P2Win,
    /// Drawn playout.
    Draw,
}

impl LaneOutcome {
    fn from_outcome(o: Outcome) -> Self {
        match o {
            Outcome::Win(Player::P1) => LaneOutcome::P1Win,
            Outcome::Win(Player::P2) => LaneOutcome::P2Win,
            Outcome::Draw => LaneOutcome::Draw,
        }
    }

    /// Reward for P1 (1, 0 or ½).
    #[inline]
    pub fn reward_p1(self) -> f64 {
        match self {
            LaneOutcome::P1Win => 1.0,
            LaneOutcome::P2Win => 0.0,
            LaneOutcome::Draw => 0.5,
        }
    }
}

/// Per-lane mutable state: the game being played plus the lane's RNG.
pub struct LaneState<G> {
    state: G,
    rng: Xoshiro256pp,
    finished: Option<Outcome>,
}

/// Playout kernel: every thread plays one random game to completion.
pub struct PlayoutKernel<G: Game> {
    /// Starting position for each block; block `b` reads
    /// `roots[b % roots.len()]`, so leaf parallelism can pass one root.
    roots: Vec<G>,
    /// Stream seed for this launch (callers advance an epoch counter so
    /// every launch draws fresh, reproducible randomness).
    stream_seed: u64,
}

impl<G: Game> PlayoutKernel<G> {
    /// Creates a kernel. `stream_seed` should already combine the
    /// experiment seed with a per-launch epoch.
    pub fn new(roots: Vec<G>, stream_seed: u64) -> Self {
        assert!(!roots.is_empty(), "kernel needs at least one root position");
        PlayoutKernel { roots, stream_seed }
    }

    /// Bytes uploaded to the device for the root positions (charged by the
    /// caller as a host→device transfer). Uses the game's wire payload
    /// size, not `size_of::<G>()`: host-only caches like the Zobrist hash
    /// are never uploaded.
    pub fn upload_bytes(&self) -> u64 {
        (self.roots.len() * G::device_state_bytes()) as u64
    }

    /// Runs `N` lanes as one [`LaneBatch`], with per-lane roots and RNG
    /// streams derived exactly as [`Kernel::init`] derives them — so the
    /// batch is bit-identical to `N` scalar `run_lane` calls.
    fn run_lane_batch<const N: usize>(&self, tids: &[ThreadId], out: &mut Vec<(LaneOutcome, u64)>) {
        debug_assert_eq!(tids.len(), N);
        let roots: [G; N] =
            std::array::from_fn(|i| self.roots[tids[i].block as usize % self.roots.len()]);
        let rngs: [Xoshiro256pp; N] =
            std::array::from_fn(|i| Xoshiro256pp::derive(self.stream_seed, tids[i].global as u64));
        for result in LaneBatch::new(roots, rngs).run() {
            let steps = (result.plies as u64).max(1);
            out.push((LaneOutcome::from_outcome(result.outcome), steps));
        }
    }
}

impl<G: Game> Kernel for PlayoutKernel<G> {
    type ThreadState = LaneState<G>;
    type Output = LaneOutcome;

    fn init(&self, tid: ThreadId) -> LaneState<G> {
        LaneState {
            state: self.roots[tid.block as usize % self.roots.len()],
            rng: Xoshiro256pp::derive(self.stream_seed, tid.global as u64),
            finished: None,
        }
    }

    fn step(&self, lane: &mut LaneState<G>, _tid: ThreadId) -> bool {
        if lane.finished.is_some() {
            return true;
        }
        if let Some(outcome) = lane.state.outcome() {
            lane.finished = Some(outcome);
            return true;
        }
        let mv = lane
            .state
            .random_move(&mut lane.rng)
            .expect("non-terminal state has a move");
        lane.state.apply(mv);
        if let Some(outcome) = lane.state.outcome() {
            lane.finished = Some(outcome);
            true
        } else {
            false
        }
    }

    fn finish(&self, lane: LaneState<G>, _tid: ThreadId) -> LaneOutcome {
        LaneOutcome::from_outcome(lane.finished.expect("lane finished before output"))
    }

    fn output_bytes(&self) -> u64 {
        1
    }

    /// Fused lane: one allocation-free [`random_playout`] instead of the
    /// `init`/`step` state machine, drawing the identical RNG sequence.
    ///
    /// Step equivalence (checked against the lockstep oracle by the
    /// equivalence suite): each `step` call applies exactly one ply and the
    /// call that applies the final ply reports completion, so a playout of
    /// `p ≥ 1` plies takes `p` steps; a terminal root takes the single
    /// entry-check step.
    fn run_lane(&self, tid: ThreadId) -> (LaneOutcome, u64) {
        let root = self.roots[tid.block as usize % self.roots.len()];
        let mut rng = Xoshiro256pp::derive(self.stream_seed, tid.global as u64);
        let result = random_playout(root, &mut rng);
        let steps = (result.plies as u64).max(1);
        (LaneOutcome::from_outcome(result.outcome), steps)
    }

    /// Batched lanes: whenever ≥ 4 playouts share a warp — and the game's
    /// lane engine is a measured win ([`Game::LANE_ENGINE`]) — advance
    /// them as a [`LaneBatch`] (8-wide chunks, then a 4-wide chunk, scalar
    /// remainder) so the bit-parallel hot loop runs. A pure wall-clock
    /// optimisation: every lane keeps its own derived RNG stream and step
    /// count, so outputs are bit-identical to the scalar
    /// [`run_lane`](Kernel::run_lane) path the lockstep oracle checks.
    fn run_lanes(&self, tids: &[ThreadId], out: &mut Vec<(LaneOutcome, u64)>) {
        if !G::LANE_ENGINE {
            for &tid in tids {
                out.push(self.run_lane(tid));
            }
            return;
        }
        let mut rest = tids;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at(8);
            self.run_lane_batch::<8>(chunk, out);
            rest = tail;
        }
        if rest.len() >= 4 {
            let (chunk, tail) = rest.split_at(4);
            self.run_lane_batch::<4>(chunk, out);
            rest = tail;
        }
        for &tid in rest {
            out.push(self.run_lane(tid));
        }
    }
}

/// Sums a block's lane outcomes into `(wins_for_p1, simulations)` — the
/// host-side aggregation performed after reading back the result array.
pub fn aggregate(outcomes: &[LaneOutcome]) -> (f64, u64) {
    let mut wins = 0.0;
    for &o in outcomes {
        wins += o.reward_p1();
    }
    (wins, outcomes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_gpu_sim::{Device, DeviceSpec, LaunchConfig};

    #[test]
    fn kernel_runs_full_playouts() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let k = PlayoutKernel::new(vec![Reversi::initial()], 42);
        let r = dev.launch(&k, LaunchConfig::new(4, 64));
        assert_eq!(r.outputs.len(), 256);
        let (wins, n) = aggregate(&r.outputs);
        assert_eq!(n, 256);
        assert!(wins > 0.0 && wins < 256.0, "wins={wins}");
        // Reversi games are ≥ ~50 plies: warp steps must reflect that.
        assert!(r.stats.warp_steps >= 50 * (r.stats.warps as u64));
    }

    #[test]
    fn per_block_roots_are_respected() {
        // Block 0 simulates a position already won by P1; block 1 one won
        // by P2. Outputs must separate exactly.
        let won_p1 = TicTacToe::parse("XXX OO. ...", Player::P2).unwrap();
        let won_p2 = TicTacToe::parse("OOO XX. ..X", Player::P1).unwrap();
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let k = PlayoutKernel::new(vec![won_p1, won_p2], 1);
        let r = dev.launch(&k, LaunchConfig::new(2, 32));
        let (w0, _) = aggregate(&r.outputs[..32]);
        let (w1, _) = aggregate(&r.outputs[32..]);
        assert_eq!(w0, 32.0);
        assert_eq!(w1, 0.0);
    }

    #[test]
    fn kernel_is_deterministic_per_seed() {
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let cfg = LaunchConfig::new(2, 32);
        let a = dev.launch(&PlayoutKernel::new(vec![Reversi::initial()], 9), cfg);
        let b = dev.launch(&PlayoutKernel::new(vec![Reversi::initial()], 9), cfg);
        let c = dev.launch(&PlayoutKernel::new(vec![Reversi::initial()], 10), cfg);
        assert_eq!(a.outputs, b.outputs);
        assert_ne!(a.outputs, c.outputs);
    }

    #[test]
    fn divergence_is_visible_in_stats() {
        // Real games end at different plies, so some lanes must idle.
        let dev = Device::new(DeviceSpec::tesla_c2050());
        let k = PlayoutKernel::new(vec![Reversi::initial()], 3);
        let r = dev.launch(&k, LaunchConfig::new(1, 64));
        assert!(r.stats.idle_lane_steps > 0, "expected SIMD divergence");
        assert!(r.stats.lane_efficiency() < 1.0);
    }

    #[test]
    fn aggregate_counts_draws_as_half() {
        let outs = [LaneOutcome::P1Win, LaneOutcome::Draw, LaneOutcome::P2Win];
        let (w, n) = aggregate(&outs);
        assert_eq!(w, 1.5);
        assert_eq!(n, 3);
    }

    #[test]
    fn upload_bytes_scales_with_roots() {
        let k1 = PlayoutKernel::new(vec![Reversi::initial()], 0);
        let k4 = PlayoutKernel::new(vec![Reversi::initial(); 4], 0);
        assert_eq!(k4.upload_bytes(), 4 * k1.upload_bytes());
    }
}
