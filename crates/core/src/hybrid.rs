//! Hybrid CPU/GPU processing — paper §III-A, Fig. 4.
//!
//! The paper observes that GPU-built trees are *shallower* than CPU trees:
//! a kernel launch takes long, so the tree receives few (large) updates,
//! while a CPU performs many quick single simulations and grows the tree
//! toward the optimum faster. The fix: launch the kernel **asynchronously**
//! and let the CPU keep running ordinary MCTS iterations on the same trees
//! while the GPU simulates ("CPU can work here!" in Fig. 4), improving both
//! depth and playing strength (paper Fig. 8).
//!
//! Determinism: the amount of CPU shadow work per launch is bounded by the
//! *previous* kernel's virtual duration (an adaptive estimate), not by
//! wall-clock polling, so results are reproducible while the kernel still
//! genuinely executes in the background via
//! [`pmcts_gpu_sim::PendingLaunch`].

use crate::config::{MctsConfig, SearchBudget};
use crate::gpu::{aggregate, PlayoutKernel};
use crate::searcher::{BudgetTracker, SearchReport, Searcher};
use crate::sequential::SequentialSearcher;
use crate::telemetry::PhaseBreakdown;
use crate::tree::SearchTree;
use pmcts_games::Game;
use pmcts_gpu_sim::{Device, GpuFault, LaunchConfig};
use pmcts_util::{Rng64, SimTime, Xoshiro256pp};
use std::sync::Arc;

/// Hybrid CPU+GPU block-parallel searcher.
#[derive(Clone, Debug)]
pub struct HybridSearcher<G: Game> {
    config: MctsConfig,
    device: Device,
    launch: LaunchConfig,
    rng: Xoshiro256pp,
    cpu_worker: SequentialSearcher<G>,
    epoch: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> HybridSearcher<G> {
    /// Creates a hybrid searcher: block-parallel GPU search plus CPU
    /// iterations overlapped with every kernel launch.
    pub fn new(config: MctsConfig, device: Device, launch: LaunchConfig) -> Self {
        let rng = Xoshiro256pp::derive(config.seed, 0x4B1D);
        let cpu_worker = SequentialSearcher::with_stream(config.clone(), 0xC0DE);
        HybridSearcher {
            config,
            device,
            launch,
            rng,
            cpu_worker,
            epoch: 0,
            _game: std::marker::PhantomData,
        }
    }

    fn next_stream_seed(&mut self) -> u64 {
        self.epoch += 1;
        self.config
            .seed
            .wrapping_add(self.epoch.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }
}

impl<G: Game> Searcher<G> for HybridSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        let blocks = self.launch.blocks as usize;
        let tpb = self.launch.threads_per_block as usize;
        let mut trees: Vec<SearchTree<G>> = (0..blocks)
            .map(|_| SearchTree::for_config(root, &self.config))
            .collect();
        let mut tracker = BudgetTracker::new(budget);
        let mut phases = PhaseBreakdown::new();
        let mut simulations = 0u64;
        let cpu = self.config.cpu_cost;
        let mut kernel_estimate: Option<SimTime> = None;
        let mut cpu_turn = 0usize;
        // Rolling estimate of one CPU iteration's cost, so the shadow loop
        // never overshoots the overlap window (a real CPU would not start a
        // simulation it cannot finish before the kernel completes).
        // (floored at 1 ns so a free cost model cannot spin forever)
        let mut est_iter = (cpu.tree_op(8) + cpu.playout(G::MAX_GAME_LENGTH as u32 / 2))
            .max(SimTime::from_nanos(1));

        // Host tree phases fan out over the device's pool exactly as in
        // `BlockParallelSearcher`: pool-parallel selection, sequential RNG
        // pick drawing in block order, pool-parallel expansion. RNG draw
        // order and cost folding are untouched, so reports stay
        // bit-identical for any pool size.
        let pool = Arc::clone(self.device.worker_pool());
        let exploration_c = self.config.exploration_c;

        if !trees[0].is_terminal(0) {
            let plan = self.config.faults;
            while tracker.may_continue() {
                let mut host_cost = cpu.launch_prep;
                let selected: Vec<(u32, u32)> = pool.map_indexed(&mut trees, |_, tree| {
                    let sel = tree.select(exploration_c);
                    (sel, tree.untried_len(sel) as u32)
                });
                let picks: Vec<Option<u32>> = selected
                    .iter()
                    .map(|&(_, untried)| {
                        if untried != 0 {
                            phases.expansions += 1;
                            Some(self.rng.next_below(untried))
                        } else {
                            None
                        }
                    })
                    .collect();
                let frontier: Vec<(u32, G, u32)> = pool.map_indexed(&mut trees, |b, tree| {
                    let node = match picks[b] {
                        Some(pick) => tree.expand_with_pick(selected[b].0, pick),
                        None => selected[b].0,
                    };
                    (node, *tree.state(node), tree.depth(node))
                });
                for &(_, _, depth) in &frontier {
                    host_cost += cpu.tree_op(depth);
                    phases.select += cpu.select_cost(depth);
                    phases.expand += cpu.expand_cost();
                }

                let kernel = Arc::new(PlayoutKernel::new(
                    frontier.iter().map(|&(_, s, _)| s).collect(),
                    self.next_stream_seed(),
                ));
                let fault = plan.gpu_fault(0x4B1D, self.epoch, self.launch.blocks);
                let upload = self.device.spec().transfer_time(kernel.upload_bytes());
                let pending = self
                    .device
                    .launch_async_with_fault(kernel, self.launch, fault);

                // CPU shadow work while the kernel flies: plain sequential
                // MCTS iterations, round-robin over the same trees, bounded
                // by the previous kernel's virtual duration so accounting
                // stays deterministic. Shadow phase times go into `scratch`
                // first: whether they land in the breakdown depends on which
                // side of the overlap is the critical path.
                let mut shadow_elapsed = SimTime::ZERO;
                let mut scratch = PhaseBreakdown::new();
                if let Some(est) = kernel_estimate {
                    let mut shadow = BudgetTracker::new(SearchBudget::VirtualTime(est));
                    while shadow.elapsed + est_iter <= est {
                        let before = shadow.elapsed;
                        let tree = &mut trees[cpu_turn % blocks];
                        simulations +=
                            self.cpu_worker
                                .one_iteration(tree, &mut shadow, &mut scratch);
                        est_iter = (shadow.elapsed - before).max(SimTime::from_nanos(1));
                        cpu_turn += 1;
                    }
                    shadow_elapsed = shadow.elapsed;
                    scratch.shadow_iterations = shadow.iterations;
                }

                let result = pending.wait();
                let kernel_elapsed = result.stats.elapsed();

                // A hung kernel's outputs are void; instead of idling to the
                // virtual deadline the CPU absorbs the stall by *extending*
                // its shadow loop over the same trees, so the window still
                // makes progress. Completed launches (possibly slowed,
                // possibly with one aborted block) read back as usual.
                let gpu_side = if result.fault == GpuFault::Hang {
                    let deadline = plan.hang_deadline(kernel_elapsed);
                    phases.faults.injected += 1;
                    phases.faults.degraded += 1;
                    let mut shadow = BudgetTracker::new(SearchBudget::VirtualTime(deadline));
                    shadow.elapsed = shadow_elapsed;
                    while shadow.elapsed + est_iter <= deadline {
                        let before = shadow.elapsed;
                        let tree = &mut trees[cpu_turn % blocks];
                        simulations +=
                            self.cpu_worker
                                .one_iteration(tree, &mut shadow, &mut scratch);
                        est_iter = (shadow.elapsed - before).max(SimTime::from_nanos(1));
                        cpu_turn += 1;
                    }
                    scratch.shadow_iterations += shadow.iterations;
                    shadow_elapsed = shadow.elapsed;
                    deadline
                } else {
                    let voided = match result.fault {
                        GpuFault::BlockAbort(bad) => {
                            phases.faults.injected += 1;
                            phases.faults.degraded += 1;
                            Some(bad as usize)
                        }
                        fault => {
                            if fault != GpuFault::None {
                                phases.faults.injected += 1;
                            }
                            None
                        }
                    };
                    // Pool-parallel backprop, counts folded in block order.
                    let outputs = &result.outputs;
                    let counts: Vec<u64> = pool.map_indexed(&mut trees, |b, tree| {
                        if Some(b) == voided {
                            return 0;
                        }
                        let lanes = &outputs[b * tpb..(b + 1) * tpb];
                        let (wins_p1, n) = aggregate(lanes);
                        tree.backprop(frontier[b].0, wins_p1, n);
                        n
                    });
                    for n in counts {
                        simulations += n;
                        phases.simulations += n;
                    }
                    phases.record_launch(&result.stats);
                    kernel_elapsed
                };

                // The CPU work overlapped the kernel: charge the longer of
                // the two, plus the non-overlapped host-sequential parts.
                // The breakdown charges the critical side's phases; the
                // hidden side's time is recorded as `overlap_saved`.
                phases.upload += cpu.launch_prep + upload;
                if gpu_side >= shadow_elapsed {
                    if result.fault == GpuFault::Hang {
                        phases.kernel += gpu_side;
                    } else {
                        phases.kernel += result.stats.launch_overhead + result.stats.device_time;
                        phases.readback += result.stats.readback_time;
                    }
                    phases.overlap_saved += shadow_elapsed;
                } else {
                    phases.select += scratch.select;
                    phases.expand += scratch.expand;
                    phases.kernel += scratch.kernel;
                    phases.overlap_saved += gpu_side;
                }
                phases.shadow_overlap += shadow_elapsed;
                phases.absorb_counters(&scratch);

                let overlapped = gpu_side.max(shadow_elapsed);
                tracker.charge(host_cost + upload + overlapped);
                kernel_estimate = Some(kernel_elapsed);
            }
        }

        crate::block_parallel::report_from_trees(
            &self.config,
            &trees,
            &tracker,
            simulations,
            phases,
        )
    }

    fn name(&self) -> String {
        format!(
            "hybrid CPU+GPU ({} blocks × {} threads)",
            self.launch.blocks, self.launch.threads_per_block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_parallel::BlockParallelSearcher;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::new(DeviceSpec::tesla_c2050())
    }

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn runs_and_reports() {
        let mut s = HybridSearcher::<Reversi>::new(cfg(1), device(), LaunchConfig::new(4, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(5));
        assert_eq!(r.iterations, 5);
        // GPU sims plus CPU shadow sims: at least the pure GPU amount.
        assert!(r.simulations >= 5 * 4 * 32);
        assert!(r.best_move.is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            HybridSearcher::<Reversi>::new(cfg(seed), device(), LaunchConfig::new(2, 32))
                .search(Reversi::initial(), SearchBudget::Iterations(6))
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.root_stats, b.root_stats);
        assert_eq!(a.simulations, b.simulations);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn cpu_overlap_adds_simulations_beyond_block_parallel() {
        let budget = SearchBudget::VirtualTime(SimTime::from_millis(30));
        let cfg_ = cfg(8);
        let launch = LaunchConfig::new(8, 64);
        let hybrid = HybridSearcher::<Reversi>::new(cfg_.clone(), device(), launch)
            .search(Reversi::initial(), budget);
        let block = BlockParallelSearcher::<Reversi>::new(cfg_, device(), launch)
            .search(Reversi::initial(), budget);
        assert!(
            hybrid.simulations > block.simulations,
            "hybrid {} should out-simulate block {}",
            hybrid.simulations,
            block.simulations
        );
    }

    #[test]
    fn hybrid_trees_grow_deeper_than_gpu_only() {
        // The paper's Fig. 8 claim: CPU overlap increases tree depth.
        let budget = SearchBudget::VirtualTime(SimTime::from_millis(40));
        let launch = LaunchConfig::new(8, 64);
        let hybrid = HybridSearcher::<Reversi>::new(cfg(9), device(), launch)
            .search(Reversi::initial(), budget);
        let block = BlockParallelSearcher::<Reversi>::new(cfg(9), device(), launch)
            .search(Reversi::initial(), budget);
        assert!(
            hybrid.max_depth >= block.max_depth,
            "hybrid depth {} < block depth {}",
            hybrid.max_depth,
            block.max_depth
        );
    }

    #[test]
    fn tactical_sanity() {
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher =
            HybridSearcher::<TicTacToe>::new(cfg(10), device(), LaunchConfig::new(2, 32));
        let r = searcher.search(s, SearchBudget::Iterations(40));
        assert_eq!(r.best_move, Some(2));
    }
}
