//! Search-tree analysis: principal variation, depth histograms, branching
//! statistics, and Elo-style strength estimation from win ratios.
//!
//! These tools back the experiment write-ups: Fig. 8 needs tree-depth
//! inspection, the "1 GPU ≈ 100–200 CPU threads" claim needs a way to turn
//! win ratios into comparable strength numbers, and debugging any searcher
//! starts with looking at its principal variation.

use crate::tree::SearchTree;
use pmcts_games::Game;

/// The principal variation: the path of most-visited children from the
/// root, with each node's visit count and mean value.
#[derive(Clone, Debug, PartialEq)]
pub struct PvEntry<M> {
    /// The move played at this step.
    pub mv: M,
    /// Simulations through the move.
    pub visits: u64,
    /// Mean reward for the player who made the move.
    pub mean: f64,
}

/// Extracts the principal variation (following most-visited children) up to
/// `max_len` plies.
pub fn principal_variation<G: Game>(tree: &SearchTree<G>, max_len: usize) -> Vec<PvEntry<G::Move>> {
    let mut pv = Vec::new();
    let mut id = tree.root();
    while pv.len() < max_len {
        let best = tree
            .children(id)
            .iter()
            .copied()
            .max_by_key(|&c| tree.visits(c));
        match best {
            Some(child) if tree.visits(child) > 0 => {
                pv.push(PvEntry {
                    mv: tree.move_into(child).expect("child has a move"),
                    visits: tree.visits(child),
                    mean: tree.mean(child),
                });
                id = child;
            }
            _ => break,
        }
    }
    pv
}

/// Aggregate shape statistics of a search tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeShape {
    /// Total nodes.
    pub nodes: u64,
    /// Deepest node.
    pub max_depth: u32,
    /// Node count per depth (index = depth).
    pub depth_histogram: Vec<u64>,
    /// Mean number of children over internal (expanded) nodes.
    pub mean_branching: f64,
    /// Number of leaf nodes (no children).
    pub leaves: u64,
}

/// Computes the shape statistics of a tree.
pub fn tree_shape<G: Game>(tree: &SearchTree<G>) -> TreeShape {
    let mut shape = TreeShape {
        nodes: tree.len() as u64,
        max_depth: tree.max_depth(),
        depth_histogram: vec![0; tree.max_depth() as usize + 1],
        ..Default::default()
    };
    let mut internal = 0u64;
    let mut child_total = 0u64;
    for id in 0..tree.len() as u32 {
        shape.depth_histogram[tree.depth(id) as usize] += 1;
        let n_children = tree.children(id).len();
        if n_children == 0 {
            shape.leaves += 1;
        } else {
            internal += 1;
            child_total += n_children as u64;
        }
    }
    shape.mean_branching = if internal == 0 {
        0.0
    } else {
        child_total as f64 / internal as f64
    };
    shape
}

/// Converts a win ratio into an Elo-style rating difference:
/// `diff = -400 · log10(1/p − 1)`. A 0.75 win ratio ≈ +191 Elo.
///
/// Ratios are clamped to `[1/(n+1), n/(n+1)]`-style bounds by the caller if
/// needed; this function clamps to `[0.001, 0.999]` to stay finite.
pub fn elo_diff(win_ratio: f64) -> f64 {
    let p = win_ratio.clamp(0.001, 0.999);
    -400.0 * (1.0 / p - 1.0).log10()
}

/// Inverse of [`elo_diff`]: expected win ratio at a rating difference.
pub fn expected_score(elo: f64) -> f64 {
    1.0 / (1.0 + 10f64.powf(-elo / 400.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MctsConfig, SearchBudget};
    use crate::searcher::BudgetTracker;
    use crate::sequential::SequentialSearcher;
    use pmcts_games::{Game, Reversi};

    fn grown_tree(iters: u64) -> SearchTree<Reversi> {
        let mut tree = SearchTree::new(Reversi::initial());
        let mut tracker = BudgetTracker::new(SearchBudget::Iterations(iters));
        let mut s = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(3));
        s.run_on_tree(
            &mut tree,
            &mut tracker,
            &mut crate::telemetry::PhaseBreakdown::new(),
        );
        tree
    }

    #[test]
    fn pv_follows_most_visited_children() {
        let tree = grown_tree(500);
        let pv = principal_variation(&tree, 10);
        assert!(!pv.is_empty());
        // First PV move = robust child of the root.
        let best = tree.best_move(crate::config::FinalMoveRule::RobustChild);
        assert_eq!(Some(pv[0].mv), best);
        // Visits are non-increasing along the PV.
        for w in pv.windows(2) {
            assert!(w[0].visits >= w[1].visits);
        }
        // Means are probabilities.
        for e in &pv {
            assert!((0.0..=1.0).contains(&e.mean));
        }
    }

    #[test]
    fn pv_respects_max_len() {
        let tree = grown_tree(500);
        assert!(principal_variation(&tree, 2).len() <= 2);
        assert!(principal_variation(&tree, 0).is_empty());
    }

    #[test]
    fn pv_of_fresh_tree_is_empty() {
        let tree = SearchTree::new(Reversi::initial());
        assert!(principal_variation(&tree, 5).is_empty());
    }

    #[test]
    fn tree_shape_accounts_every_node() {
        let tree = grown_tree(300);
        let shape = tree_shape(&tree);
        assert_eq!(shape.nodes, tree.len() as u64);
        assert_eq!(shape.depth_histogram.iter().sum::<u64>(), shape.nodes);
        assert_eq!(shape.depth_histogram[0], 1, "exactly one root");
        assert_eq!(shape.max_depth, tree.max_depth());
        assert!(shape.leaves > 0 && shape.leaves < shape.nodes);
        assert!(shape.mean_branching >= 1.0);
    }

    #[test]
    fn singleton_tree_shape() {
        let tree = SearchTree::new(Reversi::initial());
        let shape = tree_shape(&tree);
        assert_eq!(shape.nodes, 1);
        assert_eq!(shape.leaves, 1);
        assert_eq!(shape.mean_branching, 0.0);
    }

    #[test]
    fn elo_known_points() {
        assert!(elo_diff(0.5).abs() < 1e-9);
        assert!((elo_diff(0.75) - 190.848).abs() < 0.01);
        assert!(elo_diff(0.9) > 300.0);
        assert!(elo_diff(0.25) < -190.0);
    }

    #[test]
    fn elo_roundtrips_with_expected_score() {
        for p in [0.1, 0.25, 0.5, 0.6, 0.75, 0.9] {
            let back = expected_score(elo_diff(p));
            assert!((back - p).abs() < 1e-9, "{p} -> {back}");
        }
    }

    #[test]
    fn elo_is_clamped_at_extremes() {
        assert!(elo_diff(0.0).is_finite());
        assert!(elo_diff(1.0).is_finite());
        assert!(elo_diff(1.0) > 0.0);
    }
}
