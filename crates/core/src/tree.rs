//! The arena-allocated search tree.
//!
//! Nodes live in one contiguous `Vec` and refer to each other by `u32`
//! index — no `Rc`/`RefCell` graphs, good locality, trivially cheap to drop
//! between moves. The tree stores the *game state in every node* (all
//! bundled games are tiny `Copy` bitboards), which keeps selection free of
//! move re-application bugs at the cost of a few bytes per node.
//!
//! Reward convention: `Node::wins` accumulates reward **for the player who
//! made the move leading into the node** (i.e. the parent's side to move).
//! With that convention, selection at any node maximises UCB over its
//! children using the children's own `wins` directly.

use crate::config::FinalMoveRule;
use crate::ucb::ucb1;
use pmcts_games::{Game, MoveBuf, Player};
use pmcts_util::Rng64;

/// Index of a node within its [`SearchTree`]. The root is always 0.
pub type NodeId = u32;

/// One node of the search tree.
#[derive(Clone, Debug)]
pub struct Node<G: Game> {
    /// Game state at this node.
    pub state: G,
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// Move that led from the parent to this node; `None` for the root.
    pub mv: Option<G::Move>,
    /// Expanded children.
    pub children: Vec<NodeId>,
    /// Legal moves not yet expanded into children.
    pub untried: MoveBuf<G::Move>,
    /// Number of simulations that have passed through this node.
    pub visits: u64,
    /// Accumulated reward for the player who moved into this node
    /// (draws contribute ½).
    pub wins: f64,
    /// Distance from the root.
    pub depth: u32,
}

impl<G: Game> Node<G> {
    fn new(state: G, parent: Option<NodeId>, mv: Option<G::Move>, depth: u32) -> Self {
        let mut untried = MoveBuf::new();
        state.legal_moves(&mut untried);
        Node {
            state,
            parent,
            mv,
            children: Vec::new(),
            untried,
            visits: 0,
            wins: 0.0,
            depth,
        }
    }

    /// Whether every legal move has been expanded.
    #[inline]
    pub fn fully_expanded(&self) -> bool {
        self.untried.is_empty()
    }

    /// Whether the node's state is terminal (no legal moves at creation).
    #[inline]
    pub fn is_terminal(&self) -> bool {
        self.untried.is_empty() && self.children.is_empty()
    }

    /// Mean reward of this node (½ when unvisited).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.visits == 0 {
            0.5
        } else {
            self.wins / self.visits as f64
        }
    }
}

/// Aggregated statistics for one root move — the unit merged across trees
/// by root/block/multi-GPU parallelism ("the root node has to be updated by
/// summing up results from all other trees", paper §II.4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RootStat<M> {
    /// The move.
    pub mv: M,
    /// Total simulations through this move.
    pub visits: u64,
    /// Total reward for the root player.
    pub wins: f64,
}

/// An arena-allocated MCTS tree.
#[derive(Clone, Debug)]
pub struct SearchTree<G: Game> {
    nodes: Vec<Node<G>>,
    max_depth: u32,
}

impl<G: Game> SearchTree<G> {
    /// Creates a tree containing only the root.
    pub fn new(root_state: G) -> Self {
        SearchTree {
            nodes: vec![Node::new(root_state, None, None, 0)],
            max_depth: 0,
        }
    }

    /// The root node id (always 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Node count.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Deepest node created so far.
    #[inline]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<G> {
        &self.nodes[id as usize]
    }

    /// Mutable node access.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node<G> {
        &mut self.nodes[id as usize]
    }

    /// MCTS **selection** (paper §II.1): descends from the root choosing
    /// UCB-maximal children while nodes are fully expanded, returning the
    /// first node that still has untried moves (or a terminal node).
    pub fn select(&self, exploration_c: f64) -> NodeId {
        let mut id = self.root();
        loop {
            let node = self.node(id);
            if !node.fully_expanded() || node.children.is_empty() {
                return id;
            }
            let parent_visits = node.visits;
            let mut best = node.children[0];
            let mut best_value = f64::NEG_INFINITY;
            for &child in &node.children {
                let c = self.node(child);
                let value = ucb1(parent_visits, c.visits, c.wins, exploration_c);
                if value > best_value {
                    best_value = value;
                    best = child;
                }
            }
            id = best;
        }
    }

    /// MCTS **expansion** (paper §II.2): removes one random untried move of
    /// `id`, creates the child node and returns its id. Adding one node per
    /// iteration, as the paper does.
    ///
    /// # Panics
    /// Panics if `id` has no untried moves.
    pub fn expand<R: Rng64>(&mut self, id: NodeId, rng: &mut R) -> NodeId {
        let child_id = self.nodes.len() as NodeId;
        let (state, depth) = {
            let node = self.node_mut(id);
            assert!(!node.untried.is_empty(), "expand on fully expanded node");
            let pick = rng.next_below(node.untried.len() as u32) as usize;
            let mv = node.untried.swap_remove(pick);
            let mut state = node.state;
            state.apply(mv);
            node.children.push(child_id);
            let depth = node.depth + 1;
            self.nodes.push(Node::new(state, Some(id), Some(mv), depth));
            (state, depth)
        };
        let _ = state;
        self.max_depth = self.max_depth.max(depth);
        child_id
    }

    /// MCTS **backpropagation** (paper §II.4) of a batch of simulations.
    ///
    /// `count` simulations were run from `from`; `wins_p1` of them were won
    /// by P1 (draws counted ½). Every ancestor's `visits` grows by `count`
    /// and its `wins` by the reward of the player who moved into it.
    pub fn backprop(&mut self, from: NodeId, wins_p1: f64, count: u64) {
        debug_assert!(wins_p1 >= 0.0 && wins_p1 <= count as f64);
        let mut id = Some(from);
        while let Some(cur) = id {
            let parent = self.node(cur).parent;
            let reward = match parent {
                // Perspective: the player who moved into `cur`.
                Some(p) => match self.node(p).state.to_move() {
                    Player::P1 => wins_p1,
                    Player::P2 => count as f64 - wins_p1,
                },
                // The root has no mover; only visits matter there.
                None => 0.0,
            };
            let node = self.node_mut(cur);
            node.visits += count;
            node.wins += reward;
            id = parent;
        }
    }

    /// Statistics of the root's children, in expansion order. `wins` is
    /// expressed for the **root player** (the side to move at the root), so
    /// stats from different trees over the same position merge by addition.
    pub fn root_stats(&self) -> Vec<RootStat<G::Move>> {
        let root_player = self.node(self.root()).state.to_move();
        self.node(self.root())
            .children
            .iter()
            .map(|&c| {
                let n = self.node(c);
                // `n.wins` is reward for the mover into `c`, which IS the
                // root player for depth-1 children.
                debug_assert_eq!(n.depth, 1);
                let _ = root_player;
                RootStat {
                    mv: n.mv.expect("non-root node has a move"),
                    visits: n.visits,
                    wins: n.wins,
                }
            })
            .collect()
    }

    /// Chooses a move from this tree's root statistics.
    pub fn best_move(&self, rule: FinalMoveRule) -> Option<G::Move> {
        best_from_stats(&self.root_stats(), rule)
    }

    /// Extracts the subtree rooted at `id` as a new tree whose root is that
    /// node (statistics preserved, depths rebased). This is the *tree
    /// reuse* operation: after playing a move, the played child's subtree
    /// carries over to the next search instead of starting cold.
    pub fn extract_subtree(&self, id: NodeId) -> SearchTree<G> {
        let src_root = self.node(id);
        let mut out = SearchTree::new(src_root.state);
        // Copy the root's statistics and expansion state.
        {
            let root = out.node_mut(0);
            root.visits = src_root.visits;
            root.wins = src_root.wins;
            root.untried = src_root.untried;
            root.children.clear();
        }
        // Breadth-first copy with an explicit (source, dest) queue.
        let mut queue: Vec<(NodeId, NodeId)> = vec![(id, 0)];
        let mut head = 0;
        while head < queue.len() {
            let (src_id, dst_id) = queue[head];
            head += 1;
            let children = self.node(src_id).children.clone();
            for src_child in children {
                let src = self.node(src_child);
                let dst_child = out.nodes.len() as NodeId;
                let depth = out.node(dst_id).depth + 1;
                out.nodes.push(Node {
                    state: src.state,
                    parent: Some(dst_id),
                    mv: src.mv,
                    children: Vec::new(),
                    untried: src.untried,
                    visits: src.visits,
                    wins: src.wins,
                    depth,
                });
                out.node_mut(dst_id).children.push(dst_child);
                out.max_depth = out.max_depth.max(depth);
                queue.push((src_child, dst_child));
            }
        }
        out
    }

    /// Finds the most-visited node whose state equals `state`, searching at
    /// most `max_depth` plies below the root. Used by tree reuse to locate
    /// the position reached after our move and the opponent's reply.
    pub fn find_state(&self, state: &G, max_depth: u32) -> Option<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&id| {
                let n = self.node(id);
                n.depth <= max_depth && n.state == *state
            })
            .max_by_key(|&id| self.node(id).visits)
    }
}

/// Chooses a move from (possibly merged) root statistics.
pub fn best_from_stats<M: Copy>(stats: &[RootStat<M>], rule: FinalMoveRule) -> Option<M> {
    if stats.is_empty() {
        return None;
    }
    let best = match rule {
        FinalMoveRule::RobustChild => stats
            .iter()
            .max_by_key(|s| s.visits)
            .expect("non-empty stats"),
        FinalMoveRule::MaxChild => stats
            .iter()
            .max_by(|a, b| {
                // Unvisited moves score ½, matching `Node::mean`: an
                // unsampled move is unknown, not lost.
                let ma = if a.visits == 0 {
                    0.5
                } else {
                    a.wins / a.visits as f64
                };
                let mb = if b.visits == 0 {
                    0.5
                } else {
                    b.wins / b.visits as f64
                };
                ma.partial_cmp(&mb).expect("finite means")
            })
            .expect("non-empty stats"),
    };
    Some(best.mv)
}

/// Merges root statistics from several trees over the *same* position by
/// summing per-move visits and wins — the root-parallel merge rule
/// (paper §II.4).
pub fn merge_root_stats<M: Copy + Eq>(trees: &[Vec<RootStat<M>>]) -> Vec<RootStat<M>> {
    let mut merged: Vec<RootStat<M>> = Vec::new();
    for stats in trees {
        for s in stats {
            match merged.iter_mut().find(|m| m.mv == s.mv) {
                Some(m) => {
                    m.visits += s.visits;
                    m.wins += s.wins;
                }
                None => merged.push(*s),
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_util::Xoshiro256pp;

    #[test]
    fn new_tree_has_untried_root_moves() {
        let t = SearchTree::new(Reversi::initial());
        assert_eq!(t.len(), 1);
        assert_eq!(t.node(t.root()).untried.len(), 4);
        assert!(!t.node(t.root()).fully_expanded());
        assert_eq!(t.max_depth(), 0);
    }

    #[test]
    fn select_returns_root_until_fully_expanded() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..4 {
            assert_eq!(t.select(1.4), t.root());
            let child = t.expand(t.root(), &mut rng);
            t.backprop(child, 1.0, 1);
        }
        // Now fully expanded: selection must descend to a child.
        let picked = t.select(1.4);
        assert_ne!(picked, t.root());
        assert_eq!(t.node(picked).depth, 1);
    }

    #[test]
    fn expand_consumes_untried_and_links_child() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(2);
        let c = t.expand(t.root(), &mut rng);
        assert_eq!(t.len(), 2);
        assert_eq!(t.node(t.root()).untried.len(), 3);
        assert_eq!(t.node(t.root()).children, vec![c]);
        assert_eq!(t.node(c).parent, Some(t.root()));
        assert_eq!(t.node(c).depth, 1);
        assert!(t.node(c).mv.is_some());
        assert_eq!(t.max_depth(), 1);
    }

    #[test]
    fn backprop_updates_whole_path_with_perspectives() {
        // Reversi root: P1 to move. Child: P2 to move. Grandchild: P1.
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(3);
        let c = t.expand(t.root(), &mut rng);
        let gc = t.expand(c, &mut rng);
        // 10 simulations, 7 won by P1.
        t.backprop(gc, 7.0, 10);
        assert_eq!(t.node(t.root()).visits, 10);
        assert_eq!(t.node(c).visits, 10);
        assert_eq!(t.node(gc).visits, 10);
        // Mover into c is P1 (root player) -> wins = 7.
        assert_eq!(t.node(c).wins, 7.0);
        // Mover into gc is P2 -> wins = 3.
        assert_eq!(t.node(gc).wins, 3.0);
    }

    #[test]
    fn root_stats_and_robust_child() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(4);
        let a = t.expand(t.root(), &mut rng);
        let b = t.expand(t.root(), &mut rng);
        t.backprop(a, 1.0, 2);
        t.backprop(b, 5.0, 6);
        let stats = t.root_stats();
        assert_eq!(stats.len(), 2);
        let best = t.best_move(FinalMoveRule::RobustChild).unwrap();
        assert_eq!(best, t.node(b).mv.unwrap(), "robust child = most visited");
        // MaxChild picks the higher mean: a: 1/2=0.5, b: 5/6≈0.83 -> still b.
        assert_eq!(t.best_move(FinalMoveRule::MaxChild).unwrap(), best);
    }

    #[test]
    fn max_child_differs_from_robust_child_when_means_invert() {
        let stats = vec![
            RootStat {
                mv: 0u8,
                visits: 100,
                wins: 55.0,
            }, // mean .55, most visited
            RootStat {
                mv: 1u8,
                visits: 10,
                wins: 9.0,
            }, // mean .9
        ];
        assert_eq!(best_from_stats(&stats, FinalMoveRule::RobustChild), Some(0));
        assert_eq!(best_from_stats(&stats, FinalMoveRule::MaxChild), Some(1));
    }

    #[test]
    fn max_child_scores_unvisited_moves_half_like_node_mean() {
        // mv 0 has a measured mean of 0.3; mv 1 was never sampled. Under
        // the old 0.0 convention MaxChild would pick mv 0; with the ½
        // convention (matching `Node::mean`) the unknown move wins.
        let stats = vec![
            RootStat {
                mv: 0u8,
                visits: 10,
                wins: 3.0,
            },
            RootStat {
                mv: 1u8,
                visits: 0,
                wins: 0.0,
            },
        ];
        assert_eq!(best_from_stats(&stats, FinalMoveRule::MaxChild), Some(1));
        // RobustChild is unaffected: it still prefers the visited move.
        assert_eq!(best_from_stats(&stats, FinalMoveRule::RobustChild), Some(0));
    }

    #[test]
    fn merge_root_stats_sums_matching_moves() {
        let t1 = vec![
            RootStat {
                mv: 3u8,
                visits: 10,
                wins: 6.0,
            },
            RootStat {
                mv: 5u8,
                visits: 4,
                wins: 1.0,
            },
        ];
        let t2 = vec![
            RootStat {
                mv: 5u8,
                visits: 6,
                wins: 4.0,
            },
            RootStat {
                mv: 7u8,
                visits: 1,
                wins: 1.0,
            },
        ];
        let merged = merge_root_stats(&[t1, t2]);
        assert_eq!(merged.len(), 3);
        let five = merged.iter().find(|s| s.mv == 5).unwrap();
        assert_eq!(five.visits, 10);
        assert_eq!(five.wins, 5.0);
    }

    #[test]
    fn terminal_nodes_are_recognised() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let t = SearchTree::new(s);
        assert!(t.node(t.root()).is_terminal());
        assert_eq!(t.select(1.4), t.root());
    }

    #[test]
    fn empty_tree_has_no_best_move() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let t = SearchTree::new(s);
        assert_eq!(t.best_move(FinalMoveRule::RobustChild), None);
    }

    #[test]
    #[should_panic(expected = "fully expanded")]
    fn expanding_exhausted_node_panics() {
        let mut t = SearchTree::new(TicTacToe::initial());
        let mut rng = Xoshiro256pp::new(5);
        for _ in 0..10 {
            t.expand(t.root(), &mut rng);
        }
    }
}
