//! The structure-of-arrays search tree.
//!
//! Node attributes live in dense parallel arrays indexed by `NodeId` — no
//! `Rc`/`RefCell` graphs, no per-node heap boxes. The hot UCB fields
//! (`visits`, `wins`) sit in their own arrays so a selection walk touches
//! cache lines holding *only* the numbers it compares; cold attributes
//! (state, parent, move, depth) stay out of the way in separate arrays.
//! Children are stored as contiguous `(first, len)` ranges in one shared
//! slab: each node's range is reserved at creation with capacity for every
//! legal move, so expansion appends in place and **never allocates in the
//! hot loop**. Untried moves use the same scheme in a second slab, which
//! evicts the old 128-slot inline move buffer (~1 KiB per node) from the
//! node representation entirely.
//!
//! The tree stores the *game state in every node* (all bundled games are
//! tiny `Copy` bitboards), which keeps selection free of move
//! re-application bugs at the cost of a few bytes per node.
//!
//! Reward convention: `wins[id]` accumulates reward **for the player who
//! made the move leading into the node** (i.e. the parent's side to move).
//! With that convention, selection at any node maximises UCB over its
//! children using the children's own `wins` directly.
//!
//! Every operation is ordered exactly as the original array-of-structs
//! layout ordered it (child iteration in push order, first-wins tie-breaks,
//! `swap_remove` for untried moves, breadth-first subtree copies), so the
//! rewrite is a pure layout change: same seed ⇒ bit-identical results. The
//! original layout survives in [`crate::tree_aos`] as the equivalence
//! oracle and benchmark baseline.

use crate::config::FinalMoveRule;
use crate::ucb::ucb1_with_ln;
use pmcts_games::{Game, MoveBuf, Player};
use pmcts_util::Rng64;

/// Index of a node within its [`SearchTree`]. The root is always 0.
pub type NodeId = u32;

/// Sentinel for "no parent" in the dense parent array.
const NO_NODE: NodeId = NodeId::MAX;

/// Aggregated statistics for one root move — the unit merged across trees
/// by root/block/multi-GPU parallelism ("the root node has to be updated by
/// summing up results from all other trees", paper §II.4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RootStat<M> {
    /// The move.
    pub mv: M,
    /// Total simulations through this move.
    pub visits: u64,
    /// Total reward for the root player.
    pub wins: f64,
}

/// A structure-of-arrays MCTS tree.
///
/// All per-node attribute vectors are indexed by [`NodeId`] and always have
/// identical lengths. `child_slab` / `move_slab` hold every node's children
/// and untried moves as contiguous ranges addressed by the `(first, len)`
/// columns.
#[derive(Clone, Debug)]
pub struct SearchTree<G: Game> {
    // Hot columns: everything a UCB selection walk reads.
    visits: Vec<u64>,
    wins: Vec<f64>,
    child_first: Vec<u32>,
    child_len: Vec<u16>,
    untried_len: Vec<u16>,
    // Cold columns.
    untried_first: Vec<u32>,
    parent: Vec<NodeId>,
    mv: Vec<G::Move>,
    depth: Vec<u32>,
    state: Vec<G>,
    // Shared slabs. A node's child range is reserved at creation with
    // capacity for all of its legal moves, so `child_len` grows in place.
    child_slab: Vec<NodeId>,
    move_slab: Vec<G::Move>,
    max_depth: u32,
}

impl<G: Game> SearchTree<G> {
    /// Creates a tree containing only the root.
    pub fn new(root_state: G) -> Self {
        let mut tree = SearchTree {
            visits: Vec::new(),
            wins: Vec::new(),
            child_first: Vec::new(),
            child_len: Vec::new(),
            untried_len: Vec::new(),
            untried_first: Vec::new(),
            parent: Vec::new(),
            mv: Vec::new(),
            depth: Vec::new(),
            state: Vec::new(),
            child_slab: Vec::new(),
            move_slab: Vec::new(),
            max_depth: 0,
        };
        tree.push_node(root_state, NO_NODE, G::Move::default(), 0);
        tree
    }

    /// Appends a fresh node, reserving slab ranges sized to its legal-move
    /// count so later expansions of this node never reallocate.
    fn push_node(&mut self, state: G, parent: NodeId, mv: G::Move, depth: u32) -> NodeId {
        let id = self.visits.len() as NodeId;
        let mut legal = MoveBuf::new();
        state.legal_moves(&mut legal);
        let n = legal.len();
        let child_first = self.child_slab.len() as u32;
        self.child_slab.resize(self.child_slab.len() + n, NO_NODE);
        let untried_first = self.move_slab.len() as u32;
        self.move_slab.extend_from_slice(legal.as_slice());
        self.visits.push(0);
        self.wins.push(0.0);
        self.child_first.push(child_first);
        self.child_len.push(0);
        self.untried_len.push(n as u16);
        self.untried_first.push(untried_first);
        self.parent.push(parent);
        self.mv.push(mv);
        self.depth.push(depth);
        self.state.push(state);
        self.max_depth = self.max_depth.max(depth);
        id
    }

    /// Copies node `src_id` of `src` (statistics, untried moves, state) as a
    /// new child of `parent`, rebasing its depth. Children are linked later
    /// as the copy walk reaches them; the reserved capacity is the node's
    /// full legal-move count (`untried + children`).
    fn copy_node(&mut self, src: &SearchTree<G>, src_id: NodeId, parent: NodeId) -> NodeId {
        let s = src_id as usize;
        let id = self.visits.len() as NodeId;
        let untried = src.untried_len[s] as usize;
        let cap = untried + src.child_len[s] as usize;
        let child_first = self.child_slab.len() as u32;
        self.child_slab.resize(self.child_slab.len() + cap, NO_NODE);
        let untried_first = self.move_slab.len() as u32;
        let sb = src.untried_first[s] as usize;
        self.move_slab
            .extend_from_slice(&src.move_slab[sb..sb + untried]);
        let depth = self.depth[parent as usize] + 1;
        self.visits.push(src.visits[s]);
        self.wins.push(src.wins[s]);
        self.child_first.push(child_first);
        self.child_len.push(0);
        self.untried_len.push(untried as u16);
        self.untried_first.push(untried_first);
        self.parent.push(parent);
        self.mv.push(src.mv[s]);
        self.depth.push(depth);
        self.state.push(src.state[s]);
        let slot =
            self.child_first[parent as usize] as usize + self.child_len[parent as usize] as usize;
        self.child_slab[slot] = id;
        self.child_len[parent as usize] += 1;
        self.max_depth = self.max_depth.max(depth);
        id
    }

    /// The root node id (always 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Node count.
    #[inline]
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// Whether the tree holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.visits.len() <= 1
    }

    /// Deepest node created so far.
    #[inline]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Number of simulations that have passed through `id`.
    #[inline]
    pub fn visits(&self, id: NodeId) -> u64 {
        self.visits[id as usize]
    }

    /// Accumulated reward for the player who moved into `id`.
    #[inline]
    pub fn wins(&self, id: NodeId) -> f64 {
        self.wins[id as usize]
    }

    /// Distance from the root.
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depth[id as usize]
    }

    /// Parent of `id`; `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.parent[id as usize];
        if p == NO_NODE {
            None
        } else {
            Some(p)
        }
    }

    /// Move that led from the parent into `id`; `None` for the root.
    #[inline]
    pub fn move_into(&self, id: NodeId) -> Option<G::Move> {
        if self.parent[id as usize] == NO_NODE {
            None
        } else {
            Some(self.mv[id as usize])
        }
    }

    /// Game state at `id`.
    #[inline]
    pub fn state(&self, id: NodeId) -> &G {
        &self.state[id as usize]
    }

    /// Expanded children of `id`, in expansion order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let first = self.child_first[id as usize] as usize;
        &self.child_slab[first..first + self.child_len[id as usize] as usize]
    }

    /// Legal moves of `id` not yet expanded into children.
    #[inline]
    pub fn untried(&self, id: NodeId) -> &[G::Move] {
        let first = self.untried_first[id as usize] as usize;
        &self.move_slab[first..first + self.untried_len[id as usize] as usize]
    }

    /// Number of untried moves at `id`.
    #[inline]
    pub fn untried_len(&self, id: NodeId) -> usize {
        self.untried_len[id as usize] as usize
    }

    /// Whether every legal move of `id` has been expanded.
    #[inline]
    pub fn fully_expanded(&self, id: NodeId) -> bool {
        self.untried_len[id as usize] == 0
    }

    /// Whether `id`'s state is terminal (no legal moves at creation).
    #[inline]
    pub fn is_terminal(&self, id: NodeId) -> bool {
        self.untried_len[id as usize] == 0 && self.child_len[id as usize] == 0
    }

    /// Mean reward of `id` (½ when unvisited).
    #[inline]
    pub fn mean(&self, id: NodeId) -> f64 {
        let visits = self.visits[id as usize];
        if visits == 0 {
            0.5
        } else {
            self.wins[id as usize] / visits as f64
        }
    }

    /// Adds `n` to `id`'s visit count without touching ancestors. Used by
    /// tree parallelism for virtual loss marking.
    #[inline]
    pub fn add_visits(&mut self, id: NodeId, n: u64) {
        self.visits[id as usize] += n;
    }

    /// Removes `n` from `id`'s visit count (virtual loss unmarking).
    #[inline]
    pub fn sub_visits(&mut self, id: NodeId, n: u64) {
        self.visits[id as usize] -= n;
    }

    /// MCTS **selection** (paper §II.1): descends from the root choosing
    /// UCB-maximal children while nodes are fully expanded, returning the
    /// first node that still has untried moves (or a terminal node).
    ///
    /// The walk reads one contiguous child-id slice per level and hoists
    /// `ln(parent_visits)` out of the per-child loop ([`ucb1_with_ln`]).
    pub fn select(&self, exploration_c: f64) -> NodeId {
        let mut id = self.root();
        loop {
            let i = id as usize;
            let n_children = self.child_len[i] as usize;
            if self.untried_len[i] != 0 || n_children == 0 {
                return id;
            }
            let first = self.child_first[i] as usize;
            let children = &self.child_slab[first..first + n_children];
            let ln_parent = (self.visits[i].max(1) as f64).ln();
            let mut best = children[0];
            let mut best_value = f64::NEG_INFINITY;
            for &child in children {
                let c = child as usize;
                let value = ucb1_with_ln(ln_parent, self.visits[c], self.wins[c], exploration_c);
                if value > best_value {
                    best_value = value;
                    best = child;
                }
            }
            id = best;
        }
    }

    /// MCTS **expansion** (paper §II.2): removes one random untried move of
    /// `id`, creates the child node and returns its id. Adding one node per
    /// iteration, as the paper does.
    ///
    /// # Panics
    /// Panics if `id` has no untried moves.
    pub fn expand<R: Rng64>(&mut self, id: NodeId, rng: &mut R) -> NodeId {
        let n = self.untried_len[id as usize];
        assert!(n != 0, "expand on fully expanded node");
        let pick = rng.next_below(n as u32);
        self.expand_with_pick(id, pick)
    }

    /// Expansion with the untried-move index already drawn. This is the
    /// seam that lets pool-parallel searchers draw all of an iteration's
    /// picks from the shared RNG sequentially (preserving the exact draw
    /// order of the sequential schedule) and then expand trees in parallel.
    ///
    /// # Panics
    /// Panics if `id` has no untried moves or `pick` is out of range.
    pub fn expand_with_pick(&mut self, id: NodeId, pick: u32) -> NodeId {
        let i = id as usize;
        let n = self.untried_len[i] as usize;
        assert!(n != 0, "expand on fully expanded node");
        let pick = pick as usize;
        assert!(pick < n, "expansion pick out of range");
        let base = self.untried_first[i] as usize;
        // Same removal order as `ArrayVec::swap_remove` in the original
        // layout: the last untried move fills the vacated slot.
        let mv = self.move_slab[base + pick];
        self.move_slab[base + pick] = self.move_slab[base + n - 1];
        self.untried_len[i] = (n - 1) as u16;
        let mut state = self.state[i];
        state.apply(mv);
        let depth = self.depth[i] + 1;
        let child_id = self.visits.len() as NodeId;
        let slot = self.child_first[i] as usize + self.child_len[i] as usize;
        self.child_slab[slot] = child_id;
        self.child_len[i] += 1;
        self.push_node(state, id, mv, depth)
    }

    /// MCTS **backpropagation** (paper §II.4) of a batch of simulations.
    ///
    /// `count` simulations were run from `from`; `wins_p1` of them were won
    /// by P1 (draws counted ½). Every ancestor's `visits` grows by `count`
    /// and its `wins` by the reward of the player who moved into it.
    pub fn backprop(&mut self, from: NodeId, wins_p1: f64, count: u64) {
        debug_assert!(wins_p1 >= 0.0 && wins_p1 <= count as f64);
        let mut id = from;
        loop {
            let parent = self.parent[id as usize];
            let reward = if parent == NO_NODE {
                // The root has no mover; only visits matter there.
                0.0
            } else {
                // Perspective: the player who moved into `id`.
                match self.state[parent as usize].to_move() {
                    Player::P1 => wins_p1,
                    Player::P2 => count as f64 - wins_p1,
                }
            };
            self.visits[id as usize] += count;
            self.wins[id as usize] += reward;
            if parent == NO_NODE {
                return;
            }
            id = parent;
        }
    }

    /// Statistics of the root's children, in expansion order. `wins` is
    /// expressed for the **root player** (the side to move at the root), so
    /// stats from different trees over the same position merge by addition.
    pub fn root_stats(&self) -> Vec<RootStat<G::Move>> {
        self.children(self.root())
            .iter()
            .map(|&c| {
                // `wins[c]` is reward for the mover into `c`, which IS the
                // root player for depth-1 children.
                debug_assert_eq!(self.depth[c as usize], 1);
                RootStat {
                    mv: self.mv[c as usize],
                    visits: self.visits[c as usize],
                    wins: self.wins[c as usize],
                }
            })
            .collect()
    }

    /// Chooses a move from this tree's root statistics.
    pub fn best_move(&self, rule: FinalMoveRule) -> Option<G::Move> {
        best_from_stats(&self.root_stats(), rule)
    }

    /// Extracts the subtree rooted at `id` as a new tree whose root is that
    /// node (statistics preserved, depths rebased). This is the *tree
    /// reuse* operation: after playing a move, the played child's subtree
    /// carries over to the next search instead of starting cold.
    ///
    /// The copy is compacting: surviving nodes are renumbered breadth-first
    /// into fresh dense arrays and fresh slabs, so a long game never drags
    /// dead siblings' slab ranges along.
    pub fn extract_subtree(&self, id: NodeId) -> SearchTree<G> {
        let s = id as usize;
        let mut out = SearchTree::new(self.state[s]);
        // Copy the root's statistics and expansion state. The fresh root's
        // untried range was reserved for the full legal-move count, which
        // bounds the source's remaining untried moves, so the copy fits.
        out.visits[0] = self.visits[s];
        out.wins[0] = self.wins[s];
        let untried = self.untried_len[s] as usize;
        let sb = self.untried_first[s] as usize;
        let db = out.untried_first[0] as usize;
        out.move_slab[db..db + untried].copy_from_slice(&self.move_slab[sb..sb + untried]);
        out.untried_len[0] = untried as u16;
        // Breadth-first copy with an explicit (source, dest) queue — the
        // same visit order as the original layout, so surviving nodes get
        // identical ids.
        let mut queue: Vec<(NodeId, NodeId)> = vec![(id, 0)];
        let mut head = 0;
        while head < queue.len() {
            let (src_id, dst_id) = queue[head];
            head += 1;
            let first = self.child_first[src_id as usize] as usize;
            let n_children = self.child_len[src_id as usize] as usize;
            for k in 0..n_children {
                let src_child = self.child_slab[first + k];
                let dst_child = out.copy_node(self, src_child, dst_id);
                queue.push((src_child, dst_child));
            }
        }
        out
    }

    /// Finds the most-visited node whose state equals `state`, searching at
    /// most `max_depth` plies below the root. Used by tree reuse to locate
    /// the position reached after our move and the opponent's reply.
    pub fn find_state(&self, state: &G, max_depth: u32) -> Option<NodeId> {
        (0..self.len() as NodeId)
            .filter(|&id| self.depth[id as usize] <= max_depth && self.state[id as usize] == *state)
            .max_by_key(|&id| self.visits[id as usize])
    }
}

/// Chooses a move from (possibly merged) root statistics.
pub fn best_from_stats<M: Copy>(stats: &[RootStat<M>], rule: FinalMoveRule) -> Option<M> {
    if stats.is_empty() {
        return None;
    }
    let best = match rule {
        FinalMoveRule::RobustChild => stats
            .iter()
            .max_by_key(|s| s.visits)
            .expect("non-empty stats"),
        FinalMoveRule::MaxChild => stats
            .iter()
            .max_by(|a, b| {
                // Unvisited moves score ½, matching `SearchTree::mean`: an
                // unsampled move is unknown, not lost.
                let ma = if a.visits == 0 {
                    0.5
                } else {
                    a.wins / a.visits as f64
                };
                let mb = if b.visits == 0 {
                    0.5
                } else {
                    b.wins / b.visits as f64
                };
                ma.partial_cmp(&mb).expect("finite means")
            })
            .expect("non-empty stats"),
    };
    Some(best.mv)
}

/// Merges root statistics from several trees over the *same* position by
/// summing per-move visits and wins — the root-parallel merge rule
/// (paper §II.4).
pub fn merge_root_stats<M: Copy + Eq>(trees: &[Vec<RootStat<M>>]) -> Vec<RootStat<M>> {
    let mut merged: Vec<RootStat<M>> = Vec::new();
    for stats in trees {
        for s in stats {
            match merged.iter_mut().find(|m| m.mv == s.mv) {
                Some(m) => {
                    m.visits += s.visits;
                    m.wins += s.wins;
                }
                None => merged.push(*s),
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_util::Xoshiro256pp;

    #[test]
    fn new_tree_has_untried_root_moves() {
        let t = SearchTree::new(Reversi::initial());
        assert_eq!(t.len(), 1);
        assert_eq!(t.untried_len(t.root()), 4);
        assert!(!t.fully_expanded(t.root()));
        assert_eq!(t.max_depth(), 0);
    }

    #[test]
    fn select_returns_root_until_fully_expanded() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..4 {
            assert_eq!(t.select(1.4), t.root());
            let child = t.expand(t.root(), &mut rng);
            t.backprop(child, 1.0, 1);
        }
        // Now fully expanded: selection must descend to a child.
        let picked = t.select(1.4);
        assert_ne!(picked, t.root());
        assert_eq!(t.depth(picked), 1);
    }

    #[test]
    fn expand_consumes_untried_and_links_child() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(2);
        let c = t.expand(t.root(), &mut rng);
        assert_eq!(t.len(), 2);
        assert_eq!(t.untried_len(t.root()), 3);
        assert_eq!(t.children(t.root()), &[c]);
        assert_eq!(t.parent(c), Some(t.root()));
        assert_eq!(t.depth(c), 1);
        assert!(t.move_into(c).is_some());
        assert_eq!(t.max_depth(), 1);
    }

    #[test]
    fn expansion_never_grows_a_reserved_child_range() {
        // Fully expand the root and one child: every child id must land in
        // the range reserved at node creation (no reallocation, ranges stay
        // contiguous and disjoint).
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(9);
        let total = t.untried_len(t.root());
        for _ in 0..total {
            t.expand(t.root(), &mut rng);
        }
        assert!(t.fully_expanded(t.root()));
        assert_eq!(t.children(t.root()).len(), total);
        let first_child = t.children(t.root())[0];
        let n = t.untried_len(first_child);
        for _ in 0..n {
            t.expand(first_child, &mut rng);
        }
        assert_eq!(t.children(first_child).len(), n);
        // All ids distinct and in-bounds.
        let mut seen: Vec<NodeId> = t
            .children(t.root())
            .iter()
            .chain(t.children(first_child))
            .copied()
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total + n);
        assert!(seen.iter().all(|&id| (id as usize) < t.len()));
    }

    #[test]
    fn backprop_updates_whole_path_with_perspectives() {
        // Reversi root: P1 to move. Child: P2 to move. Grandchild: P1.
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(3);
        let c = t.expand(t.root(), &mut rng);
        let gc = t.expand(c, &mut rng);
        // 10 simulations, 7 won by P1.
        t.backprop(gc, 7.0, 10);
        assert_eq!(t.visits(t.root()), 10);
        assert_eq!(t.visits(c), 10);
        assert_eq!(t.visits(gc), 10);
        // Mover into c is P1 (root player) -> wins = 7.
        assert_eq!(t.wins(c), 7.0);
        // Mover into gc is P2 -> wins = 3.
        assert_eq!(t.wins(gc), 3.0);
    }

    #[test]
    fn root_stats_and_robust_child() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(4);
        let a = t.expand(t.root(), &mut rng);
        let b = t.expand(t.root(), &mut rng);
        t.backprop(a, 1.0, 2);
        t.backprop(b, 5.0, 6);
        let stats = t.root_stats();
        assert_eq!(stats.len(), 2);
        let best = t.best_move(FinalMoveRule::RobustChild).unwrap();
        assert_eq!(best, t.move_into(b).unwrap(), "robust child = most visited");
        // MaxChild picks the higher mean: a: 1/2=0.5, b: 5/6≈0.83 -> still b.
        assert_eq!(t.best_move(FinalMoveRule::MaxChild).unwrap(), best);
    }

    #[test]
    fn max_child_differs_from_robust_child_when_means_invert() {
        let stats = vec![
            RootStat {
                mv: 0u8,
                visits: 100,
                wins: 55.0,
            }, // mean .55, most visited
            RootStat {
                mv: 1u8,
                visits: 10,
                wins: 9.0,
            }, // mean .9
        ];
        assert_eq!(best_from_stats(&stats, FinalMoveRule::RobustChild), Some(0));
        assert_eq!(best_from_stats(&stats, FinalMoveRule::MaxChild), Some(1));
    }

    #[test]
    fn max_child_scores_unvisited_moves_half_like_node_mean() {
        // mv 0 has a measured mean of 0.3; mv 1 was never sampled. Under
        // the old 0.0 convention MaxChild would pick mv 0; with the ½
        // convention (matching `SearchTree::mean`) the unknown move wins.
        let stats = vec![
            RootStat {
                mv: 0u8,
                visits: 10,
                wins: 3.0,
            },
            RootStat {
                mv: 1u8,
                visits: 0,
                wins: 0.0,
            },
        ];
        assert_eq!(best_from_stats(&stats, FinalMoveRule::MaxChild), Some(1));
        // RobustChild is unaffected: it still prefers the visited move.
        assert_eq!(best_from_stats(&stats, FinalMoveRule::RobustChild), Some(0));
    }

    #[test]
    fn merge_root_stats_sums_matching_moves() {
        let t1 = vec![
            RootStat {
                mv: 3u8,
                visits: 10,
                wins: 6.0,
            },
            RootStat {
                mv: 5u8,
                visits: 4,
                wins: 1.0,
            },
        ];
        let t2 = vec![
            RootStat {
                mv: 5u8,
                visits: 6,
                wins: 4.0,
            },
            RootStat {
                mv: 7u8,
                visits: 1,
                wins: 1.0,
            },
        ];
        let merged = merge_root_stats(&[t1, t2]);
        assert_eq!(merged.len(), 3);
        let five = merged.iter().find(|s| s.mv == 5).unwrap();
        assert_eq!(five.visits, 10);
        assert_eq!(five.wins, 5.0);
    }

    #[test]
    fn terminal_nodes_are_recognised() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let t = SearchTree::new(s);
        assert!(t.is_terminal(t.root()));
        assert_eq!(t.select(1.4), t.root());
    }

    #[test]
    fn empty_tree_has_no_best_move() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let t = SearchTree::new(s);
        assert_eq!(t.best_move(FinalMoveRule::RobustChild), None);
    }

    #[test]
    #[should_panic(expected = "fully expanded")]
    fn expanding_exhausted_node_panics() {
        let mut t = SearchTree::new(TicTacToe::initial());
        let mut rng = Xoshiro256pp::new(5);
        for _ in 0..10 {
            t.expand(t.root(), &mut rng);
        }
    }

    #[test]
    fn expand_with_pick_matches_rng_expand() {
        // `expand(rng)` must be exactly `expand_with_pick(rng draw)`.
        let mut a = SearchTree::new(Reversi::initial());
        let mut b = SearchTree::new(Reversi::initial());
        let mut rng_a = Xoshiro256pp::new(6);
        let mut rng_b = Xoshiro256pp::new(6);
        for _ in 0..4 {
            let ca = a.expand(a.root(), &mut rng_a);
            let pick = rng_b.next_below(b.untried_len(b.root()) as u32);
            let cb = b.expand_with_pick(b.root(), pick);
            assert_eq!(ca, cb);
            assert_eq!(a.move_into(ca), b.move_into(cb));
            assert_eq!(a.untried(a.root()), b.untried(b.root()));
        }
    }

    #[test]
    fn extract_subtree_compacts_and_preserves_stats() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(8);
        // Grow a small tree.
        for _ in 0..40 {
            let sel = t.select(1.4);
            let node = if !t.fully_expanded(sel) {
                t.expand(sel, &mut rng)
            } else {
                sel
            };
            t.backprop(node, 0.5, 1);
        }
        let child = t.children(t.root())[0];
        let sub = t.extract_subtree(child);
        assert_eq!(sub.visits(0), t.visits(child));
        assert_eq!(sub.wins(0).to_bits(), t.wins(child).to_bits());
        assert_eq!(sub.depth(0), 0);
        assert_eq!(sub.untried(0), t.untried(child));
        assert_eq!(sub.children(0).len(), t.children(child).len());
        // Compaction: the new slabs only hold surviving nodes' ranges.
        assert!(sub.len() < t.len());
    }
}
