//! The structure-of-arrays search tree.
//!
//! Node attributes live in dense parallel arrays indexed by `NodeId` — no
//! `Rc`/`RefCell` graphs, no per-node heap boxes. The hot UCB fields
//! (`visits`, `wins`) sit in their own arrays so a selection walk touches
//! cache lines holding *only* the numbers it compares; cold attributes
//! (state, parent, move, depth) stay out of the way in separate arrays.
//! Children are stored as contiguous `(first, len)` ranges in one shared
//! slab: each node's range is reserved at creation with capacity for every
//! legal move, so expansion appends in place and **never allocates in the
//! hot loop**. Untried moves use the same scheme in a second slab, which
//! evicts the old 128-slot inline move buffer (~1 KiB per node) from the
//! node representation entirely.
//!
//! The tree stores the *game state in every node* (all bundled games are
//! tiny `Copy` bitboards), which keeps selection free of move
//! re-application bugs at the cost of a few bytes per node.
//!
//! Reward convention: `wins[id]` accumulates reward **for the player who
//! made the move leading into the node** (i.e. the parent's side to move).
//! With that convention, selection at any node maximises UCB over its
//! children using the children's own `wins` directly.
//!
//! Every operation is ordered exactly as the original array-of-structs
//! layout ordered it (child iteration in push order, first-wins tie-breaks,
//! `swap_remove` for untried moves, breadth-first subtree copies), so the
//! rewrite is a pure layout change: same seed ⇒ bit-identical results. The
//! original layout survives in [`crate::tree_aos`] as the equivalence
//! oracle and benchmark baseline.

use crate::config::{FinalMoveRule, MctsConfig};
use crate::transposition::{TransStats, TransTable};
use crate::ucb::{ucb1_corrected_with_ln, ucb1_with_ln};
use pmcts_games::{Game, MoveBuf, Player};
use pmcts_util::Rng64;

/// Index of a node within its [`SearchTree`]. The root is always 0.
pub type NodeId = u32;

/// Sentinel for "no parent" in the dense parent array.
const NO_NODE: NodeId = NodeId::MAX;

/// Marks a recycled arena slot in the bounded tree's `lru_prev` column.
const FREED: NodeId = NodeId::MAX - 1;

/// Bounded-mode bookkeeping: the intrusive LRU list threaded through the
/// node arrays, the free lists that recycle arena slots and slab ranges,
/// and the transposition table (see the module docs and DESIGN.md §12).
#[derive(Clone, Debug)]
struct Bounded {
    /// Arena capacity: the node arrays never grow past this many slots.
    max_nodes: u32,
    /// Towards the head (more recently used); `FREED` marks free slots.
    lru_prev: Vec<NodeId>,
    /// Towards the tail (less recently used).
    lru_next: Vec<NodeId>,
    /// Most recently used live node.
    head: NodeId,
    /// Least recently used live node — the eviction end.
    tail: NodeId,
    /// Recycled arena slots (LIFO, deterministic).
    free_nodes: Vec<NodeId>,
    /// Recycled slab ranges bucketed by capacity: `free_ranges[c]` holds
    /// `(child_first, untried_first)` pairs of freed nodes whose reserved
    /// range held exactly `c` moves. Exact-fit reuse keeps ranges
    /// interchangeable without splitting.
    free_ranges: Vec<Vec<(u32, u32)>>,
    /// Nodes recycled so far.
    evictions: u64,
    /// Zobrist-keyed statistics recovery + re-root index.
    tt: TransTable,
}

impl Bounded {
    fn new(max_nodes: u32) -> Self {
        Bounded {
            max_nodes,
            lru_prev: Vec::with_capacity(max_nodes as usize),
            lru_next: Vec::with_capacity(max_nodes as usize),
            head: NO_NODE,
            tail: NO_NODE,
            free_nodes: Vec::new(),
            free_ranges: vec![Vec::new(); 129],
            evictions: 0,
            // 2× the node cap keeps the load factor low enough that
            // probe-run drops stay rare (see DESIGN.md §12 calibration).
            tt: TransTable::new(max_nodes as usize * 2),
        }
    }

    /// Links `id` in as the most recently used node.
    fn lru_push_head(&mut self, id: NodeId) {
        let i = id as usize;
        self.lru_prev[i] = NO_NODE;
        self.lru_next[i] = self.head;
        if self.head != NO_NODE {
            self.lru_prev[self.head as usize] = id;
        }
        self.head = id;
        if self.tail == NO_NODE {
            self.tail = id;
        }
    }

    /// Links `id` in as the least recently used node (used only by the
    /// breadth-first subtree copy, which visits parents before children).
    fn lru_push_tail(&mut self, id: NodeId) {
        let i = id as usize;
        self.lru_next[i] = NO_NODE;
        self.lru_prev[i] = self.tail;
        if self.tail != NO_NODE {
            self.lru_next[self.tail as usize] = id;
        }
        self.tail = id;
        if self.head == NO_NODE {
            self.head = id;
        }
    }

    /// Unlinks `id` from the LRU list.
    fn lru_unlink(&mut self, id: NodeId) {
        let i = id as usize;
        let (prev, next) = (self.lru_prev[i], self.lru_next[i]);
        debug_assert_ne!(prev, FREED, "unlink of a freed slot");
        if prev == NO_NODE {
            self.head = next;
        } else {
            self.lru_next[prev as usize] = next;
        }
        if next == NO_NODE {
            self.tail = prev;
        } else {
            self.lru_prev[next as usize] = prev;
        }
    }

    /// Moves `id` to the head (most recently used).
    #[inline]
    fn lru_touch(&mut self, id: NodeId) {
        if self.head == id {
            return;
        }
        self.lru_unlink(id);
        self.lru_push_head(id);
    }
}

/// Aggregated statistics for one root move — the unit merged across trees
/// by root/block/multi-GPU parallelism ("the root node has to be updated by
/// summing up results from all other trees", paper §II.4).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RootStat<M> {
    /// The move.
    pub mv: M,
    /// Total simulations through this move.
    pub visits: u64,
    /// Total reward for the root player.
    pub wins: f64,
}

/// A structure-of-arrays MCTS tree.
///
/// All per-node attribute vectors are indexed by [`NodeId`] and always have
/// identical lengths. `child_slab` / `move_slab` hold every node's children
/// and untried moves as contiguous ranges addressed by the `(first, len)`
/// columns.
#[derive(Clone, Debug)]
pub struct SearchTree<G: Game> {
    // Hot columns: everything a UCB selection walk reads.
    visits: Vec<u64>,
    wins: Vec<f64>,
    /// WU-UCT unobserved in-flight sample counts (`O_s` / `O_sa`): playouts
    /// dispatched through this node but not yet backpropagated. Zero except
    /// while a corrected searcher has a batch in flight; zero between moves.
    inflight: Vec<u32>,
    child_first: Vec<u32>,
    child_len: Vec<u16>,
    untried_len: Vec<u16>,
    // Cold columns.
    untried_first: Vec<u32>,
    parent: Vec<NodeId>,
    mv: Vec<G::Move>,
    depth: Vec<u32>,
    state: Vec<G>,
    // Shared slabs. A node's child range is reserved at creation with
    // capacity for all of its legal moves, so `child_len` grows in place.
    child_slab: Vec<NodeId>,
    move_slab: Vec<G::Move>,
    max_depth: u32,
    /// `Some` in capacity-capped mode (LRU recycling + transposition
    /// table); `None` reproduces the unbounded behaviour bit-for-bit.
    bounded: Option<Box<Bounded>>,
}

impl<G: Game> SearchTree<G> {
    fn empty(bounded: Option<Box<Bounded>>) -> Self {
        SearchTree {
            visits: Vec::new(),
            wins: Vec::new(),
            inflight: Vec::new(),
            child_first: Vec::new(),
            child_len: Vec::new(),
            untried_len: Vec::new(),
            untried_first: Vec::new(),
            parent: Vec::new(),
            mv: Vec::new(),
            depth: Vec::new(),
            state: Vec::new(),
            child_slab: Vec::new(),
            move_slab: Vec::new(),
            max_depth: 0,
            bounded,
        }
    }

    /// Creates an unbounded tree containing only the root.
    pub fn new(root_state: G) -> Self {
        let mut tree = Self::empty(None);
        tree.push_node(root_state, NO_NODE, G::Move::default(), 0);
        tree
    }

    /// Creates a capacity-capped tree containing only the root.
    ///
    /// The node arrays are preallocated at `max_nodes` slots and never
    /// grow past them: once the arena is full, every expansion first
    /// recycles the least-recently-used unpinned leaf (see
    /// `Self::evict_lru_leaf` for the eviction rule and the determinism
    /// argument). Evicted statistics are parked in a Zobrist-keyed
    /// transposition table and recovered if the position is expanded
    /// again.
    ///
    /// # Panics
    /// Panics if `max_nodes < 2`, or — during search — if every node is
    /// pinned or internal, which means the cap is smaller than the search
    /// path can get (use [`MctsConfig::with_tree_capacity`]'s ≥ 64 floor).
    pub fn bounded(root_state: G, max_nodes: u32) -> Self {
        assert!(max_nodes >= 2, "bounded tree needs at least 2 nodes");
        let n = max_nodes as usize;
        let mut tree = Self::empty(Some(Box::new(Bounded::new(max_nodes))));
        tree.visits.reserve_exact(n);
        tree.wins.reserve_exact(n);
        tree.inflight.reserve_exact(n);
        tree.child_first.reserve_exact(n);
        tree.child_len.reserve_exact(n);
        tree.untried_len.reserve_exact(n);
        tree.untried_first.reserve_exact(n);
        tree.parent.reserve_exact(n);
        tree.mv.reserve_exact(n);
        tree.depth.reserve_exact(n);
        tree.state.reserve_exact(n);
        tree.push_node(root_state, NO_NODE, G::Move::default(), 0);
        tree
    }

    /// Creates the tree variant `config` asks for: bounded when
    /// `config.max_tree_nodes` is set, unbounded otherwise.
    pub fn for_config(root_state: G, config: &MctsConfig) -> Self {
        match config.max_tree_nodes {
            Some(max) => Self::bounded(root_state, max),
            None => Self::new(root_state),
        }
    }

    /// Creates a fresh node, reserving slab ranges sized to its legal-move
    /// count so later expansions of this node never reallocate. Unbounded
    /// trees always append; bounded trees recycle freed slots and ranges,
    /// evicting the LRU leaf first when the arena is full (`parent` and
    /// its ancestors — the current selection path — are pinned).
    fn push_node(&mut self, state: G, parent: NodeId, mv: G::Move, depth: u32) -> NodeId {
        let mut legal = MoveBuf::new();
        state.legal_moves(&mut legal);
        if self.bounded.is_some() {
            return self.alloc_bounded(state, parent, mv, depth, &legal);
        }
        let n = legal.len();
        let id = self.visits.len() as NodeId;
        let child_first = self.child_slab.len() as u32;
        self.child_slab.resize(self.child_slab.len() + n, NO_NODE);
        let untried_first = self.move_slab.len() as u32;
        self.move_slab.extend_from_slice(legal.as_slice());
        self.visits.push(0);
        self.wins.push(0.0);
        self.inflight.push(0);
        self.child_first.push(child_first);
        self.child_len.push(0);
        self.untried_len.push(n as u16);
        self.untried_first.push(untried_first);
        self.parent.push(parent);
        self.mv.push(mv);
        self.depth.push(depth);
        self.state.push(state);
        self.max_depth = self.max_depth.max(depth);
        id
    }

    /// Bounded-mode node allocation: evict if the arena is full, then fill
    /// a recycled slot (or append while under the cap), link into the LRU
    /// as most recent, and register with the transposition table — seeding
    /// the fresh node with any statistics recovered from prior evictions
    /// of the same position.
    fn alloc_bounded(
        &mut self,
        state: G,
        parent: NodeId,
        mv: G::Move,
        depth: u32,
        legal: &MoveBuf<G::Move>,
    ) -> NodeId {
        let n = legal.len();
        {
            let b = self.bounded.as_ref().expect("bounded mode");
            if b.free_nodes.is_empty() && self.visits.len() >= b.max_nodes as usize {
                self.evict_lru_leaf(parent);
            }
        }
        let b = self.bounded.as_mut().expect("bounded mode");
        let range = b.free_ranges[n].pop();
        let recycled = b.free_nodes.pop();
        let id = match recycled {
            Some(id) => id,
            None => {
                debug_assert!(self.visits.len() < b.max_nodes as usize);
                let id = self.visits.len() as NodeId;
                self.visits.push(0);
                self.wins.push(0.0);
                self.inflight.push(0);
                self.child_first.push(0);
                self.child_len.push(0);
                self.untried_len.push(0);
                self.untried_first.push(0);
                self.parent.push(NO_NODE);
                self.mv.push(G::Move::default());
                self.depth.push(0);
                self.state.push(state);
                b.lru_prev.push(FREED);
                b.lru_next.push(NO_NODE);
                id
            }
        };
        let (child_first, untried_first) = match range {
            Some(r) => r,
            None => {
                let cf = self.child_slab.len() as u32;
                self.child_slab.resize(self.child_slab.len() + n, NO_NODE);
                let uf = self.move_slab.len() as u32;
                self.move_slab
                    .resize(self.move_slab.len() + n, G::Move::default());
                (cf, uf)
            }
        };
        let i = id as usize;
        self.move_slab[untried_first as usize..untried_first as usize + n]
            .copy_from_slice(legal.as_slice());
        self.visits[i] = 0;
        self.wins[i] = 0.0;
        self.inflight[i] = 0;
        self.child_first[i] = child_first;
        self.child_len[i] = 0;
        self.untried_len[i] = n as u16;
        self.untried_first[i] = untried_first;
        self.parent[i] = parent;
        self.mv[i] = mv;
        self.depth[i] = depth;
        self.state[i] = state;
        self.max_depth = self.max_depth.max(depth);
        let b = self.bounded.as_mut().expect("bounded mode");
        b.lru_push_head(id);
        if let Some((visits, wins)) = b.tt.register(state.zobrist(), id) {
            // A previously evicted copy of this position left statistics
            // behind: seed the fresh node with them. (Child visit sums may
            // then exceed the parent's — harmless for UCB, and exactly the
            // point of recovering the work.)
            self.visits[i] = visits;
            self.wins[i] = wins;
        }
        id
    }

    /// Recycles the least-recently-used evictable node: walks from the LRU
    /// tail towards the head, skipping nodes on the pinned path (`pinned`
    /// and its ancestors — the selection path of the in-flight iteration,
    /// which always includes the root) and nodes with live children.
    ///
    /// Eviction order is a pure function of the touch order (expansion,
    /// backpropagation and creation advance the LRU clock; nothing else
    /// does), so the same seed recycles the same nodes at any host-thread
    /// count. The victim's move returns to its parent's untried list, so
    /// the position can be re-expanded later — recovering its statistics
    /// from the transposition table — and its arena slot and slab ranges
    /// go to the free lists.
    ///
    /// Skipping nodes with children is almost always free: backpropagation
    /// touches a leaf's ancestors after the leaf, so a parent is always
    /// more recent than its children and the tail is a leaf (after a
    /// subtree copy the list starts in breadth-first order, which
    /// preserves the same property).
    fn evict_lru_leaf(&mut self, pinned: NodeId) {
        let b = self.bounded.as_mut().expect("bounded mode");
        let mut victim = b.tail;
        loop {
            assert!(
                victim != NO_NODE,
                "no evictable node: tree capacity too small for the current search path"
            );
            let v = victim as usize;
            // `inflight > 0` pins a node just like the selection path does:
            // a playout batch is standing on it and its rollback/backprop
            // must find the node (and its slot) intact.
            if self.child_len[v] == 0
                && self.parent[v] != NO_NODE
                && self.inflight[v] == 0
                && !on_path(&self.parent, victim, pinned)
            {
                break;
            }
            victim = b.lru_prev[v];
        }
        let v = victim as usize;
        debug_assert_eq!(self.child_len[v], 0, "eviction victim must be a leaf");
        debug_assert_ne!(victim, 0, "the root is never evicted");
        b.lru_unlink(victim);
        b.lru_prev[v] = FREED;
        b.lru_next[v] = NO_NODE;
        b.tt.accumulate(
            self.state[v].zobrist(),
            self.visits[v],
            self.wins[v],
            victim,
        );
        // Return the victim's move to its parent's untried list and
        // shift-remove it from the child range (order-preserving, so the
        // surviving children iterate exactly as before).
        let p = self.parent[v] as usize;
        let first = self.child_first[p] as usize;
        let len = self.child_len[p] as usize;
        let idx = self.child_slab[first..first + len]
            .iter()
            .position(|&c| c == victim)
            .expect("victim linked under its parent");
        self.child_slab
            .copy_within(first + idx + 1..first + len, first + idx);
        self.child_len[p] -= 1;
        let ubase = self.untried_first[p] as usize;
        let ulen = self.untried_len[p] as usize;
        self.move_slab[ubase + ulen] = self.mv[v];
        self.untried_len[p] += 1;
        // The reserved range capacity equals `child_len + untried_len`,
        // which for a leaf is just its untried count.
        let cap = self.untried_len[v] as usize;
        b.free_ranges[cap].push((self.child_first[v], self.untried_first[v]));
        b.free_nodes.push(victim);
        b.evictions += 1;
    }

    /// Copies node `src_id` of `src` (statistics, untried moves, state) as a
    /// new child of `parent`, rebasing its depth. Children are linked later
    /// as the copy walk reaches them; the reserved capacity is the node's
    /// full legal-move count (`untried + children`).
    fn copy_node(&mut self, src: &SearchTree<G>, src_id: NodeId, parent: NodeId) -> NodeId {
        let s = src_id as usize;
        let id = self.visits.len() as NodeId;
        let untried = src.untried_len[s] as usize;
        let cap = untried + src.child_len[s] as usize;
        let child_first = self.child_slab.len() as u32;
        self.child_slab.resize(self.child_slab.len() + cap, NO_NODE);
        let untried_first = self.move_slab.len() as u32;
        let sb = src.untried_first[s] as usize;
        self.move_slab
            .extend_from_slice(&src.move_slab[sb..sb + untried]);
        // Reserve the *full* capacity, not just the current untried count:
        // eviction returns a child's move to its parent's untried list, so
        // the range must be able to grow back to the legal-move count.
        self.move_slab
            .resize(self.move_slab.len() + (cap - untried), G::Move::default());
        let depth = self.depth[parent as usize] + 1;
        // In-flight counts never survive a copy: subtree extraction happens
        // between moves, when every batch has been backpropagated.
        debug_assert_eq!(src.inflight[s], 0, "extract_subtree with a batch in flight");
        self.visits.push(src.visits[s]);
        self.wins.push(src.wins[s]);
        self.inflight.push(0);
        self.child_first.push(child_first);
        self.child_len.push(0);
        self.untried_len.push(untried as u16);
        self.untried_first.push(untried_first);
        self.parent.push(parent);
        self.mv.push(src.mv[s]);
        self.depth.push(depth);
        self.state.push(src.state[s]);
        let slot =
            self.child_first[parent as usize] as usize + self.child_len[parent as usize] as usize;
        self.child_slab[slot] = id;
        self.child_len[parent as usize] += 1;
        self.max_depth = self.max_depth.max(depth);
        if let Some(b) = self.bounded.as_mut() {
            // The copy walk is breadth-first, so appending at the LRU tail
            // keeps every parent more recently used than its children — the
            // invariant leaf eviction relies on.
            b.lru_prev.push(FREED);
            b.lru_next.push(NO_NODE);
            b.lru_push_tail(id);
            b.tt.register(self.state[id as usize].zobrist(), id);
        }
        id
    }

    /// The root node id (always 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Node count.
    #[inline]
    pub fn len(&self) -> usize {
        self.visits.len()
    }

    /// Whether the tree holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.visits.len() <= 1
    }

    /// Deepest node created so far.
    #[inline]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Number of simulations that have passed through `id`.
    #[inline]
    pub fn visits(&self, id: NodeId) -> u64 {
        self.visits[id as usize]
    }

    /// Accumulated reward for the player who moved into `id`.
    #[inline]
    pub fn wins(&self, id: NodeId) -> f64 {
        self.wins[id as usize]
    }

    /// Distance from the root.
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depth[id as usize]
    }

    /// Parent of `id`; `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.parent[id as usize];
        if p == NO_NODE {
            None
        } else {
            Some(p)
        }
    }

    /// Move that led from the parent into `id`; `None` for the root.
    #[inline]
    pub fn move_into(&self, id: NodeId) -> Option<G::Move> {
        if self.parent[id as usize] == NO_NODE {
            None
        } else {
            Some(self.mv[id as usize])
        }
    }

    /// Game state at `id`.
    #[inline]
    pub fn state(&self, id: NodeId) -> &G {
        &self.state[id as usize]
    }

    /// Expanded children of `id`, in expansion order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let first = self.child_first[id as usize] as usize;
        &self.child_slab[first..first + self.child_len[id as usize] as usize]
    }

    /// Legal moves of `id` not yet expanded into children.
    #[inline]
    pub fn untried(&self, id: NodeId) -> &[G::Move] {
        let first = self.untried_first[id as usize] as usize;
        &self.move_slab[first..first + self.untried_len[id as usize] as usize]
    }

    /// Number of untried moves at `id`.
    #[inline]
    pub fn untried_len(&self, id: NodeId) -> usize {
        self.untried_len[id as usize] as usize
    }

    /// Whether every legal move of `id` has been expanded.
    #[inline]
    pub fn fully_expanded(&self, id: NodeId) -> bool {
        self.untried_len[id as usize] == 0
    }

    /// Whether `id`'s state is terminal (no legal moves at creation).
    #[inline]
    pub fn is_terminal(&self, id: NodeId) -> bool {
        self.untried_len[id as usize] == 0 && self.child_len[id as usize] == 0
    }

    /// Mean reward of `id` (½ when unvisited).
    #[inline]
    pub fn mean(&self, id: NodeId) -> f64 {
        let visits = self.visits[id as usize];
        if visits == 0 {
            0.5
        } else {
            self.wins[id as usize] / visits as f64
        }
    }

    /// Adds `n` to `id`'s visit count without touching ancestors. Used by
    /// tree parallelism for virtual loss marking.
    #[inline]
    pub fn add_visits(&mut self, id: NodeId, n: u64) {
        self.visits[id as usize] += n;
    }

    /// Removes `n` from `id`'s visit count (virtual loss unmarking).
    ///
    /// Saturates at zero: removing more virtual loss than was added is a
    /// caller bug (caught by a debug assertion), but in release builds it
    /// must not wrap `u64` — a wrapped count makes `ln(visits)` explode and
    /// silently corrupts every subsequent UCB comparison.
    #[inline]
    pub fn sub_visits(&mut self, id: NodeId, n: u64) {
        let v = &mut self.visits[id as usize];
        debug_assert!(
            *v >= n,
            "sub_visits underflow: removing {n} virtual visits but only {v} present"
        );
        *v = v.saturating_sub(n);
    }

    /// WU-UCT unobserved in-flight count at `id` (0 unless a corrected
    /// searcher currently has a batch registered through the node).
    #[inline]
    pub fn inflight(&self, id: NodeId) -> u32 {
        self.inflight[id as usize]
    }

    /// Total in-flight count over the whole arena. Must be 0 whenever no
    /// batch is in flight — the residue invariant the WU-UCT tests pin.
    pub fn inflight_total(&self) -> u64 {
        self.inflight.iter().map(|&o| o as u64).sum()
    }

    /// Registers `n` unobserved in-flight playouts on `from` and every
    /// ancestor up to the root — the WU-UCT `O` increment performed when a
    /// batch is dispatched from `from`. Deliberately does *not* touch the
    /// LRU clock: registration is scheduling state, not a statistic, and
    /// eviction already skips any node with `inflight > 0`.
    pub fn add_inflight_path(&mut self, from: NodeId, n: u32) {
        let mut id = from;
        loop {
            self.inflight[id as usize] += n;
            match self.parent[id as usize] {
                NO_NODE => return,
                p => id = p,
            }
        }
    }

    /// Rolls back [`Self::add_inflight_path`]: removes `n` in-flight
    /// playouts from `from` and every ancestor. Called exactly once per
    /// dispatched batch — when its results backpropagate, when its launch
    /// is voided by a fault, or before degraded CPU fallback playouts.
    ///
    /// Saturates at zero like [`Self::sub_visits`]: an unbalanced rollback
    /// is a caller bug (caught by the debug assertion), but a wrapped count
    /// must never poison subsequent corrected-UCB comparisons.
    pub fn sub_inflight_path(&mut self, from: NodeId, n: u32) {
        let mut id = from;
        loop {
            let o = &mut self.inflight[id as usize];
            debug_assert!(
                *o >= n,
                "sub_inflight_path underflow: removing {n} but only {o} in flight"
            );
            *o = o.saturating_sub(n);
            match self.parent[id as usize] {
                NO_NODE => return,
                p => id = p,
            }
        }
    }

    /// MCTS **selection** (paper §II.1): descends from the root choosing
    /// UCB-maximal children while nodes are fully expanded, returning the
    /// first node that still has untried moves (or a terminal node).
    ///
    /// The walk reads one contiguous child-id slice per level and hoists
    /// `ln(parent_visits)` out of the per-child loop ([`ucb1_with_ln`]).
    pub fn select(&self, exploration_c: f64) -> NodeId {
        let mut id = self.root();
        loop {
            let i = id as usize;
            let n_children = self.child_len[i] as usize;
            if self.untried_len[i] != 0 || n_children == 0 {
                return id;
            }
            let first = self.child_first[i] as usize;
            let children = &self.child_slab[first..first + n_children];
            let ln_parent = (self.visits[i].max(1) as f64).ln();
            let mut best = children[0];
            let mut best_value = f64::NEG_INFINITY;
            for &child in children {
                let c = child as usize;
                let value = ucb1_with_ln(ln_parent, self.visits[c], self.wins[c], exploration_c);
                // A NaN score would fail every `>` comparison and silently
                // leave `best` at child 0, steering the whole search into an
                // arbitrary line. Healthy trees never produce one (unvisited
                // children score +∞, visited ones are finite), so this only
                // fires on corrupted statistics — fail loudly instead.
                assert!(
                    !value.is_nan(),
                    "non-finite UCB for node {child}: visits={}, wins={}",
                    self.visits[c],
                    self.wins[c]
                );
                if value > best_value {
                    best_value = value;
                    best = child;
                }
            }
            id = best;
        }
    }

    /// WU-UCT selection: the same descent as [`Self::select`], scoring
    /// children with [`ucb1_corrected_with_ln`] so unobserved in-flight
    /// playouts (`inflight`) count as samples in both the exploitation
    /// denominator and the `ln(T + O)` term. With every `inflight` zero the
    /// arithmetic is bit-identical to `select` — the expressions collapse
    /// to the uncorrected ones — so a width-1 corrected search replays the
    /// plain UCB search exactly.
    pub fn select_corrected(&self, exploration_c: f64) -> NodeId {
        let mut id = self.root();
        loop {
            let i = id as usize;
            let n_children = self.child_len[i] as usize;
            if self.untried_len[i] != 0 || n_children == 0 {
                return id;
            }
            let first = self.child_first[i] as usize;
            let children = &self.child_slab[first..first + n_children];
            let ln_parent = ((self.visits[i] + self.inflight[i] as u64).max(1) as f64).ln();
            let mut best = children[0];
            let mut best_value = f64::NEG_INFINITY;
            for &child in children {
                let c = child as usize;
                let value = ucb1_corrected_with_ln(
                    ln_parent,
                    self.visits[c],
                    self.inflight[c] as u64,
                    self.wins[c],
                    exploration_c,
                );
                assert!(
                    !value.is_nan(),
                    "non-finite corrected UCB for node {child}: visits={}, inflight={}, wins={}",
                    self.visits[c],
                    self.inflight[c],
                    self.wins[c]
                );
                if value > best_value {
                    best_value = value;
                    best = child;
                }
            }
            id = best;
        }
    }

    /// MCTS **expansion** (paper §II.2): removes one random untried move of
    /// `id`, creates the child node and returns its id. Adding one node per
    /// iteration, as the paper does.
    ///
    /// # Panics
    /// Panics if `id` has no untried moves.
    pub fn expand<R: Rng64>(&mut self, id: NodeId, rng: &mut R) -> NodeId {
        let n = self.untried_len[id as usize];
        assert!(n != 0, "expand on fully expanded node");
        let pick = rng.next_below(n as u32);
        self.expand_with_pick(id, pick)
    }

    /// Expansion with the untried-move index already drawn. This is the
    /// seam that lets pool-parallel searchers draw all of an iteration's
    /// picks from the shared RNG sequentially (preserving the exact draw
    /// order of the sequential schedule) and then expand trees in parallel.
    ///
    /// # Panics
    /// Panics if `id` has no untried moves or `pick` is out of range.
    pub fn expand_with_pick(&mut self, id: NodeId, pick: u32) -> NodeId {
        let i = id as usize;
        let n = self.untried_len[i] as usize;
        assert!(n != 0, "expand on fully expanded node");
        let pick = pick as usize;
        assert!(pick < n, "expansion pick out of range");
        if let Some(b) = self.bounded.as_mut() {
            // Refresh the expansion parent so the nodes of the in-flight
            // iteration outrank stale leaves in the eviction order.
            b.lru_touch(id);
        }
        let base = self.untried_first[i] as usize;
        // Same removal order as `ArrayVec::swap_remove` in the original
        // layout: the last untried move fills the vacated slot.
        let mv = self.move_slab[base + pick];
        self.move_slab[base + pick] = self.move_slab[base + n - 1];
        self.untried_len[i] = (n - 1) as u16;
        let mut state = self.state[i];
        state.apply(mv);
        let depth = self.depth[i] + 1;
        let child_id = self.push_node(state, id, mv, depth);
        // Claim the parent's child slot only *after* the allocation: in
        // bounded mode it may have evicted one of `id`'s other children,
        // shifting the contents of the child range.
        let slot = self.child_first[i] as usize + self.child_len[i] as usize;
        self.child_slab[slot] = child_id;
        self.child_len[i] += 1;
        child_id
    }

    /// MCTS **backpropagation** (paper §II.4) of a batch of simulations.
    ///
    /// `count` simulations were run from `from`; `wins_p1` of them were won
    /// by P1 (draws counted ½). Every ancestor's `visits` grows by `count`
    /// and its `wins` by the reward of the player who moved into it.
    pub fn backprop(&mut self, from: NodeId, wins_p1: f64, count: u64) {
        debug_assert!(wins_p1 >= 0.0 && wins_p1 <= count as f64);
        let mut id = from;
        loop {
            if let Some(b) = self.bounded.as_mut() {
                // Leaf-to-root touch order makes every parent more recently
                // used than all of its children, which keeps the LRU tail a
                // leaf — the property `evict_lru_leaf` relies on.
                b.lru_touch(id);
            }
            let parent = self.parent[id as usize];
            let reward = if parent == NO_NODE {
                // The root has no mover; only visits matter there.
                0.0
            } else {
                // Perspective: the player who moved into `id`.
                match self.state[parent as usize].to_move() {
                    Player::P1 => wins_p1,
                    Player::P2 => count as f64 - wins_p1,
                }
            };
            self.visits[id as usize] += count;
            self.wins[id as usize] += reward;
            if parent == NO_NODE {
                return;
            }
            id = parent;
        }
    }

    /// Statistics of the root's children, in expansion order. `wins` is
    /// expressed for the **root player** (the side to move at the root), so
    /// stats from different trees over the same position merge by addition.
    pub fn root_stats(&self) -> Vec<RootStat<G::Move>> {
        self.children(self.root())
            .iter()
            .map(|&c| {
                // `wins[c]` is reward for the mover into `c`, which IS the
                // root player for depth-1 children.
                debug_assert_eq!(self.depth[c as usize], 1);
                RootStat {
                    mv: self.mv[c as usize],
                    visits: self.visits[c as usize],
                    wins: self.wins[c as usize],
                }
            })
            .collect()
    }

    /// Chooses a move from this tree's root statistics.
    pub fn best_move(&self, rule: FinalMoveRule) -> Option<G::Move> {
        best_from_stats(&self.root_stats(), rule)
    }

    /// Extracts the subtree rooted at `id` as a new tree whose root is that
    /// node (statistics preserved, depths rebased). This is the *tree
    /// reuse* operation: after playing a move, the played child's subtree
    /// carries over to the next search instead of starting cold.
    ///
    /// The copy is compacting: surviving nodes are renumbered breadth-first
    /// into fresh dense arrays and fresh slabs, so a long game never drags
    /// dead siblings' slab ranges along.
    pub fn extract_subtree(&self, id: NodeId) -> SearchTree<G> {
        let s = id as usize;
        // A bounded source yields a bounded copy with the same cap and a
        // fresh transposition table: parked statistics of evicted nodes do
        // not survive re-rooting (they mostly describe abandoned lines).
        let mut out = match &self.bounded {
            Some(b) => SearchTree::bounded(self.state[s], b.max_nodes),
            None => SearchTree::new(self.state[s]),
        };
        // Copy the root's statistics and expansion state. The fresh root's
        // untried range was reserved for the full legal-move count, which
        // bounds the source's remaining untried moves, so the copy fits.
        out.visits[0] = self.visits[s];
        out.wins[0] = self.wins[s];
        let untried = self.untried_len[s] as usize;
        let sb = self.untried_first[s] as usize;
        let db = out.untried_first[0] as usize;
        out.move_slab[db..db + untried].copy_from_slice(&self.move_slab[sb..sb + untried]);
        out.untried_len[0] = untried as u16;
        // Breadth-first copy with an explicit (source, dest) queue — the
        // same visit order as the original layout, so surviving nodes get
        // identical ids.
        let mut queue: Vec<(NodeId, NodeId)> = vec![(id, 0)];
        let mut head = 0;
        while head < queue.len() {
            let (src_id, dst_id) = queue[head];
            head += 1;
            let first = self.child_first[src_id as usize] as usize;
            let n_children = self.child_len[src_id as usize] as usize;
            for k in 0..n_children {
                let src_child = self.child_slab[first + k];
                let dst_child = out.copy_node(self, src_child, dst_id);
                queue.push((src_child, dst_child));
            }
        }
        out
    }

    /// Finds the most-visited node whose state equals `state`, searching at
    /// most `max_depth` plies below the root. Used by tree reuse to locate
    /// the position reached after our move and the opponent's reply.
    ///
    /// When several nodes hold the same state (transpositions) with equal
    /// visit counts, the tie breaks to the **highest node id** — the most
    /// recently created copy. This is pinned behaviour: `max_by_key` keeps
    /// the *last* maximal element, re-rooting fingerprints depend on it,
    /// and the bounded path mirrors it via last-registered-wins in the
    /// transposition table.
    pub fn find_state(&self, state: &G, max_depth: u32) -> Option<NodeId> {
        if let Some(b) = &self.bounded {
            // A bounded tree cannot run the full-array scan: recycled slots
            // keep their stale state payloads, which could falsely match.
            // The transposition table's live-node link replaces the O(len)
            // scan with a bounded probe; the caller-side equality check
            // below rejects hash collisions.
            let id = b.tt.find(state.zobrist())?;
            let i = id as usize;
            if b.lru_prev[i] != FREED && self.depth[i] <= max_depth && self.state[i] == *state {
                return Some(id);
            }
            return None;
        }
        (0..self.len() as NodeId)
            .filter(|&id| self.depth[id as usize] <= max_depth && self.state[id as usize] == *state)
            .max_by_key(|&id| self.visits[id as usize])
    }

    /// Live node count: `len()` minus recycled arena slots. Equals `len()`
    /// for unbounded trees.
    #[inline]
    pub fn live_nodes(&self) -> usize {
        match &self.bounded {
            Some(b) => self.visits.len() - b.free_nodes.len(),
            None => self.visits.len(),
        }
    }

    /// Arena capacity; `None` for unbounded trees.
    #[inline]
    pub fn capacity(&self) -> Option<u32> {
        self.bounded.as_ref().map(|b| b.max_nodes)
    }

    /// Nodes recycled by LRU eviction so far (0 for unbounded trees).
    #[inline]
    pub fn evictions(&self) -> u64 {
        self.bounded.as_ref().map_or(0, |b| b.evictions)
    }

    /// Transposition-table counters; `None` for unbounded trees.
    #[inline]
    pub fn transposition_stats(&self) -> Option<TransStats> {
        self.bounded.as_ref().map(|b| b.tt.stats())
    }

    /// Exhaustive structural validation for tests (no-op on unbounded
    /// trees): the LRU list round-trips and covers exactly the non-freed
    /// slots, freed slots are marked, the arena never exceeds its cap, and
    /// every live node's children are live and link back to it.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        let Some(b) = &self.bounded else { return };
        assert!(self.len() <= b.max_nodes as usize, "arena over capacity");
        let mut on_list = vec![false; self.len()];
        let mut id = b.head;
        let mut prev = NO_NODE;
        let mut live = 0usize;
        while id != NO_NODE {
            let i = id as usize;
            assert_eq!(b.lru_prev[i], prev, "lru_prev inconsistent at {id}");
            assert!(!on_list[i], "LRU list cycles through {id}");
            on_list[i] = true;
            live += 1;
            prev = id;
            id = b.lru_next[i];
        }
        assert_eq!(b.tail, prev, "LRU tail mismatch");
        assert_eq!(
            live + b.free_nodes.len(),
            self.len(),
            "every slot is live or free"
        );
        for &f in &b.free_nodes {
            assert!(!on_list[f as usize], "freed slot {f} on the LRU list");
            assert_eq!(b.lru_prev[f as usize], FREED, "freed slot {f} unmarked");
        }
        for i in 0..self.len() {
            if b.lru_prev[i] == FREED {
                continue;
            }
            for &c in self.children(i as NodeId) {
                assert_eq!(
                    self.parent[c as usize], i as NodeId,
                    "child {c} does not link back to parent {i}"
                );
                assert_ne!(
                    b.lru_prev[c as usize], FREED,
                    "live node {i} links freed child {c}"
                );
                let mut next = self.state[i];
                next.apply(self.mv[c as usize]);
                assert_eq!(
                    next, self.state[c as usize],
                    "child {c} state is not parent {i} state after its move"
                );
            }
            // Untried moves plus children moves are exactly the legal set:
            // eviction returns moves to the untried list and recycling
            // rewrites ranges, and neither may lose or duplicate a move.
            let mut legal = MoveBuf::new();
            self.state[i].legal_moves(&mut legal);
            let mut remaining: Vec<G::Move> = legal.as_slice().to_vec();
            let ub = self.untried_first[i] as usize;
            let held = self.move_slab[ub..ub + self.untried_len[i] as usize]
                .iter()
                .copied()
                .chain(
                    self.children(i as NodeId)
                        .iter()
                        .map(|&c| self.mv[c as usize]),
                );
            for m in held {
                let at = remaining
                    .iter()
                    .position(|&l| l == m)
                    .unwrap_or_else(|| panic!("node {i} holds non-legal move {m:?}"));
                remaining.swap_remove(at);
            }
            assert!(
                remaining.is_empty(),
                "node {i} lost legal moves {remaining:?}"
            );
        }
    }
}

/// Whether `id` is `tip` or one of `tip`'s ancestors — i.e. lies on the
/// root-ward chain that the in-flight iteration is standing on.
fn on_path(parent: &[NodeId], id: NodeId, tip: NodeId) -> bool {
    let mut cur = tip;
    while cur != NO_NODE {
        if cur == id {
            return true;
        }
        cur = parent[cur as usize];
    }
    false
}

/// Chooses a move from (possibly merged) root statistics.
pub fn best_from_stats<M: Copy>(stats: &[RootStat<M>], rule: FinalMoveRule) -> Option<M> {
    if stats.is_empty() {
        return None;
    }
    let best = match rule {
        FinalMoveRule::RobustChild => stats
            .iter()
            .max_by_key(|s| s.visits)
            .expect("non-empty stats"),
        FinalMoveRule::MaxChild => stats
            .iter()
            .max_by(|a, b| {
                // Unvisited moves score ½, matching `SearchTree::mean`: an
                // unsampled move is unknown, not lost.
                let ma = if a.visits == 0 {
                    0.5
                } else {
                    a.wins / a.visits as f64
                };
                let mb = if b.visits == 0 {
                    0.5
                } else {
                    b.wins / b.visits as f64
                };
                ma.partial_cmp(&mb).expect("finite means")
            })
            .expect("non-empty stats"),
    };
    Some(best.mv)
}

/// Merges root statistics from several trees over the *same* position by
/// summing per-move visits and wins — the root-parallel merge rule
/// (paper §II.4).
pub fn merge_root_stats<M: Copy + Eq>(trees: &[Vec<RootStat<M>>]) -> Vec<RootStat<M>> {
    let mut merged: Vec<RootStat<M>> = Vec::new();
    for stats in trees {
        for s in stats {
            match merged.iter_mut().find(|m| m.mv == s.mv) {
                Some(m) => {
                    m.visits += s.visits;
                    m.wins += s.wins;
                }
                None => merged.push(*s),
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_util::Xoshiro256pp;

    #[test]
    fn new_tree_has_untried_root_moves() {
        let t = SearchTree::new(Reversi::initial());
        assert_eq!(t.len(), 1);
        assert_eq!(t.untried_len(t.root()), 4);
        assert!(!t.fully_expanded(t.root()));
        assert_eq!(t.max_depth(), 0);
    }

    #[test]
    fn select_returns_root_until_fully_expanded() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(1);
        for _ in 0..4 {
            assert_eq!(t.select(1.4), t.root());
            let child = t.expand(t.root(), &mut rng);
            t.backprop(child, 1.0, 1);
        }
        // Now fully expanded: selection must descend to a child.
        let picked = t.select(1.4);
        assert_ne!(picked, t.root());
        assert_eq!(t.depth(picked), 1);
    }

    #[test]
    fn expand_consumes_untried_and_links_child() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(2);
        let c = t.expand(t.root(), &mut rng);
        assert_eq!(t.len(), 2);
        assert_eq!(t.untried_len(t.root()), 3);
        assert_eq!(t.children(t.root()), &[c]);
        assert_eq!(t.parent(c), Some(t.root()));
        assert_eq!(t.depth(c), 1);
        assert!(t.move_into(c).is_some());
        assert_eq!(t.max_depth(), 1);
    }

    #[test]
    fn expansion_never_grows_a_reserved_child_range() {
        // Fully expand the root and one child: every child id must land in
        // the range reserved at node creation (no reallocation, ranges stay
        // contiguous and disjoint).
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(9);
        let total = t.untried_len(t.root());
        for _ in 0..total {
            t.expand(t.root(), &mut rng);
        }
        assert!(t.fully_expanded(t.root()));
        assert_eq!(t.children(t.root()).len(), total);
        let first_child = t.children(t.root())[0];
        let n = t.untried_len(first_child);
        for _ in 0..n {
            t.expand(first_child, &mut rng);
        }
        assert_eq!(t.children(first_child).len(), n);
        // All ids distinct and in-bounds.
        let mut seen: Vec<NodeId> = t
            .children(t.root())
            .iter()
            .chain(t.children(first_child))
            .copied()
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total + n);
        assert!(seen.iter().all(|&id| (id as usize) < t.len()));
    }

    #[test]
    fn backprop_updates_whole_path_with_perspectives() {
        // Reversi root: P1 to move. Child: P2 to move. Grandchild: P1.
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(3);
        let c = t.expand(t.root(), &mut rng);
        let gc = t.expand(c, &mut rng);
        // 10 simulations, 7 won by P1.
        t.backprop(gc, 7.0, 10);
        assert_eq!(t.visits(t.root()), 10);
        assert_eq!(t.visits(c), 10);
        assert_eq!(t.visits(gc), 10);
        // Mover into c is P1 (root player) -> wins = 7.
        assert_eq!(t.wins(c), 7.0);
        // Mover into gc is P2 -> wins = 3.
        assert_eq!(t.wins(gc), 3.0);
    }

    #[test]
    fn root_stats_and_robust_child() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(4);
        let a = t.expand(t.root(), &mut rng);
        let b = t.expand(t.root(), &mut rng);
        t.backprop(a, 1.0, 2);
        t.backprop(b, 5.0, 6);
        let stats = t.root_stats();
        assert_eq!(stats.len(), 2);
        let best = t.best_move(FinalMoveRule::RobustChild).unwrap();
        assert_eq!(best, t.move_into(b).unwrap(), "robust child = most visited");
        // MaxChild picks the higher mean: a: 1/2=0.5, b: 5/6≈0.83 -> still b.
        assert_eq!(t.best_move(FinalMoveRule::MaxChild).unwrap(), best);
    }

    #[test]
    fn max_child_differs_from_robust_child_when_means_invert() {
        let stats = vec![
            RootStat {
                mv: 0u8,
                visits: 100,
                wins: 55.0,
            }, // mean .55, most visited
            RootStat {
                mv: 1u8,
                visits: 10,
                wins: 9.0,
            }, // mean .9
        ];
        assert_eq!(best_from_stats(&stats, FinalMoveRule::RobustChild), Some(0));
        assert_eq!(best_from_stats(&stats, FinalMoveRule::MaxChild), Some(1));
    }

    #[test]
    fn max_child_scores_unvisited_moves_half_like_node_mean() {
        // mv 0 has a measured mean of 0.3; mv 1 was never sampled. Under
        // the old 0.0 convention MaxChild would pick mv 0; with the ½
        // convention (matching `SearchTree::mean`) the unknown move wins.
        let stats = vec![
            RootStat {
                mv: 0u8,
                visits: 10,
                wins: 3.0,
            },
            RootStat {
                mv: 1u8,
                visits: 0,
                wins: 0.0,
            },
        ];
        assert_eq!(best_from_stats(&stats, FinalMoveRule::MaxChild), Some(1));
        // RobustChild is unaffected: it still prefers the visited move.
        assert_eq!(best_from_stats(&stats, FinalMoveRule::RobustChild), Some(0));
    }

    #[test]
    fn merge_root_stats_sums_matching_moves() {
        let t1 = vec![
            RootStat {
                mv: 3u8,
                visits: 10,
                wins: 6.0,
            },
            RootStat {
                mv: 5u8,
                visits: 4,
                wins: 1.0,
            },
        ];
        let t2 = vec![
            RootStat {
                mv: 5u8,
                visits: 6,
                wins: 4.0,
            },
            RootStat {
                mv: 7u8,
                visits: 1,
                wins: 1.0,
            },
        ];
        let merged = merge_root_stats(&[t1, t2]);
        assert_eq!(merged.len(), 3);
        let five = merged.iter().find(|s| s.mv == 5).unwrap();
        assert_eq!(five.visits, 10);
        assert_eq!(five.wins, 5.0);
    }

    #[test]
    fn terminal_nodes_are_recognised() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let t = SearchTree::new(s);
        assert!(t.is_terminal(t.root()));
        assert_eq!(t.select(1.4), t.root());
    }

    #[test]
    fn empty_tree_has_no_best_move() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let t = SearchTree::new(s);
        assert_eq!(t.best_move(FinalMoveRule::RobustChild), None);
    }

    #[test]
    #[should_panic(expected = "fully expanded")]
    fn expanding_exhausted_node_panics() {
        let mut t = SearchTree::new(TicTacToe::initial());
        let mut rng = Xoshiro256pp::new(5);
        for _ in 0..10 {
            t.expand(t.root(), &mut rng);
        }
    }

    #[test]
    fn expand_with_pick_matches_rng_expand() {
        // `expand(rng)` must be exactly `expand_with_pick(rng draw)`.
        let mut a = SearchTree::new(Reversi::initial());
        let mut b = SearchTree::new(Reversi::initial());
        let mut rng_a = Xoshiro256pp::new(6);
        let mut rng_b = Xoshiro256pp::new(6);
        for _ in 0..4 {
            let ca = a.expand(a.root(), &mut rng_a);
            let pick = rng_b.next_below(b.untried_len(b.root()) as u32);
            let cb = b.expand_with_pick(b.root(), pick);
            assert_eq!(ca, cb);
            assert_eq!(a.move_into(ca), b.move_into(cb));
            assert_eq!(a.untried(a.root()), b.untried(b.root()));
        }
    }

    /// Walks `moves` from the root, expanding where needed — test helper
    /// for building exact tree shapes (e.g. transpositions).
    fn expand_path(t: &mut SearchTree<TicTacToe>, moves: &[u8]) -> NodeId {
        let mut id = t.root();
        for &mv in moves {
            id = match t.untried(id).iter().position(|&m| m == mv) {
                Some(pos) => t.expand_with_pick(id, pos as u32),
                None => *t
                    .children(id)
                    .iter()
                    .find(|&&c| t.move_into(c) == Some(mv))
                    .expect("move neither untried nor expanded"),
            };
        }
        id
    }

    /// One full MCTS iteration with a fixed ½ reward — enough to drive
    /// realistic select/expand/backprop traffic through a tree.
    fn drive<G: Game>(t: &mut SearchTree<G>, rng: &mut Xoshiro256pp, iterations: usize) {
        for _ in 0..iterations {
            let sel = t.select(1.4);
            let node = if !t.fully_expanded(sel) {
                t.expand(sel, rng)
            } else {
                sel
            };
            t.backprop(node, 0.5, 1);
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "sub_visits underflow"))]
    fn sub_visits_underflow_saturates_in_release() {
        let mut t = SearchTree::new(Reversi::initial());
        t.add_visits(0, 1);
        // Removing more virtual loss than was added: debug builds panic on
        // the assertion; release builds clamp to zero instead of wrapping
        // to ~u64::MAX and poisoning every later ln(visits).
        t.sub_visits(0, 5);
        assert_eq!(t.visits(0), 0);
    }

    #[test]
    fn find_state_tie_breaks_to_highest_node_id() {
        // Two move orders reaching the same position (X at 0 and 4, O at
        // 8): a transposition stored at two node ids.
        let mut t = SearchTree::new(TicTacToe::initial());
        let a = expand_path(&mut t, &[0, 8, 4]);
        let b = expand_path(&mut t, &[4, 8, 0]);
        assert!(a < b);
        let state = *t.state(a);
        assert_eq!(&state, t.state(b));
        // Equal visit counts (both 0): the tie is pinned to the highest id.
        assert_eq!(t.find_state(&state, 3), Some(b));
        // Visits dominate the tie-break.
        t.backprop(a, 1.0, 2);
        assert_eq!(t.find_state(&state, 3), Some(a));
    }

    #[test]
    fn bounded_tree_never_exceeds_capacity() {
        let mut t = SearchTree::bounded(Reversi::initial(), 64);
        let mut rng = Xoshiro256pp::new(11);
        for round in 0..40 {
            drive(&mut t, &mut rng, 25);
            assert!(t.len() <= 64, "arena grew past cap in round {round}");
            t.debug_validate();
        }
        assert!(t.evictions() > 0, "1000 iterations must overflow 64 nodes");
        assert!(t.live_nodes() <= 64);
        assert_eq!(t.capacity(), Some(64));
        // The root survived every eviction with its statistics intact.
        assert_eq!(t.visits(t.root()), 1000);
    }

    #[test]
    fn bounded_matches_unbounded_while_under_capacity() {
        // With a cap the search never reaches, the bounded tree is the
        // unbounded tree: same ids, same statistics, same best move.
        let mut a = SearchTree::new(Reversi::initial());
        let mut b = SearchTree::bounded(Reversi::initial(), 4096);
        let mut rng_a = Xoshiro256pp::new(12);
        let mut rng_b = Xoshiro256pp::new(12);
        drive(&mut a, &mut rng_a, 300);
        drive(&mut b, &mut rng_b, 300);
        assert_eq!(b.evictions(), 0);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.root_stats(), b.root_stats());
        assert_eq!(
            a.best_move(FinalMoveRule::RobustChild),
            b.best_move(FinalMoveRule::RobustChild)
        );
        b.debug_validate();
    }

    #[test]
    fn eviction_returns_move_to_parent_untried_list() {
        // Cap 2: root + one child. Expanding a second child must first
        // evict the cold first child, handing its move back to the root.
        let mut t = SearchTree::bounded(TicTacToe::initial(), 2);
        let c1 = t.expand_with_pick(t.root(), 0);
        t.backprop(c1, 0.5, 1);
        let mv1 = t.move_into(c1).unwrap();
        assert_eq!(t.untried_len(t.root()), 8);
        let c2 = t.expand_with_pick(t.root(), 0);
        t.backprop(c2, 0.5, 1);
        // Same arena slot recycled; the first child's move is untried again.
        assert_eq!(c2, c1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.children(t.root()).len(), 1);
        assert_eq!(t.untried_len(t.root()), 8);
        assert!(t.untried(t.root()).contains(&mv1));
        t.debug_validate();
    }

    #[test]
    fn transposition_table_recovers_evicted_statistics() {
        let mut t = SearchTree::bounded(TicTacToe::initial(), 2);
        let c1 = t.expand_with_pick(t.root(), 0);
        let mv1 = t.move_into(c1).unwrap();
        t.backprop(c1, 3.0, 4);
        // Evict the child by expanding a different move...
        let c2 = t.expand_with_pick(t.root(), 0);
        t.backprop(c2, 0.5, 1);
        assert_ne!(t.move_into(c2), Some(mv1));
        // ...then re-expand the evicted move: its 4 visits come back.
        let pick = t
            .untried(t.root())
            .iter()
            .position(|&m| m == mv1)
            .expect("evicted move is untried again") as u32;
        let c3 = t.expand_with_pick(t.root(), pick);
        assert_eq!(t.move_into(c3), Some(mv1));
        assert_eq!(t.visits(c3), 4);
        assert_eq!(t.wins(c3), 3.0);
        let stats = t.transposition_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.recovered_visits, 4);
        t.debug_validate();
    }

    #[test]
    fn bounded_find_state_uses_live_link_only() {
        let mut t = SearchTree::bounded(TicTacToe::initial(), 64);
        let a = expand_path(&mut t, &[0, 8, 4]);
        t.backprop(a, 0.5, 1);
        let state = *t.state(a);
        assert_eq!(t.find_state(&state, 3), Some(a));
        // Deeper than allowed: rejected even though the node is live.
        assert_eq!(t.find_state(&state, 2), None);
        // Unknown state: no match.
        assert_eq!(t.find_state(&TicTacToe::initial(), 0), Some(t.root()));
    }

    #[test]
    fn bounded_extract_subtree_stays_bounded() {
        let mut t = SearchTree::bounded(Reversi::initial(), 128);
        let mut rng = Xoshiro256pp::new(13);
        drive(&mut t, &mut rng, 500);
        assert!(t.evictions() > 0);
        let child = t.children(t.root())[0];
        let sub = t.extract_subtree(child);
        assert_eq!(sub.capacity(), Some(128));
        assert_eq!(sub.visits(0), t.visits(child));
        assert_eq!(sub.wins(0).to_bits(), t.wins(child).to_bits());
        sub.debug_validate();
        // The copy keeps working under pressure: drive it past its cap.
        let mut sub = sub;
        drive(&mut sub, &mut rng, 500);
        assert!(sub.len() <= 128);
        sub.debug_validate();
    }

    #[test]
    fn bounded_search_is_deterministic() {
        let run = |seed: u64| {
            let mut t = SearchTree::bounded(Reversi::initial(), 96);
            let mut rng = Xoshiro256pp::new(seed);
            drive(&mut t, &mut rng, 800);
            (
                t.root_stats(),
                t.evictions(),
                t.transposition_stats().unwrap(),
            )
        };
        assert_eq!(run(14), run(14));
        assert_ne!(run(14).0, run(15).0);
    }

    #[test]
    fn extract_subtree_compacts_and_preserves_stats() {
        let mut t = SearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(8);
        // Grow a small tree.
        for _ in 0..40 {
            let sel = t.select(1.4);
            let node = if !t.fully_expanded(sel) {
                t.expand(sel, &mut rng)
            } else {
                sel
            };
            t.backprop(node, 0.5, 1);
        }
        let child = t.children(t.root())[0];
        let sub = t.extract_subtree(child);
        assert_eq!(sub.visits(0), t.visits(child));
        assert_eq!(sub.wins(0).to_bits(), t.wins(child).to_bits());
        assert_eq!(sub.depth(0), 0);
        assert_eq!(sub.untried(0), t.untried(child));
        assert_eq!(sub.children(0).len(), t.children(child).len());
        // Compaction: the new slabs only hold surviving nodes' ranges.
        assert!(sub.len() < t.len());
    }
}
