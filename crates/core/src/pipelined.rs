//! Pipelined block parallelism — Mirsoleimani et al.'s pipeline pattern
//! (PAPERS.md) applied to the paper's block-parallel scheme.
//!
//! Plain block parallelism is a lockstep barrier: select/expand wave `k`,
//! launch, wait, backpropagate, repeat — the host is idle while the kernel
//! flies and the device is idle while the host walks trees. The pipeline
//! removes the barrier by running the two stages one wave apart: while the
//! kernel of wave `k−1` executes, the host selects and expands wave `k`
//! from the trees *as they stood before wave `k−1`'s results landed* (the
//! genuine pipeline hazard — selection cannot observe results that have
//! not been read back), then completes wave `k−1` and immediately launches
//! wave `k`.
//!
//! Pricing under the seven-phase ledger: per round the critical path is
//! `max(kernel of wave k−1, select/expand of wave k)`. The ledger charges
//! the phases of whichever side is critical and records the hidden side's
//! time as `overlap_saved` (with the host-side overlap also counted in
//! `shadow_overlap`), exactly like the hybrid searcher — the seven phases
//! still sum to `elapsed` to the nanosecond. The final in-flight wave is
//! drained after the budget expires and charged as wait time
//! (`budget_overshoot` reports it), so no launched work is ever dropped.
//!
//! Faults break the pipeline: a hang detected at completion time is
//! handled **serially** — charge the hang deadline, retry once with a
//! fresh stream seed, degrade to one CPU playout per tree on a second
//! hang — and that round's select/expand is charged serially too (no
//! overlap credit; a real pipeline stalls on a fault). `BlockAbort` voids
//! the aborted block's backpropagation as usual. Determinism is untouched:
//! wave composition depends only on the launch schedule, never on thread
//! timing, so reports are bit-identical for any host-thread count.

use crate::block_parallel::{backprop_outputs, report_from_trees, select_and_expand_all};
use crate::config::{MctsConfig, SearchBudget};
use crate::gpu::{LaneOutcome, PlayoutKernel};
use crate::searcher::{BudgetTracker, SearchReport, Searcher};
use crate::telemetry::PhaseBreakdown;
use crate::tree::SearchTree;
use pmcts_games::{random_playout, Game, Player};
use pmcts_gpu_sim::{Device, GpuFault, LaunchConfig, WorkerPool};
use pmcts_util::{SimTime, Xoshiro256pp};
use std::sync::Arc;

/// Pipelined block-parallel searcher: select/expand of wave `k` overlaps
/// the in-flight kernel of wave `k−1`.
#[derive(Clone, Debug)]
pub struct PipelinedSearcher<G: Game> {
    config: MctsConfig,
    device: Device,
    launch: LaunchConfig,
    stream: u64,
    rng: Xoshiro256pp,
    epoch: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> PipelinedSearcher<G> {
    /// Creates a pipelined searcher with `launch.blocks` trees and
    /// `launch.threads_per_block` simulations per tree per wave.
    pub fn new(config: MctsConfig, device: Device, launch: LaunchConfig) -> Self {
        Self::with_stream(config, device, launch, 0)
    }

    /// Like [`new`](Self::new) but on RNG sub-stream `stream`.
    pub fn with_stream(
        config: MctsConfig,
        device: Device,
        launch: LaunchConfig,
        stream: u64,
    ) -> Self {
        let rng = Xoshiro256pp::derive(config.seed, 0xF1FE ^ stream);
        PipelinedSearcher {
            config,
            device,
            launch,
            stream,
            rng,
            epoch: 0,
            _game: std::marker::PhantomData,
        }
    }

    /// The launch geometry (blocks = trees).
    pub fn launch_config(&self) -> LaunchConfig {
        self.launch
    }

    fn next_stream_seed(&mut self) -> u64 {
        self.epoch += 1;
        self.config
            .seed
            .wrapping_add(self.stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(self.epoch.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Serial fault ladder for a wave whose first launch hung: charge the
    /// hang deadline, retry once with a fresh stream seed (upload
    /// recharged), and on a second hang degrade to one CPU playout per
    /// tree. Returns the total virtual cost, with every component already
    /// charged to the matching phase so the ledger stays exact.
    #[allow(clippy::too_many_arguments)]
    fn resolve_hung_wave(
        &mut self,
        trees: &mut [SearchTree<G>],
        frontier: &[(u32, G, u32)],
        first_elapsed: SimTime,
        tpb: usize,
        pool: &Arc<WorkerPool>,
        phases: &mut PhaseBreakdown,
        simulations: &mut u64,
    ) -> SimTime {
        let cpu = self.config.cpu_cost;
        let plan = self.config.faults;
        let deadline = plan.hang_deadline(first_elapsed);
        phases.kernel += deadline;
        phases.faults.injected += 1;
        phases.faults.retried += 1;
        let mut cost = deadline;

        let kernel = PlayoutKernel::new(
            frontier.iter().map(|&(_, s, _)| s).collect(),
            self.next_stream_seed(),
        );
        let fault = plan.gpu_fault(self.stream, self.epoch, self.launch.blocks);
        let upload = self.device.spec().transfer_time(kernel.upload_bytes());
        let result = self.device.launch_with_fault(&kernel, self.launch, fault);
        phases.upload += cpu.launch_prep + upload;
        cost += cpu.launch_prep + upload;

        if result.fault == GpuFault::Hang {
            let deadline = plan.hang_deadline(result.stats.elapsed());
            phases.kernel += deadline;
            cost += deadline;
            phases.faults.injected += 1;
            for (b, tree) in trees.iter_mut().enumerate() {
                let playout = random_playout(frontier[b].1, &mut self.rng);
                let playout_cost = cpu.playout(playout.plies);
                phases.kernel += playout_cost;
                cost += playout_cost;
                tree.backprop(frontier[b].0, playout.reward_for(Player::P1), 1);
                *simulations += 1;
                phases.simulations += 1;
                phases.faults.degraded += 1;
            }
            return cost;
        }

        let voided = void_of(result.fault, phases);
        *simulations +=
            backprop_outputs(trees, frontier, &result.outputs, tpb, voided, pool, phases);
        phases.kernel += result.stats.launch_overhead + result.stats.device_time;
        phases.readback += result.stats.readback_time;
        cost += result.stats.elapsed();
        phases.record_launch(&result.stats);
        cost
    }
}

/// Translates a non-hang launch fault into the voided block (if any),
/// folding the fault counters.
fn void_of(fault: GpuFault, phases: &mut PhaseBreakdown) -> Option<usize> {
    match fault {
        GpuFault::BlockAbort(bad) => {
            phases.faults.injected += 1;
            phases.faults.degraded += 1;
            Some(bad as usize)
        }
        f => {
            if f != GpuFault::None {
                phases.faults.injected += 1;
            }
            None
        }
    }
}

impl<G: Game> Searcher<G> for PipelinedSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        let blocks = self.launch.blocks as usize;
        let tpb = self.launch.threads_per_block as usize;
        let mut trees: Vec<SearchTree<G>> = (0..blocks)
            .map(|_| SearchTree::for_config(root, &self.config))
            .collect();
        let mut tracker = BudgetTracker::new(budget);
        let mut phases = PhaseBreakdown::new();
        let mut simulations = 0u64;
        let cpu = self.config.cpu_cost;
        let pool = Arc::clone(self.device.worker_pool());

        if trees[0].is_terminal(0) {
            return report_from_trees(&self.config, &trees, &tracker, 0, phases);
        }

        let plan = self.config.faults;
        // The wave in flight: its frontier plus the pending launch handle.
        type InFlight<G> = (
            Vec<(u32, G, u32)>,
            pmcts_gpu_sim::PendingLaunch<LaneOutcome>,
        );
        let mut pending: Option<InFlight<G>> = None;
        while tracker.may_continue() {
            let mut iter_cost = SimTime::ZERO;

            // Stage 1 — select/expand wave k while wave k−1 (if any) is
            // still in flight. Phase times land in `scratch` first: whether
            // they appear in the breakdown depends on which side of the
            // overlap turns out to be the critical path.
            let mut scratch = PhaseBreakdown::new();
            let (frontier, host_cost) = select_and_expand_all(
                &mut trees,
                &mut self.rng,
                self.config.exploration_c,
                &cpu,
                &pool,
                &mut scratch,
            );

            // Stage 2 — complete wave k−1.
            if let Some((prev_frontier, launch)) = pending.take() {
                let result = launch.wait();
                if result.fault == GpuFault::Hang {
                    // Fault breaks the pipeline: resolve the hung wave
                    // serially, then charge this round's select/expand
                    // serially too — no overlap credit on a stall.
                    iter_cost += self.resolve_hung_wave(
                        &mut trees,
                        &prev_frontier,
                        result.stats.elapsed(),
                        tpb,
                        &pool,
                        &mut phases,
                        &mut simulations,
                    );
                    phases.select += scratch.select;
                    phases.expand += scratch.expand;
                    iter_cost += host_cost;
                } else {
                    let voided = void_of(result.fault, &mut phases);
                    simulations += backprop_outputs(
                        &mut trees,
                        &prev_frontier,
                        &result.outputs,
                        tpb,
                        voided,
                        &pool,
                        &mut phases,
                    );
                    phases.record_launch(&result.stats);
                    // Overlap pricing: charge the critical side's phases,
                    // record the hidden side as saved.
                    let gpu_side = result.stats.elapsed();
                    if gpu_side >= host_cost {
                        phases.kernel += result.stats.launch_overhead + result.stats.device_time;
                        phases.readback += result.stats.readback_time;
                        phases.overlap_saved += host_cost;
                    } else {
                        phases.select += scratch.select;
                        phases.expand += scratch.expand;
                        phases.overlap_saved += gpu_side;
                    }
                    phases.shadow_overlap += host_cost;
                    iter_cost += gpu_side.max(host_cost);
                }
            } else {
                // Pipeline is empty (first wave): nothing to overlap with,
                // the select/expand cost is charged serially.
                phases.select += scratch.select;
                phases.expand += scratch.expand;
                iter_cost += host_cost;
            }
            phases.absorb_counters(&scratch);

            // Stage 3 — launch wave k asynchronously; it completes at the
            // top of the next round (or in the drain below).
            let kernel = Arc::new(PlayoutKernel::new(
                frontier.iter().map(|&(_, s, _)| s).collect(),
                self.next_stream_seed(),
            ));
            let fault = plan.gpu_fault(self.stream, self.epoch, self.launch.blocks);
            let upload = self.device.spec().transfer_time(kernel.upload_bytes());
            let launch = self
                .device
                .launch_async_with_fault(kernel, self.launch, fault);
            phases.upload += cpu.launch_prep + upload;
            iter_cost += cpu.launch_prep + upload;
            pending = Some((frontier, launch));

            tracker.charge(iter_cost);
        }

        // Drain — the budget expired with one wave still in flight. Its
        // results are not dropped: complete it and charge the time as wait
        // (`budget_overshoot` reports it; `iterations` is unaffected).
        if let Some((prev_frontier, launch)) = pending.take() {
            let result = launch.wait();
            let cost = if result.fault == GpuFault::Hang {
                self.resolve_hung_wave(
                    &mut trees,
                    &prev_frontier,
                    result.stats.elapsed(),
                    tpb,
                    &pool,
                    &mut phases,
                    &mut simulations,
                )
            } else {
                let voided = void_of(result.fault, &mut phases);
                simulations += backprop_outputs(
                    &mut trees,
                    &prev_frontier,
                    &result.outputs,
                    tpb,
                    voided,
                    &pool,
                    &mut phases,
                );
                phases.kernel += result.stats.launch_overhead + result.stats.device_time;
                phases.readback += result.stats.readback_time;
                phases.record_launch(&result.stats);
                result.stats.elapsed()
            };
            tracker.charge_wait(cost);
        }

        report_from_trees(&self.config, &trees, &tracker, simulations, phases)
    }

    fn name(&self) -> String {
        format!(
            "pipelined block-parallel ({} trees × {} threads)",
            self.launch.blocks, self.launch.threads_per_block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_parallel::BlockParallelSearcher;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_gpu_sim::DeviceSpec;
    use pmcts_util::FaultPlan;

    fn device() -> Device {
        Device::new(DeviceSpec::tesla_c2050())
    }

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn runs_and_accounts_exactly() {
        let mut s = PipelinedSearcher::<Reversi>::new(cfg(1), device(), LaunchConfig::new(4, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(5));
        assert_eq!(r.iterations, 5);
        // Every launched wave lands (the drain completes the last one).
        assert_eq!(r.simulations, 5 * 4 * 32);
        assert_eq!(r.phases.phase_sum(), r.elapsed, "ledger must sum exactly");
    }

    #[test]
    fn overlap_is_recorded_and_saves_time() {
        let budget = SearchBudget::VirtualTime(SimTime::from_millis(20));
        let launch = LaunchConfig::new(8, 64);
        let piped = PipelinedSearcher::<Reversi>::new(cfg(3), device(), launch)
            .search(Reversi::initial(), budget);
        assert!(
            piped.phases.overlap_saved > SimTime::ZERO,
            "no overlap recorded"
        );
        assert_eq!(piped.phases.phase_sum(), piped.elapsed);
        // The saved host time buys more waves than the lockstep scheme gets
        // in the same virtual window.
        let lockstep = BlockParallelSearcher::<Reversi>::new(cfg(3), device(), launch)
            .search(Reversi::initial(), budget);
        assert!(
            piped.simulations > lockstep.simulations,
            "pipelined {} should out-simulate lockstep {}",
            piped.simulations,
            lockstep.simulations
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            PipelinedSearcher::<Reversi>::new(cfg(7), device(), LaunchConfig::new(4, 32))
                .search(Reversi::initial(), SearchBudget::Iterations(6))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_ladder_keeps_ledger_exact() {
        for plan in [
            FaultPlan::gpu_hang(21, 1.0),
            FaultPlan::gpu_abort(22, 1.0),
            FaultPlan::gpu_slowdown(23, 1.0, 3),
        ] {
            let mut s = PipelinedSearcher::<Reversi>::new(
                cfg(4).with_faults(plan),
                device(),
                LaunchConfig::new(4, 32),
            );
            let r = s.search(Reversi::initial(), SearchBudget::Iterations(6));
            assert!(r.phases.faults.injected > 0, "plan must fire");
            assert_eq!(
                r.phases.phase_sum(),
                r.elapsed,
                "fault path broke the ledger"
            );
        }
    }

    #[test]
    fn tactical_sanity() {
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher =
            PipelinedSearcher::<TicTacToe>::new(cfg(5), device(), LaunchConfig::new(2, 32));
        let r = searcher.search(s, SearchBudget::Iterations(40));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn terminal_root_is_handled() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let mut searcher =
            PipelinedSearcher::<TicTacToe>::new(cfg(6), device(), LaunchConfig::new(2, 32));
        let r = searcher.search(s, SearchBudget::Iterations(5));
        assert_eq!(r.best_move, None);
        assert_eq!(r.simulations, 0);
    }
}
