//! Root parallelism on CPU threads — paper Fig. 2b, refs \[3\]\[4\].
//!
//! `n` threads build `n` completely independent trees over the same root
//! (no communication until the end), then root statistics are merged by
//! summation and the most-visited move wins. This is the scheme the authors
//! scaled to thousands of CPU cores in ref \[4\] and the baseline the GPU
//! player is compared against in Fig. 7 ("one GPU can be compared to
//! 100–200 CPU threads").
//!
//! Budget semantics are wall-clock-like: every thread receives the full
//! virtual budget, because the real threads run concurrently.

use crate::config::{MctsConfig, SearchBudget};
use crate::searcher::{empty_report, SearchReport, Searcher};
use crate::sequential::SequentialSearcher;
use crate::telemetry::{critical_index, PhaseBreakdown};
use crate::tree::{best_from_stats, merge_root_stats};
use pmcts_games::Game;
use pmcts_gpu_sim::WorkerPool;
use std::sync::Arc;

/// Root-parallel CPU searcher: `n` independent trees, one per simulated
/// CPU thread.
///
/// The number of *simulated* CPU threads (= trees) is decoupled from the
/// number of real host worker threads: a 256-"CPU" player works fine on a
/// 8-core machine because every tree's time is virtual. Results are
/// bit-identical regardless of the host worker count.
#[derive(Clone, Debug)]
pub struct RootParallelSearcher<G: Game> {
    config: MctsConfig,
    threads: usize,
    /// Persistent host workers the trees are distributed over — owned by
    /// default, or shared (e.g. with a simulated device) via
    /// [`with_pool`](Self::with_pool).
    pool: Arc<WorkerPool>,
    /// Base stream offset so distinct searchers draw disjoint randomness.
    stream_base: u64,
    /// Bumped every search so consecutive moves explore differently.
    generation: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> RootParallelSearcher<G> {
    /// Creates a root-parallel searcher over `threads` simulated CPU
    /// threads (= trees).
    pub fn new(config: MctsConfig, threads: usize) -> Self {
        Self::with_stream(config, threads, 0)
    }

    /// Like [`new`](Self::new) with an explicit RNG stream base.
    pub fn with_stream(config: MctsConfig, threads: usize, stream_base: u64) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(threads.max(1));
        Self::with_stream_on(
            config,
            threads,
            stream_base,
            Arc::new(WorkerPool::new(workers)),
        )
    }

    /// Like [`with_stream`](Self::with_stream), but runs the trees on an
    /// existing shared pool instead of spawning an owned one — no thread
    /// creation at construction time. Virtual timing and results are
    /// unaffected by the pool choice.
    pub fn with_stream_on(
        config: MctsConfig,
        threads: usize,
        stream_base: u64,
        pool: Arc<WorkerPool>,
    ) -> Self {
        assert!(threads > 0, "need at least one thread");
        RootParallelSearcher {
            config,
            threads,
            pool,
            stream_base,
            generation: 0,
            _game: std::marker::PhantomData,
        }
    }

    /// Overrides the number of real host worker threads by rebuilding the
    /// owned pool (virtual timing is unaffected). `0` is treated as 1.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.pool = Arc::new(WorkerPool::new(workers.max(1).min(self.threads)));
        self
    }

    /// Shares an existing worker pool (e.g. a simulated device's) instead
    /// of owning one. Virtual timing and results are unaffected.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Number of simulated CPU threads / trees.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl<G: Game> Searcher<G> for RootParallelSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        self.generation += 1;
        let config = self.config.clone();
        let gen = self.generation;
        let base = self.stream_base;
        let trees = self.threads;

        // Each tree is an independent sequential search with its own RNG
        // stream; trees are distributed over the persistent worker pool and
        // merged at the end (no communication — exactly the paper's
        // scheme). Results are keyed by tree index, so merge order — and
        // hence the report — is identical for any pool size.
        // Dead-tree faults are keyed per (stream base, generation), so each
        // search draws a fresh schedule; tree 0 is never dead, so a merge
        // survivor always exists.
        let plan = config.faults;
        let fault_key = base ^ gen.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut slots: Vec<()> = vec![(); trees];
        let reports: Vec<SearchReport<G::Move>> = self.pool.map_indexed(&mut slots, |i, ()| {
            if plan.component_dead(fault_key, i as u64) {
                return empty_report();
            }
            let stream = base
                .wrapping_add(i as u64)
                .wrapping_add(gen.wrapping_mul(0x1000 * 31));
            let mut s = SequentialSearcher::<G>::with_stream(config.clone(), stream);
            s.search(root, budget)
        });

        let merged = merge_root_stats(
            &reports
                .iter()
                .map(|r| r.root_stats.clone())
                .collect::<Vec<_>>(),
        );
        // Threads run concurrently: elapsed = the slowest tree, and the
        // phase times are that critical tree's (so they still sum to
        // elapsed exactly); work counters are summed over all trees.
        let mut phases = PhaseBreakdown::new();
        for r in &reports {
            phases.absorb_counters(&r.phases);
        }
        // Count dead trees by re-querying the pure plan (no search state).
        for i in 0..trees as u64 {
            if plan.component_dead(fault_key, i) {
                phases.faults.injected += 1;
                phases.faults.excluded += 1;
            }
        }
        let crit = critical_index(reports.iter().map(|r| r.elapsed));
        if let Some(i) = crit {
            phases.adopt_times(&reports[i].phases);
        }
        let elapsed = crit
            .map(|i| reports[i].elapsed)
            .unwrap_or(pmcts_util::SimTime::ZERO);
        phases.budget_overshoot = crate::searcher::overshoot_of(budget, elapsed);
        SearchReport {
            best_move: best_from_stats(&merged, config.final_move),
            simulations: reports.iter().map(|r| r.simulations).sum(),
            iterations: reports.iter().map(|r| r.iterations).sum(),
            tree_nodes: reports.iter().map(|r| r.tree_nodes).sum(),
            max_depth: reports.iter().map(|r| r.max_depth).max().unwrap_or(0),
            elapsed,
            root_stats: merged,
            phases,
        }
    }

    fn name(&self) -> String {
        format!("root parallelism ({} CPU threads)", self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn merges_simulations_across_threads() {
        let mut s = RootParallelSearcher::<Reversi>::new(cfg(1), 4);
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(100));
        assert_eq!(r.simulations, 400, "each thread runs the full budget");
        let total: u64 = r.root_stats.iter().map(|st| st.visits).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn elapsed_is_max_not_sum() {
        let mut s = RootParallelSearcher::<Reversi>::new(cfg(2), 8);
        let budget = pmcts_util::SimTime::from_millis(5);
        let r = s.search(Reversi::initial(), SearchBudget::VirtualTime(budget));
        // Concurrent threads: elapsed is one thread's time, near the budget,
        // not 8x the budget.
        assert!(r.elapsed >= budget / 2);
        assert!(r.elapsed < budget * 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            RootParallelSearcher::<Reversi>::new(cfg(seed), 3)
                .search(Reversi::initial(), SearchBudget::Iterations(50))
        };
        let a = run(5);
        let b = run(5);
        assert_eq!(a.root_stats, b.root_stats);
        assert_eq!(a.best_move, b.best_move);
    }

    #[test]
    fn threads_explore_distinct_streams() {
        // With 2 threads the merged stats differ from a single tree doubled.
        let single = RootParallelSearcher::<Reversi>::new(cfg(6), 1)
            .search(Reversi::initial(), SearchBudget::Iterations(50));
        let double = RootParallelSearcher::<Reversi>::new(cfg(6), 2)
            .search(Reversi::initial(), SearchBudget::Iterations(50));
        let single_doubled: Vec<u64> = single.root_stats.iter().map(|s| s.visits * 2).collect();
        let merged: Vec<u64> = double.root_stats.iter().map(|s| s.visits).collect();
        assert_ne!(single_doubled, merged);
    }

    #[test]
    fn finds_tactical_move() {
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher = RootParallelSearcher::<TicTacToe>::new(cfg(7), 4);
        let r = searcher.search(s, SearchBudget::Iterations(500));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn consecutive_searches_use_fresh_randomness() {
        let mut s = RootParallelSearcher::<Reversi>::new(cfg(8), 2);
        let a = s.search(Reversi::initial(), SearchBudget::Iterations(30));
        let b = s.search(Reversi::initial(), SearchBudget::Iterations(30));
        assert_ne!(
            a.root_stats, b.root_stats,
            "generation counter must vary streams between moves"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        RootParallelSearcher::<Reversi>::new(cfg(9), 0);
    }

    #[test]
    fn results_independent_of_host_worker_count() {
        let run = |workers| {
            RootParallelSearcher::<Reversi>::new(cfg(10), 16)
                .with_workers(workers)
                .search(Reversi::initial(), SearchBudget::Iterations(40))
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial.root_stats, parallel.root_stats);
        assert_eq!(serial.elapsed, parallel.elapsed);
        assert_eq!(serial.best_move, parallel.best_move);
    }

    #[test]
    fn many_simulated_threads_on_few_workers() {
        // 128 simulated CPU threads must work on a small host.
        let mut s = RootParallelSearcher::<Reversi>::new(cfg(11), 128).with_workers(4);
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(10));
        assert_eq!(r.simulations, 128 * 10);
    }
}
