//! Tree reuse between moves (extension).
//!
//! The paper's searchers start every move from a cold tree. A standard
//! engineering improvement is to keep the subtree of the position actually
//! reached — our move plus the opponent's reply — so earlier simulations
//! carry over. [`PersistentSearcher`] wraps the sequential engine with this
//! behaviour; the `tree_reuse` ablation shows what it buys at equal budget.

use crate::config::{MctsConfig, SearchBudget};
use crate::searcher::{BudgetTracker, SearchReport, Searcher};
use crate::sequential::SequentialSearcher;
use crate::telemetry::PhaseBreakdown;
use crate::tree::SearchTree;
use pmcts_games::Game;

/// Sequential UCT with tree reuse across consecutive `search` calls.
#[derive(Clone, Debug)]
pub struct PersistentSearcher<G: Game> {
    inner: SequentialSearcher<G>,
    config: MctsConfig,
    /// The tree kept from the previous search, if any.
    carry: Option<SearchTree<G>>,
    /// Plies below the old root to scan when re-rooting. 2 would cover a
    /// plain move+reply, but Reversi passes can push the reached position
    /// deeper; 4 additionally absorbs one forced pass on each side. A
    /// position even further down (a longer pass chain) deliberately falls
    /// back to a cold tree rather than risking a wrong re-root.
    reroot_depth: u32,
    /// Diagnostics: simulations inherited by the last search.
    last_reused_visits: u64,
}

impl<G: Game> PersistentSearcher<G> {
    /// Creates a tree-reusing sequential searcher.
    pub fn new(config: MctsConfig) -> Self {
        PersistentSearcher {
            inner: SequentialSearcher::new(config.clone()),
            config,
            carry: None,
            reroot_depth: 4,
            last_reused_visits: 0,
        }
    }

    /// Simulations inherited from the previous move's tree by the most
    /// recent `search` call (0 when the tree started cold).
    pub fn last_reused_visits(&self) -> u64 {
        self.last_reused_visits
    }

    /// Drops the carried tree (e.g. when starting a new game).
    pub fn reset(&mut self) {
        self.carry = None;
        self.last_reused_visits = 0;
    }
}

impl<G: Game> Searcher<G> for PersistentSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        // Try to re-root the carried tree at the new position.
        let mut tree = match self.carry.take() {
            Some(old) => match old.find_state(&root, self.reroot_depth) {
                Some(id) => {
                    // Compacting copy: surviving nodes move into fresh
                    // dense arrays and slabs, so dead siblings' ranges are
                    // dropped instead of accumulating across a game.
                    let sub = old.extract_subtree(id);
                    self.last_reused_visits = sub.visits(sub.root());
                    sub
                }
                None => {
                    self.last_reused_visits = 0;
                    SearchTree::for_config(root, &self.config)
                }
            },
            None => {
                self.last_reused_visits = 0;
                SearchTree::for_config(root, &self.config)
            }
        };

        let mut tracker = BudgetTracker::new(budget);
        let mut phases = PhaseBreakdown::new();
        let mut simulations = 0;
        if !tree.is_terminal(tree.root()) {
            simulations = self.inner.run_on_tree(&mut tree, &mut tracker, &mut phases);
        }
        phases.budget_overshoot = tracker.overshoot();
        let report = SearchReport {
            best_move: tree.best_move(self.config.final_move),
            simulations,
            iterations: tracker.iterations,
            tree_nodes: tree.live_nodes() as u64,
            max_depth: tree.max_depth(),
            elapsed: tracker.elapsed,
            root_stats: tree.root_stats(),
            phases,
        };
        self.carry = Some(tree);
        report
    }

    fn name(&self) -> String {
        "sequential MCTS with tree reuse".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Game, MoveBuf, Reversi};

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn first_search_starts_cold() {
        let mut s = PersistentSearcher::<Reversi>::new(cfg(1));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(100));
        assert_eq!(s.last_reused_visits(), 0);
        assert!(r.best_move.is_some());
    }

    #[test]
    fn following_the_game_reuses_the_subtree() {
        let mut s = PersistentSearcher::<Reversi>::new(cfg(2));
        let mut state = Reversi::initial();
        let r1 = s.search(state, SearchBudget::Iterations(400));
        state.apply(r1.best_move.unwrap());
        // Opponent replies with the first legal move.
        let mut buf = MoveBuf::new();
        state.legal_moves(&mut buf);
        state.apply(buf[0]);
        let r2 = s.search(state, SearchBudget::Iterations(100));
        assert!(
            s.last_reused_visits() > 0,
            "grandchild of a 400-iteration tree must have visits"
        );
        // The reused tree plus new work exceeds the cold-tree node count.
        let mut cold = SequentialSearcher::<Reversi>::new(cfg(2));
        let cold_r = cold.search(state, SearchBudget::Iterations(100));
        assert!(
            r2.tree_nodes > cold_r.tree_nodes,
            "reuse should carry nodes over: {} <= {}",
            r2.tree_nodes,
            cold_r.tree_nodes
        );
    }

    #[test]
    fn unrelated_position_starts_cold_again() {
        let mut s = PersistentSearcher::<Reversi>::new(cfg(3));
        s.search(Reversi::initial(), SearchBudget::Iterations(50));
        // A position far from the previous root: play 10 scripted moves.
        let mut state = Reversi::initial();
        let mut rng = pmcts_util::Xoshiro256pp::new(77);
        for _ in 0..10 {
            let mv = state.random_move(&mut rng).unwrap();
            state.apply(mv);
        }
        s.search(state, SearchBudget::Iterations(50));
        assert_eq!(s.last_reused_visits(), 0);
    }

    #[test]
    fn chain_deeper_than_reroot_depth_starts_cold() {
        // A long pass chain can put the next search position more than
        // `reroot_depth` plies below the previous root. The searcher must
        // then start cold, not warm — `find_state` never scans past the
        // depth limit, even when the position exists deeper in the tree.
        let mut s = PersistentSearcher::<Reversi>::new(cfg(6));
        s.search(Reversi::initial(), SearchBudget::Iterations(4000));

        // Walk 5 plies (> reroot_depth = 4) down the most-visited line, so
        // the reached position is certain to exist in the carried tree.
        let deep = s.reroot_depth + 1;
        let carried = s.carry.clone().expect("tree is carried");
        let mut node = carried.root();
        for _ in 0..deep {
            node = *carried
                .children(node)
                .iter()
                .max_by_key(|&&c| carried.visits(c))
                .expect("searched line extends past reroot_depth");
        }
        let state = *carried.state(node);
        // Control: an unrestricted scan would find the position...
        assert!(carried.find_state(&state, deep).is_some());
        // ...but the depth-limited scan used for re-rooting does not.
        assert!(carried.find_state(&state, s.reroot_depth).is_none());

        s.search(state, SearchBudget::Iterations(50));
        assert_eq!(
            s.last_reused_visits(),
            0,
            "deeper-than-reroot_depth position must start a cold tree"
        );
    }

    #[test]
    fn reset_clears_carry() {
        let mut s = PersistentSearcher::<Reversi>::new(cfg(4));
        let r1 = s.search(Reversi::initial(), SearchBudget::Iterations(200));
        let mut state = Reversi::initial();
        state.apply(r1.best_move.unwrap());
        let mut buf = MoveBuf::new();
        state.legal_moves(&mut buf);
        state.apply(buf[0]);
        s.reset();
        s.search(state, SearchBudget::Iterations(50));
        assert_eq!(s.last_reused_visits(), 0);
    }

    #[test]
    fn searching_same_position_twice_reuses_everything() {
        let mut s = PersistentSearcher::<Reversi>::new(cfg(5));
        let r1 = s.search(Reversi::initial(), SearchBudget::Iterations(100));
        let r2 = s.search(Reversi::initial(), SearchBudget::Iterations(100));
        assert_eq!(s.last_reused_visits(), 100);
        assert!(r2.tree_nodes >= r1.tree_nodes);
        // Root visits accumulate across both searches.
        let total: u64 = r2.root_stats.iter().map(|st| st.visits).sum();
        assert_eq!(total, 200);
    }
}

#[cfg(test)]
mod subtree_tests {
    use crate::config::{MctsConfig, SearchBudget};
    use crate::searcher::BudgetTracker;
    use crate::sequential::SequentialSearcher;
    use crate::tree::SearchTree;
    use pmcts_games::Reversi;

    #[test]
    fn extract_subtree_preserves_statistics_and_structure() {
        let mut tree = SearchTree::new(pmcts_games::Game::initial());
        let mut tracker = BudgetTracker::new(SearchBudget::Iterations(300));
        let mut s = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(9));
        s.run_on_tree(
            &mut tree,
            &mut tracker,
            &mut crate::telemetry::PhaseBreakdown::new(),
        );

        let child = tree.children(tree.root())[0];
        let child_visits = tree.visits(child);
        let child_wins = tree.wins(child);
        let sub = tree.extract_subtree(child);

        assert_eq!(sub.visits(sub.root()), child_visits);
        assert_eq!(sub.wins(sub.root()), child_wins);
        assert_eq!(sub.depth(sub.root()), 0);
        assert_eq!(sub.parent(sub.root()), None);
        assert!(sub.len() <= tree.len());
        // Parent/depth links are consistent in the extracted tree.
        for id in 0..sub.len() as u32 {
            for &c in sub.children(id) {
                assert_eq!(sub.parent(c), Some(id));
                assert_eq!(sub.depth(c), sub.depth(id) + 1);
            }
        }
        // Child visit sums still bounded by parents.
        for id in 0..sub.len() as u32 {
            let total: u64 = sub.children(id).iter().map(|&c| sub.visits(c)).sum();
            assert!(total <= sub.visits(id));
        }
    }

    #[test]
    fn find_state_locates_children() {
        let mut tree = SearchTree::new(pmcts_games::Game::initial());
        let mut tracker = BudgetTracker::new(SearchBudget::Iterations(100));
        let mut s = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(10));
        s.run_on_tree(
            &mut tree,
            &mut tracker,
            &mut crate::telemetry::PhaseBreakdown::new(),
        );

        let child = tree.children(tree.root())[0];
        let state = *tree.state(child);
        let found = tree.find_state(&state, 2).expect("child state present");
        assert_eq!(*tree.state(found), state);
        // Depth restriction: the root itself is found at depth 0.
        let root_state = *tree.state(tree.root());
        assert_eq!(tree.find_state(&root_state, 0), Some(tree.root()));
    }
}
