//! The original array-of-structs search tree, retained as a baseline.
//!
//! This is the pre-SoA [`crate::tree::SearchTree`] layout: one `Node` struct
//! per tree node, each owning a heap-allocated `children: Vec<NodeId>` and an
//! inline 128-slot untried-move buffer. It is kept for the same reason
//! `execute_kernel_lockstep` survives in `gpu-sim`: as a slow, obviously
//! correct oracle. The layout-equivalence tests in this module grow both
//! trees through identical operation sequences and assert bit-identical
//! statistics, and the `throughput` benchmark measures tree-op rates on both
//! layouts so the SoA speedup is reported against a baseline compiled in the
//! same binary with the same flags.
//!
//! Nothing in the search path uses this module.

use crate::config::FinalMoveRule;
use crate::tree::{best_from_stats, NodeId, RootStat};
use crate::ucb::ucb1;
use pmcts_games::{Game, MoveBuf, Player};
use pmcts_util::Rng64;

/// One node of the baseline tree (original layout).
#[derive(Clone, Debug)]
pub struct AosNode<G: Game> {
    /// Game state at this node.
    pub state: G,
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// Move that led from the parent to this node; `None` for the root.
    pub mv: Option<G::Move>,
    /// Expanded children.
    pub children: Vec<NodeId>,
    /// Legal moves not yet expanded into children.
    pub untried: MoveBuf<G::Move>,
    /// Number of simulations that have passed through this node.
    pub visits: u64,
    /// Accumulated reward for the player who moved into this node.
    pub wins: f64,
    /// Distance from the root.
    pub depth: u32,
}

impl<G: Game> AosNode<G> {
    fn new(state: G, parent: Option<NodeId>, mv: Option<G::Move>, depth: u32) -> Self {
        let mut untried = MoveBuf::new();
        state.legal_moves(&mut untried);
        AosNode {
            state,
            parent,
            mv,
            children: Vec::new(),
            untried,
            visits: 0,
            wins: 0.0,
            depth,
        }
    }

    /// Whether every legal move has been expanded.
    #[inline]
    pub fn fully_expanded(&self) -> bool {
        self.untried.is_empty()
    }
}

/// The baseline array-of-structs MCTS tree (original layout).
#[derive(Clone, Debug)]
pub struct AosSearchTree<G: Game> {
    nodes: Vec<AosNode<G>>,
    max_depth: u32,
}

impl<G: Game> AosSearchTree<G> {
    /// Creates a tree containing only the root.
    pub fn new(root_state: G) -> Self {
        AosSearchTree {
            nodes: vec![AosNode::new(root_state, None, None, 0)],
            max_depth: 0,
        }
    }

    /// The root node id (always 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// Node count.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Deepest node created so far.
    #[inline]
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Immutable node access.
    #[inline]
    pub fn node(&self, id: NodeId) -> &AosNode<G> {
        &self.nodes[id as usize]
    }

    /// Selection exactly as the original layout implemented it: UCB with
    /// `ln` recomputed per child.
    pub fn select(&self, exploration_c: f64) -> NodeId {
        let mut id = self.root();
        loop {
            let node = self.node(id);
            if !node.fully_expanded() || node.children.is_empty() {
                return id;
            }
            let parent_visits = node.visits;
            let mut best = node.children[0];
            let mut best_value = f64::NEG_INFINITY;
            for &child in &node.children {
                let c = self.node(child);
                let value = ucb1(parent_visits, c.visits, c.wins, exploration_c);
                if value > best_value {
                    best_value = value;
                    best = child;
                }
            }
            id = best;
        }
    }

    /// Expansion exactly as the original layout implemented it.
    ///
    /// # Panics
    /// Panics if `id` has no untried moves.
    pub fn expand<R: Rng64>(&mut self, id: NodeId, rng: &mut R) -> NodeId {
        let child_id = self.nodes.len() as NodeId;
        let depth = {
            let node = &mut self.nodes[id as usize];
            assert!(!node.untried.is_empty(), "expand on fully expanded node");
            let pick = rng.next_below(node.untried.len() as u32) as usize;
            let mv = node.untried.swap_remove(pick);
            let mut state = node.state;
            state.apply(mv);
            node.children.push(child_id);
            let depth = node.depth + 1;
            self.nodes
                .push(AosNode::new(state, Some(id), Some(mv), depth));
            depth
        };
        self.max_depth = self.max_depth.max(depth);
        child_id
    }

    /// Backpropagation exactly as the original layout implemented it.
    pub fn backprop(&mut self, from: NodeId, wins_p1: f64, count: u64) {
        debug_assert!(wins_p1 >= 0.0 && wins_p1 <= count as f64);
        let mut id = Some(from);
        while let Some(cur) = id {
            let parent = self.node(cur).parent;
            let reward = match parent {
                Some(p) => match self.node(p).state.to_move() {
                    Player::P1 => wins_p1,
                    Player::P2 => count as f64 - wins_p1,
                },
                None => 0.0,
            };
            let node = &mut self.nodes[cur as usize];
            node.visits += count;
            node.wins += reward;
            id = parent;
        }
    }

    /// Statistics of the root's children, in expansion order.
    pub fn root_stats(&self) -> Vec<RootStat<G::Move>> {
        self.node(self.root())
            .children
            .iter()
            .map(|&c| {
                let n = self.node(c);
                RootStat {
                    mv: n.mv.expect("non-root node has a move"),
                    visits: n.visits,
                    wins: n.wins,
                }
            })
            .collect()
    }

    /// Chooses a move from this tree's root statistics.
    pub fn best_move(&self, rule: FinalMoveRule) -> Option<G::Move> {
        best_from_stats(&self.root_stats(), rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SearchTree;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_util::Xoshiro256pp;

    /// Grows both layouts through the identical operation sequence and
    /// asserts every observable — selection decisions, node statistics,
    /// links, untried move order, root stats — matches bit for bit. This is
    /// the oracle proving the SoA rewrite is a pure layout change.
    fn assert_layouts_equivalent<G: Game>(root: G, seed: u64, iters: usize) {
        let mut aos = AosSearchTree::new(root);
        let mut soa = SearchTree::new(root);
        let mut rng_a = Xoshiro256pp::new(seed);
        let mut rng_s = Xoshiro256pp::new(seed);
        let mut outcome = Xoshiro256pp::new(seed ^ 0x5EED);
        for _ in 0..iters {
            let sel_a = aos.select(1.4);
            let sel_s = soa.select(1.4);
            assert_eq!(sel_a, sel_s, "selection diverged");
            let node = if !aos.node(sel_a).fully_expanded() {
                let a = aos.expand(sel_a, &mut rng_a);
                let s = soa.expand(sel_s, &mut rng_s);
                assert_eq!(a, s, "expansion id diverged");
                a
            } else {
                sel_a
            };
            let wins_p1 = (outcome.next_below(3) as f64) / 2.0;
            aos.backprop(node, wins_p1, 1);
            soa.backprop(node, wins_p1, 1);
        }
        assert_eq!(aos.len(), soa.len());
        assert_eq!(aos.max_depth(), soa.max_depth());
        for id in 0..aos.len() as NodeId {
            let n = aos.node(id);
            assert_eq!(n.visits, soa.visits(id), "visits at {id}");
            assert_eq!(
                n.wins.to_bits(),
                soa.wins(id).to_bits(),
                "wins bits at {id}"
            );
            assert_eq!(n.depth, soa.depth(id), "depth at {id}");
            assert_eq!(n.parent, soa.parent(id), "parent at {id}");
            assert_eq!(n.mv, soa.move_into(id), "move at {id}");
            assert_eq!(&n.children[..], soa.children(id), "children at {id}");
            assert_eq!(n.untried.as_slice(), soa.untried(id), "untried at {id}");
            assert_eq!(n.state, *soa.state(id), "state at {id}");
        }
        assert_eq!(aos.root_stats(), soa.root_stats());
    }

    #[test]
    fn layouts_equivalent_on_reversi() {
        assert_layouts_equivalent(Reversi::initial(), 7, 400);
    }

    #[test]
    fn layouts_equivalent_on_tictactoe_to_terminal() {
        // Small game: the whole tree gets built, exercising terminal nodes
        // and exhausted interior nodes.
        assert_layouts_equivalent(TicTacToe::initial(), 11, 2000);
    }

    #[test]
    fn layouts_equivalent_across_seeds() {
        for seed in 1..6 {
            assert_layouts_equivalent(Reversi::initial(), seed, 150);
        }
    }

    #[test]
    fn baseline_expand_consumes_untried() {
        let mut t = AosSearchTree::new(Reversi::initial());
        let mut rng = Xoshiro256pp::new(2);
        let c = t.expand(t.root(), &mut rng);
        assert_eq!(t.len(), 2);
        assert_eq!(t.node(t.root()).untried.len(), 3);
        assert_eq!(t.node(t.root()).children, vec![c]);
    }
}
