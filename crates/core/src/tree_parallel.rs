//! Tree parallelism with virtual loss (Chaslot et al., the paper's ref \[3\]).
//!
//! All workers share **one** tree behind a lock; a worker descending the
//! tree applies a *virtual loss* (an extra visit with zero reward) to each
//! node on its path so that concurrent workers are repelled from the same
//! line; after the playout the reward is added back. The paper includes
//! this scheme in its taxonomy precisely because it does *not* map onto
//! GPUs — it needs fine-grained synchronisation that SIMD thread groups
//! cannot afford — so it serves here as the CPU-side contrast and
//! completes the §III scheme inventory.
//!
//! Unlike the other searchers this one is *not* deterministic: interleaving
//! of workers depends on the OS scheduler. Tests therefore assert
//! statistical properties only.

use crate::config::{MctsConfig, SearchBudget};
use crate::searcher::{SearchReport, Searcher};
use crate::telemetry::{critical_index, PhaseBreakdown};
use crate::tree::SearchTree;
use crate::ucb::ucb1;
use parking_lot::Mutex;
use pmcts_games::{random_playout, Game, Player};
use pmcts_util::{Rng64, SimTime, Xoshiro256pp};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared-tree CPU searcher with virtual loss.
#[derive(Clone, Debug)]
pub struct TreeParallelSearcher<G: Game> {
    config: MctsConfig,
    threads: usize,
    /// Virtual-loss weight: how many pretend losses a descending worker
    /// deposits on its path (1 is standard).
    virtual_loss: u64,
    generation: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> TreeParallelSearcher<G> {
    /// Creates a tree-parallel searcher over `threads` workers.
    pub fn new(config: MctsConfig, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        TreeParallelSearcher {
            config,
            threads,
            virtual_loss: 1,
            generation: 0,
            _game: std::marker::PhantomData,
        }
    }

    /// Overrides the virtual-loss weight.
    pub fn with_virtual_loss(mut self, vl: u64) -> Self {
        self.virtual_loss = vl;
        self
    }

    /// Selection + expansion + virtual-loss application under the lock;
    /// returns the node to simulate, its path to the root, and whether a
    /// new node was expanded.
    fn select_and_mark<R: Rng64>(
        tree: &mut SearchTree<G>,
        c: f64,
        vl: u64,
        rng: &mut R,
    ) -> (u32, Vec<u32>, bool) {
        // Selection (same rule as SearchTree::select, inlined because we
        // collect the path for the virtual loss).
        let mut id = tree.root();
        let mut path = vec![id];
        loop {
            let children = tree.children(id);
            if !tree.fully_expanded(id) || children.is_empty() {
                break;
            }
            let parent_visits = tree.visits(id);
            let mut best = children[0];
            let mut best_value = f64::NEG_INFINITY;
            for &child in children {
                let value = ucb1(parent_visits, tree.visits(child), tree.wins(child), c);
                if value > best_value {
                    best_value = value;
                    best = child;
                }
            }
            id = best;
            path.push(id);
        }
        let mut expanded = false;
        if !tree.fully_expanded(id) {
            id = tree.expand(id, rng);
            path.push(id);
            expanded = true;
        }
        // Virtual loss: pretend `vl` lost simulations along the path.
        for &n in &path {
            tree.add_visits(n, vl);
        }
        (id, path, expanded)
    }

    /// Removes the virtual loss and applies the real result.
    fn unmark_and_backprop(tree: &mut SearchTree<G>, path: &[u32], vl: u64, wins_p1: f64) {
        for &n in path {
            tree.sub_visits(n, vl);
        }
        let leaf = *path.last().expect("non-empty path");
        tree.backprop(leaf, wins_p1, 1);
    }
}

impl<G: Game> Searcher<G> for TreeParallelSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        self.generation += 1;
        let tree = Mutex::new(SearchTree::new(root));
        let iterations = AtomicU64::new(0);
        let config = &self.config;
        let vl = self.virtual_loss;
        let gen = self.generation;

        let terminal = tree.lock().is_terminal(0);
        let mut worker_results: Vec<(SimTime, PhaseBreakdown)> = Vec::new();
        if !terminal {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.threads)
                    .map(|w| {
                        let tree = &tree;
                        let iterations = &iterations;
                        scope.spawn(move |_| {
                            let mut rng = Xoshiro256pp::derive(
                                config.seed,
                                0x7EEE ^ (w as u64) ^ (gen << 32),
                            );
                            let cpu = config.cpu_cost;
                            let mut elapsed = SimTime::ZERO;
                            let mut mine = PhaseBreakdown::new();
                            loop {
                                match budget {
                                    SearchBudget::Iterations(n) => {
                                        // Claim an iteration slot; the total
                                        // across workers is exactly n.
                                        if iterations.fetch_add(1, Ordering::Relaxed) >= n {
                                            iterations.fetch_sub(1, Ordering::Relaxed);
                                            break;
                                        }
                                    }
                                    SearchBudget::VirtualTime(t) => {
                                        if elapsed >= t {
                                            break;
                                        }
                                        iterations.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                let (node, path, expanded) = {
                                    let mut t = tree.lock();
                                    Self::select_and_mark(
                                        &mut t,
                                        config.exploration_c,
                                        vl,
                                        &mut rng,
                                    )
                                };
                                let (state, depth) = {
                                    let t = tree.lock();
                                    (*t.state(node), t.depth(node))
                                };
                                let result = random_playout(state, &mut rng);
                                let wins_p1 = result.reward_for(Player::P1);
                                {
                                    let mut t = tree.lock();
                                    Self::unmark_and_backprop(&mut t, &path, vl, wins_p1);
                                }
                                elapsed += cpu.tree_op(depth) + cpu.playout(result.plies);
                                mine.select += cpu.select_cost(depth);
                                mine.expand += cpu.expand_cost();
                                mine.kernel += cpu.playout(result.plies);
                                mine.simulations += 1;
                                mine.expansions += u64::from(expanded);
                            }
                            (elapsed, mine)
                        })
                    })
                    .collect();
                for h in handles {
                    worker_results.push(h.join().expect("tree-parallel worker panicked"));
                }
            })
            .expect("tree-parallel scope failed");
        }

        // Workers run concurrently: elapsed = the slowest worker, phase
        // times = that worker's (still summing to elapsed); counters are
        // summed over all workers. Like everything else in this searcher
        // the breakdown depends on scheduler interleaving.
        let mut phases = PhaseBreakdown::new();
        for (_, w) in &worker_results {
            phases.absorb_counters(w);
        }
        let crit = critical_index(worker_results.iter().map(|(e, _)| *e));
        if let Some(i) = crit {
            phases.adopt_times(&worker_results[i].1);
        }

        let tree = tree.into_inner();
        let iterations = iterations.load(Ordering::Relaxed);
        let elapsed = crit.map(|i| worker_results[i].0).unwrap_or(SimTime::ZERO);
        phases.budget_overshoot = crate::searcher::overshoot_of(budget, elapsed);
        SearchReport {
            best_move: tree.best_move(config.final_move),
            simulations: iterations,
            iterations,
            tree_nodes: tree.len() as u64,
            max_depth: tree.max_depth(),
            elapsed,
            root_stats: tree.root_stats(),
            phases,
        }
    }

    fn name(&self) -> String {
        format!(
            "tree parallelism ({} CPU threads, virtual loss)",
            self.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn iteration_budget_is_exact() {
        let mut s = TreeParallelSearcher::<Reversi>::new(cfg(1), 4);
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(200));
        assert_eq!(r.iterations, 200);
        let total: u64 = r.root_stats.iter().map(|st| st.visits).sum();
        assert_eq!(total, 200, "virtual losses must all be removed");
    }

    #[test]
    fn no_virtual_loss_residue() {
        let mut s = TreeParallelSearcher::<Reversi>::new(cfg(2), 8).with_virtual_loss(3);
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(300));
        // Every node's visits are real simulation counts afterwards; root
        // children sum to the number of simulations.
        let total: u64 = r.root_stats.iter().map(|st| st.visits).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn single_thread_matches_sequential_semantics() {
        let mut s = TreeParallelSearcher::<Reversi>::new(cfg(3), 1);
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(100));
        assert_eq!(r.simulations, 100);
        assert!(r.best_move.is_some());
        assert!(r.tree_nodes <= 101);
    }

    #[test]
    fn finds_tactical_move() {
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher = TreeParallelSearcher::<TicTacToe>::new(cfg(4), 4);
        let r = searcher.search(s, SearchBudget::Iterations(2_000));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn terminal_root() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let mut searcher = TreeParallelSearcher::<TicTacToe>::new(cfg(5), 4);
        let r = searcher.search(s, SearchBudget::Iterations(10));
        assert_eq!(r.best_move, None);
        assert_eq!(r.simulations, 0);
    }

    #[test]
    fn virtual_time_budget_terminates() {
        let mut s = TreeParallelSearcher::<Reversi>::new(cfg(6), 4);
        let r = s.search(
            Reversi::initial(),
            SearchBudget::VirtualTime(SimTime::from_millis(5)),
        );
        assert!(r.iterations > 0);
        assert!(r.elapsed >= SimTime::from_millis(5));
    }
}
