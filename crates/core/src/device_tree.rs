//! Device-resident tree search: whole MCTS iterations inside the kernel.
//!
//! The block-parallel scheme (Fig. 2c) keeps the trees on the host and
//! round-trips every iteration through it: select/expand on the CPU, one
//! launch of playouts, backprop on the CPU. That host round-trip is the
//! Fig. 5 ceiling — the sequential part grows with the tree count, and
//! every iteration pays a full launch + transfer wave. The device-resident
//! scheme moves the trees into GPU global memory (DESIGN.md §13): a
//! *persistent* kernel runs complete MCTS iterations per lane — UCB
//! descent, expansion via the device allocator, playout, backprop — and
//! the host's per-iteration work collapses to nothing. Upload is charged
//! once per search (the root-state delta); readback once per launch (the
//! root-child statistics); the `select`/`expand` telemetry phases are
//! legitimately zero because the kernel phase absorbs the tree walk.
//!
//! Layout mirrors block parallelism: `launch.blocks` independent trees,
//! one per block; each of a block's `threads_per_block` lanes runs one
//! full iteration per round against the block's tree, in lane order, so
//! one budget *iteration* (a round) performs `blocks × threads_per_block`
//! simulations — the same budget unit as
//! [`BlockParallelSearcher`](crate::block_parallel::BlockParallelSearcher). The
//! canonical order (rounds outer, lanes inner, sequential tree semantics)
//! makes the result a pure function of the seed: blocks fan out over the
//! worker pool, but every block's work is internally sequential and all
//! folding happens in block order, so reports are bit-identical for any
//! `--host-threads` (the oracle test below replays the same order on the
//! host reference path).
//!
//! Cost accounting lives in [`pmcts_gpu_sim::device_tree`]: warp
//! divergence settles once over each lane's *summed* steps (a lane
//! finishing a short playout immediately starts its next iteration), tree
//! steps are priced at the cheaper in-kernel tree-walk constant, and the
//! trees never leave the device between rounds or launches.
//!
//! Fault policy (matrix row `device_tree`): a slowdown stretches device
//! time; an aborted block skips the launch (its tree receives nothing); a
//! kernel hang costs the detection deadline and is retried once — a
//! second hang abandons the device for the move and falls back to the
//! host-driven block-parallel loop on the same resident trees.

use crate::block_parallel::{backprop_outputs, report_from_trees, select_and_expand_all};
use crate::config::{MctsConfig, SearchBudget};
use crate::gpu::PlayoutKernel;
use crate::searcher::{BudgetTracker, SearchReport, Searcher};
use crate::telemetry::PhaseBreakdown;
use crate::tree::SearchTree;
use pmcts_games::{random_playout, Game, Player};
use pmcts_gpu_sim::{
    Device, DeviceAllocator, DeviceTreeSpec, GpuFault, LaunchConfig, TreeLaunchTrace, WorkerPool,
};
use pmcts_util::{Rng64, SimTime, Xoshiro256pp};

/// Plies below an old root scanned when re-rooting resident trees
/// (same rationale as `PersistentSearcher`: move + reply + one forced
/// pass on each side).
const REROOT_DEPTH: u32 = 4;

/// Upper bound on rounds planned into a single persistent launch under a
/// `VirtualTime` budget (keeps hang dry-runs and round cost distribution
/// bounded; iteration budgets run in one launch regardless).
const MAX_PLANNED_ROUNDS: u64 = 65_536;

/// GPU searcher whose kernel owns the trees: one resident tree per block,
/// complete MCTS iterations per lane, host phases collapsed to zero.
#[derive(Clone, Debug)]
pub struct DeviceTreeSearcher<G: Game> {
    config: MctsConfig,
    device: Device,
    launch: LaunchConfig,
    tree_spec: DeviceTreeSpec,
    stream: u64,
    /// Host RNG, used only by the hang-degradation fallback (expansion
    /// picks + degraded CPU playouts), mirroring the block-parallel
    /// stream so the fallback is the same machine.
    rng: Xoshiro256pp,
    epoch: u64,
    /// Trees left on the device by the previous search (re-rooted on the
    /// next one; `reset` drops them).
    resident: Option<Vec<SearchTree<G>>>,
}

/// Per-block result of one persistent launch, folded in block order.
#[derive(Clone, Debug, Default)]
struct BlockRun {
    /// Per-lane `(tree_steps, playout_steps)` summed over the rounds.
    per_lane: Vec<(u64, u64)>,
    /// Fresh node slots claimed, in allocation order.
    fresh: Vec<u32>,
    /// Expansions that recycled an evicted slot in place (bounded trees).
    recycled: u64,
    sims: u64,
    expansions: u64,
}

impl<G: Game> DeviceTreeSearcher<G> {
    /// Creates a device-resident tree searcher with `launch.blocks` trees
    /// and `launch.threads_per_block` iterations per tree per round.
    pub fn new(config: MctsConfig, device: Device, launch: LaunchConfig) -> Self {
        Self::with_stream(config, device, launch, 0)
    }

    /// Like [`new`](Self::new) but on RNG sub-stream `stream`.
    pub fn with_stream(
        config: MctsConfig,
        device: Device,
        launch: LaunchConfig,
        stream: u64,
    ) -> Self {
        launch.validate(device.spec());
        let rng = Xoshiro256pp::derive(config.seed, 0xDE1C ^ stream);
        DeviceTreeSearcher {
            config,
            device,
            launch,
            tree_spec: DeviceTreeSpec::c2050_resident(),
            stream,
            rng,
            epoch: 0,
            resident: None,
        }
    }

    /// The launch geometry (blocks = resident trees).
    pub fn launch_config(&self) -> LaunchConfig {
        self.launch
    }

    /// Number of resident trees (= blocks).
    pub fn trees(&self) -> u32 {
        self.launch.blocks
    }

    /// Overrides the in-kernel cost constants (tests and ablations).
    pub fn with_tree_spec(mut self, spec: DeviceTreeSpec) -> Self {
        self.tree_spec = spec;
        self
    }

    /// Drops the resident trees (e.g. when starting a new game).
    pub fn reset(&mut self) {
        self.resident = None;
    }

    fn next_stream_seed(&mut self) -> u64 {
        self.epoch += 1;
        stream_seed(self.config.seed, self.stream, self.epoch)
    }

    /// Re-roots the resident trees at `root` (falling back to cold trees
    /// where the position is not found) and mirrors each into a fresh
    /// device allocator adopting the compacted live prefix.
    fn prepare(&mut self, root: G) -> (Vec<SearchTree<G>>, Vec<DeviceAllocator>) {
        let blocks = self.launch.blocks as usize;
        let trees: Vec<SearchTree<G>> = match self.resident.take() {
            Some(old) if old.len() == blocks => old
                .into_iter()
                .map(|t| match t.find_state(&root, REROOT_DEPTH) {
                    Some(id) => t.extract_subtree(id),
                    None => SearchTree::for_config(root, &self.config),
                })
                .collect(),
            _ => (0..blocks)
                .map(|_| SearchTree::for_config(root, &self.config))
                .collect(),
        };
        let allocs = trees
            .iter()
            .map(|t| {
                DeviceAllocator::with_live_prefix(
                    t.capacity().unwrap_or(u32::MAX),
                    t.live_nodes() as u32,
                )
            })
            .collect();
        (trees, allocs)
    }

    /// Rounds to plan into the next persistent launch: everything that is
    /// left for iteration budgets; a deadline-derived estimate (one round
    /// short, so the final top-ups are single rounds and overshoot stays
    /// bounded by one round's cost growth) for virtual-time budgets.
    fn planned_rounds(budget: SearchBudget, tracker: &BudgetTracker, last_round: SimTime) -> u64 {
        match budget {
            SearchBudget::Iterations(n) => n.saturating_sub(tracker.iterations).max(1),
            SearchBudget::VirtualTime(t) => {
                if last_round == SimTime::ZERO {
                    1
                } else {
                    let remaining =
                        t.saturating_sub(tracker.elapsed).as_nanos() / last_round.as_nanos().max(1);
                    remaining.saturating_sub(1).clamp(1, MAX_PLANNED_ROUNDS)
                }
            }
        }
    }
}

/// Per-launch stream seed: experiment seed × sub-stream × epoch (the same
/// derivation every launching searcher uses).
pub(crate) fn stream_seed(seed: u64, stream: u64, epoch: u64) -> u64 {
    seed.wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(epoch.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// One complete in-kernel MCTS iteration for one lane: UCB descent,
/// expansion (pick drawn from the lane RNG), playout from the frontier,
/// backprop into the resident tree. Records the lane's step counts —
/// `depth+1` node reads for the descent, one allocator claim, `depth+1`
/// updates for the backprop walk — and the playout plies.
///
/// This is the canonical iteration both the searcher and the oracle
/// reference replay; its order (and nothing else) defines the result.
fn lane_iteration<G: Game>(
    tree: &mut SearchTree<G>,
    rng: &mut Xoshiro256pp,
    exploration_c: f64,
    run: &mut BlockRun,
    lane: usize,
) {
    let sel = tree.select(exploration_c);
    let sel_depth = tree.depth(sel) as u64;
    let untried = tree.untried_len(sel);
    let node = if untried > 0 {
        let pick = rng.next_below(untried as u32);
        let live_before = tree.live_nodes();
        let id = tree.expand_with_pick(sel, pick);
        if tree.live_nodes() > live_before {
            run.fresh.push(id);
        } else {
            // Bounded tree at capacity: the expansion evicted an LRU leaf
            // and reused its slot in place.
            run.recycled += 1;
        }
        run.expansions += 1;
        id
    } else {
        sel
    };
    let node_depth = tree.depth(node) as u64;
    let playout = random_playout(*tree.state(node), rng);
    tree.backprop(node, playout.reward_for(Player::P1), 1);
    let cell = &mut run.per_lane[lane];
    cell.0 += sel_depth + 1 + 1 + node_depth + 1;
    cell.1 += (playout.plies as u64).max(1);
    run.sims += 1;
}

/// Runs `rounds` rounds of the persistent kernel over every block's tree
/// (blocks fan out over the pool; each block is internally sequential:
/// rounds outer, lanes inner). Folds traces, allocator mirroring and
/// counters in block order, prices the launch, and returns
/// `(stats, simulations, expansions)`.
#[allow(clippy::too_many_arguments)]
fn run_rounds<G: Game>(
    trees: &mut [SearchTree<G>],
    allocs: &mut [DeviceAllocator],
    pool: &WorkerPool,
    launch: LaunchConfig,
    tree_spec: &DeviceTreeSpec,
    device: &Device,
    rounds: u64,
    seed: u64,
    exploration_c: f64,
    voided: Option<usize>,
) -> (pmcts_gpu_sim::KernelStats, u64, u64) {
    let tpb = launch.threads_per_block as usize;
    let runs: Vec<BlockRun> = pool.map_indexed(trees, |b, tree| {
        let mut run = BlockRun {
            per_lane: vec![(0, 0); tpb],
            ..BlockRun::default()
        };
        if Some(b) == voided {
            return run;
        }
        // Lane RNGs derive exactly like the playout kernel's: one stream
        // per global thread id, fresh per launch.
        let mut rngs: Vec<Xoshiro256pp> = (0..tpb)
            .map(|l| Xoshiro256pp::derive(seed, (b * tpb + l) as u64))
            .collect();
        for _ in 0..rounds {
            for (l, rng) in rngs.iter_mut().enumerate() {
                lane_iteration(tree, rng, exploration_c, &mut run, l);
            }
        }
        run
    });

    let mut sims = 0u64;
    let mut expansions = 0u64;
    let mut lanes = Vec::with_capacity(runs.len());
    for (b, run) in runs.into_iter().enumerate() {
        for &slot in &run.fresh {
            assert!(
                allocs[b].claim(slot),
                "device allocator rejected shadow-tree slot {slot}"
            );
        }
        allocs[b].note_recycled(run.recycled);
        debug_assert_eq!(
            allocs[b].live() as usize,
            trees[b].live_nodes(),
            "device allocator drifted from the shadow tree"
        );
        sims += run.sims;
        expansions += run.expansions;
        lanes.push(run.per_lane);
    }

    let readback_bytes: u64 = trees
        .iter()
        .map(|t| t.children(t.root()).len() as u64)
        .sum::<u64>()
        * tree_spec.root_stat_bytes;
    let trace = TreeLaunchTrace::from_lanes(launch.threads_per_block, lanes);
    let stats = trace.finish(tree_spec, device.spec(), &launch, readback_bytes);
    (stats, sims, expansions)
}

impl<G: Game> Searcher<G> for DeviceTreeSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        let (mut trees, mut allocs) = self.prepare(root);
        let mut tracker = BudgetTracker::new(budget);
        let mut phases = PhaseBreakdown::new();
        let mut simulations = 0u64;
        let cpu = self.config.cpu_cost;
        let spec = self.device.spec().clone();
        let pool = std::sync::Arc::clone(self.device.worker_pool());
        let exploration_c = self.config.exploration_c;
        let plan = self.config.faults;
        let tpb = self.launch.threads_per_block as usize;

        if trees[0].is_terminal(trees[0].root()) {
            let report = report_from_trees(&self.config, &trees, &tracker, 0, phases);
            self.resident = Some(trees);
            return report;
        }

        let mut uploaded = false;
        let mut last_round_cost = SimTime::ZERO;
        // Hang deadlines accrued before any round could complete; folded
        // into the next charged iteration so the ledger stays exact.
        let mut pending_fault_cost = SimTime::ZERO;
        let mut hang_retried = false;
        let mut host_fallback = false;

        while tracker.may_continue() {
            if host_fallback {
                // Degraded mode: the device is abandoned for this move;
                // drive the same resident trees with the host-side
                // block-parallel round (select/expand on the CPU, one
                // playout launch, backprop), including its own
                // hang-retry / CPU-playout degradation.
                let mut iter_cost = std::mem::take(&mut pending_fault_cost);
                let (frontier, host_cost) = select_and_expand_all(
                    &mut trees,
                    &mut self.rng,
                    exploration_c,
                    &cpu,
                    &pool,
                    &mut phases,
                );
                iter_cost += host_cost;
                let mut retried = false;
                loop {
                    let kernel = PlayoutKernel::new(
                        frontier.iter().map(|&(_, s, _)| s).collect(),
                        self.next_stream_seed(),
                    );
                    let fault = plan.gpu_fault(self.stream, self.epoch, self.launch.blocks);
                    let upload = spec.transfer_time(kernel.upload_bytes());
                    let result = self.device.launch_with_fault(&kernel, self.launch, fault);
                    phases.upload += cpu.launch_prep + upload;
                    iter_cost += cpu.launch_prep + upload;

                    if result.fault == GpuFault::Hang {
                        let deadline = plan.hang_deadline(result.stats.elapsed());
                        phases.kernel += deadline;
                        iter_cost += deadline;
                        phases.faults.injected += 1;
                        if !retried {
                            retried = true;
                            phases.faults.retried += 1;
                            continue;
                        }
                        for (b, tree) in trees.iter_mut().enumerate() {
                            let playout = random_playout(frontier[b].1, &mut self.rng);
                            let cost = cpu.playout(playout.plies);
                            phases.kernel += cost;
                            iter_cost += cost;
                            tree.backprop(frontier[b].0, playout.reward_for(Player::P1), 1);
                            simulations += 1;
                            phases.simulations += 1;
                            phases.faults.degraded += 1;
                        }
                        break;
                    }

                    let voided = match result.fault {
                        GpuFault::BlockAbort(bad) => {
                            phases.faults.injected += 1;
                            phases.faults.degraded += 1;
                            Some(bad as usize)
                        }
                        fault => {
                            if fault != GpuFault::None {
                                phases.faults.injected += 1;
                            }
                            None
                        }
                    };
                    simulations += backprop_outputs(
                        &mut trees,
                        &frontier,
                        &result.outputs,
                        tpb,
                        voided,
                        &pool,
                        &mut phases,
                    );
                    phases.kernel += result.stats.launch_overhead + result.stats.device_time;
                    phases.readback += result.stats.readback_time;
                    iter_cost += result.stats.elapsed();
                    phases.record_launch(&result.stats);
                    break;
                }
                tracker.charge(iter_cost);
                continue;
            }

            let rounds = Self::planned_rounds(budget, &tracker, last_round_cost);
            let seed = self.next_stream_seed();
            let fault = plan.gpu_fault(self.stream, self.epoch, self.launch.blocks);

            if fault == GpuFault::Hang {
                // The persistent launch produced nothing observable. Cost
                // the detection deadline off the launch's nominal elapsed
                // time (computed on clones; the resident trees are
                // untouched), then retry once with a fresh epoch; a second
                // hang abandons the device for this move.
                let mut dry_trees = trees.clone();
                let mut dry_allocs = allocs.clone();
                let (stats, _, _) = run_rounds(
                    &mut dry_trees,
                    &mut dry_allocs,
                    &pool,
                    self.launch,
                    &self.tree_spec,
                    &self.device,
                    rounds,
                    seed,
                    exploration_c,
                    None,
                );
                let deadline = plan.hang_deadline(stats.elapsed());
                phases.kernel += deadline;
                pending_fault_cost += deadline;
                phases.faults.injected += 1;
                if !hang_retried {
                    hang_retried = true;
                    phases.faults.retried += 1;
                } else {
                    phases.faults.degraded += 1;
                    host_fallback = true;
                }
                continue;
            }
            hang_retried = false;

            let voided = match fault {
                GpuFault::BlockAbort(bad) => {
                    phases.faults.injected += 1;
                    phases.faults.degraded += 1;
                    Some(bad as usize % self.launch.blocks as usize)
                }
                _ => None,
            };

            let (mut stats, sims, expansions) = run_rounds(
                &mut trees,
                &mut allocs,
                &pool,
                self.launch,
                &self.tree_spec,
                &self.device,
                rounds,
                seed,
                exploration_c,
                voided,
            );
            if let GpuFault::Slowdown(factor) = fault {
                stats.device_time = stats.device_time * factor.max(1) as u64;
                phases.faults.injected += 1;
            }

            // Exact ledger: launch prep + (first launch only) the root
            // state delta to the upload phase; overhead + device time to
            // the kernel phase; root-stat readback to the readback phase.
            let mut total = stats.elapsed() + cpu.launch_prep + pending_fault_cost;
            pending_fault_cost = SimTime::ZERO;
            phases.upload += cpu.launch_prep;
            if !uploaded {
                uploaded = true;
                let delta = spec.transfer_time(G::device_state_bytes() as u64);
                phases.upload += delta;
                total += delta;
            }
            phases.kernel += stats.launch_overhead + stats.device_time;
            phases.readback += stats.readback_time;
            phases.record_launch(&stats);
            phases.simulations += sims;
            phases.expansions += expansions;
            simulations += sims;

            // Charge the tracker round by round: the integer split sums
            // to the launch total exactly, so iterations count rounds and
            // the phase ledger still equals elapsed to the nanosecond.
            let total_ns = total.as_nanos();
            for i in 0..rounds {
                let share = total_ns * (i + 1) / rounds - total_ns * i / rounds;
                tracker.charge(SimTime::from_nanos(share));
            }
            last_round_cost = SimTime::from_nanos((total_ns / rounds).max(1));
        }

        let report = report_from_trees(&self.config, &trees, &tracker, simulations, phases);
        self.resident = Some(trees);
        report
    }

    fn name(&self) -> String {
        format!(
            "device-resident tree ({} blocks × {} threads)",
            self.launch.blocks, self.launch.threads_per_block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_parallel::BlockParallelSearcher;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_gpu_sim::DeviceSpec;
    use pmcts_util::FaultPlan;

    fn device() -> Device {
        Device::new(DeviceSpec::tesla_c2050())
    }

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    /// Checksummable tree image: per-node (visits, win-sum bits).
    fn tree_image<G: Game>(tree: &SearchTree<G>) -> Vec<(u64, u64)> {
        (0..tree.len() as u32)
            .map(|id| (tree.visits(id), tree.wins(id).to_bits()))
            .collect()
    }

    #[test]
    fn oracle_matches_host_reference_path() {
        // The searcher's result must be bit-identical to a plain host-side
        // replay of the canonical order: cold trees, rounds outer, lanes
        // inner, lane RNGs derived from the launch stream seed.
        let seed = 7u64;
        let launch = LaunchConfig::new(4, 32);
        let rounds = 6u64;
        let mut s = DeviceTreeSearcher::<Reversi>::new(cfg(seed), device(), launch);
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(rounds));
        assert_eq!(r.iterations, rounds);
        let searched = s.resident.as_ref().expect("trees stay resident");
        assert_eq!(searched.len(), launch.blocks as usize);

        let config = cfg(seed);
        let launch_seed = stream_seed(seed, 0, 1);
        let tpb = launch.threads_per_block as usize;
        for (b, searched_tree) in searched.iter().enumerate() {
            let mut reference = SearchTree::for_config(Reversi::initial(), &config);
            let mut rngs: Vec<Xoshiro256pp> = (0..tpb)
                .map(|l| Xoshiro256pp::derive(launch_seed, (b * tpb + l) as u64))
                .collect();
            let mut run = BlockRun {
                per_lane: vec![(0, 0); tpb],
                ..BlockRun::default()
            };
            for _ in 0..rounds {
                for (l, rng) in rngs.iter_mut().enumerate() {
                    lane_iteration(&mut reference, rng, config.exploration_c, &mut run, l);
                }
            }
            assert_eq!(
                tree_image(searched_tree),
                tree_image(&reference),
                "block {b} diverged from the host reference"
            );
        }
    }

    #[test]
    fn simulations_count_grid_times_rounds_and_host_phases_are_zero() {
        let mut s = DeviceTreeSearcher::<Reversi>::new(cfg(1), device(), LaunchConfig::new(4, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(5));
        assert_eq!(r.iterations, 5);
        assert_eq!(r.simulations, 5 * 4 * 32);
        // The kernel absorbs the tree walk: no host select/expand time...
        assert_eq!(r.phases.select, SimTime::ZERO);
        assert_eq!(r.phases.expand, SimTime::ZERO);
        // ...yet the ledger still sums to elapsed exactly.
        assert_eq!(r.phases.phase_sum(), r.elapsed);
        assert_eq!(r.phases.kernel_launches, 1, "one persistent launch");
        assert!(r.phases.kernel > SimTime::ZERO);
        assert!(r.phases.readback > SimTime::ZERO);
        assert!(r.phases.upload > SimTime::ZERO, "root delta + prep");
    }

    #[test]
    fn deterministic_per_seed_and_stream() {
        let run = |seed, stream| {
            DeviceTreeSearcher::<Reversi>::with_stream(
                cfg(seed),
                device(),
                LaunchConfig::new(4, 32),
                stream,
            )
            .search(Reversi::initial(), SearchBudget::Iterations(4))
        };
        assert_eq!(run(3, 0), run(3, 0));
        assert_ne!(run(3, 0).root_stats, run(3, 1).root_stats);
        assert_ne!(run(3, 0).root_stats, run(4, 0).root_stats);
    }

    #[test]
    fn resident_trees_carry_across_searches() {
        let mut s = DeviceTreeSearcher::<Reversi>::new(cfg(2), device(), LaunchConfig::new(2, 32));
        let r1 = s.search(Reversi::initial(), SearchBudget::Iterations(3));
        let r2 = s.search(Reversi::initial(), SearchBudget::Iterations(3));
        // Same position re-searched: every tree re-roots at its old root,
        // so root visits accumulate across the two searches.
        let total: u64 = r2.root_stats.iter().map(|st| st.visits).sum();
        assert_eq!(total, r1.simulations + r2.simulations);
        s.reset();
        let r3 = s.search(Reversi::initial(), SearchBudget::Iterations(3));
        let fresh: u64 = r3.root_stats.iter().map(|st| st.visits).sum();
        assert_eq!(fresh, r3.simulations, "reset forgets the resident trees");
    }

    #[test]
    fn bounded_trees_recycle_on_device() {
        let config = cfg(5).with_tree_capacity(64);
        let mut s = DeviceTreeSearcher::<Reversi>::new(config, device(), LaunchConfig::new(2, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(8));
        // 8 rounds × 32 lanes ≈ 256 expansions per tree against cap 64.
        assert!(r.tree_nodes <= 2 * 64, "capacity respected");
        let trees = s.resident.as_ref().unwrap();
        assert!(trees.iter().all(|t| t.evictions() > 0));
        assert_eq!(r.phases.phase_sum(), r.elapsed);
    }

    #[test]
    fn virtual_speedup_over_block_parallel_is_at_least_1_5x() {
        // The acceptance gate, asserted at the throughput bench geometry:
        // same budget, same grid, ≥1.5× virtual simulations/second.
        let launch = LaunchConfig::new(14, 64);
        let budget = SearchBudget::Iterations(8);
        let block = BlockParallelSearcher::<Reversi>::new(cfg(9), device(), launch)
            .search(Reversi::initial(), budget);
        let resident = DeviceTreeSearcher::<Reversi>::new(cfg(9), device(), launch)
            .search(Reversi::initial(), budget);
        assert_eq!(block.simulations, resident.simulations);
        let ratio = resident.sims_per_second() / block.sims_per_second();
        assert!(
            ratio >= 1.5,
            "device-resident speedup {ratio:.2}× below the 1.5× gate"
        );
    }

    #[test]
    fn virtual_time_budget_stops_near_deadline() {
        let budget = SimTime::from_millis(20);
        let mut s = DeviceTreeSearcher::<Reversi>::new(cfg(6), device(), LaunchConfig::new(4, 32));
        let r = s.search(Reversi::initial(), SearchBudget::VirtualTime(budget));
        assert!(r.iterations > 1, "multiple rounds fit in 20 ms");
        assert_eq!(r.phases.phase_sum(), r.elapsed);
        // Overshoot is bounded by one round's cost growth (the planner
        // undershoots, then tops up with single-round launches).
        let per_round = r.elapsed.as_nanos() / r.iterations;
        assert!(
            r.phases.budget_overshoot.as_nanos() <= per_round,
            "overshoot {} > one round {}",
            r.phases.budget_overshoot.as_nanos(),
            per_round
        );
    }

    #[test]
    fn terminal_root_is_handled() {
        let s = TicTacToe::parse("XXX OO. ...", Player::P2).unwrap();
        let mut searcher =
            DeviceTreeSearcher::<TicTacToe>::new(cfg(6), device(), LaunchConfig::new(2, 32));
        let r = searcher.search(s, SearchBudget::Iterations(5));
        assert_eq!(r.best_move, None);
        assert_eq!(r.simulations, 0);
        assert_eq!(r.elapsed, SimTime::ZERO);
    }

    #[test]
    fn finds_tactical_move() {
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher =
            DeviceTreeSearcher::<TicTacToe>::new(cfg(5), device(), LaunchConfig::new(4, 32));
        let r = searcher.search(s, SearchBudget::Iterations(10));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn hang_retries_once_then_falls_back_to_host() {
        // Hang on (nearly) every launch: the first hang retries, the
        // second degrades to the host block-parallel loop, which then
        // degrades its own playout launches to CPU playouts. The search
        // still returns a move and keeps an exact ledger.
        let config = cfg(8).with_faults(FaultPlan::gpu_hang(77, 1.0));
        let mut s = DeviceTreeSearcher::<Reversi>::new(config, device(), LaunchConfig::new(2, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(3));
        assert!(r.best_move.is_some());
        assert!(r.phases.faults.injected >= 2);
        // One device retry, plus one retry per fallback playout launch
        // (the fallback's own launches also hang at rate 1.0).
        assert!(r.phases.faults.retried >= 1, "device retry happens");
        assert!(r.phases.faults.degraded > 0);
        assert!(r.simulations > 0, "degraded iterations still simulate");
        assert_eq!(r.phases.phase_sum(), r.elapsed);
    }

    #[test]
    fn slowdown_stretches_device_time_only() {
        let faulty = cfg(4).with_faults(FaultPlan::gpu_slowdown(55, 1.0, 3));
        let clean = cfg(4);
        let launch = LaunchConfig::new(2, 32);
        let run = |c: MctsConfig| {
            DeviceTreeSearcher::<Reversi>::new(c, device(), launch)
                .search(Reversi::initial(), SearchBudget::Iterations(4))
        };
        let f = run(faulty);
        let c = run(clean);
        assert_eq!(f.root_stats, c.root_stats, "results unchanged, only time");
        assert!(f.elapsed > c.elapsed);
        assert!(f.phases.faults.injected > 0);
        assert_eq!(f.phases.phase_sum(), f.elapsed);
    }

    #[test]
    fn block_abort_skips_that_tree_for_the_launch() {
        let config = cfg(3).with_faults(FaultPlan::gpu_abort(66, 1.0));
        let mut s = DeviceTreeSearcher::<Reversi>::new(config, device(), LaunchConfig::new(4, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(3));
        assert!(r.phases.faults.degraded > 0);
        assert!(
            r.simulations < 3 * 4 * 32,
            "aborted blocks simulate nothing"
        );
        assert!(r.best_move.is_some(), "surviving trees still vote");
        assert_eq!(r.phases.phase_sum(), r.elapsed);
    }
}
