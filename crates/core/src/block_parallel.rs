//! Block parallelism — the paper's contribution (§III.6, Fig. 2c).
//!
//! `B` independent trees live on the CPU, one per GPU *block*. Each
//! iteration the host performs selection + expansion on **every** tree
//! (this is the host part that grows with `B` and caps simulations/second —
//! Fig. 5), uploads the `B` frontier positions, and launches a single
//! kernel: block `b`'s threads all simulate tree `b`'s position, a
//! leaf-parallel batch per tree. Results are read back, backpropagated per
//! tree, and at the end root statistics are merged across trees exactly as
//! in root parallelism.
//!
//! The host tree phases run on the device's
//! [`WorkerPool`] in three stages
//! per iteration: pool-parallel selection over trees, a sequential pass
//! drawing every expansion pick from the shared RNG in block order, and
//! pool-parallel expansion (then, after the launch, pool-parallel
//! backpropagation). Virtual-time charging still models the paper's
//! single-core host — the pool only shrinks *wall-clock* host time — and
//! because RNG draws and all cost/statistics folding stay in block order,
//! reports are bit-identical for any pool size.
//!
//! The scheme matches the hardware hierarchy (Fig. 3): warps stay
//! divergence-coherent because all lanes of a block simulate the same
//! position, while distinct blocks/trees need no communication at all.

use crate::config::{MctsConfig, SearchBudget};
use crate::cost::CpuCostModel;
use crate::gpu::{aggregate, LaneOutcome, PlayoutKernel};
use crate::searcher::{BudgetTracker, SearchReport, Searcher};
use crate::telemetry::PhaseBreakdown;
use crate::tree::{best_from_stats, merge_root_stats, SearchTree};
use pmcts_games::{random_playout, Game, Player};
use pmcts_gpu_sim::{Device, GpuFault, LaunchConfig, WorkerPool};
use pmcts_util::{Rng64, SimTime, Xoshiro256pp};

/// Block-parallel GPU searcher: one MCTS tree per GPU block.
#[derive(Clone, Debug)]
pub struct BlockParallelSearcher<G: Game> {
    config: MctsConfig,
    device: Device,
    launch: LaunchConfig,
    stream: u64,
    rng: Xoshiro256pp,
    epoch: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> BlockParallelSearcher<G> {
    /// Creates a block-parallel searcher with `launch.blocks` trees and
    /// `launch.threads_per_block` simulations per tree per iteration.
    pub fn new(config: MctsConfig, device: Device, launch: LaunchConfig) -> Self {
        Self::with_stream(config, device, launch, 0)
    }

    /// Like [`new`](Self::new) but on RNG sub-stream `stream` (one stream
    /// per MPI rank in the multi-GPU setting).
    pub fn with_stream(
        config: MctsConfig,
        device: Device,
        launch: LaunchConfig,
        stream: u64,
    ) -> Self {
        let rng = Xoshiro256pp::derive(config.seed, 0xB10C ^ stream);
        BlockParallelSearcher {
            config,
            device,
            launch,
            stream,
            rng,
            epoch: 0,
            _game: std::marker::PhantomData,
        }
    }

    /// The launch geometry (blocks = trees).
    pub fn launch_config(&self) -> LaunchConfig {
        self.launch
    }

    /// Number of trees (= blocks).
    pub fn trees(&self) -> u32 {
        self.launch.blocks
    }

    fn next_stream_seed(&mut self) -> u64 {
        self.epoch += 1;
        self.config
            .seed
            .wrapping_add(self.stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(self.epoch.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Runs the search, returning per-tree trees for callers that need them
    /// (the hybrid scheme). Public API users call `Searcher::search`.
    pub(crate) fn search_trees(
        &mut self,
        root: G,
        budget: SearchBudget,
    ) -> (Vec<SearchTree<G>>, BudgetTracker, u64, PhaseBreakdown) {
        let blocks = self.launch.blocks as usize;
        let tpb = self.launch.threads_per_block as usize;
        let mut trees: Vec<SearchTree<G>> = (0..blocks)
            .map(|_| SearchTree::for_config(root, &self.config))
            .collect();
        let mut tracker = BudgetTracker::new(budget);
        let mut phases = PhaseBreakdown::new();
        let mut simulations = 0u64;
        let cpu = self.config.cpu_cost;
        // Host tree phases fan out over the device's worker pool. The pool
        // only decides which thread touches which tree; everything that
        // affects results (RNG draws, cost folding, report merging) happens
        // in block order on this thread, so reports and virtual time are
        // bit-identical for any pool size.
        let pool = std::sync::Arc::clone(self.device.worker_pool());
        let exploration_c = self.config.exploration_c;

        if trees[0].is_terminal(0) {
            return (trees, tracker, 0, phases);
        }

        let plan = self.config.faults;
        while tracker.may_continue() {
            let mut iter_cost = SimTime::ZERO;
            let (frontier, host_cost) = select_and_expand_all(
                &mut trees,
                &mut self.rng,
                exploration_c,
                &cpu,
                &pool,
                &mut phases,
            );
            iter_cost += host_cost;

            // One launch simulates every tree's frontier node. A hang is
            // retried once; a second hang degrades the iteration to one CPU
            // playout per tree.
            let mut retried = false;
            loop {
                let kernel = PlayoutKernel::new(
                    frontier.iter().map(|&(_, s, _)| s).collect(),
                    self.next_stream_seed(),
                );
                let fault = plan.gpu_fault(self.stream, self.epoch, self.launch.blocks);
                let upload = self.device.spec().transfer_time(kernel.upload_bytes());
                let result = self.device.launch_with_fault(&kernel, self.launch, fault);
                phases.upload += cpu.launch_prep + upload;
                iter_cost += cpu.launch_prep + upload;

                if result.fault == GpuFault::Hang {
                    let deadline = plan.hang_deadline(result.stats.elapsed());
                    phases.kernel += deadline;
                    iter_cost += deadline;
                    phases.faults.injected += 1;
                    if !retried {
                        retried = true;
                        phases.faults.retried += 1;
                        continue;
                    }
                    // Degraded mode: every tree gets one CPU playout from
                    // its already-selected frontier node.
                    for (b, tree) in trees.iter_mut().enumerate() {
                        let playout = random_playout(frontier[b].1, &mut self.rng);
                        let cost = cpu.playout(playout.plies);
                        phases.kernel += cost;
                        iter_cost += cost;
                        tree.backprop(frontier[b].0, playout.reward_for(Player::P1), 1);
                        simulations += 1;
                        phases.simulations += 1;
                        phases.faults.degraded += 1;
                    }
                    break;
                }

                let voided = match result.fault {
                    GpuFault::BlockAbort(bad) => {
                        phases.faults.injected += 1;
                        phases.faults.degraded += 1;
                        Some(bad as usize)
                    }
                    fault => {
                        if fault != GpuFault::None {
                            phases.faults.injected += 1;
                        }
                        None
                    }
                };

                simulations += backprop_outputs(
                    &mut trees,
                    &frontier,
                    &result.outputs,
                    tpb,
                    voided,
                    &pool,
                    &mut phases,
                );

                phases.kernel += result.stats.launch_overhead + result.stats.device_time;
                phases.readback += result.stats.readback_time;
                iter_cost += result.stats.elapsed();
                phases.record_launch(&result.stats);
                break;
            }

            tracker.charge(iter_cost);
        }

        (trees, tracker, simulations, phases)
    }
}

/// The host half of one block-parallel round: pool-parallel selection over
/// every tree, expansion picks drawn from the shared RNG in block order,
/// pool-parallel expansion, and a block-order fold of per-tree host costs
/// into `phases.select`/`phases.expand`. Returns each tree's frontier
/// `(node, state, depth)` plus the summed host tree-op cost.
///
/// Shared between [`BlockParallelSearcher::search_trees`] (lockstep loop)
/// and the multi-session search service (one round per batched launch).
/// Everything that affects results happens in block order on the calling
/// thread, so the output is bit-identical for any pool size.
pub(crate) fn select_and_expand_all<G: Game>(
    trees: &mut [SearchTree<G>],
    rng: &mut Xoshiro256pp,
    exploration_c: f64,
    cpu: &CpuCostModel,
    pool: &WorkerPool,
    phases: &mut PhaseBreakdown,
) -> (Vec<(u32, G, u32)>, SimTime) {
    // Selection on every tree (pool-parallel; trees are independent,
    // selection is read-only).
    let selected: Vec<(u32, u32)> = pool.map_indexed(trees, |_, tree| {
        let sel = tree.select(exploration_c);
        (sel, tree.untried_len(sel) as u32)
    });
    // Draw expansion picks from the shared RNG in block order — exactly
    // the draw sequence of the sequential schedule, so the pinned
    // fingerprints are unaffected.
    let picks: Vec<Option<u32>> = selected
        .iter()
        .map(|&(_, untried)| {
            if untried != 0 {
                phases.expansions += 1;
                Some(rng.next_below(untried))
            } else {
                None
            }
        })
        .collect();
    // Expansion with the pre-drawn picks (pool-parallel), capturing each
    // tree's frontier node for the kernel.
    let frontier: Vec<(u32, G, u32)> = pool.map_indexed(trees, |b, tree| {
        let node = match picks[b] {
            Some(pick) => tree.expand_with_pick(selected[b].0, pick),
            None => selected[b].0,
        };
        (node, *tree.state(node), tree.depth(node))
    });
    // Deterministic block-order folding of per-tree host costs.
    let mut host_cost = SimTime::ZERO;
    for &(_, _, depth) in &frontier {
        host_cost += cpu.tree_op(depth);
        phases.select += cpu.select_cost(depth);
        phases.expand += cpu.expand_cost();
    }
    (frontier, host_cost)
}

/// The readback half of one block-parallel round: block `b`'s `tpb` lanes
/// are aggregated and backpropagated into tree `b` (pool-parallel; each
/// tree's backprop walk is independent). A voided (aborted) block's tree
/// receives nothing. Simulation counts fold in block order; returns the
/// total simulations credited.
pub(crate) fn backprop_outputs<G: Game>(
    trees: &mut [SearchTree<G>],
    frontier: &[(u32, G, u32)],
    outputs: &[LaneOutcome],
    tpb: usize,
    voided: Option<usize>,
    pool: &WorkerPool,
    phases: &mut PhaseBreakdown,
) -> u64 {
    let counts: Vec<u64> = pool.map_indexed(trees, |b, tree| {
        if Some(b) == voided {
            return 0;
        }
        let lanes = &outputs[b * tpb..(b + 1) * tpb];
        let (wins_p1, n) = aggregate(lanes);
        tree.backprop(frontier[b].0, wins_p1, n);
        n
    });
    let mut total = 0u64;
    for n in counts {
        total += n;
        phases.simulations += n;
    }
    total
}

/// Merges per-tree reports into one `SearchReport` (shared with hybrid).
pub(crate) fn report_from_trees<G: Game>(
    config: &MctsConfig,
    trees: &[SearchTree<G>],
    tracker: &BudgetTracker,
    simulations: u64,
    mut phases: PhaseBreakdown,
) -> SearchReport<G::Move> {
    let merged = merge_root_stats(&trees.iter().map(|t| t.root_stats()).collect::<Vec<_>>());
    phases.budget_overshoot = tracker.overshoot();
    SearchReport {
        best_move: best_from_stats(&merged, config.final_move),
        simulations,
        iterations: tracker.iterations,
        tree_nodes: trees.iter().map(|t| t.live_nodes() as u64).sum(),
        max_depth: trees.iter().map(|t| t.max_depth()).max().unwrap_or(0),
        elapsed: tracker.elapsed,
        root_stats: merged,
        phases,
    }
}

impl<G: Game> Searcher<G> for BlockParallelSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        let (trees, tracker, sims, phases) = self.search_trees(root, budget);
        report_from_trees(&self.config, &trees, &tracker, sims, phases)
    }

    fn name(&self) -> String {
        format!(
            "block parallelism ({} blocks × {} threads)",
            self.launch.blocks, self.launch.threads_per_block
        )
    }
}

/// Estimated virtual cost of ONE block-parallel iteration — exposed so the
/// Fig. 5 speed analysis can decompose kernel vs host-sequential time.
pub fn iteration_cost_breakdown<G: Game>(
    config: &MctsConfig,
    device: &Device,
    launch: &LaunchConfig,
    avg_depth: u32,
) -> (SimTime, SimTime) {
    let cpu = config.cpu_cost;
    let host = cpu.launch_prep + cpu.tree_op(avg_depth) * launch.blocks as u64;
    let upload = device
        .spec()
        .transfer_time((launch.blocks as usize * G::device_state_bytes()) as u64);
    (host, upload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::new(DeviceSpec::tesla_c2050())
    }

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn simulations_equal_grid_times_iterations() {
        let mut s =
            BlockParallelSearcher::<Reversi>::new(cfg(1), device(), LaunchConfig::new(4, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(5));
        assert_eq!(r.iterations, 5);
        assert_eq!(r.simulations, 5 * 4 * 32);
        // One expansion per tree per iteration: 4 roots + 4*5 nodes.
        assert_eq!(r.tree_nodes, 4 + 20);
    }

    #[test]
    fn root_stats_are_merged_across_trees() {
        let mut s =
            BlockParallelSearcher::<Reversi>::new(cfg(2), device(), LaunchConfig::new(8, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(6));
        let total: u64 = r.root_stats.iter().map(|st| st.visits).sum();
        assert_eq!(total, r.simulations);
        // All 4 opening moves should be explored across 8 trees.
        assert_eq!(r.root_stats.len(), 4);
    }

    #[test]
    fn deterministic_per_seed_and_stream() {
        let run = |seed, stream| {
            BlockParallelSearcher::<Reversi>::with_stream(
                cfg(seed),
                device(),
                LaunchConfig::new(4, 32),
                stream,
            )
            .search(Reversi::initial(), SearchBudget::Iterations(4))
        };
        assert_eq!(run(3, 0).root_stats, run(3, 0).root_stats);
        assert_ne!(run(3, 0).root_stats, run(3, 1).root_stats);
        assert_ne!(run(3, 0).root_stats, run(4, 0).root_stats);
    }

    #[test]
    fn more_blocks_cost_more_host_time_per_iteration() {
        // The paper's key observation: more trees ⇒ more sequential CPU
        // work ⇒ fewer simulations per second.
        let sims_per_sec = |blocks| {
            let mut s = BlockParallelSearcher::<Reversi>::new(
                cfg(4),
                device(),
                LaunchConfig::new(blocks, 32),
            );
            let r = s.search(Reversi::initial(), SearchBudget::Iterations(6));
            r.sims_per_second() / (blocks as f64 * 32.0) // per-thread rate
        };
        let few = sims_per_sec(2);
        let many = sims_per_sec(64);
        assert!(
            many < few,
            "per-thread throughput should drop with tree count: {many} !< {few}"
        );
    }

    #[test]
    fn finds_tactical_move() {
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher =
            BlockParallelSearcher::<TicTacToe>::new(cfg(5), device(), LaunchConfig::new(4, 32));
        let r = searcher.search(s, SearchBudget::Iterations(40));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn terminal_root_is_handled() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let mut searcher =
            BlockParallelSearcher::<TicTacToe>::new(cfg(6), device(), LaunchConfig::new(2, 32));
        let r = searcher.search(s, SearchBudget::Iterations(5));
        assert_eq!(r.best_move, None);
        assert_eq!(r.simulations, 0);
    }

    #[test]
    fn trees_develop_independently() {
        let mut s =
            BlockParallelSearcher::<Reversi>::new(cfg(7), device(), LaunchConfig::new(2, 32));
        let (trees, _, _, _) = s.search_trees(Reversi::initial(), SearchBudget::Iterations(10));
        // Two trees with independent randomness almost surely differ in
        // their root statistics after 10 iterations.
        assert_ne!(trees[0].root_stats(), trees[1].root_stats());
    }
}
