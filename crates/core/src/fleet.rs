//! Fleet-scale serving: shard the multi-session [`SearchService`] across
//! simulated devices (DESIGN.md §14).
//!
//! PR 5's service proved that batching N sessions onto *one* device
//! amortises launch overhead across sessions. A production deployment has
//! many devices and far more sessions than any one device can hold, so the
//! [`Fleet`] owns N **shards** — one [`SearchService`] per simulated
//! [`Device`], identified by its simulated MPI [`Rank`] — and adds the
//! three fleet-layer policies, all expressed in virtual time so results
//! stay bit-identical at any `--host-threads` count:
//!
//! * **Placement** — every admitted session goes to the *least-loaded
//!   live shard*, load measured as `shard clock + backlog` (the backlog is
//!   the summed virtual-budget estimate of its unfinished sessions), ties
//!   broken by shard id. A pure function of the admission sequence.
//! * **Admission control** — each shard holds at most `shard_capacity`
//!   concurrent sessions; excess offers wait in a bounded priority queue.
//!   When the queue is also full, the offer is rejected — unless it
//!   outranks a queued session of a *lower* [`Priority`] class, which is
//!   then displaced (rejected) in its favour. Every decision is counted in
//!   [`FleetStats`], per class.
//! * **SLO scheduling** — shards run deadline-aware launch waves
//!   ([`SearchService::step_wave`]): at most `wave_limit` sessions per
//!   launch, earliest SLO deadline first. Sessions left out of a wave are
//!   charged the round as queueing against their budget, so overload
//!   degrades *goodput* (sessions finishing with a move inside their SLO)
//!   instead of corrupting the latency ledger — `completed_at −
//!   admitted_at == elapsed` holds for every session, served or starved.
//!
//! # Dead shards
//!
//! Per-shard faults ride the existing [`FaultPlan`] machinery:
//! [`FaultPlan::component_dead`] keyed by shard rank decides which shards
//! die (rank 0 is immune, as everywhere in the workspace), and the death
//! *wave* derives from the plan seed. A dead shard's unfinished sessions
//! lose their in-flight search state (the device is gone) and are
//! **re-placed** deterministically — shard-id then session-id order —
//! onto the surviving shards, bypassing admission (they were already
//! admitted once); each re-placement is counted in
//! [`FleetStats::replaced`] and on the session's
//! [`FleetCompleted::migrations`].
//!
//! # Determinism
//!
//! Every fleet decision — placement, queue order, displacement, wave
//! membership, death waves, re-placement order — is a pure function of
//! the offer sequence, the seeds and the virtual clocks. Nothing observes
//! wall-clock time, host-thread count or map iteration order, so the same
//! offers produce byte-identical [`FleetCompleted`] transcripts at any
//! `--host-threads`.

use crate::config::{MctsConfig, SearchBudget};
use crate::searcher::SearchReport;
use crate::service::{SearchService, SessionId};
use pmcts_games::Game;
use pmcts_gpu_sim::Device;
use pmcts_mpi_sim::Rank;
use pmcts_util::{FaultPlan, Rng64, SimTime, SplitMix64};

/// Domain-separation key for the fleet's dead-shard schedule (the
/// [`FaultPlan`] component group shared by every shard of one fleet).
const FLEET_FAULT_KEY: u64 = 0xF1EE_7000_DEAD_0001;

/// Priority class of an offered session. Lower classes are more urgent:
/// the wait queue drains `Interactive` first, and under a full queue a
/// more urgent offer displaces the least urgent queued session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// A human is waiting on the move.
    Interactive,
    /// Normal serving traffic.
    Standard,
    /// Offline/analysis traffic: first to queue, first to be displaced.
    Batch,
}

impl Priority {
    /// All classes, most urgent first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Dense index for per-class telemetry arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name for artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

/// Fleet-level session identity, assigned at offer from a monotone
/// counter. Stable across queueing and dead-shard re-placement (the
/// per-shard [`SessionId`]s are not: a re-placed session is re-admitted).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FleetSessionId(pub u64);

impl std::fmt::Display for FleetSessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The admission decision for one offered session.
///
/// `Queued` is provisional: a later, more urgent offer may displace a
/// queued session (it is then rejected without further notice — real
/// admission queues time out the same way). Final outcomes are visible in
/// [`FleetStats`] and in which ids appear in [`Fleet::take_completed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted and placed on `shard` as `session`.
    Placed {
        /// The fleet-level id.
        id: FleetSessionId,
        /// The shard the session landed on.
        shard: Rank,
        /// The per-shard service session id.
        session: SessionId,
    },
    /// Admitted to the wait queue; placed when capacity frees.
    Queued {
        /// The fleet-level id.
        id: FleetSessionId,
    },
    /// Rejected: no shard slot, no queue slot, nothing to displace.
    Rejected,
}

/// Deterministic admission/placement telemetry, by class where it matters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Sessions offered to the fleet.
    pub offered: u64,
    /// Sessions placed on a shard for the first time (directly or from the
    /// queue). `admitted + rejected == offered` once the fleet has run to
    /// completion.
    pub admitted: u64,
    /// Sessions that spent time in the wait queue (including later-placed
    /// and later-displaced ones).
    pub queued: u64,
    /// Sessions rejected — at offer time or by displacement.
    pub rejected: u64,
    /// Re-placements of already-admitted sessions after a shard death.
    pub replaced: u64,
    /// `admitted` split by [`Priority::index`].
    pub admitted_by_class: [u64; 3],
    /// `rejected` split by [`Priority::index`].
    pub rejected_by_class: [u64; 3],
}

/// Static fleet geometry and policy knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Playout lanes per block on every shard's launches.
    pub threads_per_block: u32,
    /// Max sessions packed into one launch wave per shard.
    pub wave_limit: usize,
    /// Max concurrent sessions per shard (admission control).
    pub shard_capacity: usize,
    /// Wait-queue bound (fleet-wide). `0` disables queueing.
    pub queue_capacity: usize,
    /// Seed of the per-shard service RNG streams.
    pub seed: u64,
    /// Dead-shard schedule (see the module docs). [`FaultPlan::none`]
    /// keeps every shard alive.
    pub faults: FaultPlan,
    /// Virtual-time estimate of one service round, used only to convert
    /// `Iterations` budgets into placement load.
    pub round_estimate: SimTime,
}

impl FleetConfig {
    /// Defaults sized for the serving experiments: 32-lane blocks, waves
    /// of 16, 16 sessions per shard, a queue as deep as one shard.
    pub fn new(seed: u64) -> Self {
        FleetConfig {
            threads_per_block: 32,
            wave_limit: 16,
            shard_capacity: 16,
            queue_capacity: 16,
            seed,
            faults: FaultPlan::none(),
            round_estimate: SimTime::from_micros(200),
        }
    }
}

/// One retired fleet session: where it ran, how it was classed, and the
/// full per-session search report. `completed_at − admitted_at ==
/// report.elapsed` on the final shard's clock, always.
#[derive(Clone, Debug)]
pub struct FleetCompleted<M> {
    /// The fleet-level id.
    pub id: FleetSessionId,
    /// The shard that retired the session (after any re-placements).
    pub shard: Rank,
    /// The session's priority class.
    pub priority: Priority,
    /// The session's latency SLO (also its search budget for virtual-time
    /// budgets).
    pub slo: Option<SimTime>,
    /// Final shard's clock at (re-)admission.
    pub admitted_at: SimTime,
    /// Final shard's clock at retirement.
    pub completed_at: SimTime,
    /// Dead-shard re-placements this session survived.
    pub migrations: u32,
    /// The session's final search report.
    pub report: SearchReport<M>,
}

/// A read-only snapshot of one shard, for artifacts and assertions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// The shard's identity (its simulated MPI rank).
    pub rank: Rank,
    /// Whether the shard's device has died.
    pub dead: bool,
    /// First placements onto this shard (`sum(placed) == stats.admitted`).
    pub placed: u64,
    /// Re-placements received from dead shards.
    pub replaced_in: u64,
    /// Sessions currently resident.
    pub active: usize,
    /// The shard's virtual clock.
    pub clock: SimTime,
    /// Batched launches performed.
    pub launches: u64,
    /// Blocks across all launches.
    pub blocks: u64,
}

/// What one admitted session needs to (re-)start: the fleet keeps the
/// ticket for as long as the session is queued or resident, so a dead
/// shard's sessions can re-place from scratch.
struct Ticket<G: Game> {
    id: FleetSessionId,
    root: G,
    budget: SearchBudget,
    config: MctsConfig,
    priority: Priority,
    slo: Option<SimTime>,
    load: SimTime,
    migrations: u32,
}

struct Shard<G: Game> {
    rank: Rank,
    service: SearchService<G>,
    dead: bool,
    /// The fleet wave before which this shard dies, per the fault plan.
    death_wave: Option<u64>,
    /// Summed load estimates of resident sessions.
    backlog: SimTime,
    placed: u64,
    replaced_in: u64,
    active: Vec<(SessionId, Ticket<G>)>,
}

impl<G: Game> Shard<G> {
    /// Virtual load for placement: how far this shard's clock is ahead
    /// plus the work already committed to it.
    fn load(&self) -> SimTime {
        self.service.clock() + self.backlog
    }
}

/// The fleet: N service shards plus placement, admission and SLO policy
/// (see the module docs).
pub struct Fleet<G: Game> {
    shards: Vec<Shard<G>>,
    wave_limit: usize,
    shard_capacity: usize,
    queue_capacity: usize,
    /// Wait queue, kept sorted by `(priority, id)` — drain order.
    queue: Vec<Ticket<G>>,
    stats: FleetStats,
    next_id: u64,
    wave: u64,
    completed: Vec<FleetCompleted<G::Move>>,
    round_estimate: SimTime,
}

impl<G: Game> Fleet<G> {
    /// Builds a fleet of one shard per device. Shard `i` is identified as
    /// [`Rank`]`(i)`; its service seed derives from the fleet seed and the
    /// rank, and its death wave (if the fault plan kills it) from the
    /// plan's seed and the rank.
    pub fn new(config: FleetConfig, devices: Vec<Device>) -> Self {
        assert!(!devices.is_empty(), "a fleet needs at least one device");
        assert!(config.wave_limit >= 1, "wave_limit must admit a session");
        assert!(config.shard_capacity >= 1, "shards must hold a session");
        let shards = devices
            .into_iter()
            .enumerate()
            .map(|(i, device)| {
                let rank = Rank(i);
                let death_wave = if config.faults.component_dead(FLEET_FAULT_KEY, i as u64) {
                    // Die before wave 1..=3: deterministic per (plan seed,
                    // rank), staggered so deaths cascade re-placements.
                    Some(1 + SplitMix64::derive(config.faults.seed, i as u64).next_u64() % 3)
                } else {
                    None
                };
                Shard {
                    rank,
                    service: SearchService::new(
                        device,
                        config.threads_per_block,
                        SplitMix64::derive(config.seed, i as u64).next_u64(),
                    ),
                    dead: false,
                    death_wave,
                    backlog: SimTime::ZERO,
                    placed: 0,
                    replaced_in: 0,
                    active: Vec::new(),
                }
            })
            .collect();
        Fleet {
            shards,
            wave_limit: config.wave_limit,
            shard_capacity: config.shard_capacity,
            queue_capacity: config.queue_capacity,
            queue: Vec::new(),
            stats: FleetStats::default(),
            next_id: 0,
            wave: 0,
            completed: Vec::new(),
            round_estimate: config.round_estimate,
        }
    }

    /// Offers a session to the fleet: a sequential-tree search of `root`
    /// under `budget`, scheduled against the latency SLO `slo` (for
    /// virtual-time budgets the budget itself is the natural SLO). Returns
    /// the deterministic admission decision.
    pub fn offer(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
        priority: Priority,
        slo: Option<SimTime>,
    ) -> Admission {
        self.stats.offered += 1;
        let id = FleetSessionId(self.next_id);
        self.next_id += 1;
        let ticket = Ticket {
            id,
            root,
            budget,
            config,
            priority,
            slo,
            load: self.load_estimate(budget),
            migrations: 0,
        };
        if let Some(idx) = self.least_loaded_with_room() {
            let (shard, session) = self.place(idx, ticket);
            return Admission::Placed { id, shard, session };
        }
        if self.queue.len() < self.queue_capacity {
            self.stats.queued += 1;
            self.enqueue(ticket);
            return Admission::Queued { id };
        }
        // Queue full: displace the least urgent queued session if the
        // offer strictly outranks it (the queue is sorted by (priority,
        // id), so the victim is the last entry).
        if self
            .queue
            .last()
            .is_some_and(|worst| worst.priority > priority)
        {
            let victim = self.queue.pop().expect("non-empty queue has a last");
            self.reject(victim.priority);
            self.stats.queued += 1;
            self.enqueue(ticket);
            return Admission::Queued { id };
        }
        self.reject(priority);
        Admission::Rejected
    }

    /// Runs one fleet wave: fires scheduled shard deaths (re-placing their
    /// sessions), steps every live shard by one deadline-aware launch wave,
    /// retires finished sessions, and drains the wait queue into freed
    /// capacity. Returns `false` once nothing is left to do.
    pub fn step_wave(&mut self) -> bool {
        self.wave += 1;

        // 1. Scheduled shard deaths, in shard-id order; orphans re-place
        // in (shard-id, session-id) order, bypassing admission.
        let mut orphans: Vec<Ticket<G>> = Vec::new();
        for sh in &mut self.shards {
            if !sh.dead && sh.death_wave == Some(self.wave) {
                sh.dead = true;
                sh.backlog = SimTime::ZERO;
                orphans.extend(sh.active.drain(..).map(|(_, mut t)| {
                    t.migrations += 1;
                    t
                }));
            }
        }
        let mut progressed = !orphans.is_empty();
        for ticket in orphans {
            self.stats.replaced += 1;
            self.replace(ticket);
        }

        // 2. One deadline-aware wave per live shard with resident work.
        for idx in 0..self.shards.len() {
            let sh = &mut self.shards[idx];
            if sh.dead || sh.service.active_sessions() == 0 && sh.active.is_empty() {
                continue;
            }
            sh.service.step_wave(self.wave_limit);
            progressed = true;
            for c in sh.service.take_completed() {
                let pos = sh
                    .active
                    .iter()
                    .position(|(sid, _)| *sid == c.id)
                    .expect("retired session has a ticket");
                let (_, ticket) = sh.active.remove(pos);
                sh.backlog = sh.backlog.saturating_sub(ticket.load);
                self.completed.push(FleetCompleted {
                    id: ticket.id,
                    shard: sh.rank,
                    priority: ticket.priority,
                    slo: ticket.slo,
                    admitted_at: c.admitted_at,
                    completed_at: c.completed_at,
                    migrations: ticket.migrations,
                    report: c.report,
                });
            }
        }

        // 3. Drain the wait queue into freed capacity, most urgent first.
        while !self.queue.is_empty() {
            match self.least_loaded_with_room() {
                Some(idx) => {
                    let ticket = self.queue.remove(0);
                    self.place(idx, ticket);
                    progressed = true;
                }
                None => break,
            }
        }
        progressed
    }

    /// Steps waves until every admitted session has retired and the queue
    /// has drained.
    pub fn run_to_completion(&mut self) {
        while self.step_wave() {}
        debug_assert!(self.queue.is_empty(), "queue drained at completion");
        debug_assert_eq!(
            self.stats.offered,
            self.stats.admitted + self.stats.rejected,
            "every offer was admitted or rejected"
        );
    }

    /// Drains the retired-session records accumulated so far, in
    /// retirement order (shard-major within a wave).
    pub fn take_completed(&mut self) -> Vec<FleetCompleted<G::Move>> {
        std::mem::take(&mut self.completed)
    }

    /// Admission/placement telemetry so far.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Per-shard snapshots, in shard-id order.
    pub fn shards(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .map(|sh| ShardSnapshot {
                rank: sh.rank,
                dead: sh.dead,
                placed: sh.placed,
                replaced_in: sh.replaced_in,
                active: sh.active.len(),
                clock: sh.service.clock(),
                launches: sh.service.launches().len() as u64,
                blocks: sh
                    .service
                    .launches()
                    .iter()
                    .map(|l| u64::from(l.blocks))
                    .sum(),
            })
            .collect()
    }

    /// The fleet's makespan: the furthest shard clock. Shards run
    /// concurrently in virtual time, so aggregate throughput is total
    /// simulations over this, not over the clock sum.
    pub fn makespan(&self) -> SimTime {
        self.shards
            .iter()
            .map(|sh| sh.service.clock())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total admission capacity: shard slots plus queue slots. Offers
    /// beyond this (while nothing retires) are the ones admission control
    /// rejects.
    pub fn capacity(&self) -> usize {
        self.shards.iter().filter(|s| !s.dead).count() * self.shard_capacity + self.queue_capacity
    }

    /// Sessions waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Fleet waves stepped so far.
    pub fn wave(&self) -> u64 {
        self.wave
    }

    fn load_estimate(&self, budget: SearchBudget) -> SimTime {
        match budget {
            SearchBudget::VirtualTime(t) => t,
            SearchBudget::Iterations(n) => self.round_estimate * n,
        }
    }

    /// The least-loaded live shard with a free slot, ties broken by shard
    /// id; `None` when admission is full.
    fn least_loaded_with_room(&self) -> Option<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, sh)| !sh.dead && sh.active.len() < self.shard_capacity)
            .min_by_key(|(i, sh)| (sh.load(), *i))
            .map(|(i, _)| i)
    }

    fn place(&mut self, idx: usize, ticket: Ticket<G>) -> (Rank, SessionId) {
        let sh = &mut self.shards[idx];
        if ticket.migrations == 0 {
            self.stats.admitted += 1;
            self.stats.admitted_by_class[ticket.priority.index()] += 1;
            sh.placed += 1;
        } else {
            sh.replaced_in += 1;
        }
        sh.backlog += ticket.load;
        let session = sh.service.admit_sequential_with_slo(
            ticket.root,
            ticket.budget,
            ticket.config.clone(),
            ticket.slo,
        );
        let rank = sh.rank;
        sh.active.push((session, ticket));
        (rank, session)
    }

    /// Re-places an orphaned (already-admitted) ticket: least-loaded live
    /// shard if one has room, else the head of the wait queue — admission
    /// control never re-rejects a session it already accepted.
    fn replace(&mut self, ticket: Ticket<G>) {
        match self.least_loaded_with_room() {
            Some(idx) => {
                self.place(idx, ticket);
            }
            None => self.enqueue(ticket),
        }
    }

    fn enqueue(&mut self, ticket: Ticket<G>) {
        let key = (ticket.priority, ticket.id);
        let at = self.queue.partition_point(|t| (t.priority, t.id) <= key);
        self.queue.insert(at, ticket);
    }

    fn reject(&mut self, priority: Priority) {
        self.stats.rejected += 1;
        self.stats.rejected_by_class[priority.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::Reversi;
    use pmcts_gpu_sim::DeviceSpec;

    fn fleet(devices: usize, config: FleetConfig) -> Fleet<Reversi> {
        Fleet::new(config, Device::fleet(DeviceSpec::tesla_c2050(), devices, 2))
    }

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    fn offer_n(f: &mut Fleet<Reversi>, n: u64, priority: Priority) -> Vec<Admission> {
        let budget = SimTime::from_millis(2);
        (0..n)
            .map(|s| {
                f.offer(
                    Reversi::initial(),
                    SearchBudget::VirtualTime(budget),
                    cfg(100 + s),
                    priority,
                    Some(budget),
                )
            })
            .collect()
    }

    #[test]
    fn placement_is_least_loaded_with_shard_id_ties() {
        let mut config = FleetConfig::new(1);
        config.shard_capacity = 2;
        let mut f = fleet(3, config);
        // Equal (zero) load everywhere: ties break by shard id, and the
        // backlog added by each placement rotates the choice.
        let shards: Vec<Rank> = offer_n(&mut f, 6, Priority::Standard)
            .into_iter()
            .map(|a| match a {
                Admission::Placed { shard, .. } => shard,
                other => panic!("expected placement, got {other:?}"),
            })
            .collect();
        assert_eq!(
            shards,
            vec![Rank(0), Rank(1), Rank(2), Rank(0), Rank(1), Rank(2)]
        );
    }

    #[test]
    fn admission_queues_then_rejects_and_displaces_by_class() {
        let mut config = FleetConfig::new(2);
        config.shard_capacity = 1;
        config.queue_capacity = 2;
        let mut f = fleet(1, config);
        // Slot 1 placed, queue holds 2, the 4th batch offer is rejected.
        let a = offer_n(&mut f, 4, Priority::Batch);
        assert!(matches!(a[0], Admission::Placed { .. }));
        assert!(matches!(a[1], Admission::Queued { .. }));
        assert!(matches!(a[2], Admission::Queued { .. }));
        assert_eq!(a[3], Admission::Rejected);
        // An interactive offer displaces a queued batch session.
        let b = offer_n(&mut f, 1, Priority::Interactive);
        assert!(matches!(b[0], Admission::Queued { .. }));
        let stats = f.stats();
        assert_eq!(stats.offered, 5);
        assert_eq!(stats.rejected, 2);
        assert_eq!(stats.rejected_by_class[Priority::Batch.index()], 2);
        assert_eq!(f.queue_len(), 2);
        // The fleet still serves everything it admitted.
        f.run_to_completion();
        let done = f.take_completed();
        assert_eq!(done.len(), 3);
        assert_eq!(f.stats().admitted, 3);
        // Batch session 2 was displaced (rejected); the interactive
        // session drains from the queue ahead of the surviving batch one.
        let order: Vec<u64> = done.iter().map(|c| c.id.0).collect();
        assert_eq!(order, vec![0, 4, 1]);
    }

    #[test]
    fn per_session_latency_invariant_holds_fleet_wide() {
        let mut config = FleetConfig::new(3);
        config.shard_capacity = 4;
        config.wave_limit = 2; // force waves smaller than residency
        let mut f = fleet(2, config);
        offer_n(&mut f, 8, Priority::Standard);
        f.run_to_completion();
        let done = f.take_completed();
        assert_eq!(done.len(), 8);
        for c in &done {
            assert_eq!(
                c.completed_at - c.admitted_at,
                c.report.elapsed,
                "session {}: shard clock must match session time",
                c.id
            );
            assert_eq!(
                c.report.phases.phase_sum(),
                c.report.elapsed,
                "session {}: exact phase ledger",
                c.id
            );
        }
        // Waves of 2 under 4-deep residency: somebody waited.
        assert!(done.iter().any(|c| c.report.phases.queue > SimTime::ZERO));
    }

    #[test]
    fn dead_shard_replaces_sessions_deterministically() {
        let run = || {
            let mut config = FleetConfig::new(4);
            config.shard_capacity = 4;
            config.faults = FaultPlan::dead_component(11, 1.0);
            let mut f = fleet(3, config);
            offer_n(&mut f, 9, Priority::Standard);
            f.run_to_completion();
            let stats = f.stats();
            let shards = f.shards();
            (stats, shards, f.take_completed().len())
        };
        let (stats, shards, completed) = run();
        // Rate 1.0 kills every shard but the immune rank 0.
        assert!(shards[1].dead && shards[2].dead);
        assert!(!shards[0].dead);
        assert!(stats.replaced > 0, "dead shards had residents to re-place");
        assert_eq!(completed as u64, stats.admitted);
        assert_eq!(
            stats.offered,
            stats.admitted + stats.rejected,
            "offers fully accounted"
        );
        // Placement counts only first placements; re-placements are
        // tracked separately.
        let placed: u64 = shards.iter().map(|s| s.placed).sum();
        let replaced_in: u64 = shards.iter().map(|s| s.replaced_in).sum();
        assert_eq!(placed, stats.admitted);
        assert_eq!(replaced_in, stats.replaced);
        // Determinism: the whole run replays bit-identically.
        let again = run();
        assert_eq!(stats, again.0);
        assert_eq!(shards, again.1);
    }

    #[test]
    fn overload_starves_late_sessions_but_goodput_survives() {
        let mut config = FleetConfig::new(5);
        config.shard_capacity = 12;
        config.wave_limit = 2;
        let mut f = fleet(1, config);
        offer_n(&mut f, 12, Priority::Standard);
        f.run_to_completion();
        let done = f.take_completed();
        assert_eq!(done.len(), 12);
        let good = done
            .iter()
            .filter(|c| c.report.best_move.is_some() && c.report.simulations > 0)
            .count();
        assert!(good > 0, "the earliest-deadline sessions are served");
        assert!(
            good < 12,
            "a 2-wide wave over 12 equal-deadline sessions must starve the tail"
        );
    }
}
