//! Virtual-time cost model for host-side (CPU) work.
//!
//! The simulator executes everything on the host, so "how long would this
//! have taken on the paper's Xeon X5670" is modelled explicitly, mirroring
//! how the GPU's cost is modelled in `pmcts-gpu-sim`. Three quantities
//! matter to the experiments:
//!
//! * the cost of one CPU playout (sets the strength of the sequential
//!   baseline and of root-parallel CPU players);
//! * the cost of one tree operation — selection + expansion +
//!   backpropagation (this is the *sequential part* that grows with the
//!   number of blocks/trees in the block-parallel scheme and caps its
//!   simulations/second, paper Fig. 5);
//! * small per-launch host bookkeeping.

use pmcts_util::SimTime;

/// Cost model of host-side MCTS operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuCostModel {
    /// Cost of one playout ply on the CPU (move gen + flip + RNG).
    pub playout_ply: SimTime,
    /// Fixed cost of one tree iteration (selection/expansion/backprop
    /// bookkeeping, allocator traffic).
    pub tree_op_base: SimTime,
    /// Additional cost per ply of tree depth traversed during selection and
    /// backpropagation.
    pub tree_op_per_depth: SimTime,
    /// Host bookkeeping per kernel launch (argument marshalling, driver
    /// call setup) — charged once per launch on top of the device's own
    /// launch overhead.
    pub launch_prep: SimTime,
}

impl CpuCostModel {
    /// One core of the Intel Xeon X5670 in TSUBAME 2.0.
    ///
    /// Calibration (DESIGN.md §6): ≈10⁴ playouts/second/core for Reversi as
    /// in the authors' CPU study (ref \[4\]) ⇒ ~1.6 µs per ply at ~60 plies
    /// per game. A tree operation costs ~10 µs + 40 ns per ply of depth —
    /// this covers selection, expansion, backpropagation *and* the per-tree
    /// kernel argument marshalling / result handling that the paper calls
    /// the sequential CPU part (it is what separates the block-parallel
    /// curves from leaf parallelism in Fig. 5).
    pub fn xeon_x5670() -> Self {
        CpuCostModel {
            playout_ply: SimTime::from_nanos(1_600),
            tree_op_base: SimTime::from_micros(10),
            tree_op_per_depth: SimTime::from_nanos(40),
            launch_prep: SimTime::from_micros(2),
        }
    }

    /// A zero-cost model for tests that budget by iterations.
    pub fn free() -> Self {
        CpuCostModel {
            playout_ply: SimTime::ZERO,
            tree_op_base: SimTime::ZERO,
            tree_op_per_depth: SimTime::ZERO,
            launch_prep: SimTime::ZERO,
        }
    }

    /// Virtual cost of a CPU playout of `plies` moves.
    #[inline]
    pub fn playout(&self, plies: u32) -> SimTime {
        self.playout_ply * plies as u64
    }

    /// Virtual cost of one tree operation reaching `depth`.
    #[inline]
    pub fn tree_op(&self, depth: u32) -> SimTime {
        self.select_cost(depth) + self.expand_cost()
    }

    /// The depth-proportional share of a tree operation — the UCB descent
    /// (and mirrored backprop walk). Telemetry bills this to the `select`
    /// phase; `select_cost + expand_cost == tree_op` exactly.
    #[inline]
    pub fn select_cost(&self, depth: u32) -> SimTime {
        self.tree_op_per_depth * depth as u64
    }

    /// The fixed share of a tree operation — node creation, statistics
    /// updates, allocator traffic. Telemetry bills this to the `expand`
    /// phase.
    #[inline]
    pub fn expand_cost(&self) -> SimTime {
        self.tree_op_base
    }

    /// Approximate playouts/second this model yields for games averaging
    /// `avg_plies` plies (diagnostic, used by bench output).
    pub fn playouts_per_second(&self, avg_plies: u32) -> f64 {
        let per = self.playout(avg_plies) + self.tree_op(16);
        if per == SimTime::ZERO {
            f64::INFINITY
        } else {
            1e9 / per.as_nanos() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_calibration_near_10k_playouts_per_second() {
        let m = CpuCostModel::xeon_x5670();
        let rate = m.playouts_per_second(60);
        assert!(
            (7_000.0..14_000.0).contains(&rate),
            "calibrated rate {rate} strayed from ~10k/s"
        );
    }

    #[test]
    fn costs_scale_linearly() {
        let m = CpuCostModel::xeon_x5670();
        assert_eq!(m.playout(10) * 2, m.playout(20));
        assert!(m.tree_op(30) > m.tree_op(0));
    }

    #[test]
    fn free_model_is_free() {
        let m = CpuCostModel::free();
        assert_eq!(m.playout(1000), SimTime::ZERO);
        assert_eq!(m.tree_op(1000), SimTime::ZERO);
        assert!(m.playouts_per_second(60).is_infinite());
    }
}
