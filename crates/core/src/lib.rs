//! Parallel Monte Carlo Tree Search — the paper's core system.
//!
//! This crate implements UCT (MCTS with the UCB selection rule, paper §II)
//! and every parallelization scheme the paper discusses (§III):
//!
//! * [`sequential`] — the baseline single-threaded searcher; also the
//!   opponent in the paper's win-ratio experiments.
//! * [`leaf_parallel`] — one tree; every GPU thread runs an independent
//!   playout from the same selected leaf (paper Fig. 2a). Simple, but its
//!   strength saturates: more samples of one node stop helping.
//! * [`root_parallel`] — the CPU scheme of refs \[3\]\[4\]: `n` threads build
//!   `n` independent trees and merge root statistics (paper Fig. 2b).
//! * [`block_parallel`] — **the contribution**: one tree per GPU *block*;
//!   the CPU drives selection/expansion/backpropagation for every tree and
//!   a single kernel launch simulates all trees' frontier nodes at once,
//!   each block's threads acting as a leaf-parallel batch for its tree
//!   (paper Fig. 2c). Combines root parallelism's diversity with leaf
//!   parallelism's SIMD-friendly batches — no intra-GPU communication.
//! * [`device_tree`] — block parallelism with the trees resident in device
//!   memory (DESIGN.md §13): a persistent kernel runs *complete* MCTS
//!   iterations per lane, the host phases collapse to zero, and only
//!   root-child statistics are read back per launch.
//! * [`tree_parallel`] — shared-tree CPU parallelism with virtual loss
//!   (ref \[3\]); included as the scheme the paper notes does *not* map onto
//!   SIMD hardware.
//! * [`hybrid`] — the CPU/GPU overlap of the paper's Fig. 4: kernels are
//!   launched asynchronously and the CPU keeps deepening the same trees
//!   while the GPU simulates, fixing the shallow-tree weakness of GPU-only
//!   search (paper Fig. 8).
//! * [`multi_gpu`] — root parallelism over MPI ranks, one simulated GPU per
//!   rank (paper Fig. 9).
//! * [`wu_uct`] — the exploration-loss fix (DESIGN.md §16): block
//!   parallelism over **one shared tree**, selection corrected by WU-UCT
//!   in-flight counts so concurrent batches diversify instead of piling
//!   onto the uncorrected-UCB maximiser.
//! * [`pipelined`] — barrier-free block parallelism (DESIGN.md §16):
//!   select/expand of wave *k* overlaps the in-flight kernel of wave
//!   *k−1*, priced like [`hybrid`] under the seven-phase ledger.
//!
//! Supporting modules: [`tree`] (structure-of-arrays search tree; the
//! original array-of-structs layout survives in [`tree_aos`] as the
//! benchmark baseline and equivalence oracle), [`ucb`]
//! (selection policy), [`gpu`] (the playout kernel run on the simulated
//! device), [`cost`] (virtual-time cost model of host-side work),
//! [`searcher`] (the common `Searcher` interface and reports), [`player`] /
//! [`arena`] (match harness used by every figure experiment).
//!
//! # Quick start
//!
//! ```
//! use pmcts_core::prelude::*;
//!
//! let mut searcher = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(7));
//! let report = searcher.search(Reversi::initial(), SearchBudget::Iterations(2_000));
//! let mv = report.best_move.expect("initial position has moves");
//! println!("best: {mv}, {} simulations", report.simulations);
//! ```

pub mod analysis;
pub mod arena;
pub mod block_parallel;
pub mod config;
pub mod cost;
pub mod device_tree;
pub mod fleet;
pub mod gpu;
pub mod hybrid;
pub mod leaf_parallel;
pub mod multi_gpu;
pub mod multi_node_cpu;
pub mod persistent;
pub mod pipelined;
pub mod player;
pub mod root_parallel;
pub mod searcher;
pub mod sequential;
pub mod service;
pub mod telemetry;
pub mod transposition;
pub mod tree;
pub mod tree_aos;
pub mod tree_parallel;
pub mod ucb;
pub mod wu_uct;

/// One-stop imports for applications and benches.
pub mod prelude {
    pub use crate::arena::{entrant_stream, play_game, GameRecord, MatchSeries};
    pub use crate::block_parallel::BlockParallelSearcher;
    pub use crate::config::{MctsConfig, SearchBudget};
    pub use crate::cost::CpuCostModel;
    pub use crate::device_tree::DeviceTreeSearcher;
    pub use crate::fleet::{
        Admission, Fleet, FleetCompleted, FleetConfig, FleetSessionId, FleetStats, Priority,
        ShardSnapshot,
    };
    pub use crate::hybrid::HybridSearcher;
    pub use crate::leaf_parallel::LeafParallelSearcher;
    pub use crate::multi_gpu::MultiGpuSearcher;
    pub use crate::multi_node_cpu::MultiNodeCpuSearcher;
    pub use crate::persistent::PersistentSearcher;
    pub use crate::pipelined::PipelinedSearcher;
    pub use crate::player::{GamePlayer, MctsPlayer, RandomPlayer};
    pub use crate::root_parallel::RootParallelSearcher;
    pub use crate::searcher::{SearchReport, Searcher};
    pub use crate::sequential::SequentialSearcher;
    pub use crate::service::{CompletedSession, SearchService, SessionId};
    pub use crate::telemetry::PhaseBreakdown;
    pub use crate::transposition::{TransStats, TransTable};
    pub use crate::tree_parallel::TreeParallelSearcher;
    pub use crate::wu_uct::WuUctSearcher;
    pub use pmcts_games::{Connect4, Game, Hex11, Hex7, Outcome, Player, Reversi, TicTacToe};
    pub use pmcts_gpu_sim::{Device, DeviceSpec, LaunchConfig};
    pub use pmcts_mpi_sim::Rank;
    pub use pmcts_util::{FaultCounters, FaultPlan, GpuFault, SimTime};
}
