//! WU-UCT: block-parallel search with the "Watch the Unobserved"
//! correction (Liu et al., PAPERS.md) — the fix for parallel-search
//! exploration loss.
//!
//! Plain block parallelism grows `B` *independent* trees precisely because
//! a shared tree selected with uncorrected UCB would send every batch of a
//! wave down the same maximal path: selection acts as if the playouts
//! already dispatched do not exist. WU-UCT repairs that by tracking
//! **unobserved in-flight counts** `O` on the tree: each dispatched batch
//! registers its size on every node of its selection path, and selection
//! scores children with [`ucb1_corrected_with_ln`] — `N + O` in both the
//! exploitation denominator and the `ln(T + O)` term — so an in-flight
//! batch discounts its own path exactly as if its samples had landed with
//! unknown outcome.
//!
//! This searcher therefore runs **one shared tree**: per wave it performs
//! `B` corrected selections *sequentially in block order* (block `b` sees
//! the `O` registered by blocks `0..b` of the same wave — in-flight
//! membership is a pure function of the launch schedule, never of thread
//! timing), expands each frontier, launches one kernel with block `b`
//! simulating frontier `b`, and on readback rolls every block's `O` back
//! exactly before backpropagating its outcomes. The shared tree receives
//! `B` diversified updates per wave instead of one per private tree, which
//! buys back the exploration that width otherwise destroys (charted by the
//! `frontier` bench).
//!
//! At `B = 1` no selection ever observes a nonzero `O` (a wave's counts
//! are registered after its own selection and rolled back before the
//! next), the corrected arithmetic collapses bit-for-bit to plain UCB, and
//! the whole report is bit-identical to [`BlockParallelSearcher`]'s — the
//! zero-width oracle the tests pin.
//!
//! Fault ladder (same as block parallelism): a hung kernel is charged to
//! its hang deadline and retried once; a second hang degrades the wave to
//! one CPU playout per block. A `BlockAbort` voids the aborted block's
//! backpropagation. In every case — clean, voided, or degraded — each
//! block's in-flight registration is rolled back exactly once, so all `O`
//! counters are zero after every wave (the residue invariant).
//!
//! [`BlockParallelSearcher`]: crate::block_parallel::BlockParallelSearcher
//! [`ucb1_corrected_with_ln`]: crate::ucb::ucb1_corrected_with_ln

use crate::config::{MctsConfig, SearchBudget};
use crate::cost::CpuCostModel;
use crate::gpu::{aggregate, LaneOutcome, PlayoutKernel};
use crate::searcher::{BudgetTracker, SearchReport, Searcher};
use crate::telemetry::PhaseBreakdown;
use crate::tree::SearchTree;
use pmcts_games::{random_playout, Game, Player};
use pmcts_gpu_sim::{Device, GpuFault, LaunchConfig};
use pmcts_util::{Rng64, SimTime, Xoshiro256pp};

/// WU-UCT searcher: one shared tree, `B` in-flight batches per wave,
/// selection corrected by unobserved counts.
#[derive(Clone, Debug)]
pub struct WuUctSearcher<G: Game> {
    config: MctsConfig,
    device: Device,
    launch: LaunchConfig,
    stream: u64,
    rng: Xoshiro256pp,
    epoch: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> WuUctSearcher<G> {
    /// Creates a WU-UCT searcher with `launch.blocks` in-flight batches of
    /// `launch.threads_per_block` playouts per wave, all on one tree.
    pub fn new(config: MctsConfig, device: Device, launch: LaunchConfig) -> Self {
        Self::with_stream(config, device, launch, 0)
    }

    /// Like [`new`](Self::new) but on RNG sub-stream `stream`. The
    /// derivation matches [`BlockParallelSearcher`] exactly so the width-1
    /// oracle equivalence holds bit-for-bit.
    ///
    /// [`BlockParallelSearcher`]: crate::block_parallel::BlockParallelSearcher
    pub fn with_stream(
        config: MctsConfig,
        device: Device,
        launch: LaunchConfig,
        stream: u64,
    ) -> Self {
        let rng = Xoshiro256pp::derive(config.seed, 0xB10C ^ stream);
        WuUctSearcher {
            config,
            device,
            launch,
            stream,
            rng,
            epoch: 0,
            _game: std::marker::PhantomData,
        }
    }

    /// The launch geometry (blocks = concurrent in-flight batches).
    pub fn launch_config(&self) -> LaunchConfig {
        self.launch
    }

    fn next_stream_seed(&mut self) -> u64 {
        self.epoch += 1;
        self.config
            .seed
            .wrapping_add(self.stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(self.epoch.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Runs the search, returning the shared tree for callers that need it
    /// (the residue tests). Public API users call `Searcher::search`.
    pub(crate) fn search_tree(
        &mut self,
        root: G,
        budget: SearchBudget,
    ) -> (SearchTree<G>, BudgetTracker, u64, PhaseBreakdown) {
        let blocks = self.launch.blocks as usize;
        let tpb = self.launch.threads_per_block as usize;
        let mut tree = SearchTree::for_config(root, &self.config);
        let mut tracker = BudgetTracker::new(budget);
        let mut phases = PhaseBreakdown::new();
        let mut simulations = 0u64;
        let cpu = self.config.cpu_cost;
        let exploration_c = self.config.exploration_c;

        if tree.is_terminal(tree.root()) {
            return (tree, tracker, 0, phases);
        }

        let plan = self.config.faults;
        while tracker.may_continue() {
            let mut iter_cost = SimTime::ZERO;
            let (frontier, host_cost) = select_wave(
                &mut tree,
                blocks,
                tpb as u32,
                &mut self.rng,
                exploration_c,
                &cpu,
                &mut phases,
            );
            iter_cost += host_cost;

            // One launch simulates every batch's frontier node. A hang is
            // retried once; a second hang degrades the wave to one CPU
            // playout per block — after rolling the in-flight counts back.
            let mut retried = false;
            loop {
                let kernel = PlayoutKernel::new(
                    frontier.iter().map(|&(_, s, _)| s).collect(),
                    self.next_stream_seed(),
                );
                let fault = plan.gpu_fault(self.stream, self.epoch, self.launch.blocks);
                let upload = self.device.spec().transfer_time(kernel.upload_bytes());
                let result = self.device.launch_with_fault(&kernel, self.launch, fault);
                phases.upload += cpu.launch_prep + upload;
                iter_cost += cpu.launch_prep + upload;

                if result.fault == GpuFault::Hang {
                    let deadline = plan.hang_deadline(result.stats.elapsed());
                    phases.kernel += deadline;
                    iter_cost += deadline;
                    phases.faults.injected += 1;
                    if !retried {
                        retried = true;
                        phases.faults.retried += 1;
                        continue;
                    }
                    // Degraded mode: the dispatched batches are lost, so
                    // their unobserved counts roll back first; each block
                    // then contributes one CPU playout from its frontier.
                    for &(node, _, _) in &frontier {
                        tree.sub_inflight_path(node, tpb as u32);
                    }
                    for &(node, state, _) in &frontier {
                        let playout = random_playout(state, &mut self.rng);
                        let cost = cpu.playout(playout.plies);
                        phases.kernel += cost;
                        iter_cost += cost;
                        tree.backprop(node, playout.reward_for(Player::P1), 1);
                        simulations += 1;
                        phases.simulations += 1;
                        phases.faults.degraded += 1;
                    }
                    break;
                }

                let voided = match result.fault {
                    GpuFault::BlockAbort(bad) => {
                        phases.faults.injected += 1;
                        phases.faults.degraded += 1;
                        Some(bad as usize)
                    }
                    fault => {
                        if fault != GpuFault::None {
                            phases.faults.injected += 1;
                        }
                        None
                    }
                };

                simulations += backprop_wave(
                    &mut tree,
                    &frontier,
                    &result.outputs,
                    tpb,
                    voided,
                    &mut phases,
                );

                phases.kernel += result.stats.launch_overhead + result.stats.device_time;
                phases.readback += result.stats.readback_time;
                iter_cost += result.stats.elapsed();
                phases.record_launch(&result.stats);
                break;
            }

            tracker.charge(iter_cost);
        }

        debug_assert_eq!(tree.inflight_total(), 0, "in-flight residue after search");
        (tree, tracker, simulations, phases)
    }
}

/// The host half of one WU-UCT wave: `B` corrected selections in block
/// order on the shared tree, each expansion followed by registering the
/// batch's `tpb` unobserved playouts on its path — so block `b`'s
/// selection is discounted by the `O` of blocks `0..b`. Returns each
/// batch's frontier `(node, state, depth)` plus the summed host tree-op
/// cost, charged exactly like block parallelism's host phase.
///
/// The loop is deliberately sequential: each selection *depends* on the
/// previous registrations, which is what makes in-flight membership a pure
/// function of the schedule (and host-thread independence trivial).
///
/// Shared with the multi-session search service (one wave per batched
/// launch).
pub(crate) fn select_wave<G: Game>(
    tree: &mut SearchTree<G>,
    blocks: usize,
    tpb: u32,
    rng: &mut Xoshiro256pp,
    exploration_c: f64,
    cpu: &CpuCostModel,
    phases: &mut PhaseBreakdown,
) -> (Vec<(u32, G, u32)>, SimTime) {
    let mut frontier: Vec<(u32, G, u32)> = Vec::with_capacity(blocks);
    let mut host_cost = SimTime::ZERO;
    for _ in 0..blocks {
        let sel = tree.select_corrected(exploration_c);
        let node = if tree.untried_len(sel) != 0 {
            phases.expansions += 1;
            let pick = rng.next_below(tree.untried_len(sel) as u32);
            tree.expand_with_pick(sel, pick)
        } else {
            sel
        };
        tree.add_inflight_path(node, tpb);
        let depth = tree.depth(node);
        host_cost += cpu.tree_op(depth);
        phases.select += cpu.select_cost(depth);
        phases.expand += cpu.expand_cost();
        frontier.push((node, *tree.state(node), depth));
    }
    (frontier, host_cost)
}

/// The readback half of one WU-UCT wave: every block's in-flight
/// registration is rolled back exactly once (voided blocks included — a
/// voided launch still retires its unobserved counts), then each
/// non-voided block's `tpb` lanes aggregate and backpropagate into the
/// shared tree. Returns the simulations credited.
pub(crate) fn backprop_wave<G: Game>(
    tree: &mut SearchTree<G>,
    frontier: &[(u32, G, u32)],
    outputs: &[LaneOutcome],
    tpb: usize,
    voided: Option<usize>,
    phases: &mut PhaseBreakdown,
) -> u64 {
    let mut total = 0u64;
    for (b, &(node, _, _)) in frontier.iter().enumerate() {
        tree.sub_inflight_path(node, tpb as u32);
        if Some(b) == voided {
            continue;
        }
        let lanes = &outputs[b * tpb..(b + 1) * tpb];
        let (wins_p1, n) = aggregate(lanes);
        tree.backprop(node, wins_p1, n);
        total += n;
        phases.simulations += n;
    }
    total
}

impl<G: Game> Searcher<G> for WuUctSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        let (tree, tracker, sims, phases) = self.search_tree(root, budget);
        crate::block_parallel::report_from_trees(
            &self.config,
            std::slice::from_ref(&tree),
            &tracker,
            sims,
            phases,
        )
    }

    fn name(&self) -> String {
        format!(
            "WU-UCT ({} batches × {} threads, shared tree)",
            self.launch.blocks, self.launch.threads_per_block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_parallel::BlockParallelSearcher;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_gpu_sim::DeviceSpec;
    use pmcts_util::FaultPlan;

    fn device() -> Device {
        Device::new(DeviceSpec::tesla_c2050())
    }

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn zero_width_oracle_matches_block_parallel_bit_identically() {
        // At one block no selection ever sees a nonzero O, so the corrected
        // search must replay plain block parallelism — the full report,
        // virtual times included, compared field for field.
        for seed in [1u64, 9, 77] {
            let launch = LaunchConfig::new(1, 32);
            let wu = WuUctSearcher::<Reversi>::new(cfg(seed), device(), launch)
                .search(Reversi::initial(), SearchBudget::Iterations(20));
            let block = BlockParallelSearcher::<Reversi>::new(cfg(seed), device(), launch)
                .search(Reversi::initial(), SearchBudget::Iterations(20));
            assert_eq!(
                wu, block,
                "width-1 WU-UCT diverged from plain UCB (seed {seed})"
            );
        }
    }

    #[test]
    fn simulations_equal_grid_times_iterations() {
        let mut s = WuUctSearcher::<Reversi>::new(cfg(1), device(), LaunchConfig::new(4, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(5));
        assert_eq!(r.iterations, 5);
        assert_eq!(r.simulations, 5 * 4 * 32);
        // One shared tree: root + one expansion per block per wave.
        assert_eq!(r.tree_nodes, 1 + 20);
    }

    #[test]
    fn no_inflight_residue_and_visits_account_exactly() {
        // Mirrors tree parallelism's `no_virtual_loss_residue`: after the
        // search every O counter is zero and the root mass equals the
        // simulations — in-flight corrections never leak into statistics.
        let mut s = WuUctSearcher::<Reversi>::new(cfg(2), device(), LaunchConfig::new(8, 32));
        let (tree, _, sims, _) = s.search_tree(Reversi::initial(), SearchBudget::Iterations(50));
        assert_eq!(tree.inflight_total(), 0, "unobserved counts leaked");
        assert_eq!(tree.visits(tree.root()), sims);
        let root_mass: u64 = tree.root_stats().iter().map(|st| st.visits).sum();
        assert_eq!(root_mass, sims);
    }

    #[test]
    fn no_inflight_residue_under_faults() {
        // Every fault path — hang-retry, degraded CPU playouts, voided
        // blocks — must roll registrations back exactly once.
        let plans = [
            FaultPlan::gpu_hang(11, 1.0),
            FaultPlan::gpu_abort(12, 1.0),
            FaultPlan::gpu_slowdown(13, 1.0, 3),
        ];
        for plan in plans {
            let mut s = WuUctSearcher::<Reversi>::new(
                cfg(3).with_faults(plan),
                device(),
                LaunchConfig::new(4, 32),
            );
            let (tree, _, _, phases) =
                s.search_tree(Reversi::initial(), SearchBudget::Iterations(8));
            assert!(phases.faults.injected > 0, "plan must actually fire");
            assert_eq!(tree.inflight_total(), 0, "fault path leaked O counts");
        }
    }

    #[test]
    fn waves_diversify_the_frontier() {
        // The point of the correction: within one wave the B batches spread
        // over distinct root children instead of piling onto one path. With
        // 4 opening moves and 8 blocks, the very first wave must already
        // touch all 4 (untried moves are consumed first and O discounts the
        // rest).
        let mut s = WuUctSearcher::<Reversi>::new(cfg(4), device(), LaunchConfig::new(8, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(1));
        let explored = r.root_stats.iter().filter(|st| st.visits > 0).count();
        assert_eq!(explored, 4, "first wave failed to diversify");
    }

    #[test]
    fn shared_tree_grows_deeper_than_independent_trees() {
        // Equal budget, equal width: B batches deepening one tree reach
        // further than B private trees each deepening alone.
        let launch = LaunchConfig::new(32, 32);
        let budget = SearchBudget::Iterations(30);
        let wu = WuUctSearcher::<Reversi>::new(cfg(5), device(), launch)
            .search(Reversi::initial(), budget);
        let block = BlockParallelSearcher::<Reversi>::new(cfg(5), device(), launch)
            .search(Reversi::initial(), budget);
        assert!(
            wu.max_depth > block.max_depth,
            "shared corrected tree depth {} should beat private trees' {}",
            wu.max_depth,
            block.max_depth
        );
    }

    #[test]
    fn bounded_capacity_is_respected_with_batches_in_flight() {
        let mut s = WuUctSearcher::<Reversi>::new(
            cfg(6).with_tree_capacity(64),
            device(),
            LaunchConfig::new(8, 32),
        );
        let (tree, _, _, _) = s.search_tree(Reversi::initial(), SearchBudget::Iterations(60));
        assert!(tree.live_nodes() <= 64, "arena exceeded its cap");
        assert!(tree.evictions() > 0, "test must actually churn the arena");
        assert_eq!(tree.inflight_total(), 0);
        tree.debug_validate();
    }

    #[test]
    fn finds_tactical_move() {
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher =
            WuUctSearcher::<TicTacToe>::new(cfg(7), device(), LaunchConfig::new(4, 32));
        let r = searcher.search(s, SearchBudget::Iterations(40));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn terminal_root_is_handled() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let mut searcher =
            WuUctSearcher::<TicTacToe>::new(cfg(8), device(), LaunchConfig::new(2, 32));
        let r = searcher.search(s, SearchBudget::Iterations(5));
        assert_eq!(r.best_move, None);
        assert_eq!(r.simulations, 0);
    }
}
