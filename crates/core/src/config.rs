//! Search configuration and budgets.

use crate::cost::CpuCostModel;
use pmcts_util::{FaultPlan, SimTime};

/// How long a searcher may run.
///
/// The paper's experiments fix the *search time* per move ("the time limit
/// can be specified", §I) — on the simulator that is virtual time, so a GPU
/// player and a CPU player receive exactly comparable budgets. Iteration
/// budgets are used by tests that need exact determinism independent of the
/// cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchBudget {
    /// Run exactly this many MCTS iterations (an iteration may contain many
    /// simulations on the parallel searchers).
    Iterations(u64),
    /// Run until this much virtual time is spent.
    VirtualTime(SimTime),
}

impl SearchBudget {
    /// A virtual-time budget in milliseconds — the unit the figure
    /// regenerators use.
    pub fn millis(ms: u64) -> Self {
        SearchBudget::VirtualTime(SimTime::from_millis(ms))
    }
}

/// Parameters shared by every MCTS variant.
#[derive(Clone, Debug, PartialEq)]
pub struct MctsConfig {
    /// UCB exploration constant `C` (paper §II.1). The classic UCT value is
    /// `sqrt(2)`; Reversi play is fairly insensitive in `[0.7, 2]`.
    pub exploration_c: f64,
    /// Base RNG seed; every thread/block/lane derives an independent stream.
    pub seed: u64,
    /// Virtual cost model for host-side operations.
    pub cpu_cost: CpuCostModel,
    /// How the final move is chosen from root statistics.
    pub final_move: FinalMoveRule,
    /// Deterministic fault-injection schedule. [`FaultPlan::none`] (the
    /// default) reproduces fault-free behaviour bit-for-bit: fault queries
    /// draw from their own derived streams, never from the search RNGs.
    pub faults: FaultPlan,
    /// Node capacity of each search tree. `None` (the default) grows trees
    /// without bound, reproducing the unbounded fingerprints bit-for-bit.
    /// `Some(n)` caps every tree built through this config at `n` arena
    /// slots: cold nodes are recycled by deterministic LRU eviction and a
    /// Zobrist transposition table recovers evicted statistics on
    /// re-expansion (see `SearchTree::bounded` and DESIGN.md §12).
    pub max_tree_nodes: Option<u32>,
}

/// Rule for picking the move to play after search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FinalMoveRule {
    /// Most-visited root child ("robust child") — the standard, and what the
    /// merged root statistics of root/block parallelism use.
    RobustChild,
    /// Highest mean value ("max child"); offered for the final-selection
    /// ablation.
    MaxChild,
}

impl Default for MctsConfig {
    fn default() -> Self {
        MctsConfig {
            exploration_c: std::f64::consts::SQRT_2,
            seed: 0x00C0_FFEE,
            cpu_cost: CpuCostModel::xeon_x5670(),
            final_move: FinalMoveRule::RobustChild,
            faults: FaultPlan::none(),
            max_tree_nodes: None,
        }
    }
}

impl MctsConfig {
    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the exploration constant.
    pub fn with_exploration(mut self, c: f64) -> Self {
        assert!(
            c.is_finite() && c >= 0.0,
            "exploration constant must be ≥ 0"
        );
        self.exploration_c = c;
        self
    }

    /// Replaces the CPU cost model.
    pub fn with_cpu_cost(mut self, cost: CpuCostModel) -> Self {
        self.cpu_cost = cost;
        self
    }

    /// Replaces the final-move rule.
    pub fn with_final_move(mut self, rule: FinalMoveRule) -> Self {
        self.final_move = rule;
        self
    }

    /// Replaces the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Caps every tree built through this config at `max_nodes` arena
    /// slots (LRU node recycling + transposition table).
    ///
    /// # Panics
    /// Panics if `max_nodes < 64`: the cap must comfortably exceed the
    /// deepest selection path, which is always pinned against eviction.
    pub fn with_tree_capacity(mut self, max_nodes: u32) -> Self {
        assert!(max_nodes >= 64, "tree capacity must be ≥ 64 nodes");
        self.max_tree_nodes = Some(max_nodes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = MctsConfig::default();
        assert!((c.exploration_c - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(c.final_move, FinalMoveRule::RobustChild);
    }

    #[test]
    fn builder_methods() {
        let c = MctsConfig::default()
            .with_seed(42)
            .with_exploration(1.0)
            .with_final_move(FinalMoveRule::MaxChild);
        assert_eq!(c.seed, 42);
        assert_eq!(c.exploration_c, 1.0);
        assert_eq!(c.final_move, FinalMoveRule::MaxChild);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_exploration_rejected() {
        MctsConfig::default().with_exploration(-1.0);
    }

    #[test]
    fn budget_millis_helper() {
        assert_eq!(
            SearchBudget::millis(5),
            SearchBudget::VirtualTime(SimTime::from_millis(5))
        );
    }
}
