//! Leaf parallelism on the (simulated) GPU — paper §III.5, Fig. 2a.
//!
//! One search tree lives on the CPU. Each iteration selects and expands one
//! node, then launches a kernel in which **every** thread of the whole grid
//! plays an independent playout from that same node; the result array is
//! read back and backpropagated as one batch. "The obtained result is the
//! same as in the basic CPU version except that the number of simulations
//! is greater and the accuracy is better" — but all those simulations
//! sample one node, which is why its playing strength saturates (Fig. 6).

use crate::config::{MctsConfig, SearchBudget};
use crate::gpu::{aggregate, PlayoutKernel};
use crate::searcher::{BudgetTracker, SearchReport, Searcher};
use crate::telemetry::PhaseBreakdown;
use crate::tree::SearchTree;
use pmcts_games::{random_playout, Game, Player};
use pmcts_gpu_sim::{Device, GpuFault, LaunchConfig};
use pmcts_util::Xoshiro256pp;

/// Leaf-parallel GPU searcher.
#[derive(Clone, Debug)]
pub struct LeafParallelSearcher<G: Game> {
    config: MctsConfig,
    device: Device,
    launch: LaunchConfig,
    stream: u64,
    rng: Xoshiro256pp,
    epoch: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> LeafParallelSearcher<G> {
    /// Creates a leaf-parallel searcher launching `launch` on `device`.
    pub fn new(config: MctsConfig, device: Device, launch: LaunchConfig) -> Self {
        Self::with_stream(config, device, launch, 0)
    }

    /// Like [`new`](Self::new) but drawing randomness from sub-stream
    /// `stream` of the seed (for multi-searcher experiments).
    pub fn with_stream(
        config: MctsConfig,
        device: Device,
        launch: LaunchConfig,
        stream: u64,
    ) -> Self {
        let rng = Xoshiro256pp::derive(config.seed, 0x1EAF ^ stream);
        LeafParallelSearcher {
            config,
            device,
            launch,
            stream,
            rng,
            epoch: 0,
            _game: std::marker::PhantomData,
        }
    }

    /// The launch geometry in use.
    pub fn launch_config(&self) -> LaunchConfig {
        self.launch
    }

    /// Simulations per host iteration (= grid size).
    pub fn sims_per_iteration(&self) -> u64 {
        self.launch.total_threads() as u64
    }

    fn next_stream_seed(&mut self) -> u64 {
        self.epoch += 1;
        self.config
            .seed
            .wrapping_add(self.stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(self.epoch.wrapping_mul(0xD134_2543_DE82_EF95))
    }
}

impl<G: Game> Searcher<G> for LeafParallelSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        let mut tree = SearchTree::for_config(root, &self.config);
        let mut tracker = BudgetTracker::new(budget);
        let mut phases = PhaseBreakdown::new();
        let mut simulations = 0u64;
        let cpu = self.config.cpu_cost;

        if !tree.is_terminal(tree.root()) {
            let plan = self.config.faults;
            while tracker.may_continue() {
                // Selection + expansion on the host.
                let selected = tree.select(self.config.exploration_c);
                let node = if !tree.fully_expanded(selected) {
                    phases.expansions += 1;
                    tree.expand(selected, &mut self.rng)
                } else {
                    selected
                };
                let depth = tree.depth(node);
                phases.select += cpu.select_cost(depth);
                phases.expand += cpu.expand_cost();
                let mut iter_cost = cpu.tree_op(depth);

                // One kernel launch: the whole grid simulates this node. A
                // launch that hangs past its virtual deadline is retried
                // once with fresh stream randomness; a second hang degrades
                // the iteration to one CPU playout so progress is always
                // made.
                let mut retried = false;
                loop {
                    let kernel =
                        PlayoutKernel::new(vec![*tree.state(node)], self.next_stream_seed());
                    let fault = plan.gpu_fault(self.stream, self.epoch, self.launch.blocks);
                    let upload = self.device.spec().transfer_time(kernel.upload_bytes());
                    let result = self.device.launch_with_fault(&kernel, self.launch, fault);
                    phases.upload += cpu.launch_prep + upload;
                    iter_cost += cpu.launch_prep + upload;

                    if result.fault == GpuFault::Hang {
                        // The host waits out the deadline; the launch's
                        // outputs are void.
                        let deadline = plan.hang_deadline(result.stats.elapsed());
                        phases.kernel += deadline;
                        iter_cost += deadline;
                        phases.faults.injected += 1;
                        if !retried {
                            retried = true;
                            phases.faults.retried += 1;
                            continue;
                        }
                        let playout = random_playout(*tree.state(node), &mut self.rng);
                        let cost = cpu.playout(playout.plies);
                        phases.kernel += cost;
                        iter_cost += cost;
                        tree.backprop(node, playout.reward_for(Player::P1), 1);
                        simulations += 1;
                        phases.simulations += 1;
                        phases.faults.degraded += 1;
                        break;
                    }

                    // Completed launch (possibly slowed, possibly with one
                    // aborted block whose lane results are void).
                    let (wins_p1, n) = match result.fault {
                        GpuFault::BlockAbort(bad) => {
                            phases.faults.injected += 1;
                            phases.faults.degraded += 1;
                            let tpb = self.launch.threads_per_block as usize;
                            let mut wins = 0.0;
                            let mut n = 0u64;
                            for b in 0..self.launch.blocks as usize {
                                if b == bad as usize {
                                    continue;
                                }
                                let (w, c) = aggregate(&result.outputs[b * tpb..(b + 1) * tpb]);
                                wins += w;
                                n += c;
                            }
                            (wins, n)
                        }
                        fault => {
                            if fault != GpuFault::None {
                                phases.faults.injected += 1;
                            }
                            aggregate(&result.outputs)
                        }
                    };
                    tree.backprop(node, wins_p1, n);
                    simulations += n;
                    phases.simulations += n;
                    phases.kernel += result.stats.launch_overhead + result.stats.device_time;
                    phases.readback += result.stats.readback_time;
                    iter_cost += result.stats.elapsed();
                    phases.record_launch(&result.stats);
                    break;
                }

                tracker.charge(iter_cost);
            }
        }

        phases.budget_overshoot = tracker.overshoot();
        SearchReport {
            best_move: tree.best_move(self.config.final_move),
            simulations,
            iterations: tracker.iterations,
            tree_nodes: tree.live_nodes() as u64,
            max_depth: tree.max_depth(),
            elapsed: tracker.elapsed,
            root_stats: tree.root_stats(),
            phases,
        }
    }

    fn name(&self) -> String {
        format!(
            "leaf parallelism ({} blocks × {} threads)",
            self.launch.blocks, self.launch.threads_per_block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::new(DeviceSpec::tesla_c2050())
    }

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn one_iteration_runs_grid_size_simulations() {
        let mut s =
            LeafParallelSearcher::<Reversi>::new(cfg(1), device(), LaunchConfig::new(4, 64));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(3));
        assert_eq!(r.iterations, 3);
        assert_eq!(r.simulations, 3 * 256);
        assert_eq!(r.tree_nodes, 4); // root + one expansion per iteration
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            LeafParallelSearcher::<Reversi>::new(cfg(seed), device(), LaunchConfig::new(2, 32))
                .search(Reversi::initial(), SearchBudget::Iterations(8))
        };
        let a = run(9);
        let b = run(9);
        let c = run(10);
        assert_eq!(a.root_stats, b.root_stats);
        assert_eq!(a.best_move, b.best_move);
        assert_ne!(a.root_stats, c.root_stats);
    }

    #[test]
    fn virtual_time_includes_kernel_cost() {
        let mut s =
            LeafParallelSearcher::<Reversi>::new(cfg(2), device(), LaunchConfig::new(14, 64));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(2));
        // Two launches must cost at least two launch overheads.
        assert!(r.elapsed >= device().spec().launch_overhead * 2);
    }

    #[test]
    fn picks_winning_move_in_tictactoe() {
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher =
            LeafParallelSearcher::<TicTacToe>::new(cfg(3), device(), LaunchConfig::new(2, 32));
        let r = searcher.search(s, SearchBudget::Iterations(60));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn terminal_root_reports_no_move() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let mut searcher =
            LeafParallelSearcher::<TicTacToe>::new(cfg(4), device(), LaunchConfig::new(1, 32));
        let r = searcher.search(s, SearchBudget::Iterations(5));
        assert_eq!(r.best_move, None);
        assert_eq!(r.simulations, 0);
    }

    #[test]
    fn root_visits_match_simulations() {
        let mut s =
            LeafParallelSearcher::<Reversi>::new(cfg(5), device(), LaunchConfig::new(2, 32));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(10));
        let total: u64 = r.root_stats.iter().map(|st| st.visits).sum();
        assert_eq!(total, r.simulations);
    }
}
