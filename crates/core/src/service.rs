//! Multi-session search service: cross-search kernel batching (extension).
//!
//! The paper's schemes assume one search owns the whole GPU. A server
//! playing many games at once (or one game against many opponents) instead
//! has N concurrent *sessions*, each searching its own position under its
//! own budget — and a solo session with a handful of blocks leaves most of
//! the device's SMs idle. [`SearchService`] multiplexes sessions over one
//! shared device: every *round* it asks each active session for its next
//! playout batch (selection + expansion on the host, via the steppable
//! engine surface), packs all batches into **one** kernel through
//! [`Device::launch_batched`] — block `b` of the merged grid serves
//! session-queue `b` — and hands each session back its output slice for
//! backpropagation. One launch overhead and one device round-trip are
//! amortised over every session, and the merged grid is large enough to
//! saturate the SMs (the Fig. 5 plateau, across sessions instead of
//! trees).
//!
//! # Latency accounting
//!
//! All sessions of a round share the device, so each one's virtual
//! per-round latency is the *whole round*: its own host tree work
//! (`select`/`expand` phases), the other sessions' host work plus the
//! shared launch preparation (the `queue` phase — time spent waiting on
//! the batch, which a solo searcher never pays), the shared upload, the
//! kernel, and the readback. Every participant of a round therefore
//! observes the same round latency, the service clock advances by exactly
//! that amount, and `completed_at − admitted_at` equals the session's
//! reported `elapsed` — each session enforces its own [`SearchBudget`]
//! deadline with the predictive tracker, so a session never overshoots its
//! deadline by more than one round.
//!
//! # Wave packing and latency SLOs
//!
//! [`SearchService::step`] packs *every* active session into the round.
//! [`SearchService::step_wave`] bounds the round to a **wave** of at most
//! `limit` sessions, picked **deadline-aware** (earliest SLO deadline
//! first, ties and deadline-free sessions in session-id order) instead of
//! pure session-id order — the scheduler the fleet layer
//! ([`crate::fleet`]) runs per shard. Sessions left out of a wave still
//! observe the round: the whole round latency is charged to their `queue`
//! phase and their budget tracker (a latency SLO accrues while waiting),
//! so `completed_at − admitted_at == elapsed` and the exact phase-ledger
//! identity hold for every session whether or not it ran. A session can
//! therefore exhaust its budget *without ever launching* — that is the
//! overload signal the fleet's goodput accounting counts.
//!
//! # Determinism
//!
//! Rounds process sessions in **deterministic order**: the retire pass and
//! launch packing run in session-id order (ids are assigned at admission
//! from a monotone counter), wave packing in (deadline, session-id) order
//! — both pure functions of admitted state, never of arrival or
//! completion timing; host phases fan out over the device's
//! [`WorkerPool`] with index-keyed folding; and
//! per-lane RNG streams derive from the service seed, the launch epoch and
//! the lane's position in the merged grid. The same seed and the same
//! admission sequence therefore produce byte-identical results for any
//! `--host-threads` count. Fault injection is not applied on the service
//! path (sessions model a trusted shared device; the fault matrix covers
//! the standalone engines — the fleet layer injects *shard death* above
//! the service).
//!
//! Per-session reports carry the full time-phase ledger
//! (`phase_sum() == elapsed`, now including `queue`) and launch counts;
//! the device-side counters (warp steps, occupancy) describe whole merged
//! grids and are recorded per launch in [`SearchService::launches`]
//! rather than split across sessions.

use crate::block_parallel::{backprop_outputs, report_from_trees, select_and_expand_all};
use crate::config::{MctsConfig, SearchBudget};
use crate::cost::CpuCostModel;
use crate::gpu::{aggregate, LaneOutcome, PlayoutKernel};
use crate::searcher::{BudgetTracker, SearchReport};
use crate::sequential::SequentialSearcher;
use crate::telemetry::PhaseBreakdown;
use crate::tree::SearchTree;
use pmcts_games::Game;
use pmcts_gpu_sim::{BatchSegment, Device, WorkerPool};
use pmcts_util::{SimTime, Xoshiro256pp};
use std::sync::Arc;

/// Identity of one admitted search session. Ids are assigned from a
/// monotone counter at admission and define the (deterministic) batching
/// order of every round.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One session's playout work for the next batched round: the frontier
/// positions to simulate (one per block the session owns in the merged
/// grid) and the host-side cost of producing them.
pub struct PlayoutRequest<G> {
    /// Frontier positions, one per block.
    pub positions: Vec<G>,
    /// Virtual cost of this round's selection + expansion.
    pub host_cost: SimTime,
}

/// How one batched round's shared latency lands on one session, as
/// computed by the service (see the module docs): `queue` is the other
/// sessions' host work plus launch preparation; `upload`/`kernel`/
/// `readback` are the shared device-side components, identical for every
/// participant of the round.
#[derive(Clone, Copy, Debug)]
pub struct RoundLatency {
    /// Waiting on the rest of the batch (zero for a solo session's rounds
    /// minus the launch preparation).
    pub queue: SimTime,
    /// Launch preparation + host→device transfer of the merged roots.
    pub upload: SimTime,
    /// Launch overhead + device execution of the merged grid.
    pub kernel: SimTime,
    /// Device→host readback of the merged outputs.
    pub readback: SimTime,
}

impl RoundLatency {
    fn total(&self) -> SimTime {
        self.queue + self.upload + self.kernel + self.readback
    }
}

/// The steppable engine surface the service multiplexes: one round is
/// `begin_round` (host selection/expansion → [`PlayoutRequest`]), an
/// externally executed batched launch, then `complete_round` (backprop +
/// budget charge). Implemented by the sequential- and block-tree session
/// engines; the standalone searchers keep their lockstep loops.
pub trait SessionEngine<G: Game>: Send {
    /// Whether the session's budget admits another round.
    fn wants_more(&self) -> bool;
    /// Host half of the next round, or `None` when the root is terminal.
    fn begin_round(&mut self) -> Option<PlayoutRequest<G>>;
    /// Playout outcomes for this session's blocks (block-major lanes) and
    /// the round's latency attribution; backpropagates and charges the
    /// session's budget tracker.
    fn complete_round(&mut self, lanes: &[LaneOutcome], latency: &RoundLatency);
    /// Charges a round the session sat out (wave packing left it behind):
    /// the whole round lands on the `queue` phase and on the budget
    /// tracker, so waiting consumes a latency SLO without counting as an
    /// iteration.
    fn charge_wait(&mut self, wait: SimTime);
    /// Builds the session's final report.
    fn finish(&mut self) -> SearchReport<G::Move>;
}

/// Sequential-tree session: one tree, one block per round, the block's
/// lanes are a leaf-parallel playout batch for the selected frontier node.
/// Not bit-identical to [`SequentialSearcher`] (whose playouts run on the
/// CPU model) — by design: the service trades the CPU playout for device
/// lanes.
struct SequentialSession<G: Game> {
    inner: SequentialSearcher<G>,
    tree: SearchTree<G>,
    tracker: BudgetTracker,
    phases: PhaseBreakdown,
    simulations: u64,
    /// Frontier node + host cost between `begin_round` and
    /// `complete_round`.
    pending: Option<(u32, SimTime)>,
}

impl<G: Game> SessionEngine<G> for SequentialSession<G> {
    fn wants_more(&self) -> bool {
        self.tracker.may_continue()
    }

    fn begin_round(&mut self) -> Option<PlayoutRequest<G>> {
        assert!(self.pending.is_none(), "round already begun");
        if self.tree.is_terminal(self.tree.root()) {
            return None;
        }
        let (node, depth) = self
            .inner
            .select_and_expand(&mut self.tree, &mut self.phases);
        let host_cost = self.inner.config().cpu_cost.tree_op(depth);
        self.pending = Some((node, host_cost));
        Some(PlayoutRequest {
            positions: vec![*self.tree.state(node)],
            host_cost,
        })
    }

    fn complete_round(&mut self, lanes: &[LaneOutcome], latency: &RoundLatency) {
        let (node, host_cost) = self.pending.take().expect("no round in flight");
        let (wins_p1, n) = aggregate(lanes);
        self.tree.backprop(node, wins_p1, n);
        self.simulations += n;
        self.phases.simulations += n;
        self.phases.queue += latency.queue;
        self.phases.upload += latency.upload;
        self.phases.kernel += latency.kernel;
        self.phases.readback += latency.readback;
        self.phases.kernel_launches += 1;
        self.tracker.charge(host_cost + latency.total());
    }

    fn charge_wait(&mut self, wait: SimTime) {
        self.phases.queue += wait;
        self.tracker.charge_wait(wait);
    }

    fn finish(&mut self) -> SearchReport<G::Move> {
        let mut phases = self.phases.clone();
        phases.budget_overshoot = self.tracker.overshoot();
        SearchReport {
            best_move: self.tree.best_move(self.inner.config().final_move),
            simulations: self.simulations,
            iterations: self.tracker.iterations,
            tree_nodes: self.tree.live_nodes() as u64,
            max_depth: self.tree.max_depth(),
            elapsed: self.tracker.elapsed,
            root_stats: self.tree.root_stats(),
            phases,
        }
    }
}

/// Block-tree session: `B` independent trees, one block each per round —
/// the block-parallel scheme's host phases (shared with
/// [`crate::block_parallel`]), with the launch delegated to the service.
struct BlockSession<G: Game> {
    config: MctsConfig,
    trees: Vec<SearchTree<G>>,
    rng: Xoshiro256pp,
    tracker: BudgetTracker,
    phases: PhaseBreakdown,
    simulations: u64,
    pool: Arc<WorkerPool>,
    threads_per_block: usize,
    pending: Option<(BlockFrontier<G>, SimTime)>,
}

/// Per-round frontier of a block session: `(node, position, depth)` per
/// block, as produced by `block_parallel::select_and_expand_all`.
type BlockFrontier<G> = Vec<(u32, G, u32)>;

impl<G: Game> SessionEngine<G> for BlockSession<G> {
    fn wants_more(&self) -> bool {
        self.tracker.may_continue()
    }

    fn begin_round(&mut self) -> Option<PlayoutRequest<G>> {
        assert!(self.pending.is_none(), "round already begun");
        if self.trees[0].is_terminal(self.trees[0].root()) {
            return None;
        }
        let (frontier, host_cost) = select_and_expand_all(
            &mut self.trees,
            &mut self.rng,
            self.config.exploration_c,
            &self.config.cpu_cost,
            &self.pool,
            &mut self.phases,
        );
        let positions = frontier.iter().map(|&(_, s, _)| s).collect();
        self.pending = Some((frontier, host_cost));
        Some(PlayoutRequest {
            positions,
            host_cost,
        })
    }

    fn complete_round(&mut self, lanes: &[LaneOutcome], latency: &RoundLatency) {
        let (frontier, host_cost) = self.pending.take().expect("no round in flight");
        self.simulations += backprop_outputs(
            &mut self.trees,
            &frontier,
            lanes,
            self.threads_per_block,
            None,
            &self.pool,
            &mut self.phases,
        );
        self.phases.queue += latency.queue;
        self.phases.upload += latency.upload;
        self.phases.kernel += latency.kernel;
        self.phases.readback += latency.readback;
        self.phases.kernel_launches += 1;
        self.tracker.charge(host_cost + latency.total());
    }

    fn charge_wait(&mut self, wait: SimTime) {
        self.phases.queue += wait;
        self.tracker.charge_wait(wait);
    }

    fn finish(&mut self) -> SearchReport<G::Move> {
        report_from_trees(
            &self.config,
            &self.trees,
            &self.tracker,
            self.simulations,
            self.phases.clone(),
        )
    }
}

/// WU-UCT session: **one shared tree**, `B` blocks per round, selection
/// corrected by in-flight unobserved counts — the service-hosted form of
/// [`crate::wu_uct::WuUctSearcher`] (host phases shared with it). Between
/// `begin_round` and `complete_round` the wave's `O` registrations are
/// live on the tree; `complete_round` rolls them back exactly before
/// backpropagating, so all counters are zero between rounds.
struct WuUctSession<G: Game> {
    config: MctsConfig,
    tree: SearchTree<G>,
    rng: Xoshiro256pp,
    tracker: BudgetTracker,
    phases: PhaseBreakdown,
    simulations: u64,
    blocks: usize,
    threads_per_block: usize,
    pending: Option<(BlockFrontier<G>, SimTime)>,
}

impl<G: Game> SessionEngine<G> for WuUctSession<G> {
    fn wants_more(&self) -> bool {
        self.tracker.may_continue()
    }

    fn begin_round(&mut self) -> Option<PlayoutRequest<G>> {
        assert!(self.pending.is_none(), "round already begun");
        if self.tree.is_terminal(self.tree.root()) {
            return None;
        }
        let (frontier, host_cost) = crate::wu_uct::select_wave(
            &mut self.tree,
            self.blocks,
            self.threads_per_block as u32,
            &mut self.rng,
            self.config.exploration_c,
            &self.config.cpu_cost,
            &mut self.phases,
        );
        let positions = frontier.iter().map(|&(_, s, _)| s).collect();
        self.pending = Some((frontier, host_cost));
        Some(PlayoutRequest {
            positions,
            host_cost,
        })
    }

    fn complete_round(&mut self, lanes: &[LaneOutcome], latency: &RoundLatency) {
        let (frontier, host_cost) = self.pending.take().expect("no round in flight");
        self.simulations += crate::wu_uct::backprop_wave(
            &mut self.tree,
            &frontier,
            lanes,
            self.threads_per_block,
            None,
            &mut self.phases,
        );
        debug_assert_eq!(
            self.tree.inflight_total(),
            0,
            "in-flight residue after round"
        );
        self.phases.queue += latency.queue;
        self.phases.upload += latency.upload;
        self.phases.kernel += latency.kernel;
        self.phases.readback += latency.readback;
        self.phases.kernel_launches += 1;
        self.tracker.charge(host_cost + latency.total());
    }

    fn charge_wait(&mut self, wait: SimTime) {
        self.phases.queue += wait;
        self.tracker.charge_wait(wait);
    }

    fn finish(&mut self) -> SearchReport<G::Move> {
        report_from_trees(
            &self.config,
            std::slice::from_ref(&self.tree),
            &self.tracker,
            self.simulations,
            self.phases.clone(),
        )
    }
}

/// Pipelined block-tree session: a [`BlockSession`] with **deferred
/// backpropagation** — round `k+1`'s selection runs before round `k`'s
/// outputs are applied, reproducing the pipeline hazard semantics of
/// [`crate::pipelined::PipelinedSearcher`]. The service's shared device
/// serialises rounds, so no latency is discounted: charging is identical
/// to [`BlockSession`] (the `completed_at − admitted_at == elapsed`
/// invariant is untouched); only the *ordering* of tree updates is
/// pipelined. `finish` flushes the final deferred wave, so launched work
/// is never dropped.
struct PipelinedSession<G: Game> {
    config: MctsConfig,
    trees: Vec<SearchTree<G>>,
    rng: Xoshiro256pp,
    tracker: BudgetTracker,
    phases: PhaseBreakdown,
    simulations: u64,
    pool: Arc<WorkerPool>,
    threads_per_block: usize,
    pending: Option<(BlockFrontier<G>, SimTime)>,
    /// Last round's frontier + outputs, applied at the *next* round's
    /// `begin_round` (after its selection) or at `finish`.
    deferred: Option<(BlockFrontier<G>, Vec<LaneOutcome>)>,
}

impl<G: Game> PipelinedSession<G> {
    fn flush_deferred(&mut self) {
        if let Some((frontier, lanes)) = self.deferred.take() {
            self.simulations += backprop_outputs(
                &mut self.trees,
                &frontier,
                &lanes,
                self.threads_per_block,
                None,
                &self.pool,
                &mut self.phases,
            );
        }
    }
}

impl<G: Game> SessionEngine<G> for PipelinedSession<G> {
    fn wants_more(&self) -> bool {
        self.tracker.may_continue()
    }

    fn begin_round(&mut self) -> Option<PlayoutRequest<G>> {
        assert!(self.pending.is_none(), "round already begun");
        if self.trees[0].is_terminal(self.trees[0].root()) {
            return None;
        }
        // Pipeline ordering: select from the trees as they stood before the
        // previous round's results landed, *then* apply those results.
        let (frontier, host_cost) = select_and_expand_all(
            &mut self.trees,
            &mut self.rng,
            self.config.exploration_c,
            &self.config.cpu_cost,
            &self.pool,
            &mut self.phases,
        );
        self.flush_deferred();
        let positions = frontier.iter().map(|&(_, s, _)| s).collect();
        self.pending = Some((frontier, host_cost));
        Some(PlayoutRequest {
            positions,
            host_cost,
        })
    }

    fn complete_round(&mut self, lanes: &[LaneOutcome], latency: &RoundLatency) {
        let (frontier, host_cost) = self.pending.take().expect("no round in flight");
        self.deferred = Some((frontier, lanes.to_vec()));
        self.phases.queue += latency.queue;
        self.phases.upload += latency.upload;
        self.phases.kernel += latency.kernel;
        self.phases.readback += latency.readback;
        self.phases.kernel_launches += 1;
        self.tracker.charge(host_cost + latency.total());
    }

    fn charge_wait(&mut self, wait: SimTime) {
        self.phases.queue += wait;
        self.tracker.charge_wait(wait);
    }

    fn finish(&mut self) -> SearchReport<G::Move> {
        self.flush_deferred();
        report_from_trees(
            &self.config,
            &self.trees,
            &self.tracker,
            self.simulations,
            self.phases.clone(),
        )
    }
}

/// One admitted session's lifecycle record, returned by
/// [`SearchService::take_completed`].
#[derive(Clone, Debug)]
pub struct CompletedSession<M> {
    /// The session's id.
    pub id: SessionId,
    /// Service clock when the session was admitted.
    pub admitted_at: SimTime,
    /// Service clock when the session retired. Always equals
    /// `admitted_at + report.elapsed` (see the module docs).
    pub completed_at: SimTime,
    /// The session's final search report.
    pub report: SearchReport<M>,
}

/// One batched launch the service performed.
#[derive(Clone, Copy, Debug)]
pub struct LaunchRecord {
    /// Sessions packed into the launch.
    pub sessions: u32,
    /// Total blocks of the merged grid.
    pub blocks: u32,
    /// Device-side elapsed time (overhead + execution + readback).
    pub elapsed: SimTime,
}

struct Session<G: Game> {
    id: SessionId,
    admitted_at: SimTime,
    /// Absolute SLO deadline on the service clock (`admitted_at + slo`).
    /// `None` sorts after every deadline in wave packing.
    deadline: Option<SimTime>,
    engine: Box<dyn SessionEngine<G>>,
}

/// The multi-session search service (see the module docs).
pub struct SearchService<G: Game> {
    device: Device,
    threads_per_block: u32,
    seed: u64,
    launch_prep: SimTime,
    epoch: u64,
    clock: SimTime,
    next_id: u64,
    active: Vec<Session<G>>,
    completed: Vec<CompletedSession<G::Move>>,
    launches: Vec<LaunchRecord>,
}

impl<G: Game> SearchService<G> {
    /// Creates a service over `device`. Every block of every batched
    /// launch runs `threads_per_block` playout lanes; `seed` drives the
    /// per-launch lane RNG streams. Host-side launch preparation is billed
    /// at the Xeon model's rate (same as the standalone GPU searchers).
    pub fn new(device: Device, threads_per_block: u32, seed: u64) -> Self {
        SearchService {
            device,
            threads_per_block,
            seed,
            launch_prep: CpuCostModel::xeon_x5670().launch_prep,
            epoch: 0,
            clock: SimTime::ZERO,
            next_id: 0,
            active: Vec::new(),
            completed: Vec::new(),
            launches: Vec::new(),
        }
    }

    /// Admits a sequential-tree session (one block per round) searching
    /// `root` under `budget`. The session joins the next round.
    pub fn admit_sequential(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
    ) -> SessionId {
        self.admit_sequential_with_slo(root, budget, config, None)
    }

    /// [`Self::admit_sequential`] with a latency SLO: wave packing
    /// ([`Self::step_wave`]) schedules the session by the absolute deadline
    /// `clock + slo`, ahead of every deadline-free session.
    pub fn admit_sequential_with_slo(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
        slo: Option<SimTime>,
    ) -> SessionId {
        let engine = SequentialSession {
            tree: SearchTree::for_config(root, &config),
            inner: SequentialSearcher::new(config),
            tracker: BudgetTracker::new(budget),
            phases: PhaseBreakdown::new(),
            simulations: 0,
            pending: None,
        };
        self.admit(Box::new(engine), slo)
    }

    /// Admits a block-tree session (`blocks` trees, one block each per
    /// round) searching `root` under `budget`.
    pub fn admit_block(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
        blocks: u32,
    ) -> SessionId {
        self.admit_block_with_slo(root, budget, config, blocks, None)
    }

    /// [`Self::admit_block`] with a latency SLO (see
    /// [`Self::admit_sequential_with_slo`]).
    pub fn admit_block_with_slo(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
        blocks: u32,
        slo: Option<SimTime>,
    ) -> SessionId {
        assert!(blocks >= 1, "block session needs ≥ 1 tree");
        let rng = Xoshiro256pp::derive(config.seed, 0xB10C);
        let engine = BlockSession {
            trees: (0..blocks)
                .map(|_| SearchTree::for_config(root, &config))
                .collect(),
            rng,
            config,
            tracker: BudgetTracker::new(budget),
            phases: PhaseBreakdown::new(),
            simulations: 0,
            pool: Arc::clone(self.device.worker_pool()),
            threads_per_block: self.threads_per_block as usize,
            pending: None,
        };
        self.admit(Box::new(engine), slo)
    }

    /// Admits a WU-UCT session: **one shared tree**, `blocks` corrected
    /// selections per round (DESIGN.md §16), searching `root` under
    /// `budget`.
    pub fn admit_wu_uct(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
        blocks: u32,
    ) -> SessionId {
        self.admit_wu_uct_with_slo(root, budget, config, blocks, None)
    }

    /// [`Self::admit_wu_uct`] with a latency SLO (see
    /// [`Self::admit_sequential_with_slo`]).
    pub fn admit_wu_uct_with_slo(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
        blocks: u32,
        slo: Option<SimTime>,
    ) -> SessionId {
        assert!(blocks >= 1, "WU-UCT session needs ≥ 1 block");
        let rng = Xoshiro256pp::derive(config.seed, 0xB10C);
        let engine = WuUctSession {
            tree: SearchTree::for_config(root, &config),
            rng,
            config,
            tracker: BudgetTracker::new(budget),
            phases: PhaseBreakdown::new(),
            simulations: 0,
            blocks: blocks as usize,
            threads_per_block: self.threads_per_block as usize,
            pending: None,
        };
        self.admit(Box::new(engine), slo)
    }

    /// Admits a pipelined block-tree session: `blocks` trees with deferred
    /// backpropagation — round `k+1` selects before round `k`'s results
    /// land (DESIGN.md §16) — searching `root` under `budget`.
    pub fn admit_pipelined(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
        blocks: u32,
    ) -> SessionId {
        self.admit_pipelined_with_slo(root, budget, config, blocks, None)
    }

    /// [`Self::admit_pipelined`] with a latency SLO (see
    /// [`Self::admit_sequential_with_slo`]).
    pub fn admit_pipelined_with_slo(
        &mut self,
        root: G,
        budget: SearchBudget,
        config: MctsConfig,
        blocks: u32,
        slo: Option<SimTime>,
    ) -> SessionId {
        assert!(blocks >= 1, "pipelined session needs ≥ 1 tree");
        let rng = Xoshiro256pp::derive(config.seed, 0xF1FE);
        let engine = PipelinedSession {
            trees: (0..blocks)
                .map(|_| SearchTree::for_config(root, &config))
                .collect(),
            rng,
            config,
            tracker: BudgetTracker::new(budget),
            phases: PhaseBreakdown::new(),
            simulations: 0,
            pool: Arc::clone(self.device.worker_pool()),
            threads_per_block: self.threads_per_block as usize,
            pending: None,
            deferred: None,
        };
        self.admit(Box::new(engine), slo)
    }

    fn admit(&mut self, engine: Box<dyn SessionEngine<G>>, slo: Option<SimTime>) -> SessionId {
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.active.push(Session {
            id,
            admitted_at: self.clock,
            deadline: slo.map(|s| self.clock + s),
            engine,
        });
        id
    }

    /// Runs one batched round: retires exhausted sessions, collects every
    /// remaining session's [`PlayoutRequest`] in session-id order, packs
    /// them into one kernel launch, and completes each session with its
    /// output slice and latency share. Returns `false` when no launch ran
    /// (no session had work left). Equivalent to
    /// [`Self::step_wave`]`(usize::MAX)`.
    pub fn step(&mut self) -> bool {
        self.step_wave(usize::MAX)
    }

    /// Runs one batched round whose launch wave holds at most `limit`
    /// sessions, picked deadline-aware: candidates are tried in
    /// (deadline, session-id) order — earliest SLO first, deadline-free
    /// sessions last — and a candidate with a terminal root retires and
    /// frees its wave slot. Sessions left out of the wave are charged the
    /// whole round as `queue` time (see the module docs), so every active
    /// session's clock advances by the same round latency. Returns `false`
    /// when no launch ran.
    pub fn step_wave(&mut self, limit: usize) -> bool {
        assert!(limit >= 1, "a wave admits at least one session");
        let clock = self.clock;
        // Retire pass, in session-id order (admission order — ids are
        // monotone and `active` is never reordered): budget-exhausted
        // sessions leave before wave packing, including sessions that
        // spent their whole budget waiting.
        let mut survivors: Vec<Session<G>> = Vec::new();
        for mut session in std::mem::take(&mut self.active) {
            if session.engine.wants_more() {
                survivors.push(session);
            } else {
                self.completed.push(CompletedSession {
                    id: session.id,
                    admitted_at: session.admitted_at,
                    completed_at: clock,
                    report: session.engine.finish(),
                });
            }
        }

        // Wave packing: earliest deadline first, ties (and the
        // deadline-free) by session id — with `limit == usize::MAX` this
        // degenerates to the legacy all-sessions id-order round.
        let mut order: Vec<usize> = (0..survivors.len()).collect();
        order.sort_by_key(|&i| {
            (
                survivors[i].deadline.unwrap_or(SimTime::MAX),
                survivors[i].id,
            )
        });
        enum Slot<G> {
            Waiting,
            Armed(PlayoutRequest<G>),
            Retire,
        }
        let mut slots: Vec<Slot<G>> = survivors.iter().map(|_| Slot::Waiting).collect();
        let mut packed = 0usize;
        for &i in &order {
            if packed == limit {
                break;
            }
            match survivors[i].engine.begin_round() {
                Some(r) => {
                    slots[i] = Slot::Armed(r);
                    packed += 1;
                }
                None => slots[i] = Slot::Retire,
            }
        }

        // Re-assemble `active` in id order; terminal-root sessions retire.
        let mut armed: Vec<(usize, PlayoutRequest<G>)> = Vec::new();
        let mut waiting: Vec<usize> = Vec::new();
        let mut still: Vec<Session<G>> = Vec::new();
        for (mut session, slot) in survivors.into_iter().zip(slots) {
            match slot {
                Slot::Retire => self.completed.push(CompletedSession {
                    id: session.id,
                    admitted_at: session.admitted_at,
                    completed_at: clock,
                    report: session.engine.finish(),
                }),
                Slot::Armed(r) => {
                    armed.push((still.len(), r));
                    still.push(session);
                }
                Slot::Waiting => {
                    waiting.push(still.len());
                    still.push(session);
                }
            }
        }
        self.active = still;
        if armed.is_empty() {
            // Nothing to launch; the packing loop ran out of candidates,
            // so nothing is waiting either.
            debug_assert!(waiting.is_empty());
            return false;
        }

        // One merged launch: wave member i's blocks are consecutive, in
        // session-id order. The lane RNG streams derive from the service
        // seed, the launch epoch and the lane's global index.
        let segments: Vec<BatchSegment> = armed
            .iter()
            .map(|(i, r)| BatchSegment {
                key: self.active[*i].id.0,
                blocks: r.positions.len() as u32,
            })
            .collect();
        let roots: Vec<G> = armed
            .iter()
            .flat_map(|(_, r)| r.positions.iter().copied())
            .collect();
        self.epoch += 1;
        let stream_seed = self
            .seed
            .wrapping_add(self.epoch.wrapping_mul(0xA076_1D64_78BD_642F));
        let kernel = PlayoutKernel::new(roots, stream_seed);
        let upload = self.device.spec().transfer_time(kernel.upload_bytes());
        let batched = self
            .device
            .launch_batched(&kernel, self.threads_per_block, &segments);
        let stats = &batched.result.stats;

        // Shared round components; each wave member's `queue` is everyone
        // else's host work, so every participant sees the same round
        // latency (see the module docs) — and sessions the wave left
        // behind are charged the whole round as queueing.
        let total_host = armed
            .iter()
            .fold(SimTime::ZERO, |acc, (_, r)| acc + r.host_cost);
        let upload_phase = self.launch_prep + upload;
        let kernel_phase = stats.launch_overhead + stats.device_time;
        let round_total = total_host + upload_phase + kernel_phase + stats.readback_time;
        for (slot, (i, r)) in armed.iter().enumerate() {
            let latency = RoundLatency {
                queue: total_host.saturating_sub(r.host_cost),
                upload: upload_phase,
                kernel: kernel_phase,
                readback: stats.readback_time,
            };
            self.active[*i]
                .engine
                .complete_round(batched.outputs_for(slot), &latency);
        }
        for &i in &waiting {
            self.active[i].engine.charge_wait(round_total);
        }
        self.launches.push(LaunchRecord {
            sessions: segments.len() as u32,
            blocks: segments.iter().map(|s| s.blocks).sum(),
            elapsed: stats.elapsed(),
        });
        self.clock += round_total;
        true
    }

    /// Steps until every admitted session has retired (the final, launch-
    /// free call to [`Self::step`] is the retire pass for sessions
    /// exhausted by the last round).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Drains the completed-session records accumulated so far, in
    /// completion order (ties broken by session id — the retire pass runs
    /// in id order).
    pub fn take_completed(&mut self) -> Vec<CompletedSession<G::Move>> {
        std::mem::take(&mut self.completed)
    }

    /// The service's virtual clock: total time spent across all rounds.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Sessions admitted but not yet retired.
    pub fn active_sessions(&self) -> usize {
        self.active.len()
    }

    /// Every batched launch performed so far, in launch order.
    pub fn launches(&self) -> &[LaunchRecord] {
        &self.launches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{Reversi, TicTacToe};
    use pmcts_gpu_sim::DeviceSpec;

    fn device() -> Device {
        Device::new(DeviceSpec::tesla_c2050())
    }

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn solo_session_completes_within_one_round_of_deadline() {
        let mut svc = SearchService::<Reversi>::new(device(), 32, 99);
        let budget = SimTime::from_millis(5);
        svc.admit_sequential(
            Reversi::initial(),
            SearchBudget::VirtualTime(budget),
            cfg(1),
        );
        svc.run_to_completion();
        let done = svc.take_completed();
        assert_eq!(done.len(), 1);
        let c = &done[0];
        assert!(c.report.simulations > 0);
        assert_eq!(c.completed_at - c.admitted_at, c.report.elapsed);
        // Predictive stopping: at most one round past the deadline, and
        // the overshoot is recorded.
        assert!(
            c.report.elapsed < budget * 2,
            "elapsed {}",
            c.report.elapsed
        );
        assert_eq!(
            c.report.phases.budget_overshoot,
            c.report.elapsed.saturating_sub(budget)
        );
    }

    #[test]
    fn sessions_share_batched_launches() {
        let mut svc = SearchService::<Reversi>::new(device(), 32, 7);
        for s in 0..4 {
            svc.admit_sequential(
                Reversi::initial(),
                SearchBudget::Iterations(3),
                cfg(100 + s),
            );
        }
        svc.run_to_completion();
        let done = svc.take_completed();
        assert_eq!(done.len(), 4);
        // Equal budgets ⇒ every round packs all four sessions.
        assert_eq!(svc.launches().len(), 3);
        for l in svc.launches() {
            assert_eq!(l.sessions, 4);
            assert_eq!(l.blocks, 4);
        }
        for c in &done {
            assert_eq!(c.report.iterations, 3);
            assert_eq!(c.report.simulations, 3 * 32);
        }
    }

    #[test]
    fn phase_ledger_is_exact_including_queue() {
        let mut svc = SearchService::<Reversi>::new(device(), 32, 3);
        svc.admit_sequential(Reversi::initial(), SearchBudget::Iterations(4), cfg(1));
        svc.admit_block(Reversi::initial(), SearchBudget::Iterations(2), cfg(2), 3);
        svc.run_to_completion();
        let done = svc.take_completed();
        assert_eq!(done.len(), 2);
        for c in &done {
            assert_eq!(
                c.report.phases.phase_sum(),
                c.report.elapsed,
                "session {} ledger must include queueing",
                c.id
            );
            assert_eq!(c.completed_at - c.admitted_at, c.report.elapsed);
        }
        // The co-scheduled session really queued behind the other's host
        // work.
        assert!(done.iter().all(|c| c.report.phases.queue > SimTime::ZERO));
    }

    #[test]
    fn batching_beats_back_to_back_solo_runs() {
        let budget = SearchBudget::VirtualTime(SimTime::from_millis(4));
        let run = |batched: bool| -> (u64, SimTime) {
            let mut sims = 0;
            let mut time = SimTime::ZERO;
            if batched {
                let mut svc = SearchService::<Reversi>::new(device(), 32, 5);
                for s in 0..8 {
                    svc.admit_sequential(Reversi::initial(), budget, cfg(s));
                }
                svc.run_to_completion();
                sims = svc
                    .take_completed()
                    .iter()
                    .map(|c| c.report.simulations)
                    .sum();
                time = svc.clock();
            } else {
                for s in 0..8 {
                    let mut svc = SearchService::<Reversi>::new(device(), 32, 5);
                    svc.admit_sequential(Reversi::initial(), budget, cfg(s));
                    svc.run_to_completion();
                    sims += svc.take_completed()[0].report.simulations;
                    time += svc.clock();
                }
            }
            (sims, time)
        };
        let (sims_b, time_b) = run(true);
        let (sims_u, time_u) = run(false);
        let pps_b = sims_b as f64 / time_b.as_nanos() as f64;
        let pps_u = sims_u as f64 / time_u.as_nanos() as f64;
        assert!(
            pps_b >= 1.5 * pps_u,
            "batched {pps_b} playouts/ns should be ≥ 1.5× solo {pps_u}"
        );
    }

    #[test]
    fn wu_uct_and_pipelined_sessions_complete_with_exact_ledgers() {
        let mut svc = SearchService::<Reversi>::new(device(), 32, 11);
        svc.admit_wu_uct(Reversi::initial(), SearchBudget::Iterations(4), cfg(1), 4);
        svc.admit_pipelined(Reversi::initial(), SearchBudget::Iterations(4), cfg(2), 4);
        svc.admit_block(Reversi::initial(), SearchBudget::Iterations(4), cfg(3), 4);
        svc.run_to_completion();
        let done = svc.take_completed();
        assert_eq!(done.len(), 3);
        for c in &done {
            // Every scheme ran all 4 rounds of 4 blocks × 32 lanes (the
            // pipelined session's last wave flushes at finish).
            assert_eq!(c.report.iterations, 4, "session {}", c.id);
            assert_eq!(c.report.simulations, 4 * 4 * 32, "session {}", c.id);
            assert_eq!(
                c.report.phases.phase_sum(),
                c.report.elapsed,
                "session {} ledger must sum exactly",
                c.id
            );
            assert_eq!(c.completed_at - c.admitted_at, c.report.elapsed);
        }
    }

    #[test]
    fn wu_uct_session_shares_one_tree() {
        // B blocks deepening one corrected tree: strictly more nodes per
        // round land in a single tree than any one of a block session's
        // B independent trees receives.
        let mut svc = SearchService::<Reversi>::new(device(), 32, 12);
        let id = svc.admit_wu_uct(Reversi::initial(), SearchBudget::Iterations(6), cfg(4), 8);
        svc.run_to_completion();
        let done = svc.take_completed();
        let c = done.iter().find(|c| c.id == id).unwrap();
        // One shared tree: root + one expansion per block per round.
        assert_eq!(c.report.tree_nodes, 1 + 6 * 8);
    }

    #[test]
    fn new_engines_are_deterministic_per_seed() {
        let run = |seed| {
            let mut svc = SearchService::<Reversi>::new(device(), 32, seed);
            svc.admit_wu_uct(Reversi::initial(), SearchBudget::Iterations(5), cfg(21), 4);
            svc.admit_pipelined(Reversi::initial(), SearchBudget::Iterations(5), cfg(22), 4);
            svc.run_to_completion();
            svc.take_completed()
                .into_iter()
                .map(|c| c.report.root_stats)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn terminal_root_retires_immediately() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let mut svc = SearchService::<TicTacToe>::new(device(), 32, 1);
        svc.admit_sequential(s, SearchBudget::Iterations(10), cfg(1));
        svc.run_to_completion();
        let done = svc.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].report.best_move, None);
        assert_eq!(done[0].report.simulations, 0);
        assert!(svc.launches().is_empty());
    }

    #[test]
    fn service_is_deterministic_per_seed() {
        let run = |seed| {
            let mut svc = SearchService::<Reversi>::new(device(), 32, seed);
            for s in 0..3 {
                svc.admit_sequential(Reversi::initial(), SearchBudget::Iterations(5), cfg(10 + s));
            }
            svc.run_to_completion();
            svc.take_completed()
                .into_iter()
                .map(|c| c.report.root_stats)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
