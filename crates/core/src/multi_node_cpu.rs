//! Massively parallel CPU root parallelism over MPI — the authors' earlier
//! system (ref \[4\], "Massively Parallel Monte Carlo Tree Search", which
//! the paper's introduction says ran on thousands of CPU threads) rebuilt
//! on the simulated MPI substrate.
//!
//! Each rank models one multi-core node running [`RootParallelSearcher`]
//! with `threads_per_rank` trees; rank statistics are merged with an
//! allreduce exactly like the multi-GPU searcher. This completes the
//! CPU-side scaling story behind Fig. 7's 2…256-thread sweep: 256 threads
//! is 22 nodes of the paper's 12-core Xeon X5670 machines.

use crate::config::{MctsConfig, SearchBudget};
use crate::root_parallel::RootParallelSearcher;
use crate::searcher::{empty_report, SearchReport, Searcher};
use crate::telemetry::{critical_index, rank_merge_cost, PhaseBreakdown};
use crate::tree::{best_from_stats, merge_root_stats, RootStat};
use pmcts_games::Game;
use pmcts_gpu_sim::WorkerPool;
use pmcts_mpi_sim::{NetworkModel, World};
use pmcts_util::SimTime;
use std::sync::Arc;

/// Root parallelism across `ranks` simulated cluster nodes with
/// `threads_per_rank` CPU threads each.
#[derive(Clone, Debug)]
pub struct MultiNodeCpuSearcher<G: Game> {
    config: MctsConfig,
    ranks: usize,
    threads_per_rank: usize,
    network: NetworkModel,
    /// Persistent host workers shared by every rank's root searcher, so a
    /// search spawns no threads beyond the rank drivers. Rank results are
    /// keyed by rank id, so the pool never affects results.
    pool: Arc<WorkerPool>,
    generation: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> MultiNodeCpuSearcher<G> {
    /// Creates a multi-node CPU searcher.
    pub fn new(
        config: MctsConfig,
        ranks: usize,
        threads_per_rank: usize,
        network: NetworkModel,
    ) -> Self {
        assert!(ranks > 0, "need at least one rank");
        assert!(threads_per_rank > 0, "need at least one thread per rank");
        MultiNodeCpuSearcher {
            config,
            ranks,
            threads_per_rank,
            network,
            pool: Arc::new(WorkerPool::with_available_parallelism()),
            generation: 0,
            _game: std::marker::PhantomData,
        }
    }

    /// Shares an existing worker pool for the per-rank host phases instead
    /// of owning one. Virtual timing and results are unaffected.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Total simulated CPU threads across the cluster.
    pub fn total_threads(&self) -> usize {
        self.ranks * self.threads_per_rank
    }
}

impl<G: Game> Searcher<G> for MultiNodeCpuSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        self.generation += 1;
        let gen = self.generation;
        let config = self.config.clone();
        let ranks = self.ranks;
        let tpr = self.threads_per_rank;
        // Every rank shares the one persistent pool; concurrent scoped
        // fan-outs are safe (the caller participates) and results are keyed
        // by tree index, so sharing never affects them.
        let pool = &self.pool;

        let plan = self.config.faults;
        type RankResult<M> = (SearchReport<M>, Option<Vec<RootStat<M>>>);
        let per_rank: Vec<RankResult<G::Move>> = World::run(ranks, self.network, |comm| {
            // Dead and contribution-dropped ranks behave exactly as in the
            // multi-GPU searcher: the sparse allreduce merges survivors.
            let rank = comm.rank() as u64;
            let (report, contribution) = if plan.component_dead(gen, rank) {
                (empty_report(), None)
            } else {
                let stream_base = (gen * ranks as u64 + rank) << 20;
                let mut searcher = RootParallelSearcher::<G>::with_stream_on(
                    config.clone(),
                    tpr,
                    stream_base,
                    Arc::clone(pool),
                );
                let report = searcher.search(root, budget);
                let contribution = if plan.drops_contribution(gen, rank) {
                    None
                } else {
                    Some(report.root_stats.clone())
                };
                (report, contribution)
            };
            let merged = comm.allreduce_sparse(contribution, |a, b| merge_root_stats(&[a, b]));
            (report, merged)
        });

        // Rank 0 is never dead and never dropped, so a merge always exists.
        let merged = per_rank[0].1.clone().unwrap_or_default();

        // Same critical-path convention as the multi-GPU searcher: the
        // slowest rank's phases + the allreduce in `merge` sum to elapsed.
        let mut phases = PhaseBreakdown::new();
        for (r, _) in &per_rank {
            phases.absorb_counters(&r.phases);
        }
        let crit = critical_index(per_rank.iter().map(|(r, _)| r.elapsed));
        if let Some(i) = crit {
            phases.adopt_times(&per_rank[i].0.phases);
        }

        let stats_bytes = (merged.len() * std::mem::size_of::<RootStat<G::Move>>()) as u64;
        let comm_cost = rank_merge_cost(&plan, &mut phases, gen, ranks, || {
            self.network.allreduce_time(stats_bytes, ranks)
        });
        phases.merge += comm_cost;

        let elapsed = crit.map(|i| per_rank[i].0.elapsed).unwrap_or(SimTime::ZERO) + comm_cost;
        phases.budget_overshoot = crate::searcher::overshoot_of(budget, elapsed);
        SearchReport {
            best_move: best_from_stats(&merged, self.config.final_move),
            simulations: per_rank.iter().map(|(r, _)| r.simulations).sum(),
            iterations: per_rank.iter().map(|(r, _)| r.iterations).sum(),
            tree_nodes: per_rank.iter().map(|(r, _)| r.tree_nodes).sum(),
            max_depth: per_rank.iter().map(|(r, _)| r.max_depth).max().unwrap_or(0),
            elapsed,
            root_stats: merged,
            phases,
        }
    }

    fn name(&self) -> String {
        format!(
            "multi-node root parallelism ({} ranks × {} CPU threads)",
            self.ranks, self.threads_per_rank
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::Reversi;

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    fn searcher(seed: u64, ranks: usize, tpr: usize) -> MultiNodeCpuSearcher<Reversi> {
        MultiNodeCpuSearcher::new(cfg(seed), ranks, tpr, NetworkModel::infiniband())
    }

    #[test]
    fn simulations_scale_with_cluster_size() {
        let budget = SearchBudget::Iterations(20);
        let single = searcher(1, 1, 4).search(Reversi::initial(), budget);
        let cluster = searcher(1, 4, 4).search(Reversi::initial(), budget);
        assert_eq!(single.simulations, 4 * 20);
        assert_eq!(cluster.simulations, 16 * 20);
        assert_eq!(
            cluster.root_stats.iter().map(|s| s.visits).sum::<u64>(),
            320
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let budget = SearchBudget::Iterations(15);
        let a = searcher(2, 3, 2).search(Reversi::initial(), budget);
        let b = searcher(2, 3, 2).search(Reversi::initial(), budget);
        assert_eq!(a.root_stats, b.root_stats);
        assert_eq!(a.best_move, b.best_move);
        assert_eq!(a.elapsed, b.elapsed);
    }

    #[test]
    fn ranks_use_disjoint_streams() {
        let budget = SearchBudget::Iterations(15);
        let one = searcher(3, 1, 2).search(Reversi::initial(), budget);
        let two = searcher(3, 2, 2).search(Reversi::initial(), budget);
        let doubled: Vec<u64> = one.root_stats.iter().map(|s| s.visits * 2).collect();
        let merged: Vec<u64> = two.root_stats.iter().map(|s| s.visits).collect();
        assert_ne!(doubled, merged);
    }

    #[test]
    fn elapsed_includes_network_cost() {
        let budget = SearchBudget::Iterations(10);
        let ideal = MultiNodeCpuSearcher::<Reversi>::new(cfg(4), 4, 2, NetworkModel::ideal())
            .search(Reversi::initial(), budget);
        let real = searcher(4, 4, 2).search(Reversi::initial(), budget);
        assert!(real.elapsed > ideal.elapsed);
    }

    #[test]
    fn total_threads_reported() {
        assert_eq!(searcher(5, 8, 12).total_threads(), 96);
        assert!(searcher(5, 8, 12).name().contains("8 ranks × 12"));
    }
}
