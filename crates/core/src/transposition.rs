//! Open-addressed Zobrist transposition table for bounded search trees.
//!
//! Two jobs (see DESIGN.md §12):
//!
//! 1. **Stat recovery across eviction.** When the bounded [`SearchTree`]
//!    recycles a cold node, its `(visits, wins)` are accumulated here under
//!    the position's Zobrist key. If the position is ever expanded again —
//!    through the same line or a transposition — the accumulated statistics
//!    seed the fresh node instead of starting from zero.
//! 2. **O(1) re-rooting.** Each live node registers its key, replacing
//!    `find_state`'s O(len) full-array scan in `PersistentSearcher`
//!    re-rooting with a bounded probe.
//!
//! The table is fixed-size, open-addressed with linear probing over a
//! bounded run. Everything is deterministic: probe order is a pure
//! function of the key, and when a run is full the entry with the fewest
//! accumulated visits (first such in probe order) is replaced. The table
//! is lossy by design — a dropped entry only loses recoverable statistics
//! or a re-root shortcut, never tree correctness.
//!
//! [`SearchTree`]: crate::tree::SearchTree

use crate::tree::NodeId;

/// Sentinel: entry holds accumulated stats but no live tree node.
const NO_NODE: NodeId = NodeId::MAX;

/// Entries probed per lookup before declaring the run full.
const PROBE_RUN: usize = 8;

#[derive(Clone, Copy, Debug)]
struct Entry {
    key: u64,
    /// Simulations accumulated from evicted nodes of this position.
    visits: u64,
    /// Reward (for the player who moved into the position) accumulated
    /// from evicted nodes. The perspective is transposition-safe: equal
    /// states share the same side to move, hence the same mover-into.
    wins: f64,
    /// The live tree node currently holding this position, if any.
    /// Last-registered-wins when transpositions create several.
    node: NodeId,
    used: bool,
}

const EMPTY: Entry = Entry {
    key: 0,
    visits: 0,
    wins: 0.0,
    node: NO_NODE,
    used: false,
};

/// Counters exposed for benches, tests and the throughput artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransStats {
    /// Expansions that recovered previously evicted statistics.
    pub hits: u64,
    /// Total visits those expansions recovered.
    pub recovered_visits: u64,
    /// Entries discarded because a probe run was full.
    pub drops: u64,
    /// Occupied entries.
    pub occupied: u64,
}

/// Fixed-size open-addressed transposition table keyed by Zobrist hash.
#[derive(Clone, Debug)]
pub struct TransTable {
    mask: usize,
    entries: Vec<Entry>,
    stats: TransStats,
}

impl TransTable {
    /// Creates a table with at least `min_entries` slots (rounded up to a
    /// power of two, minimum 16).
    pub fn new(min_entries: usize) -> Self {
        let cap = min_entries.max(16).next_power_of_two();
        TransTable {
            mask: cap - 1,
            entries: vec![EMPTY; cap],
            stats: TransStats::default(),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> TransStats {
        self.stats
    }

    #[inline]
    fn probe_start(&self, key: u64) -> usize {
        key as usize & self.mask
    }

    /// Registers `node` as the live holder of `key` and consumes any
    /// statistics accumulated from earlier evictions of this position,
    /// returning them for the caller to seed the fresh node with.
    ///
    /// When the probe run is full of other positions, the run's entry with
    /// the fewest accumulated visits is replaced (deterministically — the
    /// first minimum in probe order).
    pub fn register(&mut self, key: u64, node: NodeId) -> Option<(u64, f64)> {
        let start = self.probe_start(key);
        let mut victim = start;
        let mut victim_visits = u64::MAX;
        for i in 0..PROBE_RUN {
            let slot = (start + i) & self.mask;
            let e = &mut self.entries[slot];
            if !e.used {
                *e = Entry {
                    key,
                    visits: 0,
                    wins: 0.0,
                    node,
                    used: true,
                };
                self.stats.occupied += 1;
                return None;
            }
            if e.key == key {
                e.node = node;
                if e.visits > 0 {
                    let recovered = (e.visits, e.wins);
                    e.visits = 0;
                    e.wins = 0.0;
                    self.stats.hits += 1;
                    self.stats.recovered_visits += recovered.0;
                    return Some(recovered);
                }
                return None;
            }
            if e.visits < victim_visits {
                victim_visits = e.visits;
                victim = slot;
            }
        }
        // Run full of foreign keys: replace the least-established entry.
        self.entries[victim] = Entry {
            key,
            visits: 0,
            wins: 0.0,
            node,
            used: true,
        };
        self.stats.drops += 1;
        None
    }

    /// Accumulates an evicted node's statistics under `key` and clears the
    /// live-node link if it still points at `node`. Lossy when the probe
    /// run is full of better-established positions.
    pub fn accumulate(&mut self, key: u64, visits: u64, wins: f64, node: NodeId) {
        let start = self.probe_start(key);
        let mut victim = start;
        let mut victim_visits = u64::MAX;
        for i in 0..PROBE_RUN {
            let slot = (start + i) & self.mask;
            let e = &mut self.entries[slot];
            if !e.used {
                *e = Entry {
                    key,
                    visits,
                    wins,
                    node: NO_NODE,
                    used: true,
                };
                self.stats.occupied += 1;
                return;
            }
            if e.key == key {
                e.visits += visits;
                e.wins += wins;
                if e.node == node {
                    e.node = NO_NODE;
                }
                return;
            }
            if e.visits < victim_visits {
                victim_visits = e.visits;
                victim = slot;
            }
        }
        if victim_visits < visits {
            self.entries[victim] = Entry {
                key,
                visits,
                wins,
                node: NO_NODE,
                used: true,
            };
        }
        self.stats.drops += 1;
    }

    /// The live tree node registered for `key`, if any. Callers must
    /// verify state equality — distinct positions can share a hash.
    pub fn find(&self, key: u64) -> Option<NodeId> {
        let start = self.probe_start(key);
        for i in 0..PROBE_RUN {
            let slot = (start + i) & self.mask;
            let e = &self.entries[slot];
            if !e.used {
                return None;
            }
            if e.key == key && e.node != NO_NODE {
                return Some(e.node);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_find() {
        let mut t = TransTable::new(64);
        assert_eq!(t.register(42, 7), None);
        assert_eq!(t.find(42), Some(7));
        assert_eq!(t.find(43), None);
    }

    #[test]
    fn accumulate_and_recover_on_reexpansion() {
        let mut t = TransTable::new(64);
        t.register(42, 7);
        t.accumulate(42, 10, 6.5, 7);
        // The link is cleared; stats wait for the next expansion.
        assert_eq!(t.find(42), None);
        let (v, w) = t.register(42, 9).expect("stats recovered");
        assert_eq!(v, 10);
        assert_eq!(w, 6.5);
        assert_eq!(t.find(42), Some(9));
        // Recovery consumes the stats: a second expansion starts cold.
        t.accumulate(42, 3, 1.0, 9);
        let (v2, _) = t.register(42, 11).expect("second recovery");
        assert_eq!(v2, 3, "earlier stats were consumed, not double-counted");
    }

    #[test]
    fn last_registered_node_wins() {
        let mut t = TransTable::new(64);
        t.register(42, 7);
        t.register(42, 8);
        assert_eq!(t.find(42), Some(8));
        // Evicting the superseded node must not clear the newer link.
        t.accumulate(42, 5, 2.0, 7);
        assert_eq!(t.find(42), Some(8));
    }

    #[test]
    fn full_probe_run_replaces_fewest_visits() {
        let mut t = TransTable::new(16);
        // Fill one probe run with keys that collide on the same start slot
        // (key & mask equal), giving them increasing accumulated visits.
        let base = 5u64;
        for i in 0..8u64 {
            // Identical low bits ⇒ identical probe start slot.
            let k = base | ((i + 1) << 8);
            assert_eq!(k & 15, base & 15);
            t.accumulate(k, i + 1, 0.0, NO_NODE);
        }
        let before = t.stats().drops;
        // A new colliding key with more visits than the weakest entry
        // replaces it deterministically.
        let newcomer = base | (99u64 << 8);
        t.accumulate(newcomer, 100, 1.0, NO_NODE);
        assert_eq!(t.stats().drops, before + 1);
        assert_eq!(t.register(newcomer, 1).map(|(v, _)| v), Some(100));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(TransTable::new(100).capacity(), 128);
        assert_eq!(TransTable::new(1).capacity(), 16);
    }
}
