//! Deterministic phase-level search telemetry.
//!
//! The paper's central speed analysis (Fig. 5, §III.6) decomposes each
//! block-parallel iteration into a *host-sequential* part (selection and
//! expansion over every tree, growing with the tree count) and a *kernel*
//! part (all playouts at once). [`PhaseBreakdown`] carries that
//! decomposition — generalised to every scheme in the taxonomy — on each
//! [`SearchReport`](crate::searcher::SearchReport).
//!
//! Because all experiment timing is virtual (`SimTime` derived from the
//! cost models), the breakdown is **exact**: the seven phase times sum to
//! the report's `elapsed` to the nanosecond, and the same seed produces a
//! bit-identical breakdown. There is no sampling or measurement noise.
//!
//! Phase attribution follows the cost-model constituents (DESIGN.md
//! §"Telemetry" maps each phase onto the paper's Fig. 2/4 iteration
//! anatomy):
//!
//! | phase      | cost constituents |
//! |------------|-------------------|
//! | `select`   | depth-proportional part of `CpuCostModel::tree_op` (UCB descent) |
//! | `expand`   | fixed part of `tree_op` (node creation + backprop bookkeeping) |
//! | `queue`    | multi-session service only: waiting for *other* sessions sharing a batched kernel launch |
//! | `upload`   | `launch_prep` + host→device transfer of frontier positions |
//! | `kernel`   | device launch overhead + device compute; CPU playout time on CPU-only schemes |
//! | `readback` | device→host transfer of playout results |
//! | `merge`    | cross-rank statistics allreduce (multi-GPU / multi-node) |
//!
//! For schemes whose `elapsed` is a **max** over concurrent components
//! (root/tree parallelism, MPI ranks), the phase times are those of the
//! critical-path component — the slowest tree/worker/rank, first index on
//! ties — so the sum identity still holds; the *counters* are summed over
//! every component.
//!
//! A phase may be legitimately **zero** and is never dropped from the sum:
//! the device-resident scheme ([`device_tree`](crate::device_tree)) runs
//! selection, expansion and backpropagation *inside* the kernel, so its
//! `select`/`expand` phases are exactly `SimTime::ZERO` while the `kernel`
//! phase absorbs the tree walk — and `phase_sum()` still equals `elapsed`
//! to the nanosecond. Consumers must not treat a zero phase as "missing":
//! the identity is over all seven phases, zeros included.

use pmcts_gpu_sim::KernelStats;
use pmcts_util::{FaultCounters, FaultPlan, SimTime};

/// Exact per-phase decomposition of one search's virtual time, plus
/// work counters and folded kernel statistics.
///
/// Invariant: [`phase_sum`](Self::phase_sum) `== SearchReport::elapsed`
/// for every searcher in this crate. `shadow_overlap` and `overlap_saved`
/// are informational overlap measures and deliberately *outside* the sum.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// UCB descent time (depth-proportional part of each tree operation).
    pub select: SimTime,
    /// Expansion + backpropagation bookkeeping (fixed part of each tree
    /// operation).
    pub expand: SimTime,
    /// Cross-session queueing delay: virtual time a service session spent
    /// waiting for *other* sessions' host phases before the shared batched
    /// kernel launch. Zero for every standalone searcher.
    pub queue: SimTime,
    /// Host launch preparation plus host→device transfer of the frontier.
    pub upload: SimTime,
    /// Simulation time on the critical path: kernel launch overhead +
    /// device compute on GPU schemes, CPU playout time on CPU schemes.
    pub kernel: SimTime,
    /// Device→host readback of playout results.
    pub readback: SimTime,
    /// Cross-tree / cross-rank statistics merging (allreduce time).
    pub merge: SimTime,

    /// Hybrid only: total CPU shadow-iteration time that ran *during*
    /// kernel flights (informational; whichever of kernel/shadow was longer
    /// per window is already inside the phase sums).
    pub shadow_overlap: SimTime,
    /// Hybrid only: virtual time hidden by the CPU/GPU overlap — the
    /// shorter of (kernel, shadow) per launch window, i.e. how much slower
    /// a serialised schedule would have been.
    pub overlap_saved: SimTime,
    /// Virtual time spent beyond a `VirtualTime` budget (informational,
    /// already contained in the phase times; zero for iteration budgets).
    /// Bounded by one iteration cost for every scheme — and usually zero,
    /// since the deadline-aware stopping rule only overshoots when the
    /// final iteration costs more than its predecessor.
    pub budget_overshoot: SimTime,

    /// Playouts performed (all components: trees, lanes, ranks, shadow).
    pub simulations: u64,
    /// Tree nodes created by expansion (all components).
    pub expansions: u64,
    /// Kernel launches issued (all components).
    pub kernel_launches: u64,
    /// Hybrid only: CPU shadow iterations run under kernel flights
    /// (these are *not* in `SearchReport::iterations`, which counts host
    /// launch rounds).
    pub shadow_iterations: u64,

    /// Lockstep warp steps summed over every launch.
    pub warp_steps: u64,
    /// Useful lane-steps summed over every launch.
    pub lane_steps: u64,
    /// Masked-out (divergence-wasted) lane-steps summed over every launch.
    pub idle_lane_steps: u64,
    /// Sum of per-launch occupancy values; divide by `kernel_launches`
    /// for the mean (see [`mean_occupancy`](Self::mean_occupancy)).
    pub occupancy_sum: f64,

    /// Injected faults and the responses they triggered (summed over all
    /// components, like the other counters). All-zero under
    /// [`FaultPlan::none`](pmcts_util::FaultPlan::none).
    pub faults: FaultCounters,
}

impl PhaseBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of the seven exclusive phase times; equals the report's
    /// `elapsed` exactly for every searcher in this crate. Zero phases
    /// participate like any other — a scheme that does no host
    /// select/expand work (the device-resident tree) still satisfies the
    /// identity with those terms at zero.
    pub fn phase_sum(&self) -> SimTime {
        self.select
            + self.expand
            + self.queue
            + self.upload
            + self.kernel
            + self.readback
            + self.merge
    }

    /// Host-sequential share of the phase sum: everything the CPU does
    /// between kernels (select + expand + readback handling + merging).
    /// This is the part that grows with the tree count in Fig. 5.
    pub fn host_time(&self) -> SimTime {
        self.select + self.expand + self.readback + self.merge
    }

    /// Fraction of total time spent in the kernel/playout phase.
    pub fn kernel_share(&self) -> f64 {
        let total = self.phase_sum();
        if total == SimTime::ZERO {
            0.0
        } else {
            self.kernel.as_nanos() as f64 / total.as_nanos() as f64
        }
    }

    /// Mean occupancy over all launches (0 when no kernel was launched).
    pub fn mean_occupancy(&self) -> f64 {
        if self.kernel_launches == 0 {
            0.0
        } else {
            self.occupancy_sum / self.kernel_launches as f64
        }
    }

    /// Fraction of lane-steps that did useful work (1.0 = no divergence,
    /// or no kernel work at all).
    pub fn lane_efficiency(&self) -> f64 {
        let total = self.lane_steps + self.idle_lane_steps;
        if total == 0 {
            1.0
        } else {
            self.lane_steps as f64 / total as f64
        }
    }

    /// Folds one launch's device statistics into the counters. Phase
    /// *times* are charged separately by the searcher (overlap schemes
    /// hide some of them).
    pub fn record_launch(&mut self, stats: &KernelStats) {
        self.kernel_launches += 1;
        self.warp_steps += stats.warp_steps;
        self.lane_steps += stats.lane_steps;
        self.idle_lane_steps += stats.idle_lane_steps;
        self.occupancy_sum += stats.occupancy;
    }

    /// Adds `other`'s counters and folded kernel statistics (not its phase
    /// times) into `self` — used when summing work over concurrent
    /// components whose *times* follow the critical-path convention.
    pub fn absorb_counters(&mut self, other: &PhaseBreakdown) {
        self.simulations += other.simulations;
        self.expansions += other.expansions;
        self.kernel_launches += other.kernel_launches;
        self.shadow_iterations += other.shadow_iterations;
        self.warp_steps += other.warp_steps;
        self.lane_steps += other.lane_steps;
        self.idle_lane_steps += other.idle_lane_steps;
        self.occupancy_sum += other.occupancy_sum;
        self.shadow_overlap += other.shadow_overlap;
        self.overlap_saved += other.overlap_saved;
        self.faults.absorb(&other.faults);
    }

    /// Copies `other`'s phase *times* into `self` (critical-path component
    /// selection); counters are untouched.
    pub fn adopt_times(&mut self, other: &PhaseBreakdown) {
        self.select = other.select;
        self.expand = other.expand;
        self.queue = other.queue;
        self.upload = other.upload;
        self.kernel = other.kernel;
        self.readback = other.readback;
        self.merge = other.merge;
    }
}

/// Host-side fault accounting for one cross-rank statistics merge.
///
/// Re-queries the pure fault plan to count dead and contribution-dropping
/// ranks (each is one injected + one excluded fault), then prices the
/// allreduce: the detection *timeout* when any rank failed, a delay-spiked
/// cost when the network schedule says so, the base cost otherwise. Under
/// [`FaultPlan::none`] this returns exactly `base()` and touches nothing.
pub(crate) fn rank_merge_cost(
    plan: &FaultPlan,
    phases: &mut PhaseBreakdown,
    key: u64,
    ranks: usize,
    base: impl FnOnce() -> SimTime,
) -> SimTime {
    let mut failed = false;
    for rank in 0..ranks as u64 {
        if plan.component_dead(key, rank) || plan.drops_contribution(key, rank) {
            phases.faults.injected += 1;
            phases.faults.excluded += 1;
            failed = true;
        }
    }
    let base = base();
    if failed {
        plan.net_timeout(base)
    } else if let Some(factor) = plan.net_delay_spike(key, 0) {
        phases.faults.injected += 1;
        base * factor as u64
    } else {
        base
    }
}

/// Index of the critical-path component: the slowest element, first index
/// on ties, so the choice is deterministic and independent of thread
/// timing.
pub fn critical_index(elapsed: impl IntoIterator<Item = SimTime>) -> Option<usize> {
    let mut best: Option<(usize, SimTime)> = None;
    for (i, t) in elapsed.into_iter().enumerate() {
        match best {
            Some((_, bt)) if t <= bt => {}
            _ => best = Some((i, t)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_sum_adds_the_seven_phases() {
        let b = PhaseBreakdown {
            select: SimTime::from_nanos(1),
            expand: SimTime::from_nanos(2),
            queue: SimTime::from_nanos(64),
            upload: SimTime::from_nanos(4),
            kernel: SimTime::from_nanos(8),
            readback: SimTime::from_nanos(16),
            merge: SimTime::from_nanos(32),
            shadow_overlap: SimTime::from_nanos(1 << 20), // excluded
            overlap_saved: SimTime::from_nanos(1 << 20),  // excluded
            budget_overshoot: SimTime::from_nanos(1 << 20), // excluded
            ..PhaseBreakdown::default()
        };
        assert_eq!(b.phase_sum(), SimTime::from_nanos(127));
        assert_eq!(b.host_time(), SimTime::from_nanos(1 + 2 + 16 + 32));
    }

    #[test]
    fn zero_host_phase_ledger_still_sums_exactly() {
        // The device-resident scheme's shape: select/expand/queue/merge
        // all zero, everything in upload + kernel + readback. The sum
        // identity must hold with the zero terms included, not by
        // skipping them.
        let b = PhaseBreakdown {
            upload: SimTime::from_nanos(10),
            kernel: SimTime::from_nanos(1_000),
            readback: SimTime::from_nanos(7),
            ..PhaseBreakdown::default()
        };
        assert_eq!(b.select, SimTime::ZERO);
        assert_eq!(b.expand, SimTime::ZERO);
        assert_eq!(b.phase_sum(), SimTime::from_nanos(1_017));
        assert_eq!(b.host_time(), SimTime::from_nanos(7), "readback only");
        assert!((b.kernel_share() - 1_000.0 / 1_017.0).abs() < 1e-12);
    }

    #[test]
    fn record_launch_folds_device_stats() {
        let mut b = PhaseBreakdown::new();
        let stats = KernelStats {
            warp_steps: 10,
            lane_steps: 300,
            idle_lane_steps: 20,
            occupancy: 0.5,
            ..KernelStats::default()
        };
        b.record_launch(&stats);
        b.record_launch(&stats);
        assert_eq!(b.kernel_launches, 2);
        assert_eq!(b.warp_steps, 20);
        assert_eq!(b.lane_steps, 600);
        assert_eq!(b.idle_lane_steps, 40);
        assert!((b.mean_occupancy() - 0.5).abs() < 1e-12);
        assert!((b.lane_efficiency() - 600.0 / 640.0).abs() < 1e-12);
    }

    #[test]
    fn critical_index_prefers_first_max() {
        let ts = [
            SimTime::from_nanos(5),
            SimTime::from_nanos(9),
            SimTime::from_nanos(9),
            SimTime::from_nanos(3),
        ];
        assert_eq!(critical_index(ts), Some(1));
        assert_eq!(critical_index(std::iter::empty()), None);
    }

    #[test]
    fn kernel_share_of_zero_time_is_zero() {
        assert_eq!(PhaseBreakdown::new().kernel_share(), 0.0);
    }
}
