//! The Upper Confidence Bound selection rule (paper §II.1).
//!
//! `UCB_i = S_i / t_i + C · sqrt(ln T / t_i)` where `S_i` is the child's
//! accumulated reward, `t_i` its visit count and `T` the parent's visit
//! count. The first term exploits (average value), the second explores
//! (rarely visited nodes score higher).

/// UCB1 value of a child node.
///
/// `wins` is the child's accumulated reward from the perspective of the
/// player choosing among the children. Unvisited children score `+∞` so
/// they are tried before any re-visit (the caller normally keeps unexpanded
/// moves in a separate untried list, making this a safety net).
#[inline]
pub fn ucb1(parent_visits: u64, child_visits: u64, child_wins: f64, c: f64) -> f64 {
    ucb1_with_ln(
        (parent_visits.max(1) as f64).ln(),
        child_visits,
        child_wins,
        c,
    )
}

/// UCB1 with `ln T` precomputed by the caller.
///
/// `ln T` depends only on the parent, so selection hoists it out of the
/// per-child loop; one `ln` per node instead of one per child. The floating
/// point expression is otherwise identical to [`ucb1`], so values (and
/// therefore every selection decision) are bit-identical.
#[inline]
pub fn ucb1_with_ln(ln_parent_visits: f64, child_visits: u64, child_wins: f64, c: f64) -> f64 {
    if child_visits == 0 {
        return f64::INFINITY;
    }
    let t = child_visits as f64;
    let exploit = child_wins / t;
    let explore = c * (ln_parent_visits / t).sqrt();
    exploit + explore
}

/// WU-UCT-corrected UCB1 (Liu et al., "Watch the Unobserved"): in-flight
/// playouts that have been dispatched but not yet backpropagated are
/// counted as unobserved samples `O`, entering both the exploitation
/// denominator (`S_i / (t_i + O_i)`) and the exploration term
/// (`C · sqrt(ln(T + O_T) / (t_i + O_i))`).
///
/// `ln_parent_total` is `ln((T + O_T).max(1))`, precomputed by the caller
/// exactly as selection hoists `ln T`. With `child_inflight == 0` (and the
/// caller passing the plain `ln T`) the expression is bit-identical to
/// [`ucb1_with_ln`] — the correction vanishes, it never perturbs a
/// zero-width search.
#[inline]
pub fn ucb1_corrected_with_ln(
    ln_parent_total: f64,
    child_visits: u64,
    child_inflight: u64,
    child_wins: f64,
    c: f64,
) -> f64 {
    let total = child_visits + child_inflight;
    if total == 0 {
        return f64::INFINITY;
    }
    let t = total as f64;
    let exploit = child_wins / t;
    let explore = c * (ln_parent_total / t).sqrt();
    exploit + explore
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unvisited_children_are_infinitely_attractive() {
        assert_eq!(ucb1(10, 0, 0.0, 1.4), f64::INFINITY);
    }

    #[test]
    fn exploitation_term_is_mean_reward() {
        // With c = 0 the value is exactly the mean.
        assert!((ucb1(100, 10, 7.0, 0.0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn exploration_prefers_rarely_visited() {
        // Same mean, fewer visits => higher UCB.
        let rare = ucb1(1000, 10, 5.0, 1.4);
        let frequent = ucb1(1000, 100, 50.0, 1.4);
        assert!(rare > frequent);
    }

    #[test]
    fn exploration_grows_with_parent_visits() {
        let early = ucb1(10, 5, 2.5, 1.4);
        let late = ucb1(10_000, 5, 2.5, 1.4);
        assert!(late > early);
    }

    #[test]
    fn larger_c_explores_more() {
        // A low-mean rarely-visited child overtakes a high-mean child as C
        // increases.
        let weak_rare = |c| ucb1(1000, 40, 10.0, c);
        let strong_common = |c| ucb1(1000, 400, 300.0, c);
        assert!(weak_rare(0.5) < strong_common(0.5));
        assert!(weak_rare(5.0) > strong_common(5.0));
    }

    #[test]
    fn zero_parent_visits_is_safe() {
        let v = ucb1(0, 1, 1.0, 1.4);
        assert!(v.is_finite());
    }

    #[test]
    fn hoisted_ln_is_bit_identical_to_ucb1() {
        for parent in [0u64, 1, 2, 10, 1_000, 123_456_789] {
            let ln = (parent.max(1) as f64).ln();
            for (visits, wins) in [(0u64, 0.0), (1, 0.5), (7, 3.0), (1_000, 420.5)] {
                for c in [0.0, 0.5, 1.4, 5.0] {
                    let a = ucb1(parent, visits, wins, c);
                    let b = ucb1_with_ln(ln, visits, wins, c);
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn corrected_with_zero_inflight_is_bit_identical_to_ucb1_with_ln() {
        // The WU-UCT correction must vanish exactly — same bits, not just
        // same value — when no playout is in flight, so a width-1 corrected
        // search replays the uncorrected one decision for decision.
        for parent in [0u64, 1, 2, 10, 1_000, 123_456_789] {
            let ln = (parent.max(1) as f64).ln();
            for (visits, wins) in [(0u64, 0.0), (1, 0.5), (7, 3.0), (1_000, 420.5)] {
                for c in [0.0, 0.5, 1.4, 5.0] {
                    let a = ucb1_with_ln(ln, visits, wins, c);
                    let b = ucb1_corrected_with_ln(ln, visits, 0, wins, c);
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn inflight_samples_discount_a_child() {
        // 32 unobserved playouts already dispatched through this child must
        // lower both terms: the mean is diluted and the exploration bonus
        // shrinks, steering the next selection elsewhere.
        let ln = (1000f64).ln();
        let plain = ucb1_with_ln(ln, 10, 5.0, 1.4);
        let corrected = ucb1_corrected_with_ln(ln, 10, 32, 5.0, 1.4);
        assert!(corrected < plain);
    }

    #[test]
    fn unvisited_child_with_inflight_mass_is_finite() {
        // An unvisited child that already has playouts in flight is no
        // longer infinitely attractive — that is the whole point of the
        // correction (stop piling every batch onto the same frontier leaf).
        let v = ucb1_corrected_with_ln((10f64).ln(), 0, 32, 0.0, 1.4);
        assert!(v.is_finite());
        assert_eq!(
            ucb1_corrected_with_ln((10f64).ln(), 0, 0, 0.0, 1.4),
            f64::INFINITY
        );
    }
}
