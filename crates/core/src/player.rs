//! Players: move-choosing agents built from searchers.

use crate::config::SearchBudget;
use crate::searcher::{SearchReport, Searcher};
use pmcts_games::{Game, MoveBuf};
use pmcts_util::{Rng64, Xoshiro256pp};

/// An agent that chooses moves in a game.
pub trait GamePlayer<G: Game>: Send {
    /// Chooses a move for the side to move, or `None` on terminal states.
    fn choose(&mut self, state: &G) -> Option<G::Move>;

    /// Human-readable description for match logs.
    fn name(&self) -> String;

    /// The search report behind the last [`choose`](Self::choose) call,
    /// if this player searches (used for the depth traces of Fig. 8).
    fn last_report(&self) -> Option<&SearchReport<G::Move>> {
        None
    }
}

/// A player that runs an MCTS [`Searcher`] with a fixed per-move budget.
#[derive(Clone, Debug)]
pub struct MctsPlayer<G: Game, S: Searcher<G>> {
    searcher: S,
    budget: SearchBudget,
    last: Option<SearchReport<G::Move>>,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game, S: Searcher<G>> MctsPlayer<G, S> {
    /// Wraps `searcher` with a per-move `budget`.
    pub fn new(searcher: S, budget: SearchBudget) -> Self {
        MctsPlayer {
            searcher,
            budget,
            last: None,
            _game: std::marker::PhantomData,
        }
    }

    /// The per-move budget.
    pub fn budget(&self) -> SearchBudget {
        self.budget
    }

    /// The wrapped searcher.
    pub fn searcher(&self) -> &S {
        &self.searcher
    }
}

impl<G: Game, S: Searcher<G>> GamePlayer<G> for MctsPlayer<G, S> {
    fn choose(&mut self, state: &G) -> Option<G::Move> {
        if state.is_terminal() {
            return None;
        }
        let report = self.searcher.search(*state, self.budget);
        let mv = report.best_move.or_else(|| {
            // Zero-budget fallback: any legal move.
            let mut buf = MoveBuf::new();
            state.legal_moves(&mut buf);
            buf.as_slice().first().copied()
        });
        self.last = Some(report);
        mv
    }

    fn name(&self) -> String {
        self.searcher.name()
    }

    fn last_report(&self) -> Option<&SearchReport<G::Move>> {
        self.last.as_ref()
    }
}

/// A uniformly random player — the weakest baseline, used in tests to
/// verify that every searcher actually plays better than chance.
#[derive(Clone, Debug)]
pub struct RandomPlayer {
    rng: Xoshiro256pp,
}

impl RandomPlayer {
    /// Creates a random player with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        RandomPlayer {
            rng: Xoshiro256pp::derive(seed, 0xABAD),
        }
    }
}

impl<G: Game> GamePlayer<G> for RandomPlayer {
    fn choose(&mut self, state: &G) -> Option<G::Move> {
        state.random_move(&mut self.rng)
    }

    fn name(&self) -> String {
        "uniform random".to_string()
    }
}

/// A greedy 1-ply player: picks the move with the best immediate score for
/// the mover (e.g. most discs flipped in Reversi). A slightly stronger
/// sanity baseline than [`RandomPlayer`].
#[derive(Clone, Debug)]
pub struct GreedyPlayer {
    rng: Xoshiro256pp,
}

impl GreedyPlayer {
    /// Creates a greedy player (ties broken randomly).
    pub fn new(seed: u64) -> Self {
        GreedyPlayer {
            rng: Xoshiro256pp::derive(seed, 0x96EE),
        }
    }
}

impl<G: Game> GamePlayer<G> for GreedyPlayer {
    fn choose(&mut self, state: &G) -> Option<G::Move> {
        let mut buf = MoveBuf::new();
        state.legal_moves(&mut buf);
        if buf.is_empty() {
            return None;
        }
        let mover = state.to_move();
        let mut best: Vec<G::Move> = Vec::new();
        let mut best_score = i32::MIN;
        for &mv in &buf {
            let mut child = *state;
            child.apply(mv);
            let score = match mover {
                pmcts_games::Player::P1 => child.score(),
                pmcts_games::Player::P2 => -child.score(),
            };
            match score.cmp(&best_score) {
                std::cmp::Ordering::Greater => {
                    best_score = score;
                    best.clear();
                    best.push(mv);
                }
                std::cmp::Ordering::Equal => best.push(mv),
                std::cmp::Ordering::Less => {}
            }
        }
        Some(best[self.rng.next_below(best.len() as u32) as usize])
    }

    fn name(&self) -> String {
        "greedy 1-ply".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MctsConfig;
    use crate::sequential::SequentialSearcher;
    use pmcts_games::{Game, Reversi, TicTacToe};

    #[test]
    fn random_player_plays_legal_moves() {
        let mut p = RandomPlayer::new(1);
        let mut s = Reversi::initial();
        for _ in 0..20 {
            if s.is_terminal() {
                break;
            }
            let mv = GamePlayer::<Reversi>::choose(&mut p, &s).unwrap();
            let mut buf = MoveBuf::new();
            s.legal_moves(&mut buf);
            assert!(buf.contains(&mv));
            s.apply(mv);
        }
    }

    #[test]
    fn random_player_returns_none_on_terminal() {
        let done = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let mut p = RandomPlayer::new(2);
        assert_eq!(GamePlayer::<TicTacToe>::choose(&mut p, &done), None);
    }

    #[test]
    fn mcts_player_records_report() {
        let searcher = SequentialSearcher::<Reversi>::new(MctsConfig::default().with_seed(3));
        let mut p = MctsPlayer::new(searcher, SearchBudget::Iterations(50));
        assert!(p.last_report().is_none());
        let mv = p.choose(&Reversi::initial());
        assert!(mv.is_some());
        let report = p.last_report().unwrap();
        assert_eq!(report.simulations, 50);
    }

    #[test]
    fn greedy_player_maximises_immediate_score() {
        // From the initial position every Reversi move flips exactly one
        // disc, so greedy is free; on a position with a clear best flip it
        // must take it. Use Connect4-like score? Simply verify legality and
        // determinism of choice set membership.
        let mut p = GreedyPlayer::new(4);
        let s = Reversi::initial();
        let mv = GamePlayer::<Reversi>::choose(&mut p, &s).unwrap();
        let mut buf = MoveBuf::new();
        s.legal_moves(&mut buf);
        assert!(buf.contains(&mv));
    }

    #[test]
    fn mcts_player_none_on_terminal() {
        let searcher = SequentialSearcher::<TicTacToe>::new(MctsConfig::default());
        let mut p = MctsPlayer::new(searcher, SearchBudget::Iterations(10));
        let done = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        assert_eq!(p.choose(&done), None);
    }
}
