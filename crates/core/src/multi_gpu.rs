//! Multi-GPU search over (simulated) MPI — paper §IV/Fig. 9.
//!
//! Root parallelism at cluster scale: each MPI rank drives one GPU running
//! the block-parallel scheme, and root statistics are combined with an
//! allreduce at the end of the search ("For the root/block parallel
//! methods, the root node has to be updated by summing up results from all
//! other trees processed in parallel", §II.4 — here across ranks). All
//! ranks end up with identical merged statistics and hence choose the same
//! move.

use crate::block_parallel::BlockParallelSearcher;
use crate::config::{MctsConfig, SearchBudget};
use crate::searcher::{empty_report, SearchReport, Searcher};
use crate::telemetry::{critical_index, rank_merge_cost, PhaseBreakdown};
use crate::tree::{best_from_stats, merge_root_stats, RootStat};
use pmcts_games::Game;
use pmcts_gpu_sim::{Device, DeviceSpec, LaunchConfig, WorkerPool};
use pmcts_mpi_sim::{NetworkModel, World};
use pmcts_util::SimTime;
use std::sync::Arc;

/// Root-parallel search over `ranks` simulated GPUs connected by MPI.
#[derive(Clone, Debug)]
pub struct MultiGpuSearcher<G: Game> {
    config: MctsConfig,
    ranks: usize,
    device_spec: DeviceSpec,
    launch: LaunchConfig,
    network: NetworkModel,
    /// One persistent pool shared by every rank's device: the host's cores
    /// are a single resource, and sharing avoids spawning `ranks` pools per
    /// search. Results are unaffected (block-order folding per launch).
    pool: Arc<WorkerPool>,
    generation: u64,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> MultiGpuSearcher<G> {
    /// Creates a multi-GPU searcher: `ranks` ranks, each with its own
    /// simulated `device_spec` GPU launching `launch`.
    pub fn new(
        config: MctsConfig,
        ranks: usize,
        device_spec: DeviceSpec,
        launch: LaunchConfig,
        network: NetworkModel,
    ) -> Self {
        assert!(ranks > 0, "need at least one rank");
        MultiGpuSearcher {
            config,
            ranks,
            device_spec,
            launch,
            network,
            pool: Arc::new(WorkerPool::with_available_parallelism()),
            generation: 0,
            _game: std::marker::PhantomData,
        }
    }

    /// Shares an existing worker pool across the ranks' devices instead of
    /// owning one. Virtual timing and results are unaffected.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Number of MPI ranks (= GPUs).
    pub fn ranks(&self) -> usize {
        self.ranks
    }
}

impl<G: Game> Searcher<G> for MultiGpuSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        self.generation += 1;
        let gen = self.generation;
        let config = self.config.clone();
        let spec = self.device_spec.clone();
        let launch = self.launch;
        let ranks = self.ranks;
        // All ranks' devices execute on one shared persistent pool — the
        // host's cores are a single resource however many GPUs we simulate.
        let pool = Arc::clone(&self.pool);

        let plan = self.config.faults;
        type RankResult<M> = (SearchReport<M>, Option<Vec<RootStat<M>>>);
        let per_rank: Vec<RankResult<G::Move>> = World::run(ranks, self.network, |comm| {
            // A dead rank produces nothing this search; it still joins the
            // collectives (via the sparse allreduce) so nothing can hang.
            // A live rank may have its contribution dropped by the network:
            // it searched, but its statistics are excluded from the merge.
            let rank = comm.rank() as u64;
            let (report, contribution) = if plan.component_dead(gen, rank) {
                (empty_report(), None)
            } else {
                let device = Device::new_with_pool(spec.clone(), Arc::clone(&pool));
                let stream = gen * ranks as u64 + rank;
                let mut searcher =
                    BlockParallelSearcher::<G>::with_stream(config.clone(), device, launch, stream);
                let report = searcher.search(root, budget);
                let contribution = if plan.drops_contribution(gen, rank) {
                    None
                } else {
                    Some(report.root_stats.clone())
                };
                (report, contribution)
            };
            let merged = comm.allreduce_sparse(contribution, |a, b| merge_root_stats(&[a, b]));
            (report, merged)
        });

        // Rank 0 is never dead and never dropped, so a merge always exists.
        let merged = per_rank[0].1.clone().unwrap_or_default();
        // Every rank must agree after the allreduce.
        debug_assert!(per_rank
            .iter()
            .all(|(_, m)| m.as_deref() == Some(&merged[..])));

        // Ranks run concurrently; the merge costs one allreduce. Phase
        // times follow the critical (slowest) rank plus the allreduce in
        // `merge`, so they still sum to elapsed; counters sum over ranks.
        let mut phases = PhaseBreakdown::new();
        for (r, _) in &per_rank {
            phases.absorb_counters(&r.phases);
        }
        let crit = critical_index(per_rank.iter().map(|(r, _)| r.elapsed));
        if let Some(i) = crit {
            phases.adopt_times(&per_rank[i].0.phases);
        }

        let stats_bytes = (merged.len() * std::mem::size_of::<RootStat<G::Move>>()) as u64;
        let comm_cost = rank_merge_cost(&plan, &mut phases, gen, ranks, || {
            self.network.allreduce_time(stats_bytes, ranks)
        });
        phases.merge += comm_cost;

        let elapsed = crit.map(|i| per_rank[i].0.elapsed).unwrap_or(SimTime::ZERO) + comm_cost;
        phases.budget_overshoot = crate::searcher::overshoot_of(budget, elapsed);
        SearchReport {
            best_move: best_from_stats(&merged, self.config.final_move),
            simulations: per_rank.iter().map(|(r, _)| r.simulations).sum(),
            iterations: per_rank.iter().map(|(r, _)| r.iterations).sum(),
            tree_nodes: per_rank.iter().map(|(r, _)| r.tree_nodes).sum(),
            max_depth: per_rank.iter().map(|(r, _)| r.max_depth).max().unwrap_or(0),
            elapsed,
            root_stats: merged,
            phases,
        }
    }

    fn name(&self) -> String {
        format!(
            "multi-GPU root parallelism ({} ranks × {} blocks × {} threads)",
            self.ranks, self.launch.blocks, self.launch.threads_per_block
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::Reversi;

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    fn searcher(seed: u64, ranks: usize) -> MultiGpuSearcher<Reversi> {
        MultiGpuSearcher::new(
            cfg(seed),
            ranks,
            DeviceSpec::tesla_c2050(),
            LaunchConfig::new(4, 32),
            NetworkModel::infiniband(),
        )
    }

    #[test]
    fn simulations_scale_with_ranks() {
        let r1 = searcher(1, 1).search(Reversi::initial(), SearchBudget::Iterations(4));
        let r4 = searcher(1, 4).search(Reversi::initial(), SearchBudget::Iterations(4));
        assert_eq!(r1.simulations, 4 * 4 * 32);
        assert_eq!(r4.simulations, 4 * r1.simulations);
    }

    #[test]
    fn merged_stats_cover_all_rank_simulations() {
        let r = searcher(2, 3).search(Reversi::initial(), SearchBudget::Iterations(5));
        let total: u64 = r.root_stats.iter().map(|s| s.visits).sum();
        assert_eq!(total, r.simulations);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = searcher(3, 2).search(Reversi::initial(), SearchBudget::Iterations(4));
        let b = searcher(3, 2).search(Reversi::initial(), SearchBudget::Iterations(4));
        assert_eq!(a.root_stats, b.root_stats);
        assert_eq!(a.best_move, b.best_move);
    }

    #[test]
    fn elapsed_includes_allreduce_cost() {
        let net = NetworkModel::infiniband();
        let budget = SearchBudget::Iterations(2);
        let multi = searcher(4, 4).search(Reversi::initial(), budget);
        // The per-rank elapsed is at least 2 launches; the merged elapsed
        // adds communication > 0.
        assert!(multi.elapsed > SimTime::ZERO);
        let _ = net;
    }

    #[test]
    fn ranks_explore_different_streams() {
        // Two ranks' individual reports would differ; test via merged stats
        // differing from a doubled single rank.
        let single = searcher(5, 1).search(Reversi::initial(), SearchBudget::Iterations(6));
        let double = searcher(5, 2).search(Reversi::initial(), SearchBudget::Iterations(6));
        let doubled: Vec<u64> = single.root_stats.iter().map(|s| s.visits * 2).collect();
        let merged: Vec<u64> = double.root_stats.iter().map(|s| s.visits).collect();
        assert_ne!(doubled, merged);
    }
}
