//! The match arena: plays full games between players and records the traces
//! the paper's figures are built from.
//!
//! * Fig. 6 needs win ratios over many games;
//! * Fig. 7 needs the *point difference per game step* (current score from
//!   one side's perspective after every ply);
//! * Fig. 8 additionally needs each player's search-tree depth per move.

use crate::player::GamePlayer;
use pmcts_games::{Game, Outcome, Player};
use pmcts_util::{OnlineStats, Rng64, SplitMix64, WinLoss};

/// Full record of one played game.
#[derive(Clone, Debug)]
pub struct GameRecord {
    /// Score (from P1's perspective) after each ply, index 0 = after the
    /// first move.
    pub score_trace: Vec<i32>,
    /// Max search-tree depth reported by P1 at each of its moves (empty for
    /// non-searching players).
    pub depth_trace_p1: Vec<u32>,
    /// Same for P2.
    pub depth_trace_p2: Vec<u32>,
    /// Total simulations spent by each player.
    pub simulations: [u64; 2],
    /// Number of plies played.
    pub plies: u32,
    /// Final outcome.
    pub outcome: Outcome,
    /// Final score from P1's perspective.
    pub final_score: i32,
}

impl GameRecord {
    /// Final score from the given player's perspective.
    pub fn score_for(&self, player: Player) -> i32 {
        match player {
            Player::P1 => self.final_score,
            Player::P2 => -self.final_score,
        }
    }
}

/// Plays one game between `p1` (moving first) and `p2`.
///
/// # Panics
/// Panics if a player returns an illegal move (engines debug-assert) or no
/// move on a non-terminal state.
pub fn play_game<G: Game>(p1: &mut dyn GamePlayer<G>, p2: &mut dyn GamePlayer<G>) -> GameRecord {
    let mut state = G::initial();
    let mut score_trace = Vec::with_capacity(G::MAX_GAME_LENGTH);
    let mut depth_trace_p1 = Vec::new();
    let mut depth_trace_p2 = Vec::new();
    let mut simulations = [0u64; 2];
    let mut plies = 0u32;

    while !state.is_terminal() {
        let mover = state.to_move();
        let (mv, depth, sims) = {
            let player: &mut dyn GamePlayer<G> = match mover {
                Player::P1 => &mut *p1,
                Player::P2 => &mut *p2,
            };
            let mv = player
                .choose(&state)
                .expect("player must move on non-terminal state");
            let (depth, sims) = player
                .last_report()
                .map(|r| (r.max_depth, r.simulations))
                .unwrap_or((0, 0));
            (mv, depth, sims)
        };
        match mover {
            Player::P1 => depth_trace_p1.push(depth),
            Player::P2 => depth_trace_p2.push(depth),
        }
        simulations[mover.index()] += sims;
        state.apply(mv);
        plies += 1;
        score_trace.push(state.score());
        assert!(
            plies as usize <= G::MAX_GAME_LENGTH,
            "game exceeded MAX_GAME_LENGTH"
        );
    }

    GameRecord {
        score_trace,
        depth_trace_p1,
        depth_trace_p2,
        simulations,
        plies,
        outcome: state.outcome().expect("terminal state has outcome"),
        final_score: state.score(),
    }
}

/// Aggregated results of a series of games between a *candidate* (player A)
/// and an *opponent* (player B), colours alternating.
#[derive(Clone, Debug, Default)]
pub struct SeriesResult {
    /// Win/draw/loss from the candidate's perspective.
    pub winloss: WinLoss,
    /// Mean final score (candidate − opponent).
    pub mean_score: OnlineStats,
    /// Mean score difference per game step, candidate's perspective
    /// (the Y axis of Figs. 7–8); entry `i` covers ply `i + 1`.
    pub score_by_step: Vec<OnlineStats>,
    /// Mean candidate tree depth per candidate move (Fig. 8's lower panel).
    pub depth_by_step: Vec<OnlineStats>,
    /// Total simulations spent by the candidate / the opponent.
    pub simulations: [u64; 2],
    /// Games played.
    pub games: u64,
}

impl SeriesResult {
    /// Records one finished game in which the candidate played `colour`.
    pub fn record(&mut self, record: &GameRecord, colour: Player) {
        self.games += 1;
        self.winloss.record_score(record.score_for(colour));
        self.mean_score.push(record.score_for(colour) as f64);
        let sign = match colour {
            Player::P1 => 1.0,
            Player::P2 => -1.0,
        };
        for (i, &s) in record.score_trace.iter().enumerate() {
            if self.score_by_step.len() <= i {
                self.score_by_step.push(OnlineStats::new());
            }
            self.score_by_step[i].push(sign * s as f64);
        }
        let depths = match colour {
            Player::P1 => &record.depth_trace_p1,
            Player::P2 => &record.depth_trace_p2,
        };
        for (i, &d) in depths.iter().enumerate() {
            if self.depth_by_step.len() <= i {
                self.depth_by_step.push(OnlineStats::new());
            }
            self.depth_by_step[i].push(d as f64);
        }
        self.simulations[0] += record.simulations[colour.index()];
        self.simulations[1] += record.simulations[colour.opponent().index()];
    }

    /// Candidate win ratio (draws = ½).
    pub fn win_ratio(&self) -> f64 {
        self.winloss.win_ratio()
    }
}

/// Derives the stream value handed to an entrant's player factory for one
/// game of a series.
///
/// Mixing the entrant index and colour into a SplitMix64 hash of the game
/// index guarantees the two opponents of a game never share an RNG stream —
/// previously both factories received the raw game index, so seeds like
/// `base ^ g` on both sides handed the entrants *identical* playout
/// streams, correlating every "independent" comparison. The result is
/// truncated to 48 bits so factories may add small offsets without
/// overflow; the series stays fully deterministic.
pub fn entrant_stream(game: u64, entrant: u64, colour: Player) -> u64 {
    let colour_bit = match colour {
        Player::P1 => 0,
        Player::P2 => 1,
    };
    SplitMix64::derive(game, (entrant << 1) | colour_bit).next_u64() & 0xFFFF_FFFF_FFFF
}

/// Plays `games` between a candidate and an opponent, alternating colours
/// (candidate is P1 in even games). Player factories receive a
/// deterministic per-game stream value (see [`entrant_stream`]) so each
/// game uses fresh, seeded, mutually-uncorrelated players.
pub struct MatchSeries<G: Game> {
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> MatchSeries<G> {
    /// Runs the series and aggregates the result.
    pub fn run(
        games: u64,
        mut candidate: impl FnMut(u64) -> Box<dyn GamePlayer<G>>,
        mut opponent: impl FnMut(u64) -> Box<dyn GamePlayer<G>>,
    ) -> SeriesResult {
        let mut result = SeriesResult::default();
        for g in 0..games {
            let colour = if g % 2 == 0 { Player::P1 } else { Player::P2 };
            let mut cand = candidate(entrant_stream(g, 0, colour));
            let mut opp = opponent(entrant_stream(g, 1, colour.opponent()));
            let record = match colour {
                Player::P1 => play_game::<G>(&mut *cand, &mut *opp),
                Player::P2 => play_game::<G>(&mut *opp, &mut *cand),
            };
            result.record(&record, colour);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MctsConfig, SearchBudget};
    use crate::player::{MctsPlayer, RandomPlayer};
    use crate::sequential::SequentialSearcher;
    use pmcts_games::{Connect4, Reversi, TicTacToe};

    #[test]
    fn random_vs_random_reversi_completes() {
        let mut a = RandomPlayer::new(1);
        let mut b = RandomPlayer::new(2);
        let rec = play_game::<Reversi>(&mut a, &mut b);
        assert!(rec.plies >= 50);
        assert_eq!(rec.score_trace.len(), rec.plies as usize);
        let (sum_b, sum_w) = match rec.outcome {
            Outcome::Win(Player::P1) => (true, false),
            Outcome::Win(Player::P2) => (false, true),
            Outcome::Draw => (false, false),
        };
        if sum_b {
            assert!(rec.final_score > 0);
        }
        if sum_w {
            assert!(rec.final_score < 0);
        }
    }

    #[test]
    fn score_for_negates_for_p2() {
        let rec = GameRecord {
            score_trace: vec![],
            depth_trace_p1: vec![],
            depth_trace_p2: vec![],
            simulations: [0, 0],
            plies: 0,
            outcome: Outcome::Draw,
            final_score: 10,
        };
        assert_eq!(rec.score_for(Player::P1), 10);
        assert_eq!(rec.score_for(Player::P2), -10);
    }

    #[test]
    fn mcts_beats_random_at_tictactoe() {
        let result = MatchSeries::<TicTacToe>::run(
            20,
            |g| {
                Box::new(MctsPlayer::new(
                    SequentialSearcher::<TicTacToe>::new(MctsConfig::default().with_seed(g)),
                    SearchBudget::Iterations(300),
                ))
            },
            |g| Box::new(RandomPlayer::new(1000 + g)),
        );
        assert_eq!(result.games, 20);
        // MCTS should essentially never lose tic-tac-toe to random.
        assert!(result.winloss.losses <= 1, "losses: {:?}", result.winloss);
    }

    #[test]
    fn series_alternates_colours_and_tracks_steps() {
        let result = MatchSeries::<Connect4>::run(
            4,
            |g| Box::new(RandomPlayer::new(g)),
            |g| Box::new(RandomPlayer::new(100 + g)),
        );
        assert_eq!(result.games, 4);
        assert!(!result.score_by_step.is_empty());
        // Connect-4 needs at least 7 plies; step 0 has all 4 games.
        assert_eq!(result.score_by_step[0].count(), 4);
    }

    #[test]
    fn entrant_streams_are_decorrelated() {
        // The two entrants of one game must never receive the same stream,
        // whichever colours they hold, and streams must vary per game.
        for g in 0..64 {
            for colour in [Player::P1, Player::P2] {
                assert_ne!(
                    entrant_stream(g, 0, colour),
                    entrant_stream(g, 1, colour.opponent()),
                    "game {g}: opponents share a stream"
                );
            }
            assert_ne!(
                entrant_stream(g, 0, Player::P1),
                entrant_stream(g + 1, 0, Player::P2),
                "adjacent games collide for the candidate"
            );
        }
        // Colour is part of the derivation: swapping colours re-seeds.
        assert_ne!(
            entrant_stream(3, 0, Player::P1),
            entrant_stream(3, 0, Player::P2)
        );
        // Headroom for factories that add small constants.
        assert!(entrant_stream(u64::MAX, 1, Player::P2) <= 0xFFFF_FFFF_FFFF);
    }

    #[test]
    fn depth_trace_recorded_for_searching_players() {
        let mut mcts = MctsPlayer::new(
            SequentialSearcher::<TicTacToe>::new(MctsConfig::default().with_seed(5)),
            SearchBudget::Iterations(100),
        );
        let mut rnd = RandomPlayer::new(6);
        let rec = play_game::<TicTacToe>(&mut mcts, &mut rnd);
        assert!(!rec.depth_trace_p1.is_empty());
        assert!(rec.depth_trace_p1.iter().any(|&d| d > 0));
        assert!(rec.depth_trace_p2.iter().all(|&d| d == 0));
        assert!(rec.simulations[0] > 0);
        assert_eq!(rec.simulations[1], 0);
    }
}
