//! The sequential UCT baseline (paper §II).
//!
//! One iteration = selection → expansion (one node) → one random playout →
//! backpropagation, repeated until the budget is spent. This searcher is
//! both the reference implementation every parallel scheme is tested
//! against and the "1 CPU core" opponent of the paper's Figs. 6–7.

use crate::config::{MctsConfig, SearchBudget};
use crate::searcher::{BudgetTracker, SearchReport, Searcher};
use crate::telemetry::PhaseBreakdown;
use crate::tree::SearchTree;
use pmcts_games::{random_playout, Game, Player};
use pmcts_util::Xoshiro256pp;

/// Single-threaded UCT searcher.
#[derive(Clone, Debug)]
pub struct SequentialSearcher<G: Game> {
    config: MctsConfig,
    rng: Xoshiro256pp,
    _game: std::marker::PhantomData<fn() -> G>,
}

impl<G: Game> SequentialSearcher<G> {
    /// Creates a searcher; the RNG stream is derived from `config.seed`.
    pub fn new(config: MctsConfig) -> Self {
        let rng = Xoshiro256pp::derive(config.seed, 0);
        SequentialSearcher {
            config,
            rng,
            _game: std::marker::PhantomData,
        }
    }

    /// Creates a searcher running sub-stream `stream` of the seed — used by
    /// root parallelism to give every tree an independent stream.
    pub fn with_stream(config: MctsConfig, stream: u64) -> Self {
        let rng = Xoshiro256pp::derive(config.seed, stream);
        SequentialSearcher {
            config,
            rng,
            _game: std::marker::PhantomData,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MctsConfig {
        &self.config
    }

    /// Searches `root` and returns the report **and** the search tree, for
    /// callers that want to analyse the tree afterwards (principal
    /// variation, shape statistics — see `crate::analysis`).
    pub fn search_with_tree(
        &mut self,
        root: G,
        budget: SearchBudget,
    ) -> (SearchReport<G::Move>, SearchTree<G>) {
        let mut tree = SearchTree::for_config(root, &self.config);
        let mut tracker = BudgetTracker::new(budget);
        let mut phases = PhaseBreakdown::new();
        let mut simulations = 0u64;
        if !tree.is_terminal(tree.root()) {
            simulations = self.run_on_tree(&mut tree, &mut tracker, &mut phases);
        }
        phases.budget_overshoot = tracker.overshoot();
        let report = SearchReport {
            best_move: tree.best_move(self.config.final_move),
            simulations,
            iterations: tracker.iterations,
            tree_nodes: tree.live_nodes() as u64,
            max_depth: tree.max_depth(),
            elapsed: tracker.elapsed,
            root_stats: tree.root_stats(),
            phases,
        };
        (report, tree)
    }

    /// Runs the search while keeping the tree available to the caller —
    /// used by the hybrid scheme, which interleaves CPU iterations on a
    /// shared tree with GPU kernels. Returns simulations performed.
    pub(crate) fn run_on_tree(
        &mut self,
        tree: &mut SearchTree<G>,
        tracker: &mut BudgetTracker,
        phases: &mut PhaseBreakdown,
    ) -> u64 {
        let mut sims = 0;
        while tracker.may_continue() {
            sims += self.one_iteration(tree, tracker, phases);
        }
        sims
    }

    /// One full select/expand/simulate/backprop iteration; returns the
    /// number of simulations performed (always 1 here). Phase attribution:
    /// the depth-proportional tree-op share → `select`, the fixed share →
    /// `expand`, the playout → `kernel` (the CPU *is* the simulator here).
    pub(crate) fn one_iteration(
        &mut self,
        tree: &mut SearchTree<G>,
        tracker: &mut BudgetTracker,
        phases: &mut PhaseBreakdown,
    ) -> u64 {
        let cost = self.config.cpu_cost;
        let (node, depth) = self.select_and_expand(tree, phases);
        let result = random_playout(*tree.state(node), &mut self.rng);
        let wins_p1 = result.reward_for(Player::P1);
        tree.backprop(node, wins_p1, 1);
        phases.kernel += cost.playout(result.plies);
        phases.simulations += 1;
        tracker.charge(cost.tree_op(depth) + cost.playout(result.plies));
        1
    }

    /// The host half of one iteration — selection plus (at most) one
    /// expansion, charging the `select`/`expand` phases. Returns the node
    /// to simulate and its depth. Shared between [`Self::one_iteration`]
    /// (which follows with a CPU playout) and the multi-session search
    /// service (which defers the playout to a batched device launch).
    /// Draws at most one RNG value, exactly as `one_iteration` always has.
    pub(crate) fn select_and_expand(
        &mut self,
        tree: &mut SearchTree<G>,
        phases: &mut PhaseBreakdown,
    ) -> (u32, u32) {
        let cost = &self.config.cpu_cost;
        let selected = tree.select(self.config.exploration_c);
        let node = if !tree.fully_expanded(selected) {
            phases.expansions += 1;
            tree.expand(selected, &mut self.rng)
        } else {
            selected // terminal leaf: re-sample its outcome
        };
        let depth = tree.depth(node);
        phases.select += cost.select_cost(depth);
        phases.expand += cost.expand_cost();
        (node, depth)
    }
}

impl<G: Game> Searcher<G> for SequentialSearcher<G> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        self.search_with_tree(root, budget).0
    }

    fn name(&self) -> String {
        "sequential MCTS (1 CPU core)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmcts_games::{MoveBuf, Reversi, TicTacToe};

    fn cfg(seed: u64) -> MctsConfig {
        MctsConfig::default().with_seed(seed)
    }

    #[test]
    fn respects_iteration_budget() {
        let mut s = SequentialSearcher::<Reversi>::new(cfg(1));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(100));
        assert_eq!(r.iterations, 100);
        assert_eq!(r.simulations, 100);
        assert!(r.tree_nodes > 1 && r.tree_nodes <= 101);
        assert!(r.best_move.is_some());
    }

    #[test]
    fn respects_virtual_time_budget() {
        let mut s = SequentialSearcher::<Reversi>::new(cfg(2));
        let budget = pmcts_util::SimTime::from_millis(20);
        let r = s.search(Reversi::initial(), SearchBudget::VirtualTime(budget));
        // The deadline-aware stopping rule lands within one iteration cost
        // of the budget on either side; with ~100µs iterations a 1ms slack
        // band is generous.
        let slack = pmcts_util::SimTime::from_millis(1);
        assert!(
            r.elapsed >= budget.saturating_sub(slack) && r.elapsed <= budget + slack,
            "elapsed {} should be within one iteration of {}",
            r.elapsed,
            budget
        );
        assert_eq!(r.phases.budget_overshoot, r.elapsed.saturating_sub(budget));
        // With the Xeon model (~10k playouts/s) 20ms is ~200 iterations;
        // allow a broad band.
        assert!(
            (50..=600).contains(&r.iterations),
            "{} iterations for 20ms budget",
            r.iterations
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let r1 = SequentialSearcher::<Reversi>::new(cfg(7))
            .search(Reversi::initial(), SearchBudget::Iterations(500));
        let r2 = SequentialSearcher::<Reversi>::new(cfg(7))
            .search(Reversi::initial(), SearchBudget::Iterations(500));
        assert_eq!(r1.best_move, r2.best_move);
        assert_eq!(r1.root_stats, r2.root_stats);
        assert_eq!(r1.elapsed, r2.elapsed);
    }

    #[test]
    fn different_streams_diverge() {
        let r1 = SequentialSearcher::<Reversi>::with_stream(cfg(7), 1)
            .search(Reversi::initial(), SearchBudget::Iterations(200));
        let r2 = SequentialSearcher::<Reversi>::with_stream(cfg(7), 2)
            .search(Reversi::initial(), SearchBudget::Iterations(200));
        assert_ne!(r1.root_stats, r2.root_stats);
    }

    #[test]
    fn terminal_root_yields_no_move() {
        let s = TicTacToe::parse("XXX OO. ...", pmcts_games::Player::P2).unwrap();
        let mut searcher = SequentialSearcher::<TicTacToe>::new(cfg(3));
        let r = searcher.search(s, SearchBudget::Iterations(50));
        assert_eq!(r.best_move, None);
        assert_eq!(r.simulations, 0);
    }

    #[test]
    fn finds_immediate_win_in_tictactoe() {
        // X to move, winning move is cell 2 (completes the top row).
        let s = TicTacToe::parse("XX. OO. ...", pmcts_games::Player::P1).unwrap();
        let mut searcher = SequentialSearcher::<TicTacToe>::new(cfg(4));
        let r = searcher.search(s, SearchBudget::Iterations(2_000));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn blocks_immediate_loss_in_tictactoe() {
        // O to move; X threatens cell 2. O must block at 2.
        let s = TicTacToe::parse("XX. O.. ..O", pmcts_games::Player::P2).unwrap();
        let mut searcher = SequentialSearcher::<TicTacToe>::new(cfg(5));
        let r = searcher.search(s, SearchBudget::Iterations(4_000));
        assert_eq!(r.best_move, Some(2));
    }

    #[test]
    fn root_visits_equal_iterations() {
        let mut s = SequentialSearcher::<Reversi>::new(cfg(6));
        let r = s.search(Reversi::initial(), SearchBudget::Iterations(300));
        let total: u64 = r.root_stats.iter().map(|s| s.visits).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn best_move_is_legal() {
        let mut s = SequentialSearcher::<Reversi>::new(cfg(8));
        let state = Reversi::initial();
        let r = s.search(state, SearchBudget::Iterations(50));
        let mv = r.best_move.unwrap();
        let mut buf = MoveBuf::new();
        state.legal_moves(&mut buf);
        assert!(buf.contains(&mv));
    }
}
