//! The common searcher interface and search reports.

use crate::config::SearchBudget;
use crate::telemetry::PhaseBreakdown;
use crate::tree::RootStat;
use pmcts_games::Game;
use pmcts_util::SimTime;

/// What a search produced, plus the metrics every figure experiment needs
/// (simulations/second for Fig. 5, tree depth for Fig. 8, ...).
///
/// `PartialEq` compares every field — the determinism suite uses it to
/// assert reports are bit-identical across host-thread counts.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchReport<M> {
    /// The chosen move (`None` only for terminal root positions or an empty
    /// budget).
    pub best_move: Option<M>,
    /// Total playouts performed (all threads/lanes).
    pub simulations: u64,
    /// MCTS iterations driven by the host (one iteration may trigger many
    /// simulations on parallel searchers).
    pub iterations: u64,
    /// Total tree nodes allocated (summed over trees for multi-tree
    /// schemes).
    pub tree_nodes: u64,
    /// Deepest tree node reached (max over trees).
    pub max_depth: u32,
    /// Virtual time consumed.
    pub elapsed: SimTime,
    /// Merged root statistics (for analysis and cross-tree merging).
    pub root_stats: Vec<RootStat<M>>,
    /// Exact per-phase decomposition of `elapsed` (select / expand /
    /// upload / kernel / readback / merge sum to it to the nanosecond),
    /// plus work counters and folded device statistics.
    pub phases: PhaseBreakdown,
}

impl<M> SearchReport<M> {
    /// Simulations per virtual second.
    pub fn sims_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.simulations as f64 / secs
        }
    }
}

/// The report of a component (rank, tree) that was dead for the whole
/// search: no move, no work, zero elapsed time.
pub(crate) fn empty_report<M>() -> SearchReport<M> {
    SearchReport {
        best_move: None,
        simulations: 0,
        iterations: 0,
        tree_nodes: 0,
        max_depth: 0,
        elapsed: SimTime::ZERO,
        root_stats: Vec::new(),
        phases: PhaseBreakdown::default(),
    }
}

/// A move-search algorithm.
///
/// Searchers are stateful only in their RNG streams: two `search` calls on
/// equal inputs from a freshly built searcher give identical reports.
pub trait Searcher<G: Game>: Send {
    /// Searches `root` within `budget` and reports the best move found.
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move>;

    /// Human-readable description, e.g.
    /// `"block parallelism (64 blocks × 64 threads)"`.
    fn name(&self) -> String;
}

impl<G: Game> Searcher<G> for Box<dyn Searcher<G>> {
    fn search(&mut self, root: G, budget: SearchBudget) -> SearchReport<G::Move> {
        (**self).search(root, budget)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// Budget bookkeeping shared by the searcher implementations.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BudgetTracker {
    budget: SearchBudget,
    pub iterations: u64,
    pub elapsed: SimTime,
    /// Cost of the most recently charged iteration, used as the predictor
    /// for the deadline-aware stopping rule. `ZERO` before any charge, so
    /// the first iteration always runs under a non-empty budget.
    last_cost: SimTime,
}

impl BudgetTracker {
    pub(crate) fn new(budget: SearchBudget) -> Self {
        BudgetTracker {
            budget,
            iterations: 0,
            elapsed: SimTime::ZERO,
            last_cost: SimTime::ZERO,
        }
    }

    /// Whether another iteration may start.
    ///
    /// `VirtualTime` budgets use a deadline-aware rule: the next iteration
    /// only starts if the previous iteration's cost would still fit inside
    /// the budget. This bounds both overshoot *and* undershoot by one
    /// iteration cost, so schemes with expensive iterations (big kernels)
    /// no longer get up to a whole extra iteration of effective budget
    /// relative to the sequential baseline.
    pub(crate) fn may_continue(&self) -> bool {
        match self.budget {
            SearchBudget::Iterations(n) => self.iterations < n,
            SearchBudget::VirtualTime(t) => self.elapsed < t && self.elapsed + self.last_cost <= t,
        }
    }

    /// Records one completed iteration costing `cost`.
    pub(crate) fn charge(&mut self, cost: SimTime) {
        self.iterations += 1;
        self.elapsed += cost;
        self.last_cost = cost;
    }

    /// Records time spent *waiting* (a service round the session sat out).
    /// Waiting consumes a `VirtualTime` budget — the deadline is a latency
    /// SLO, and latency accrues whether or not the session ran — but it is
    /// not an iteration and does not update the cost predictor.
    pub(crate) fn charge_wait(&mut self, cost: SimTime) {
        self.elapsed += cost;
    }

    /// Virtual time spent beyond a `VirtualTime` budget. Zero for iteration
    /// budgets and for searches that stopped at or short of the deadline;
    /// positive only when the final iteration cost more than the predictor,
    /// and then by less than one iteration cost.
    pub(crate) fn overshoot(&self) -> SimTime {
        overshoot_of(self.budget, self.elapsed)
    }
}

/// Overshoot of `elapsed` past a `VirtualTime` budget (zero for iteration
/// budgets). Used by searchers whose report elapsed is assembled from
/// concurrent components rather than read off one tracker.
pub(crate) fn overshoot_of(budget: SearchBudget, elapsed: SimTime) -> SimTime {
    match budget {
        SearchBudget::Iterations(_) => SimTime::ZERO,
        SearchBudget::VirtualTime(t) => elapsed.saturating_sub(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sims_per_second() {
        let r = SearchReport::<u8> {
            best_move: None,
            simulations: 500,
            iterations: 500,
            tree_nodes: 1,
            max_depth: 0,
            elapsed: SimTime::from_millis(500),
            root_stats: vec![],
            phases: PhaseBreakdown::default(),
        };
        assert!((r.sims_per_second() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_gives_zero_rate() {
        let r = SearchReport::<u8> {
            best_move: None,
            simulations: 10,
            iterations: 10,
            tree_nodes: 1,
            max_depth: 0,
            elapsed: SimTime::ZERO,
            root_stats: vec![],
            phases: PhaseBreakdown::default(),
        };
        assert_eq!(r.sims_per_second(), 0.0);
    }

    #[test]
    fn iteration_budget_counts() {
        let mut t = BudgetTracker::new(SearchBudget::Iterations(2));
        assert!(t.may_continue());
        t.charge(SimTime::ZERO);
        assert!(t.may_continue());
        t.charge(SimTime::ZERO);
        assert!(!t.may_continue());
    }

    #[test]
    fn time_budget_tracks_virtual_time() {
        let mut t = BudgetTracker::new(SearchBudget::VirtualTime(SimTime::from_nanos(100)));
        t.charge(SimTime::from_nanos(30));
        assert!(t.may_continue(), "30 + 30 fits in 100");
        t.charge(SimTime::from_nanos(60));
        assert!(!t.may_continue(), "90 + 60 would exceed 100");
        assert_eq!(t.iterations, 2);
        assert_eq!(t.elapsed, SimTime::from_nanos(90));
        assert_eq!(t.overshoot(), SimTime::ZERO);
    }

    #[test]
    fn time_budget_stops_before_predicted_overshoot() {
        // After one 60 ns iteration against a 100 ns budget, the predictor
        // says a second identical iteration would not fit.
        let mut t = BudgetTracker::new(SearchBudget::VirtualTime(SimTime::from_nanos(100)));
        t.charge(SimTime::from_nanos(60));
        assert!(!t.may_continue(), "60 + 60 exceeds 100");
        assert_eq!(t.overshoot(), SimTime::ZERO, "stopped short, no overshoot");
    }

    #[test]
    fn zero_time_budget_runs_nothing() {
        let t = BudgetTracker::new(SearchBudget::VirtualTime(SimTime::ZERO));
        assert!(!t.may_continue());
    }

    #[test]
    fn overshoot_is_bounded_by_cost_growth() {
        // The predictor admits an iteration that then costs more than the
        // previous one: overshoot is the growth, less than the iteration.
        let mut t = BudgetTracker::new(SearchBudget::VirtualTime(SimTime::from_nanos(100)));
        t.charge(SimTime::from_nanos(40));
        assert!(t.may_continue(), "40 + 40 fits in 100");
        t.charge(SimTime::from_nanos(70));
        assert_eq!(t.elapsed, SimTime::from_nanos(110));
        assert_eq!(t.overshoot(), SimTime::from_nanos(10));
        assert!(t.overshoot() < SimTime::from_nanos(70));
    }

    #[test]
    fn iteration_budget_never_overshoots() {
        let mut t = BudgetTracker::new(SearchBudget::Iterations(1));
        t.charge(SimTime::from_millis(10));
        assert_eq!(t.overshoot(), SimTime::ZERO);
    }
}
