//! Property tests: the run-to-completion engine must be bit-identical to
//! the retained per-step masked lockstep interpreter.
//!
//! `execute_kernel` runs every lane start-to-finish and reconstructs the
//! warp-divergence accounting analytically; `execute_kernel_lockstep` is
//! the original interpreter, kept verbatim as the oracle. These tests
//! assert both engines agree on the *outputs* and on every field of
//! [`KernelStats`] across randomized kernels, launch geometries, warp
//! sizes, SM counts and worker-pool sizes — including kernels that
//! override [`Kernel::run_lane`] with a fused loop, which is exactly the
//! contract the playout kernel relies on.

use pmcts_gpu_sim::executor::{execute_kernel, execute_kernel_lockstep};
use pmcts_gpu_sim::{DeviceSpec, Kernel, LaunchConfig, ThreadId, WorkerPool};
use proptest::prelude::*;

/// splitmix64 — cheap, well-mixed per-thread hashing for the test kernels.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Lane `global` runs `mix(salt ^ global) % modulus + 1` steps — irregular
/// but precomputable divergence. Overrides `run_lane` with the closed form,
/// so the suite exercises the fused-override contract, not just the
/// default `init`/`step`/`finish` driver.
struct HashCountdown {
    salt: u64,
    modulus: u32,
}

impl HashCountdown {
    fn steps_for(&self, global: u32) -> u32 {
        (mix(self.salt ^ u64::from(global)) % u64::from(self.modulus)) as u32 + 1
    }
}

impl Kernel for HashCountdown {
    type ThreadState = (u32, u32); // (remaining, taken)
    type Output = u32;

    fn init(&self, tid: ThreadId) -> (u32, u32) {
        (self.steps_for(tid.global), 0)
    }

    fn step(&self, state: &mut (u32, u32), _tid: ThreadId) -> bool {
        state.0 -= 1;
        state.1 += 1;
        state.0 == 0
    }

    fn finish(&self, state: (u32, u32), tid: ThreadId) -> u32 {
        state.1 ^ tid.global.rotate_left(7)
    }

    fn run_lane(&self, tid: ThreadId) -> (u32, u64) {
        let steps = self.steps_for(tid.global);
        (steps ^ tid.global.rotate_left(7), u64::from(steps))
    }
}

/// Lane walks a splitmix chain until the low bits hit zero — the step
/// count is data-dependent and unknowable without running the chain, like
/// a real playout. Uses the default `run_lane`, so the engines differ only
/// in scheduling/accounting.
struct HashWalk {
    salt: u64,
    mask: u64,
}

impl Kernel for HashWalk {
    type ThreadState = u64;
    type Output = u64;

    fn init(&self, tid: ThreadId) -> u64 {
        mix(self.salt.wrapping_add(u64::from(tid.global)))
    }

    fn step(&self, state: &mut u64, _tid: ThreadId) -> bool {
        *state = mix(*state);
        *state & self.mask == 0
    }

    fn finish(&self, state: u64, _tid: ThreadId) -> u64 {
        state
    }

    fn output_bytes(&self) -> u64 {
        8
    }
}

fn spec_with(warp_size: u32, sm_count: u32) -> DeviceSpec {
    let mut spec = DeviceSpec::tesla_c2050();
    spec.warp_size = warp_size;
    spec.sm_count = sm_count;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused-override kernel: outputs and full stats match the oracle for
    /// any geometry, warp size, SM count and pool size.
    #[test]
    fn countdown_matches_oracle(
        salt in any::<u64>(),
        modulus in 1u32..40,
        blocks in 1u32..7,
        tpb in 1u32..80,
        (warp_size, sm_count) in prop::sample::select(vec![
            (1u32, 1u32), (2, 2), (4, 14), (32, 2), (32, 14),
        ]),
        workers in 1usize..5,
    ) {
        let kernel = HashCountdown { salt, modulus };
        let config = LaunchConfig::new(blocks, tpb);
        let spec = spec_with(warp_size, sm_count);
        let pool = WorkerPool::new(workers);
        let fast = execute_kernel(&kernel, &config, &spec, &pool);
        let oracle = execute_kernel_lockstep(&kernel, &config, &spec);
        prop_assert_eq!(&fast.outputs, &oracle.outputs);
        prop_assert_eq!(&fast.stats, &oracle.stats);
    }

    /// Data-dependent walk kernel (default `run_lane`): bit-identical to
    /// the oracle.
    #[test]
    fn hash_walk_matches_oracle(
        salt in any::<u64>(),
        mask_bits in 1u32..6,
        blocks in 1u32..5,
        tpb in 1u32..70,
        warp_size in prop::sample::select(vec![1u32, 4, 32]),
        workers in 1usize..5,
    ) {
        let kernel = HashWalk { salt, mask: (1u64 << mask_bits) - 1 };
        let config = LaunchConfig::new(blocks, tpb);
        let spec = spec_with(warp_size, 14);
        let pool = WorkerPool::new(workers);
        let fast = execute_kernel(&kernel, &config, &spec, &pool);
        let oracle = execute_kernel_lockstep(&kernel, &config, &spec);
        prop_assert_eq!(&fast.outputs, &oracle.outputs);
        prop_assert_eq!(&fast.stats, &oracle.stats);
    }

    /// Pool size is pure host-side mechanics: any worker count gives the
    /// byte-identical launch result.
    #[test]
    fn pool_size_never_changes_results(
        salt in any::<u64>(),
        modulus in 1u32..25,
        blocks in 1u32..9,
        tpb in 1u32..65,
    ) {
        let kernel = HashCountdown { salt, modulus };
        let config = LaunchConfig::new(blocks, tpb);
        let spec = DeviceSpec::tesla_c2050();
        let serial = execute_kernel(&kernel, &config, &spec, &WorkerPool::new(1));
        for workers in [2usize, 3, 8] {
            let parallel = execute_kernel(&kernel, &config, &spec, &WorkerPool::new(workers));
            prop_assert_eq!(&serial.outputs, &parallel.outputs);
            prop_assert_eq!(&serial.stats, &parallel.stats);
        }
    }
}

/// The divergence identity the analytic accounting rests on, checked
/// exhaustively on one geometry: `idle = warp_steps·lanes − Σ lane_steps`
/// and `warp_steps = Σ_warps max(lane_steps)`.
#[test]
fn analytic_divergence_identity_holds() {
    let kernel = HashCountdown {
        salt: 0xD1CE,
        modulus: 13,
    };
    let spec = spec_with(4, 2);
    let config = LaunchConfig::new(3, 10); // partial warps too
    let r = execute_kernel(&kernel, &config, &spec, &WorkerPool::new(2));

    let mut warp_steps = 0u64;
    let mut lane_steps = 0u64;
    let mut idle = 0u64;
    for block in 0..config.blocks {
        let mut start = 0u32;
        while start < config.threads_per_block {
            let lanes = spec.warp_size.min(config.threads_per_block - start);
            let steps: Vec<u64> = (0..lanes)
                .map(|lane| {
                    u64::from(kernel.steps_for(block * config.threads_per_block + start + lane))
                })
                .collect();
            let max = steps.iter().copied().max().unwrap();
            let sum: u64 = steps.iter().sum();
            warp_steps += max;
            lane_steps += sum;
            idle += max * u64::from(lanes) - sum;
            start += lanes;
        }
    }
    assert_eq!(r.stats.warp_steps, warp_steps);
    assert_eq!(r.stats.lane_steps, lane_steps);
    assert_eq!(r.stats.idle_lane_steps, idle);
    assert_eq!(r.stats.lane_steps + r.stats.idle_lane_steps, {
        // total occupied lane-slots = Σ_warps max·lanes
        warp_steps_times_lanes(&kernel, &config, &spec)
    });
}

fn warp_steps_times_lanes(kernel: &HashCountdown, config: &LaunchConfig, spec: &DeviceSpec) -> u64 {
    let mut total = 0u64;
    for block in 0..config.blocks {
        let mut start = 0u32;
        while start < config.threads_per_block {
            let lanes = spec.warp_size.min(config.threads_per_block - start);
            let max = (0..lanes)
                .map(|lane| {
                    u64::from(kernel.steps_for(block * config.threads_per_block + start + lane))
                })
                .max()
                .unwrap();
            total += max * u64::from(lanes);
            start += lanes;
        }
    }
    total
}
