//! Integration tests of the kernel execution contract: custom kernels
//! exercising ordering, readback accounting, occupancy and async overlap.

use pmcts_gpu_sim::{Device, DeviceSpec, Kernel, LaunchConfig, ThreadId};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Records every `init` call and returns the thread's coordinates.
struct Echo {
    inits: AtomicU32,
}

impl Kernel for Echo {
    type ThreadState = ThreadId;
    type Output = (u32, u32, u32);

    fn init(&self, tid: ThreadId) -> ThreadId {
        self.inits.fetch_add(1, Ordering::Relaxed);
        tid
    }

    fn step(&self, _s: &mut ThreadId, _t: ThreadId) -> bool {
        true // single-step kernel
    }

    fn finish(&self, s: ThreadId, _t: ThreadId) -> (u32, u32, u32) {
        (s.block, s.thread, s.global)
    }
}

#[test]
fn thread_ids_are_consistent_and_each_lane_inits_once() {
    let dev = Device::new(DeviceSpec::tesla_c2050());
    let kernel = Echo {
        inits: AtomicU32::new(0),
    };
    let cfg = LaunchConfig::new(6, 48);
    let r = dev.launch(&kernel, cfg);
    assert_eq!(kernel.inits.load(Ordering::Relaxed), 6 * 48);
    for (i, &(block, thread, global)) in r.outputs.iter().enumerate() {
        assert_eq!(global as usize, i);
        assert_eq!(block, i as u32 / 48);
        assert_eq!(thread, i as u32 % 48);
    }
}

/// Kernel whose per-lane output size is configurable.
struct Wide {
    bytes: u64,
}

impl Kernel for Wide {
    type ThreadState = ();
    type Output = ();
    fn init(&self, _t: ThreadId) {}
    fn step(&self, _s: &mut (), _t: ThreadId) -> bool {
        true
    }
    fn finish(&self, _s: (), _t: ThreadId) {}
    fn output_bytes(&self) -> u64 {
        self.bytes
    }
}

#[test]
fn readback_time_scales_with_output_bytes() {
    let dev = Device::new(DeviceSpec::tesla_c2050());
    let cfg = LaunchConfig::new(4, 64);
    let small = dev.launch(&Wide { bytes: 1 }, cfg);
    let large = dev.launch(&Wide { bytes: 4096 }, cfg);
    assert!(large.stats.readback_time > small.stats.readback_time);
    // Device time itself is unaffected by output size.
    assert_eq!(large.stats.device_time, small.stats.device_time);
}

#[test]
fn occupancy_reported_on_stats() {
    let dev = Device::new(DeviceSpec::tesla_c2050());
    let tiny = dev.launch(&Wide { bytes: 1 }, LaunchConfig::new(1, 32));
    let full = dev.launch(&Wide { bytes: 1 }, LaunchConfig::new(448, 1024));
    assert!(tiny.stats.occupancy < 0.01);
    assert_eq!(full.stats.occupancy, 1.0);
}

#[test]
fn two_async_launches_overlap_and_both_complete() {
    let dev = Device::new(DeviceSpec::tesla_c2050());
    let a = dev.launch_async(Arc::new(Wide { bytes: 1 }), LaunchConfig::new(8, 64));
    let b = dev.launch_async(Arc::new(Wide { bytes: 1 }), LaunchConfig::new(8, 64));
    let ra = a.wait();
    let rb = b.wait();
    assert_eq!(ra.outputs.len(), 512);
    assert_eq!(rb.outputs.len(), 512);
    assert_eq!(ra.stats, rb.stats, "identical launches cost the same");
}

/// A kernel with heavy per-lane work to check SM queueing arithmetic.
struct Busy {
    steps: u32,
}

impl Kernel for Busy {
    type ThreadState = u32;
    type Output = u32;
    fn init(&self, _t: ThreadId) -> u32 {
        self.steps
    }
    fn step(&self, s: &mut u32, _t: ThreadId) -> bool {
        *s -= 1;
        *s == 0
    }
    fn finish(&self, _s: u32, t: ThreadId) -> u32 {
        t.global
    }
}

#[test]
fn uniform_kernels_have_exact_device_time() {
    // With identical lanes there is no divergence: device time must equal
    // blocks-per-SM x warps-per-block x steps x cycles-per-step exactly.
    let spec = DeviceSpec::tesla_c2050();
    let dev = Device::new(spec.clone());
    let steps = 50u32;
    // 28 blocks on 14 SMs -> exactly 2 blocks per SM; 2 warps per block.
    let cfg = LaunchConfig::new(28, 64);
    let r = dev.launch(&Busy { steps }, cfg);
    let expected_cycles = 2 * 2 * steps as u64 * spec.cycles_per_warp_step;
    assert_eq!(r.stats.device_time, spec.cycles_to_time(expected_cycles));
    assert_eq!(r.stats.idle_lane_steps, 0);
    assert_eq!(r.stats.lane_efficiency(), 1.0);
}

#[test]
fn device_time_unchanged_when_grid_fits_anyway() {
    // 7 blocks vs 14 blocks on a 14-SM device: same per-SM load (1 block),
    // same device time; sims double for free — the rising region of Fig. 5.
    let dev = Device::new(DeviceSpec::tesla_c2050());
    let seven = dev.launch(&Busy { steps: 40 }, LaunchConfig::new(7, 64));
    let fourteen = dev.launch(&Busy { steps: 40 }, LaunchConfig::new(14, 64));
    assert_eq!(seven.stats.device_time, fourteen.stats.device_time);
    assert_eq!(fourteen.outputs.len(), 2 * seven.outputs.len());
}
