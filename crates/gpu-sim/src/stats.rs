//! Execution statistics reported by every kernel launch.

use pmcts_util::SimTime;

/// What one kernel launch cost and how well it used the simulated hardware.
///
/// All times are virtual. `elapsed()` is what callers should charge to their
/// search budget: launch overhead + device execution + result readback.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Threads in the grid.
    pub threads: u32,
    /// Warps in the grid (partial warps rounded up).
    pub warps: u32,
    /// Fixed launch cost charged.
    pub launch_overhead: SimTime,
    /// Time the device spent executing (max over SMs).
    pub device_time: SimTime,
    /// Device→host readback cost for the output array.
    pub readback_time: SimTime,
    /// Total lockstep steps summed over all warps.
    pub warp_steps: u64,
    /// Steps in which a lane did useful work, summed over all lanes.
    pub lane_steps: u64,
    /// Steps in which a lane sat masked-out waiting for its warp
    /// (the SIMD divergence waste).
    pub idle_lane_steps: u64,
    /// Busy cycles per SM, indexed by SM id.
    pub per_sm_cycles: Vec<u64>,
    /// Fraction of resident-warp capacity used (0..=1).
    pub occupancy: f64,
}

impl KernelStats {
    /// Total virtual cost of the launch.
    #[inline]
    pub fn elapsed(&self) -> SimTime {
        self.launch_overhead + self.device_time + self.readback_time
    }

    /// Fraction of lane-steps that did useful work (1.0 = no divergence).
    pub fn lane_efficiency(&self) -> f64 {
        let total = self.lane_steps + self.idle_lane_steps;
        if total == 0 {
            1.0
        } else {
            self.lane_steps as f64 / total as f64
        }
    }

    /// Ratio of the busiest SM's cycles to the average — 1.0 means a
    /// perfectly balanced grid; large values mean most SMs idled.
    pub fn sm_imbalance(&self) -> f64 {
        let max = self.per_sm_cycles.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let busy: Vec<u64> = self.per_sm_cycles.to_vec();
        let mean = busy.iter().sum::<u64>() as f64 / busy.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max as f64 / mean
        }
    }

    /// Merges another launch's statistics into this one (summing counters,
    /// adding times, keeping the worst occupancy meaningless fields sane).
    /// Used by searchers that launch many kernels per move.
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.threads = other.threads; // geometry of the last launch
        self.warps = other.warps;
        self.launch_overhead += other.launch_overhead;
        self.device_time += other.device_time;
        self.readback_time += other.readback_time;
        self.warp_steps += other.warp_steps;
        self.lane_steps += other.lane_steps;
        self.idle_lane_steps += other.idle_lane_steps;
        if self.per_sm_cycles.len() < other.per_sm_cycles.len() {
            self.per_sm_cycles.resize(other.per_sm_cycles.len(), 0);
        }
        for (acc, &c) in self.per_sm_cycles.iter_mut().zip(&other.per_sm_cycles) {
            *acc += c;
        }
        self.occupancy = other.occupancy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_sums_components() {
        let s = KernelStats {
            launch_overhead: SimTime::from_nanos(10),
            device_time: SimTime::from_nanos(100),
            readback_time: SimTime::from_nanos(5),
            ..Default::default()
        };
        assert_eq!(s.elapsed(), SimTime::from_nanos(115));
    }

    #[test]
    fn lane_efficiency_bounds() {
        let mut s = KernelStats::default();
        assert_eq!(s.lane_efficiency(), 1.0);
        s.lane_steps = 75;
        s.idle_lane_steps = 25;
        assert!((s.lane_efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_balanced_grid_is_one() {
        let s = KernelStats {
            per_sm_cycles: vec![100, 100, 100],
            ..Default::default()
        };
        assert!((s.sm_imbalance() - 1.0).abs() < 1e-12);
        let skew = KernelStats {
            per_sm_cycles: vec![300, 0, 0],
            ..Default::default()
        };
        assert!((skew.sm_imbalance() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut a = KernelStats {
            warp_steps: 10,
            lane_steps: 100,
            idle_lane_steps: 20,
            device_time: SimTime::from_nanos(50),
            per_sm_cycles: vec![5, 5],
            ..Default::default()
        };
        let b = a.clone();
        a.accumulate(&b);
        assert_eq!(a.warp_steps, 20);
        assert_eq!(a.lane_steps, 200);
        assert_eq!(a.device_time, SimTime::from_nanos(100));
        assert_eq!(a.per_sm_cycles, vec![10, 10]);
    }
}
