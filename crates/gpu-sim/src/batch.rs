//! Cross-session batched kernel launches.
//!
//! The search service packs playout work from many *independent* search
//! sessions into one kernel launch: block `b` of the merged grid serves
//! segment `b`'s queue, exactly like the block-parallel scheme maps one
//! tree per block, except the blocks now belong to different searches.
//! One launch overhead and one device round-trip are amortised over every
//! participating session, and the device's SMs see a grid large enough to
//! keep them busy — the same saturation effect the paper's Fig. 5 plateau
//! comes from, applied across sessions instead of across trees.
//!
//! Determinism: a batch is described by an ordered list of
//! [`BatchSegment`]s. The caller must order segments by a stable identity
//! (the service uses session ids), **never** by arrival order; the merged
//! grid, the per-lane RNG streams and the per-segment output slices are
//! then pure functions of that order.

use crate::device::Device;
use crate::kernel::{Kernel, LaunchConfig};
use crate::launch::LaunchResult;
use std::ops::Range;

/// One session's (or more generally one client's) share of a batched
/// launch: `blocks` consecutive blocks of the merged grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchSegment {
    /// Caller-chosen stable identity (e.g. a session id). Carried through
    /// to the result untouched; the caller is responsible for ordering
    /// segments by it deterministically.
    pub key: u64,
    /// Number of consecutive blocks of the merged grid owned by this
    /// segment (must be ≥ 1).
    pub blocks: u32,
}

/// The result of one batched launch: a single merged [`LaunchResult`] plus
/// the segment table needed to hand each participant its output slice.
#[derive(Clone, Debug)]
pub struct BatchedResult<O> {
    /// The merged launch: outputs of every segment's blocks, concatenated
    /// in segment order, with one set of launch statistics.
    pub result: LaunchResult<O>,
    /// Per-segment `(key, output range)` in segment order.
    segments: Vec<(u64, Range<usize>)>,
    /// Geometry shared by every block of the batch.
    threads_per_block: u32,
}

impl<O> BatchedResult<O> {
    /// Number of segments (sessions) packed into the launch.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The caller-chosen key of segment `i`.
    pub fn key(&self, i: usize) -> u64 {
        self.segments[i].0
    }

    /// The merged grid's threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.threads_per_block
    }

    /// Output slice belonging to segment `i` (its blocks' lanes, in global
    /// thread order).
    pub fn outputs_for(&self, i: usize) -> &[O] {
        &self.result.outputs[self.segments[i].1.clone()]
    }

    /// Iterates `(key, outputs)` pairs in segment order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[O])> {
        self.segments
            .iter()
            .map(|(key, range)| (*key, &self.result.outputs[range.clone()]))
    }
}

impl Device {
    /// Launches one kernel serving every segment of a batch.
    ///
    /// The merged grid has `Σ segment.blocks` blocks of `threads_per_block`
    /// threads; segment `i`'s blocks are consecutive, starting where
    /// segment `i − 1`'s ended. The kernel sees ordinary block indices —
    /// callers encode the per-segment work in the kernel itself (the
    /// playout kernel maps block `b` to root `b`, so concatenating the
    /// segments' root arrays in segment order is sufficient).
    ///
    /// Virtual cost: exactly one launch overhead, one device execution
    /// (max over SMs of the whole grid) and one readback — that is the
    /// point of batching. The caller decides how to attribute the shared
    /// cost to sessions.
    ///
    /// # Panics
    /// Panics if `segments` is empty, any segment has zero blocks, or the
    /// merged config is invalid for this device.
    pub fn launch_batched<K: Kernel>(
        &self,
        kernel: &K,
        threads_per_block: u32,
        segments: &[BatchSegment],
    ) -> BatchedResult<K::Output> {
        assert!(!segments.is_empty(), "batched launch needs ≥ 1 segment");
        let mut table = Vec::with_capacity(segments.len());
        let mut first_thread = 0usize;
        let mut total_blocks = 0u32;
        for seg in segments {
            assert!(seg.blocks >= 1, "segment {} has zero blocks", seg.key);
            let threads = seg.blocks as usize * threads_per_block as usize;
            table.push((seg.key, first_thread..first_thread + threads));
            first_thread += threads;
            total_blocks += seg.blocks;
        }
        let config = LaunchConfig::new(total_blocks, threads_per_block);
        let result = self.launch(kernel, config);
        BatchedResult {
            result,
            segments: table,
            threads_per_block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::ThreadId;

    /// A kernel whose output identifies the emitting lane and block.
    struct Tag;
    impl Kernel for Tag {
        type ThreadState = ();
        type Output = (u32, u32);
        fn init(&self, _tid: ThreadId) {}
        fn step(&self, _s: &mut (), _tid: ThreadId) -> bool {
            true
        }
        fn finish(&self, _s: (), tid: ThreadId) -> (u32, u32) {
            (tid.block, tid.global)
        }
    }

    #[test]
    fn batched_launch_equals_one_merged_launch() {
        let dev = Device::new(DeviceSpec::tesla_c2050()).with_host_threads(2);
        let segments = [
            BatchSegment { key: 7, blocks: 2 },
            BatchSegment { key: 3, blocks: 1 },
            BatchSegment { key: 9, blocks: 3 },
        ];
        let batched = dev.launch_batched(&Tag, 32, &segments);
        let plain = dev.launch(&Tag, LaunchConfig::new(6, 32));
        assert_eq!(batched.result.outputs, plain.outputs);
        assert_eq!(batched.result.stats, plain.stats);
    }

    #[test]
    fn segment_slices_partition_the_outputs() {
        let dev = Device::new(DeviceSpec::tesla_c2050()).with_host_threads(2);
        let segments = [
            BatchSegment { key: 1, blocks: 1 },
            BatchSegment { key: 2, blocks: 2 },
        ];
        let b = dev.launch_batched(&Tag, 32, &segments);
        assert_eq!(b.segment_count(), 2);
        assert_eq!(b.threads_per_block(), 32);
        assert_eq!(b.key(0), 1);
        assert_eq!(b.key(1), 2);
        assert_eq!(b.outputs_for(0).len(), 32);
        assert_eq!(b.outputs_for(1).len(), 64);
        // Segment 0 owns block 0; segment 1 owns blocks 1..3.
        assert!(b.outputs_for(0).iter().all(|&(blk, _)| blk == 0));
        assert!(b
            .outputs_for(1)
            .iter()
            .all(|&(blk, _)| blk == 1 || blk == 2));
        // Global lane ids tile the grid with no gaps or overlaps.
        let all: Vec<u32> = b.iter().flat_map(|(_, o)| o.iter().map(|t| t.1)).collect();
        assert_eq!(all, (0..96).collect::<Vec<u32>>());
    }

    #[test]
    fn one_launch_overhead_for_the_whole_batch() {
        let dev = Device::new(DeviceSpec::tesla_c2050()).with_host_threads(2);
        let many = [
            BatchSegment { key: 0, blocks: 1 },
            BatchSegment { key: 1, blocks: 1 },
            BatchSegment { key: 2, blocks: 1 },
            BatchSegment { key: 3, blocks: 1 },
        ];
        let b = dev.launch_batched(&Tag, 32, &many);
        let solo = dev.launch(&Tag, LaunchConfig::new(1, 32));
        // The batch pays the fixed overhead once, not once per segment.
        assert_eq!(b.result.stats.launch_overhead, solo.stats.launch_overhead);
    }

    #[test]
    #[should_panic(expected = "needs ≥ 1 segment")]
    fn empty_batch_panics() {
        let dev = Device::new(DeviceSpec::scalar());
        dev.launch_batched(&Tag, 1, &[]);
    }
}
