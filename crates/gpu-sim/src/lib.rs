//! A SIMT GPU simulator.
//!
//! The paper (Rocki & Suda, IPDPS 2011) runs Monte Carlo playout kernels on
//! NVIDIA Tesla C2050 GPUs. Rust-on-CUDA tooling is immature and this
//! reproduction must run anywhere, so the GPU is replaced by a behavioural
//! simulator that preserves exactly the architectural properties the paper's
//! argument rests on (see `DESIGN.md` §1):
//!
//! 1. **Warp lockstep** ([`executor`]): threads are grouped into warps of
//!    [`DeviceSpec::warp_size`]; a warp is charged one step at a time and is
//!    finished only when its *slowest* lane is — lanes that finish their
//!    playout early sit masked-out and idle. This is the SIMD divergence that
//!    makes one-whole-search-per-thread (root parallelism per thread)
//!    infeasible on GPUs. (Lanes are independent, so the engine *executes*
//!    each lane to completion and derives the lockstep accounting
//!    analytically; the per-step interpreter survives as
//!    [`executor::execute_kernel_lockstep`], the test oracle.)
//! 2. **Block/SM scheduling** ([`executor`]): blocks are distributed
//!    round-robin over [`DeviceSpec::sm_count`] multiprocessors and an SM's
//!    time is the sum of its resident warps' work; the device is done when
//!    the slowest SM is. Throughput therefore saturates once the grid covers
//!    the device — the plateau of the paper's Fig. 5.
//! 3. **Launch + transfer overhead** ([`device`]): every kernel pays a fixed
//!    launch latency and an explicit host↔device transfer cost, so schemes
//!    that launch often (many small iterations) pay for it, as on real
//!    hardware.
//! 4. **Asynchronous launches** ([`launch`]): `launch_async` returns a
//!    handle immediately and runs the kernel in the background — the CUDA
//!    stream + event pattern that the paper's hybrid CPU/GPU scheme (its
//!    Fig. 4) is built on.
//!
//! All real execution — synchronous block fan-out and asynchronous
//! launches alike — runs on a persistent per-device [`pool::WorkerPool`];
//! no OS thread is created per launch.
//!
//! Time is *virtual* ([`pmcts_util::SimTime`]), computed from a deterministic
//! cycle-accounting model, while the kernels' actual work (random Reversi
//! playouts) really executes on host threads. Experiments are therefore
//! reproducible bit-for-bit from a seed, and a simulated GPU player and a
//! simulated CPU player can be given identical virtual time budgets.

pub mod batch;
pub mod device;
pub mod device_tree;
pub mod executor;
pub mod kernel;
pub mod launch;
pub mod pool;
pub mod stats;

pub use batch::{BatchSegment, BatchedResult};
pub use device::{Device, DeviceSpec};
pub use device_tree::{DeviceAllocator, DeviceTreeSpec, TreeLaunchTrace};
pub use kernel::{Kernel, LaunchConfig, ThreadId};
pub use launch::{LaunchResult, PendingLaunch};
pub use pool::WorkerPool;
pub use stats::KernelStats;
// Fault type shared with the plan layer in `pmcts-util`.
pub use pmcts_util::GpuFault;
