//! A persistent host worker pool (std-only).
//!
//! The execution engine used to spawn fresh OS threads for every kernel
//! launch — scoped threads for the synchronous block fan-out and a detached
//! thread per asynchronous launch. On the simulated-GPU hot path that is a
//! thread creation per MCTS iteration. [`WorkerPool`] replaces both: a
//! fixed set of workers is created once per device (or shared across
//! devices) and serves
//!
//! * [`run_scoped`](WorkerPool::run_scoped) — synchronous fan-out where the
//!   closure may borrow from the caller's stack (the block loop of
//!   `execute_kernel`), and
//! * [`submit`](WorkerPool::submit) — fire-and-forget `'static` jobs
//!   (asynchronous launches behind `PendingLaunch`).
//!
//! **Determinism.** The pool never decides *what* work is done, only *which
//! thread* does it: `execute_kernel` keys every block's result by block id
//! and folds in block order, so results are bit-identical for any pool size
//! (the same property the old scoped-thread fan-out had).
//!
//! **Deadlock freedom.** `run_scoped(participants, f)` always runs
//! participant 0 on the calling thread, so all work can complete even if no
//! worker ever picks up a queued participant job (e.g. every worker is busy
//! with an asynchronous launch). After its own share the caller *cancels*
//! any of its jobs still sitting unclaimed in the queue and waits only for
//! jobs a worker actually started — a bounded wait on actively executing
//! closures.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A scoped participant closure with its lifetime erased.
///
/// Safety: `run_scoped` guarantees the referent outlives every access — it
/// does not return until each queued job was either executed to completion
/// or removed from the queue unstarted.
struct ScopedFn(*const (dyn Fn(usize) + Sync + 'static));
unsafe impl Send for ScopedFn {}
unsafe impl Sync for ScopedFn {}

/// Shared bookkeeping of one `run_scoped` call.
struct ScopeState {
    run: ScopedFn,
    /// Participant jobs not yet finished (queued or executing).
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by a participant, re-thrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

enum Job {
    /// A detached `'static` job (asynchronous launch).
    Task(Box<dyn FnOnce() + Send + 'static>),
    /// Participant `index` of a synchronous scoped fan-out.
    Scoped {
        scope: Arc<ScopeState>,
        index: usize,
    },
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size pool of persistent worker threads.
///
/// Dropping the pool drains the queue (pending detached jobs still run —
/// preserving the fire-and-forget semantics of dropped async launches) and
/// joins all workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers (`0` is treated as 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gpu-sim-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    #[inline]
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a detached `'static` job; some worker eventually runs it.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        queue.push_back(Job::Task(Box::new(job)));
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Runs `f(0), f(1), …, f(participants-1)` concurrently and returns when
    /// all calls have finished. `f(0)` runs on the calling thread; the rest
    /// are offered to the workers, so at most `participants` threads run `f`
    /// at any moment. `f` may borrow from the caller's stack.
    ///
    /// # Panics
    /// Re-raises the first panic any participant raised.
    pub fn run_scoped<F>(&self, participants: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if participants <= 1 {
            f(0);
            return;
        }
        let narrow: &(dyn Fn(usize) + Sync) = &f;
        // Erase the stack lifetime; see `ScopedFn` for the safety argument.
        let erased: &'static (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(narrow) };
        let scope = Arc::new(ScopeState {
            run: ScopedFn(erased as *const _),
            pending: Mutex::new(participants - 1),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for index in 1..participants {
                queue.push_back(Job::Scoped {
                    scope: Arc::clone(&scope),
                    index,
                });
            }
        }
        self.shared.available.notify_all();

        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));

        // Cancel this scope's still-unclaimed jobs: a popped job is owned by
        // a worker, so whatever remains in the queue never started and can
        // be discarded (participant 0 plus the executing workers drain the
        // shared work source — for `execute_kernel`, the block counter).
        let cancelled = {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            let before = queue.len();
            queue.retain(
                |job| !matches!(job, Job::Scoped { scope: s, .. } if Arc::ptr_eq(s, &scope)),
            );
            before - queue.len()
        };
        {
            let mut pending = scope.pending.lock().expect("scope state poisoned");
            *pending -= cancelled;
            while *pending > 0 {
                pending = scope.done.wait(pending).expect("scope state poisoned");
            }
        }
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        let participant_panic = scope.panic.lock().expect("scope state poisoned").take();
        if let Some(payload) = participant_panic {
            resume_unwind(payload);
        }
    }

    /// Applies `f` to every element of `items` on the pool and returns the
    /// results **in item order**, regardless of which worker ran which item.
    ///
    /// This is the deterministic fan-out primitive behind the searchers'
    /// pool-parallel host phases: each item (one search tree) is claimed by
    /// exactly one participant via an atomic counter, `f` gets exclusive
    /// `&mut` access to it, and the result lands in the slot of the item's
    /// index. Because outputs are keyed by index and the caller folds them
    /// in order, results are bit-identical for any pool size — the same
    /// property `execute_kernel` has for blocks.
    ///
    /// Built on [`run_scoped`](Self::run_scoped), so it inherits its
    /// guarantees: the caller participates (no deadlock when all workers
    /// are busy), at most `min(size, items.len())` threads run `f`, and a
    /// panic in `f` is re-raised here. With one worker (or one item) the
    /// whole map runs inline on the calling thread.
    pub fn map_indexed<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
        {
            let items = SendSlice(items.as_mut_ptr());
            let slots = SendSlice(out.as_mut_ptr());
            let next = std::sync::atomic::AtomicUsize::new(0);
            let participants = self.size().min(n);
            self.run_scoped(participants, |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Safety: the atomic counter hands out each index exactly
                // once, so no two participants touch the same element or
                // result slot, and `run_scoped` does not return before
                // every started participant finished.
                let item = unsafe { &mut *items.at(i) };
                let result = f(i, item);
                unsafe { *slots.at(i) = Some(result) };
            });
        }
        out.into_iter()
            .map(|slot| slot.expect("map_indexed: every index was claimed"))
            .collect()
    }
}

/// Raw pointer into a caller-owned slice, shareable across the scoped
/// participants. Safety: see `map_indexed` — indices are claimed uniquely.
struct SendSlice<T>(*mut T);
unsafe impl<T: Send> Send for SendSlice<T> {}
unsafe impl<T: Send> Sync for SendSlice<T> {}

impl<T> SendSlice<T> {
    /// Pointer to element `i`. Going through a method (rather than field
    /// access in the closure) makes the closure capture the whole `Sync`
    /// wrapper instead of the raw pointer field.
    fn at(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size())
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                // Queue drained: detached jobs submitted before shutdown
                // have been picked up, so exiting here never drops work.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool queue poisoned");
            }
        };
        match job {
            Job::Task(f) => {
                // A detached job's panic has nowhere to surface (the owner
                // may have dropped its handle); swallow it so the worker
                // survives. `PendingLaunch` jobs catch their own panics and
                // report them through `wait()`.
                let _ = catch_unwind(AssertUnwindSafe(f));
            }
            Job::Scoped { scope, index } => {
                let run = unsafe { &*scope.run.0 };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(index))) {
                    let mut slot = scope.panic.lock().expect("scope state poisoned");
                    slot.get_or_insert(payload);
                }
                let mut pending = scope.pending.lock().expect("scope state poisoned");
                *pending -= 1;
                if *pending == 0 {
                    scope.done.notify_all();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scoped_fanout_runs_every_participant_work_item() {
        let pool = WorkerPool::new(4);
        let next = AtomicUsize::new(0);
        let total = AtomicUsize::new(0);
        pool.run_scoped(4, |_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= 100 {
                break;
            }
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..100).sum());
    }

    #[test]
    fn single_participant_runs_inline() {
        let pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        let hits = AtomicUsize::new(0);
        pool.run_scoped(1, |idx| {
            assert_eq!(idx, 0);
            assert_eq!(std::thread::current().id(), caller);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn completes_even_when_workers_are_busy() {
        // One worker, blocked on a long detached job: run_scoped must still
        // finish because the caller can do all the work itself.
        let pool = WorkerPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        let done = AtomicUsize::new(0);
        pool.run_scoped(3, |_| {
            done.fetch_add(1, Ordering::Relaxed);
        });
        // Participants 1,2 may have been cancelled; participant 0 always ran.
        assert!(done.load(Ordering::Relaxed) >= 1);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn submitted_jobs_run_before_shutdown() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..16 {
                let ran = Arc::clone(&ran);
                pool.submit(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop joins workers after the queue drains.
        }
        assert_eq!(ran.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn participant_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_scoped(2, |idx| {
                if idx == 1 {
                    panic!("participant exploded");
                }
                // Give the worker time to claim and run participant 1 so the
                // panic path (not the cancellation path) is exercised.
                std::thread::sleep(std::time::Duration::from_millis(20));
            });
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool must remain usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.run_scoped(2, |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ok.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn map_indexed_returns_results_in_item_order() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let mut items: Vec<usize> = (0..37).collect();
            let results = pool.map_indexed(&mut items, |i, item| {
                *item *= 2;
                i * 10
            });
            assert_eq!(results, (0..37).map(|i| i * 10).collect::<Vec<_>>());
            assert_eq!(items, (0..37).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_gives_exclusive_mutable_access() {
        let pool = WorkerPool::new(4);
        let mut items = vec![0u64; 200];
        // Each item incremented exactly once even under contention.
        let results = pool.map_indexed(&mut items, |_, item| {
            *item += 1;
            *item
        });
        assert!(items.iter().all(|&v| v == 1));
        assert!(results.iter().all(|&v| v == 1));
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        let pool = WorkerPool::new(3);
        let mut empty: Vec<u8> = Vec::new();
        assert!(pool.map_indexed(&mut empty, |_, _| 0u8).is_empty());
        let mut one = vec![7u8];
        assert_eq!(pool.map_indexed(&mut one, |i, v| (i, *v)), vec![(0, 7)]);
    }

    #[test]
    fn map_indexed_panic_propagates() {
        let pool = WorkerPool::new(2);
        let mut items = vec![0u8; 8];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(&mut items, |i, _| {
                if i == 3 {
                    panic!("item exploded");
                }
                i
            })
        }));
        assert!(result.is_err());
        // Pool stays usable.
        let mut items = vec![0u8; 4];
        let results = pool.map_indexed(&mut items, |i, _| i);
        assert_eq!(results, vec![0, 1, 2, 3]);
    }
}
